"""Service observability: admission, lifecycle and event counters.

:class:`ServiceStats` is the service-level sibling of the sweep
report's cache/perf sections: a plain counter record the server
mutates from the event loop only (no locking needed) and snapshots
into every ``stats`` response.  Job-level solver work additionally
lands in the process-wide :mod:`avipack.perf` registry under the
``"service.job"`` kernel (``solves`` = jobs completed, ``iterations``
= candidates evaluated, ``wall_s`` = job wall-clock), so one
``perf.snapshot()`` shows solver and service throughput side by side.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Tuple

from .. import perf as _perf

__all__ = ["SERVICE_KERNEL", "ServiceStats"]

#: The :mod:`avipack.perf` kernel the job server records into.
SERVICE_KERNEL = "service.job"


@dataclass
class ServiceStats:
    """Counters for one server process (reset only by restart)."""

    #: Submissions received (accepted + rejected + deduplicated).
    submitted: int = 0
    #: Submissions admitted into the queue.
    accepted: int = 0
    #: Submissions answered with an existing active job.
    deduplicated: int = 0
    #: Rejections by admission code (``queue_full``, ``draining``, ...).
    rejected: Dict[str, int] = field(default_factory=dict)
    #: Jobs that entered the RUNNING state.
    started: int = 0
    completed: int = 0
    failed: int = 0
    cancelled: int = 0
    #: Jobs interrupted by a drain (journalled, resumable).
    interrupted: int = 0
    #: Unfinished jobs recovered from manifests at startup.
    recovered_jobs: int = 0
    #: Candidates restored from journals instead of recomputed.
    restored_candidates: int = 0
    #: Candidates evaluated (progress callbacks fired) by this process.
    evaluated_candidates: int = 0
    #: Heartbeat events emitted.
    heartbeats: int = 0
    #: Total events appended to job buffers.
    events: int = 0
    #: Client connections accepted.
    connections: int = 0
    #: Stream requests that asked to replay from a sequence number > 0.
    replays: int = 0
    #: Stream requests refused because the buffer no longer covers
    #: the requested sequence number.
    replay_gaps: int = 0
    #: Drain requests honoured (signal or shutdown op).
    drains: int = 0
    #: Retention passes executed (watermark-triggered or on request).
    retention_passes: int = 0
    #: Finished jobs whose journal/store were compacted.
    compacted_jobs: int = 0
    #: Finished jobs evicted by the retention policy.
    evicted_jobs: int = 0
    #: Bytes reclaimed by this process's retention passes.
    reclaimed_bytes: int = 0

    def reject(self, code: str) -> None:
        """Count one admission rejection under its reason code."""
        self.rejected[code] = self.rejected.get(code, 0) + 1

    @property
    def n_rejected(self) -> int:
        """Total rejected submissions across every reason."""
        return sum(self.rejected.values())

    def record_job_perf(self, n_candidates: int, wall_s: float) -> None:
        """Fold one completed job into the :mod:`avipack.perf` registry."""
        _perf.record(SERVICE_KERNEL, solves=1, iterations=n_candidates,
                     wall_s=wall_s)

    def snapshot(self) -> Dict[str, object]:
        """JSON-ready copy for the ``stats`` response."""
        return {
            "submitted": self.submitted,
            "accepted": self.accepted,
            "deduplicated": self.deduplicated,
            "rejected": dict(self.rejected),
            "n_rejected": self.n_rejected,
            "started": self.started,
            "completed": self.completed,
            "failed": self.failed,
            "cancelled": self.cancelled,
            "interrupted": self.interrupted,
            "recovered_jobs": self.recovered_jobs,
            "restored_candidates": self.restored_candidates,
            "evaluated_candidates": self.evaluated_candidates,
            "heartbeats": self.heartbeats,
            "events": self.events,
            "connections": self.connections,
            "replays": self.replays,
            "replay_gaps": self.replay_gaps,
            "drains": self.drains,
            "retention_passes": self.retention_passes,
            "compacted_jobs": self.compacted_jobs,
            "evicted_jobs": self.evicted_jobs,
            "reclaimed_bytes": self.reclaimed_bytes,
        }

    def to_lines(self) -> Tuple[str, ...]:
        """Aligned plain-text rendering (report furniture)."""
        snapshot = self.snapshot()
        return tuple(f"{name:<22}: {value}"
                     for name, value in snapshot.items())
