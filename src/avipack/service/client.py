"""Blocking client for the sweep job service.

:class:`ServiceClient` speaks the JSON-lines protocol over the server's
Unix socket and wraps the failure modes a long-lived campaign actually
hits:

* **Transient disconnects** — every request is retried over a fresh
  connection (``retries`` attempts with a fixed delay) before the
  client gives up with a ``ServiceError`` (code ``unreachable``).
* **Reconnect-and-replay** — :meth:`stream` tracks the last event
  sequence number it delivered; when the connection drops mid-stream it
  reconnects and resumes from ``last + 1``, deduplicating anything the
  server replays, so the caller observes every event exactly once (per
  server incarnation).
* **Server restarts** — a restarted server issues fresh sequence
  numbers and answers stale replay cursors with ``replay_gap`` plus the
  live buffer bounds; :meth:`stream` resets its cursor to the buffer
  head and keeps going.

Structured rejections (``queue_full``, ``quota_exceeded``,
``draining``, ...) surface as :class:`~avipack.errors.ServiceError`
with ``.code`` set to the protocol vocabulary, so callers can branch
on overload without parsing prose.
"""

from __future__ import annotations

import socket
import time
from typing import Any, Dict, Iterator, List, Optional

from ..errors import ServiceError
from .protocol import decode_line, encode_line

__all__ = ["ServiceClient"]


class ServiceClient:
    """One connection-per-exchange client (safe to share per thread)."""

    def __init__(self, socket_path: str, timeout_s: float = 30.0,
                 retries: int = 3, retry_delay_s: float = 0.2) -> None:
        if retries < 1:
            raise ServiceError("retries must be >= 1", code="bad_request")
        self.socket_path = socket_path
        self.timeout_s = timeout_s
        self.retries = retries
        self.retry_delay_s = retry_delay_s

    # -- transport -----------------------------------------------------------

    def _connect(self) -> socket.socket:
        conn = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        conn.settimeout(self.timeout_s)
        try:
            conn.connect(self.socket_path)
        except OSError:
            conn.close()
            raise
        return conn

    def _exchange(self, payload: Dict[str, Any]) -> Dict[str, Any]:
        """One request/response round trip with reconnect retries."""
        last_error: Optional[OSError] = None
        for attempt in range(self.retries):
            if attempt > 0:
                time.sleep(self.retry_delay_s)
            try:
                conn = self._connect()
            except OSError as exc:
                last_error = exc
                continue
            try:
                reader = conn.makefile("rb")
                conn.sendall(encode_line(payload))
                line = reader.readline()
            except OSError as exc:
                last_error = exc
                continue
            finally:
                conn.close()
            if not line:
                last_error = ConnectionResetError(
                    "server closed the connection before responding")
                continue
            return decode_line(line)
        raise ServiceError(
            f"service at {self.socket_path} unreachable after "
            f"{self.retries} attempts: {last_error}",
            code="unreachable")

    @staticmethod
    def _unwrap(response: Dict[str, Any]) -> Dict[str, Any]:
        if response.get("ok"):
            return response
        error = response.get("error") or {}
        raise ServiceError(
            str(error.get("reason", "request failed")),
            code=str(error.get("code", "error")))

    def _request(self, payload: Dict[str, Any]) -> Dict[str, Any]:
        return self._unwrap(self._exchange(payload))

    # -- simple ops ----------------------------------------------------------

    def ping(self) -> Dict[str, Any]:
        return self._request({"op": "ping"})

    def submit(self, *, axes: Optional[Dict[str, Any]] = None,
               candidates: Optional[List[Dict[str, Any]]] = None,
               sample: Optional[int] = None, seed: int = 0,
               priority: int = 0, deadline_s: Optional[float] = None,
               client: str = "anonymous") -> Dict[str, Any]:
        """Submit a sweep; returns the acceptance payload.

        Raises :class:`~avipack.errors.ServiceError` with the
        structured rejection code on refusal (``queue_full``,
        ``quota_exceeded``, ``job_too_large``, ``draining``,
        ``invalid_space``).
        """
        payload: Dict[str, Any] = {"op": "submit", "seed": seed,
                                   "priority": priority, "client": client}
        if axes is not None:
            payload["axes"] = axes
        if candidates is not None:
            payload["candidates"] = candidates
        if sample is not None:
            payload["sample"] = sample
        if deadline_s is not None:
            payload["deadline_s"] = deadline_s
        return self._request(payload)

    def status(self, job_id: str) -> Dict[str, Any]:
        return self._request({"op": "status", "job_id": job_id})

    def cancel(self, job_id: str,
               reason: str = "cancelled by client") -> Dict[str, Any]:
        return self._request({"op": "cancel", "job_id": job_id,
                              "reason": reason})

    def results(self, job_id: str, k: int = 20) -> Dict[str, Any]:
        """Top-``k`` ranking + headroom analytics from the job's
        columnar result store (served zero-unpickle; raises
        :class:`~avipack.errors.ServiceError` with code
        ``"no_results"`` when the job has no store)."""
        return self._request({"op": "results", "job_id": job_id,
                              "k": k})

    def jobs(self) -> List[Dict[str, Any]]:
        return self._request({"op": "jobs"})["jobs"]

    def stats(self) -> Dict[str, Any]:
        return self._request({"op": "stats"})

    def retention(self) -> Dict[str, Any]:
        """Run a retention pass now (compact + evict finished jobs).

        Returns the pass summary: job ids compacted and evicted,
        bytes reclaimed, and the governor's disk state (``disk_low``,
        ``usage_bytes``, watermarks — ``None`` values when the server
        runs without a disk budget)."""
        return self._request({"op": "retention"})

    def shutdown(self) -> Dict[str, Any]:
        """Ask the server to drain and exit (same path as SIGTERM)."""
        return self._request({"op": "shutdown"})

    # -- streaming -----------------------------------------------------------

    def stream(self, job_id: str, from_seq: int = 0,
               max_reconnects: int = 10) -> Iterator[Dict[str, Any]]:
        """Yield job events until a terminal one, surviving disconnects.

        Reconnects up to ``max_reconnects`` times, replaying from the
        last delivered sequence number; a ``replay_gap`` answer (buffer
        eviction or server restart) resets the cursor to the live
        buffer head.  Duplicate sequence numbers from overlapping
        replays are dropped, so each event is yielded at most once.
        """
        next_seq = from_seq
        reconnects = 0
        while True:
            try:
                conn = self._connect()
            except OSError as exc:
                reconnects += 1
                if reconnects > max_reconnects:
                    raise ServiceError(
                        f"stream for {job_id} lost after "
                        f"{max_reconnects} reconnects: {exc}",
                        code="unreachable") from exc
                time.sleep(self.retry_delay_s)
                continue
            try:
                reader = conn.makefile("rb")
                conn.sendall(encode_line({"op": "stream",
                                          "job_id": job_id,
                                          "from_seq": next_seq}))
                header = decode_line(reader.readline())
                if not header.get("ok"):
                    error = header.get("error") or {}
                    if error.get("code") == "replay_gap":
                        # Buffer moved on (or the server restarted and
                        # its sequence space reset): resume from the
                        # head the server advertises.
                        next_seq = int(error.get("buffer_start", 0))
                        continue
                    raise ServiceError(
                        str(error.get("reason", "stream refused")),
                        code=str(error.get("code", "error")))
                while True:
                    line = reader.readline()
                    if not line:
                        raise ConnectionResetError("stream closed")
                    event = decode_line(line)
                    seq = int(event.get("seq", -1))
                    if seq < next_seq:
                        continue  # replay overlap; already delivered
                    next_seq = seq + 1
                    yield event
                    if event.get("terminal"):
                        return
            except (OSError, ConnectionResetError) as exc:
                reconnects += 1
                if reconnects > max_reconnects:
                    raise ServiceError(
                        f"stream for {job_id} lost after "
                        f"{max_reconnects} reconnects: {exc}",
                        code="unreachable") from exc
                time.sleep(self.retry_delay_s)
            finally:
                conn.close()

    def wait(self, job_id: str, timeout_s: Optional[float] = None,
             from_seq: int = 0) -> Dict[str, Any]:
        """Block until the job is terminal; returns its final status.

        Consumes the event stream (so heartbeats double as liveness
        checks) and enforces an optional overall wall-clock budget.
        """
        deadline = (time.monotonic() + timeout_s
                    if timeout_s is not None else None)
        for _event in self.stream(job_id, from_seq=from_seq):
            if deadline is not None and time.monotonic() > deadline:
                raise ServiceError(
                    f"job {job_id} not terminal within {timeout_s:g} s",
                    code="wait_timeout")
        return self.status(job_id)
