"""The resilient sweep job service.

An asyncio job server (:class:`SweepService`, ``python -m avipack
serve``) that accepts design-space sweep submissions over a local
Unix socket, applies admission control (bounded queue, per-client
quotas, per-job size bounds), executes each job through the existing
:class:`~avipack.sweep.SweepRunner` under write-ahead journalling, and
streams per-candidate progress, heartbeat and completion events to
subscribed clients.  SIGTERM drains gracefully; SIGKILL is recovered
on restart by resuming every unfinished job from its journal, with
rankings identical to an uninterrupted run.

Layering::

    protocol   wire format + submission validation (transport-free)
    admission  bounded-queue/quota decisions + the priority queue
    jobs       job records, event buffers, crash-safe manifests
    stats      service counters + avipack.perf integration
    server     the asyncio server (SweepService, ThreadedService)
    client     blocking ServiceClient with reconnect-and-replay
"""

from .admission import AdmissionPolicy, JobQueue, Rejection, admit
from .client import ServiceClient
from .jobs import ACTIVE_STATES, TERMINAL_STATES, Job, JobStore
from .protocol import (
    ERROR_CODES,
    REQUEST_OPS,
    TERMINAL_EVENTS,
    ProtocolError,
    build_candidates,
    normalize_submission,
    submission_fingerprint,
)
from .server import ServiceConfig, SweepService, ThreadedService
from .stats import SERVICE_KERNEL, ServiceStats

__all__ = [
    "ACTIVE_STATES",
    "AdmissionPolicy",
    "ERROR_CODES",
    "Job",
    "JobQueue",
    "JobStore",
    "ProtocolError",
    "REQUEST_OPS",
    "Rejection",
    "SERVICE_KERNEL",
    "ServiceClient",
    "ServiceConfig",
    "ServiceStats",
    "SweepService",
    "TERMINAL_EVENTS",
    "TERMINAL_STATES",
    "ThreadedService",
    "admit",
    "build_candidates",
    "normalize_submission",
    "submission_fingerprint",
]
