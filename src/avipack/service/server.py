"""The resilient sweep job server (asyncio, JSON lines, Unix socket).

:class:`SweepService` turns the batch :class:`~avipack.sweep.SweepRunner`
into an always-on, multi-tenant service.  One asyncio event loop owns
all bookkeeping (jobs, queue, event buffers, stats); sweeps execute in
a bounded thread pool so the loop never blocks; every outcome a job
produces is write-ahead journalled (PR 5) before any event about it is
emitted.  Robustness properties, in the order they matter:

* **Admission control** — bounded queue, per-client quotas and a
  per-job size bound; overload rejects with a structured reason
  (:mod:`avipack.service.admission`) instead of growing unboundedly.
* **Heartbeats + stuck-job detection** — a heartbeat event per active
  job every ``heartbeat_s``; a running job that makes no candidate
  progress for ``stall_timeout_s`` is flagged and cooperatively
  cancelled.  Combine with ``candidate_timeout_s`` (the PR 2
  per-candidate watchdog) so even a hung worker process is abandoned
  and progress resumes.
* **Deadline enforcement** — a per-job ``deadline_s`` (submission) or
  server default; jobs over deadline are cancelled at the next
  candidate boundary, their journalled prefix intact.
* **Cooperative cancellation** — cancellation/deadline/stall/drain all
  take effect at the next outcome boundary, *after* the triggering
  outcome is journalled, so no acknowledged work is ever lost.
* **Graceful drain** — SIGTERM/SIGINT stop admission, interrupt
  running jobs at the next candidate boundary (journals flushed and
  closed cleanly, manifests marked ``interrupted``), persist queued
  jobs, and exit 0.
* **Crash-safe restart** — on startup the journal directory is
  scanned: ``queued`` manifests re-enter the queue, ``running`` and
  ``interrupted`` manifests resume via
  :meth:`~avipack.sweep.SweepRunner.resume`, producing rankings
  identical to an uninterrupted run.
* **Disk-budget governance** — when watermarks are configured, a
  governor polls the journal directory's footprint off the event loop;
  crossing the high watermark triggers a retention pass (compact every
  finished job's journal and result store, evict finished jobs per the
  :class:`~avipack.retention.RetentionPolicy`) and latches degraded
  admission: new submissions are refused with the structured
  ``disk_low`` code while running jobs, status, streams and ``results``
  queries keep serving.  Usage must fall back to the low watermark to
  restore admission (hysteresis — no flapping at the threshold).
"""

from __future__ import annotations

import asyncio
import contextlib
import dataclasses
import itertools
import os
import signal
import socket as socket_mod
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from .. import perf as _perf
from ..errors import AvipackError, InputError, ServiceError
from ..retention import (
    DiskBudget,
    RetentionPolicy,
    compact_journal,
    compact_store,
    directory_bytes,
)
from ..sweep.runner import SweepRunner, evaluate_candidate
from .admission import AdmissionPolicy, JobQueue, admit
from .jobs import Job, JobStore
from .protocol import (
    TERMINAL_EVENTS,
    ProtocolError,
    build_candidates,
    decode_line,
    encode_line,
    error_response,
    normalize_submission,
    submission_fingerprint,
    validate_request,
)
from .stats import SERVICE_KERNEL, ServiceStats

__all__ = ["ServiceConfig", "SweepService", "ThreadedService"]


@dataclass(frozen=True)
class ServiceConfig:
    """Everything one server instance needs to run."""

    #: Unix-domain socket path clients connect to.
    socket_path: str
    #: Directory holding per-job journals and manifests.
    journal_dir: str
    admission: AdmissionPolicy = field(default_factory=AdmissionPolicy)
    #: Heartbeat period [s] for active jobs.
    heartbeat_s: float = 1.0
    #: RUNNING job with no candidate progress for this long is flagged
    #: stalled and cooperatively cancelled.
    stall_timeout_s: float = 300.0
    #: Default per-job deadline [s] (submissions may set their own).
    deadline_s: Optional[float] = None
    #: Per-candidate watchdog [s] handed to the runner (parallel mode).
    candidate_timeout_s: Optional[float] = None
    #: Jobs executed concurrently (worker threads).
    max_running: int = 1
    #: Runner parallelism (process pool) inside each job.
    parallel: bool = True
    #: Runner pool width (``None`` = runner default).
    max_workers: Optional[int] = None
    #: Artificial per-candidate delay [s] — pacing hook for demos and
    #: the drain/chaos tests (0 disables).
    throttle_s: float = 0.0
    #: Stream each job's outcomes into a per-job columnar result store
    #: (``<journal_dir>/<job_id>.results``) so ``results`` requests are
    #: answered from typed columns without unpickling any payload.
    result_store: bool = True
    #: Events buffered per job for reconnect-and-replay.
    event_buffer: int = 10_000
    #: Install SIGTERM/SIGINT drain handlers (main-thread loops only).
    install_signal_handlers: bool = True
    #: High disk watermark [bytes] over ``journal_dir``: reaching it
    #: triggers a retention pass and latches degraded (``disk_low``)
    #: admission.  ``None`` disables the governor.
    disk_high_watermark_bytes: Optional[int] = None
    #: Low watermark [bytes] admission recovery requires (default:
    #: half the high watermark) — the hysteresis band.
    disk_low_watermark_bytes: Optional[int] = None
    #: Disk-usage poll period [s]; the walk runs on the IO worker.
    disk_poll_s: float = 5.0
    #: Eviction bounds for *finished* jobs.  Compaction always runs in
    #: a retention pass; eviction only with an enabled clause.
    retention: RetentionPolicy = field(default_factory=RetentionPolicy)


class _CancelSweep(Exception):
    """Raised inside the progress hook to stop a sweep cooperatively."""

    def __init__(self, reason: str) -> None:
        super().__init__(reason)
        self.reason = reason


class _ThrottledEvaluator:
    """Picklable evaluator adding a fixed per-candidate delay.

    The pacing hook behind ``ServiceConfig.throttle_s``: it keeps each
    candidate slow enough that drain/kill tests land signals
    mid-campaign deterministically, without touching physics.
    """

    def __init__(self, delay_s: float) -> None:
        self.delay_s = delay_s

    def __call__(self, task):
        time.sleep(self.delay_s)
        return evaluate_candidate(task)


class _LoopProgressHook:
    """Parent-process progress hook bridging sweep thread and loop.

    The runner invokes progress hooks in the submitting process (never
    in pool workers), here the job's worker thread, *after* each
    outcome is durably journalled.  The hook notifies the event loop
    first, then honours any pending cancellation — so the triggering
    outcome is never lost to a cancel/deadline/drain.
    """

    def __init__(self, service: "SweepService", job: Job) -> None:
        self.service = service
        self.job = job

    def __call__(self, outcome) -> None:
        loop = self.service._loop
        assert loop is not None
        loop.call_soon_threadsafe(self.service._on_progress, self.job,
                                  _outcome_event(outcome))
        reason = self.job.cancel_reason
        if reason is not None:
            raise _CancelSweep(reason)


class SweepService:
    """One job-server instance (see module docstring for semantics)."""

    def __init__(self, config: ServiceConfig) -> None:
        if config.max_running < 1:
            raise InputError("max_running must be >= 1")
        if config.heartbeat_s <= 0.0:
            raise InputError("heartbeat_s must be positive")
        if config.disk_poll_s <= 0.0:
            raise InputError("disk_poll_s must be positive")
        self.config = config
        self._budget: Optional[DiskBudget] = None
        if config.disk_high_watermark_bytes is not None:
            low = (config.disk_low_watermark_bytes
                   if config.disk_low_watermark_bytes is not None
                   else config.disk_high_watermark_bytes // 2)
            self._budget = DiskBudget(config.disk_high_watermark_bytes,
                                      low)
        #: Reentrancy guard: retention passes are serialised (they
        #: hold journal/store locks; overlap would only contend).
        self._retention_running = False
        self.stats = ServiceStats()
        self.store = JobStore(config.journal_dir)
        self._jobs: Dict[str, Job] = {}
        self._queue = JobQueue()
        self._running: set = set()
        self._tasks: set = set()
        self._subscribers: Dict[str, List[asyncio.Queue]] = {}
        self._order = itertools.count()
        self._draining = False
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._stopped: Optional[asyncio.Event] = None
        self._executor = ThreadPoolExecutor(
            max_workers=config.max_running,
            thread_name_prefix="avipack-job")
        #: Dedicated single worker for manifest writes and result-store
        #: reads.  Separate from ``_executor`` (saves must never queue
        #: behind long sweeps) and single-threaded so manifest writes
        #: for one job retain their submission order.
        self._io_executor = ThreadPoolExecutor(
            max_workers=1, thread_name_prefix="avipack-io")
        #: threading.Event other threads may wait on for readiness.
        self.ready = threading.Event()

    # -- lifecycle -----------------------------------------------------------

    async def serve(self) -> None:
        """Run until drained; returns (exit 0) after a graceful stop."""
        self._loop = asyncio.get_running_loop()
        self._stopped = asyncio.Event()
        # Startup I/O (manifest replay, socket probe) runs on the IO
        # worker: nothing else touches loop state yet, and the loop
        # stays responsive to signals while a large manifest directory
        # replays.
        await self._loop.run_in_executor(self._io_executor,
                                         self._recover)
        await self._loop.run_in_executor(self._io_executor,
                                         self._claim_socket)
        server = await asyncio.start_unix_server(
            self._handle_client, path=self.config.socket_path)
        self._install_signal_handlers()
        heartbeat = asyncio.create_task(self._heartbeat_loop())
        self._tasks.add(heartbeat)
        heartbeat.add_done_callback(self._tasks.discard)
        governor = asyncio.create_task(self._budget_loop())
        self._tasks.add(governor)
        governor.add_done_callback(self._tasks.discard)
        self._schedule()
        try:
            await self._stopped.wait()
        finally:
            server.close()
            await server.wait_closed()
            heartbeat.cancel()
            governor.cancel()
            pending = [task for task in self._tasks
                       if task is not heartbeat and task is not governor]
            if pending:
                await asyncio.gather(*pending, return_exceptions=True)
            with contextlib.suppress(asyncio.CancelledError):
                await heartbeat
            with contextlib.suppress(asyncio.CancelledError):
                await governor
            self._executor.shutdown(wait=True)
            self._io_executor.shutdown(wait=True)
            with contextlib.suppress(OSError):
                os.unlink(self.config.socket_path)

    def _claim_socket(self) -> None:
        """Refuse to steal a live socket; clear a stale one."""
        path = self.config.socket_path
        if not os.path.exists(path):
            return
        probe = socket_mod.socket(socket_mod.AF_UNIX,
                                  socket_mod.SOCK_STREAM)
        try:
            probe.settimeout(0.25)
            probe.connect(path)
        except OSError:
            os.unlink(path)  # stale socket from a dead server
        else:
            raise ServiceError(
                f"socket {path} already serves a live server; stop it "
                "or choose another --socket path", code="socket_in_use")
        finally:
            probe.close()

    def _install_signal_handlers(self) -> None:
        if not self.config.install_signal_handlers:
            return
        if threading.current_thread() is not threading.main_thread():
            return
        assert self._loop is not None
        for signum in (signal.SIGTERM, signal.SIGINT):
            self._loop.add_signal_handler(
                signum, self.begin_drain, signal.Signals(signum).name)

    def _recover(self) -> None:
        """Replay the manifest directory into queue + job table."""
        for job in self.store.load_all():
            self._jobs[job.job_id] = job
            if job.state in ("running", "interrupted"):
                job.state = "queued"
                job.resume = True
                job.cancel_reason = None
                self.store.save(job)
                self._queue.push(job.job_id, job.priority,
                                 job.submit_order)
                self.stats.recovered_jobs += 1
            elif job.state == "queued":
                self._queue.push(job.job_id, job.priority,
                                 job.submit_order)
                self.stats.recovered_jobs += 1
        highest = max((job.submit_order for job in self._jobs.values()),
                      default=-1)
        self._order = itertools.count(highest + 1)

    async def _save_job(self, job: Job) -> None:
        """Persist one job manifest without blocking the event loop.

        The manifest is snapshotted *synchronously* — the written bytes
        reflect the job's state at this call site even if the loop
        mutates the job during the await — and the fsync'd write runs
        on the single IO worker, which serialises saves in issue order.
        """
        manifest = job.to_manifest()
        assert self._loop is not None
        await self._loop.run_in_executor(
            self._io_executor, self.store.save_manifest,
            job.job_id, manifest)

    def begin_drain(self, reason: str = "drain") -> None:
        """Stop admission, interrupt running jobs, exit when quiet."""
        if self._draining:
            return
        self._draining = True
        self.stats.drains += 1
        for job_id in list(self._running):
            job = self._jobs[job_id]
            if job.cancel_reason is None:
                job.cancel_reason = "drain"
            self._emit(job, "draining", reason=reason)
        self._maybe_finish_drain()

    def _maybe_finish_drain(self) -> None:
        if self._draining and not self._running \
                and self._stopped is not None:
            self._stopped.set()

    # -- scheduling and execution --------------------------------------------

    def _schedule(self) -> None:
        while (not self._draining
               and len(self._running) < self.config.max_running):
            job_id = self._queue.pop()
            if job_id is None:
                break
            job = self._jobs[job_id]
            if job.state != "queued":
                continue
            self._running.add(job_id)
            task = asyncio.create_task(self._run_job(job))
            self._tasks.add(task)
            task.add_done_callback(self._tasks.discard)

    async def _run_job(self, job: Job) -> None:
        assert self._loop is not None
        job.state = "running"
        job.started_monotonic = time.monotonic()
        job.last_progress_monotonic = job.started_monotonic
        await self._save_job(job)
        self.stats.started += 1
        self._emit(job, "started", resume=job.resume, total=job.total)
        try:
            report = await self._loop.run_in_executor(
                self._executor, self._execute_job, job)
        except _CancelSweep as cancel:
            if cancel.reason == "drain":
                job.state = "interrupted"
                self.stats.interrupted += 1
                self._emit(job, "interrupted", reason=cancel.reason,
                           done=job.done)
            else:
                job.state = "cancelled"
                job.error = f"cancelled: {cancel.reason}"
                self.stats.cancelled += 1
                self._emit(job, "cancelled", terminal=True,
                           reason=cancel.reason, done=job.done)
        except AvipackError as exc:
            job.state = "failed"
            job.error = f"{type(exc).__name__}: {exc}"
            self.stats.failed += 1
            self._emit(job, "failed", terminal=True, error=job.error)
        except Exception as exc:  # defensive: a job never kills the loop
            job.state = "failed"
            job.error = f"{type(exc).__name__}: {exc}"
            self.stats.failed += 1
            self._emit(job, "failed", terminal=True, error=job.error)
        else:
            job.state = "completed"
            job.result = self._summarize(report)
            self.stats.completed += 1
            durability = report.durability
            if durability is not None:
                job.restored = durability.n_resumed
                self.stats.restored_candidates += durability.n_resumed
            self.stats.record_job_perf(report.n_candidates,
                                       report.wall_time_s)
            self._emit(job, "completed", terminal=True,
                       n_compliant=report.n_compliant,
                       n_failed=len(report.failures),
                       restored=job.restored,
                       wall_s=round(report.wall_time_s, 6))
        if job.terminal:
            job.finished_wall = time.time()
        await self._save_job(job)
        self._running.discard(job.job_id)
        self._schedule()
        self._maybe_finish_drain()

    def _execute_job(self, job: Job):
        """Run one sweep (worker thread; never touches loop state)."""
        candidates = build_candidates(job.submission)
        evaluator = (_ThrottledEvaluator(self.config.throttle_s)
                     if self.config.throttle_s > 0.0 else None)
        runner = SweepRunner(
            parallel=self.config.parallel,
            max_workers=self.config.max_workers,
            timeout_s=self.config.candidate_timeout_s,
            evaluator=evaluator,
            result_store=(self.store.result_dir(job.job_id)
                          if self.config.result_store else None))
        hook = _LoopProgressHook(self, job)
        if job.resume and os.path.exists(job.journal_path):
            return runner.resume(job.journal_path, progress=hook)
        return runner.run(candidates, journal_path=job.journal_path,
                          progress=hook)

    def _on_progress(self, job: Job, summary: Dict[str, Any]) -> None:
        """Loop-thread half of the progress hook."""
        job.done += 1
        job.last_progress_monotonic = time.monotonic()
        self.stats.evaluated_candidates += 1
        self._emit(job, "progress", done=job.done, total=job.total,
                   **summary)

    @staticmethod
    def _summarize(report) -> Dict[str, Any]:
        # Top-k selection, not a full-population sort (O(n log k)).
        ranking = [[o.fingerprint, o.cost_rank, round(o.worst_board_c, 9)]
                   for o in report.top(1000)]
        summary: Dict[str, Any] = {
            "n_candidates": report.n_candidates,
            "n_compliant": report.n_compliant,
            "n_failed": len(report.failures),
            "mode": report.mode,
            "wall_s": report.wall_time_s,
            "ranking": ranking,
        }
        if report.durability is not None:
            summary["durability"] = {
                "n_resumed": report.durability.n_resumed,
                "n_recomputed": report.durability.n_recomputed,
                "n_quarantined": report.durability.n_quarantined,
                "n_audit_failures": report.durability.n_audit_failures,
            }
        return summary

    # -- heartbeats, deadlines, stall detection ------------------------------

    async def _heartbeat_loop(self) -> None:
        assert self._stopped is not None
        while not self._stopped.is_set():
            with contextlib.suppress(asyncio.TimeoutError):
                await asyncio.wait_for(self._stopped.wait(),
                                       timeout=self.config.heartbeat_s)
                return
            now = time.monotonic()
            for job in list(self._jobs.values()):
                if job.state not in ("queued", "running"):
                    continue
                elapsed_s = (now - job.started_monotonic
                             if job.state == "running" else 0.0)
                self.stats.heartbeats += 1
                self._emit(job, "heartbeat", state=job.state,
                           done=job.done, total=job.total,
                           elapsed_s=round(elapsed_s, 3))
                if job.state != "running" or job.cancel_reason:
                    continue
                deadline_s = job.deadline_s or self.config.deadline_s
                if deadline_s is not None and elapsed_s > deadline_s:
                    job.cancel_reason = (
                        f"deadline: exceeded {deadline_s:g} s budget")
                    self._emit(job, "cancelling",
                               reason=job.cancel_reason)
                    continue
                idle_s = now - job.last_progress_monotonic
                if idle_s > self.config.stall_timeout_s:
                    job.cancel_reason = (
                        f"stalled: no candidate progress for "
                        f"{idle_s:.1f} s")
                    self._emit(job, "stalled", idle_s=round(idle_s, 3))
                    self._emit(job, "cancelling",
                               reason=job.cancel_reason)

    # -- disk budget and retention -------------------------------------------

    async def _budget_loop(self) -> None:
        """Poll disk usage off the loop; trigger retention on breach."""
        budget = self._budget
        if budget is None:
            return
        assert self._stopped is not None and self._loop is not None
        while not self._stopped.is_set():
            with contextlib.suppress(asyncio.TimeoutError):
                await asyncio.wait_for(self._stopped.wait(),
                                       timeout=self.config.disk_poll_s)
                return
            usage = await self._loop.run_in_executor(
                self._io_executor, directory_bytes,
                self.config.journal_dir)
            if budget.observe(usage):
                await self._run_retention("watermark")

    def _disk_status(self) -> Dict[str, Any]:
        """JSON-ready governor state for stats/retention responses."""
        if self._budget is None:
            return {"disk_low": False, "usage_bytes": None,
                    "high_watermark_bytes": None,
                    "low_watermark_bytes": None}
        return {"disk_low": self._budget.disk_low,
                "usage_bytes": self._budget.last_usage,
                "high_watermark_bytes": self._budget.high_bytes,
                "low_watermark_bytes": self._budget.low_bytes}

    async def _run_retention(self, trigger: str) -> Dict[str, Any]:
        """One governor pass: compact finished jobs, evict per policy.

        Every blocking step (compaction, footprint walks, file
        removal) runs on the IO worker; only the job-table bookkeeping
        touches loop state.  Active jobs — queued, running,
        interrupted — are never compacted or evicted.
        """
        assert self._loop is not None
        if self._retention_running:
            return {"ok": True, "trigger": trigger, "compacted": [],
                    "evicted": [], "bytes_reclaimed": 0,
                    "skipped": "a retention pass is already running",
                    **self._disk_status()}
        self._retention_running = True
        try:
            self.stats.retention_passes += 1
            _perf.increment("retention.passes")
            reclaimed = 0
            compacted: List[str] = []
            for job in sorted(self._jobs.values(),
                              key=lambda j: j.submit_order):
                if not job.terminal or job.compacted:
                    continue
                freed = await self._loop.run_in_executor(
                    self._io_executor, self._compact_job_files, job)
                if freed is None:
                    continue
                job.compacted = True
                reclaimed += freed
                compacted.append(job.job_id)
                self.stats.compacted_jobs += 1
                await self._save_job(job)
            evicted_ids, evicted_bytes = await self._evict_jobs()
            reclaimed += evicted_bytes
            self.stats.reclaimed_bytes += reclaimed
            if self._budget is not None:
                usage = await self._loop.run_in_executor(
                    self._io_executor, directory_bytes,
                    self.config.journal_dir)
                self._budget.observe(usage)
            return {"ok": True, "trigger": trigger,
                    "compacted": compacted, "evicted": evicted_ids,
                    "bytes_reclaimed": reclaimed,
                    **self._disk_status()}
        finally:
            self._retention_running = False

    def _compact_job_files(self, job: Job) -> Optional[int]:
        """Blocking half of per-job compaction (IO worker).

        Returns bytes reclaimed, or ``None`` when the files could not
        be compacted this pass (lock contention, a journal with no
        intact plan) — the pass moves on and retries next time;
        nothing is ever torn.
        """
        reclaimed = 0
        try:
            if os.path.exists(job.journal_path):
                reclaimed += compact_journal(
                    job.journal_path).bytes_reclaimed
            result_dir = self.store.result_dir(job.job_id)
            if os.path.isdir(result_dir):
                reclaimed += compact_store(result_dir).bytes_reclaimed
        except AvipackError:
            return None
        return reclaimed

    async def _evict_jobs(self) -> "tuple[List[str], int]":
        """Evict finished jobs per the retention policy's clauses.

        A job is evicted when *any* enabled clause condemns it:
        beyond ``keep_last_n`` newest, older than ``max_age_s``, or
        past the cumulative ``max_bytes`` footprint (newest kept).
        """
        assert self._loop is not None
        policy = self.config.retention
        if not policy.bounded:
            return [], 0
        finished = [job for job in self._jobs.values() if job.terminal]
        finished.sort(key=lambda j: (j.finished_wall, j.submit_order),
                      reverse=True)
        victims: Dict[str, Job] = {}
        if policy.keep_last_n is not None:
            for job in finished[policy.keep_last_n:]:
                victims[job.job_id] = job
        if policy.max_age_s is not None:
            now = time.time()
            for job in finished:
                if job.finished_wall \
                        and now - job.finished_wall > policy.max_age_s:
                    victims[job.job_id] = job
        if policy.max_bytes is not None:
            total = 0
            for job in finished:
                if job.job_id in victims:
                    continue
                total += await self._loop.run_in_executor(
                    self._io_executor, self.store.job_bytes,
                    job.job_id)
                if total > policy.max_bytes:
                    victims[job.job_id] = job
        evicted: List[str] = []
        removed_bytes = 0
        for job in sorted(victims.values(),
                          key=lambda j: j.submit_order):
            removed_bytes += await self._loop.run_in_executor(
                self._io_executor, self.store.remove_job, job.job_id)
            self._jobs.pop(job.job_id, None)
            self._subscribers.pop(job.job_id, None)
            self.stats.evicted_jobs += 1
            _perf.increment("retention.evictions")
            evicted.append(job.job_id)
        return evicted, removed_bytes

    # -- events --------------------------------------------------------------

    def _emit(self, job: Job, event_type: str, terminal: bool = False,
              **fields: Any) -> None:
        event: Dict[str, Any] = {"event": event_type,
                                 "job_id": job.job_id,
                                 "seq": job.next_seq, **fields}
        if terminal:
            event["terminal"] = True
        job.append_event(event, self.config.event_buffer)
        self.stats.events += 1
        for queue in self._subscribers.get(job.job_id, []):
            queue.put_nowait(event)

    # -- connection handling -------------------------------------------------

    async def _handle_client(self, reader: asyncio.StreamReader,
                             writer: asyncio.StreamWriter) -> None:
        self.stats.connections += 1
        try:
            while True:
                line = await reader.readline()
                if not line:
                    break
                try:
                    request = decode_line(line)
                    op, params = validate_request(request)
                except ProtocolError as exc:
                    await self._send(writer,
                                     error_response(exc.code, str(exc)))
                    continue
                if op == "stream":
                    if await self._handle_stream(params, writer):
                        break
                    continue
                await self._send(writer,
                                 await self._dispatch(op, params))
                if op == "shutdown":
                    self.begin_drain("shutdown request")
                    break
        except (ConnectionResetError, BrokenPipeError):
            pass
        finally:
            writer.close()
            with contextlib.suppress(Exception):
                await writer.wait_closed()

    async def _send(self, writer: asyncio.StreamWriter,
                    payload: Dict[str, Any]) -> None:
        writer.write(encode_line(payload))
        await writer.drain()

    async def _dispatch(self, op: str, params: Dict[str, Any]
                        ) -> Dict[str, Any]:
        if op == "ping":
            return {"ok": True, "pong": True,
                    "draining": self._draining}
        if op == "submit":
            return await self._handle_submit(params)
        if op == "status":
            job = self._jobs.get(params["job_id"])
            if job is None:
                return error_response(
                    "unknown_job", f"no job {params['job_id']!r}")
            return {"ok": True, **job.status(),
                    "result_store": os.path.isdir(
                        self.store.result_dir(job.job_id))}
        if op == "cancel":
            return await self._handle_cancel(params)
        if op == "results":
            return await self._handle_results(params)
        if op == "jobs":
            return {"ok": True, "jobs": [
                {"job_id": job.job_id, "state": job.state,
                 "client": job.client, "priority": job.priority,
                 "done": job.done, "total": job.total}
                for job in sorted(self._jobs.values(),
                                  key=lambda j: j.submit_order)]}
        if op == "stats":
            return {"ok": True,
                    "stats": self.stats.snapshot(),
                    "perf": dataclasses.asdict(_perf.stats(SERVICE_KERNEL)),
                    "queued": len(self._queue),
                    "running": len(self._running),
                    "draining": self._draining,
                    "disk": self._disk_status()}
        if op == "retention":
            return await self._run_retention("request")
        if op == "shutdown":
            return {"ok": True, "draining": True}
        return error_response("unknown_op", f"unhandled op {op!r}")

    async def _handle_submit(self, params: Dict[str, Any]
                             ) -> Dict[str, Any]:
        self.stats.submitted += 1
        try:
            submission = normalize_submission(params)
        except ProtocolError as exc:
            self.stats.reject(exc.code)
            return error_response(exc.code, str(exc))
        fingerprint = submission_fingerprint(submission)
        for job in self._jobs.values():
            if job.fingerprint == fingerprint \
                    and job.state in ("queued", "running"):
                self.stats.deduplicated += 1
                return {"ok": True, "job_id": job.job_id,
                        "state": job.state, "deduplicated": True,
                        "fingerprint": fingerprint}
        client = submission["client"]
        client_active = sum(
            1 for job in self._jobs.values()
            if job.client == client and job.state in ("queued", "running"))
        rejection = admit(self.config.admission,
                          n_candidates=submission["n_candidates"],
                          queued=len(self._queue),
                          client_active=client_active,
                          draining=self._draining,
                          disk_low=(self._budget.disk_low
                                    if self._budget is not None
                                    else False))
        if rejection is not None:
            self.stats.reject(rejection.code)
            if rejection.code == "disk_low":
                _perf.increment("retention.disk_low_refusals")
            return error_response(rejection.code, rejection.reason)
        order = next(self._order)
        job_id = f"j{order:06d}"
        job = Job(job_id=job_id, client=client,
                  priority=submission["priority"],
                  submission=submission, fingerprint=fingerprint,
                  journal_path=self.store.journal_path(job_id),
                  submit_order=order,
                  total=submission["n_candidates"])
        # Register *before* awaiting persistence: a concurrent submit
        # with the same fingerprint must dedup against this job, and a
        # concurrent cancel must be able to find it.
        self._jobs[job_id] = job
        self.stats.accepted += 1
        await self._save_job(job)
        if job.state == "queued":  # a cancel may land during the await
            self._queue.push(job_id, job.priority, job.submit_order)
            self._emit(job, "queued", priority=job.priority,
                       total=job.total)
            self._schedule()
        return {"ok": True, "job_id": job_id, "state": job.state,
                "fingerprint": fingerprint,
                "n_candidates": job.total}

    async def _handle_cancel(self, params: Dict[str, Any]
                             ) -> Dict[str, Any]:
        job = self._jobs.get(params["job_id"])
        if job is None:
            return error_response("unknown_job",
                                  f"no job {params['job_id']!r}")
        if job.terminal:
            return error_response(
                "not_cancellable",
                f"job {job.job_id} is already {job.state}")
        reason = str(params.get("reason", "cancelled by client"))
        if job.state == "queued":
            self._queue.remove(job.job_id)
            job.state = "cancelled"
            job.error = f"cancelled: {reason}"
            job.finished_wall = time.time()
            self.stats.cancelled += 1
            await self._save_job(job)
            self._emit(job, "cancelled", terminal=True, reason=reason)
        elif job.cancel_reason is None:
            job.cancel_reason = reason
            self._emit(job, "cancelling", reason=reason)
        return {"ok": True, "job_id": job.job_id, "state": job.state}

    async def _handle_results(self, params: Dict[str, Any]
                              ) -> Dict[str, Any]:
        """Serve top-k + headroom analytics from the job's result store.

        Everything is read from the store's typed columns — no outcome
        payload is unpickled, whatever the campaign size — and the
        file I/O runs on the IO worker so a multi-shard read never
        stalls the event loop.
        """
        job = self._jobs.get(params["job_id"])
        if job is None:
            return error_response("unknown_job",
                                  f"no job {params['job_id']!r}")
        directory = self.store.result_dir(job.job_id)
        if not os.path.isdir(directory):
            return error_response(
                "no_results",
                f"job {job.job_id} has no columnar result store "
                "(stores disabled, or no outcome produced yet)")
        assert self._loop is not None
        return await self._loop.run_in_executor(
            self._io_executor, self._read_results, job, directory,
            int(params.get("k", 20)))

    def _read_results(self, job: Job, directory: str,
                      k: int) -> Dict[str, Any]:
        """Blocking half of ``results`` (runs on the IO worker)."""
        from ..errors import ResultStoreError
        from ..results import ResultStore, headroom_histogram, \
            ranked_row_ids
        try:
            store = ResultStore.open(directory)
            live = store.live_mask()
            n_live = int(live.sum())
            n_compliant = int((live & store.column("compliant")).sum())
            ids = ranked_row_ids(store, k)
            columns = {name: store.column(name)[ids]
                       for name in ("index", "fingerprint", "label",
                                    "cost_rank", "worst_board_c",
                                    "thermal_headroom_c")}
            counts, edges = headroom_histogram(store, bins=12)
        except ResultStoreError as exc:
            return error_response("no_results", str(exc))
        top = [
            {
                "position": position + 1,
                "index": int(columns["index"][position]),
                "fingerprint":
                    columns["fingerprint"][position].decode("ascii"),
                "label": columns["label"][position].decode("utf-8"),
                "cost_rank": float(columns["cost_rank"][position]),
                "worst_board_c":
                    float(columns["worst_board_c"][position]),
                "thermal_headroom_c":
                    float(columns["thermal_headroom_c"][position]),
            }
            for position in range(len(ids))]
        return {"ok": True, "job_id": job.job_id, "state": job.state,
                "n_rows": store.n_rows, "n_shards": store.n_shards,
                "n_live": n_live, "n_compliant": n_compliant,
                "quarantined_shards": list(store.quarantined),
                "top": top,
                "headroom_histogram": {
                    "counts": [int(count) for count in counts],
                    "edges": [float(edge) for edge in edges]}}

    async def _handle_stream(self, params: Dict[str, Any],
                             writer: asyncio.StreamWriter) -> bool:
        """Serve one event stream; True closes the connection after."""
        job = self._jobs.get(params["job_id"])
        if job is None:
            await self._send(writer, error_response(
                "unknown_job", f"no job {params['job_id']!r}"))
            return False
        from_seq = int(params.get("from_seq", 0))
        if from_seq > 0:
            self.stats.replays += 1
        try:
            backlog = job.events_from(from_seq)
        except ServiceError as exc:
            self.stats.replay_gaps += 1
            response = error_response(exc.code, str(exc))
            response["error"]["buffer_start"] = job.event_base_seq
            response["error"]["next_seq"] = job.next_seq
            await self._send(writer, response)
            return False
        subscribers = self._subscribers.setdefault(job.job_id, [])
        queue: asyncio.Queue = asyncio.Queue()
        subscribers.append(queue)
        try:
            await self._send(writer, {"ok": True, "job_id": job.job_id,
                                      "streaming": True,
                                      "from_seq": from_seq})
            last = from_seq - 1
            for event in backlog:
                await self._send(writer, event)
                last = event["seq"]
                if event.get("terminal"):
                    return True
            if job.terminal:
                # Terminal event predates from_seq: close with a
                # synthetic marker so the client still observes a
                # terminal event instead of a bare disconnect.
                await self._send(writer, {
                    "event": "closed", "job_id": job.job_id,
                    "seq": job.next_seq, "state": job.state,
                    "terminal": True})
                return True
            while True:
                event = await queue.get()
                if event["seq"] <= last:
                    continue
                await self._send(writer, event)
                last = event["seq"]
                if event.get("terminal"):
                    return True
        except (ConnectionResetError, BrokenPipeError):
            return True
        finally:
            subscribers.remove(queue)


def _outcome_event(outcome) -> Dict[str, Any]:
    """Flatten one candidate outcome into progress-event fields."""
    if getattr(outcome, "error_type", None) == "WatchdogTimeout":
        kind = "timeout"
    elif hasattr(outcome, "error_type"):
        kind = "failed"
    else:
        kind = "completed"
    event: Dict[str, Any] = {"index": outcome.index,
                             "fingerprint": outcome.fingerprint,
                             "kind": kind}
    if kind == "completed":
        event["compliant"] = outcome.compliant
    else:
        event["error"] = f"{outcome.error_type}: {outcome.message}"
    return event


class ThreadedService:
    """Run a :class:`SweepService` on a background thread (tests, demos,
    embedding into synchronous programs).

    Signal handlers are disabled (loops off the main thread cannot own
    them); stop the service with :meth:`stop`, which performs the same
    graceful drain a SIGTERM would.
    """

    def __init__(self, config: ServiceConfig) -> None:
        self.config = dataclasses.replace(config,
                                          install_signal_handlers=False)
        self.service = SweepService(self.config)
        self._thread: Optional[threading.Thread] = None

    def __enter__(self) -> "ThreadedService":
        self.start()
        return self

    def __exit__(self, *exc_info) -> None:
        self.stop()

    def start(self, timeout_s: float = 10.0) -> None:
        self._thread = threading.Thread(target=self._run, daemon=True,
                                        name="avipack-service")
        self._thread.start()
        deadline = time.monotonic() + timeout_s
        while time.monotonic() < deadline:
            if self.service.ready.wait(timeout=0.05):
                return
            if not self._thread.is_alive():
                raise ServiceError("service thread died during startup",
                                   code="startup_failed")
        raise ServiceError("service did not become ready in time",
                           code="startup_failed")

    def _run(self) -> None:
        asyncio.run(self._serve_signalling_ready())

    async def _serve_signalling_ready(self) -> None:
        # serve() binds the socket before waiting; flip the readiness
        # flag once the loop is processing by scheduling it as a task.
        loop = asyncio.get_running_loop()
        serve_task = loop.create_task(self.service.serve())
        while not os.path.exists(self.config.socket_path) \
                and not serve_task.done():
            await asyncio.sleep(0.01)
        self.service.ready.set()
        await serve_task

    def stop(self, timeout_s: float = 30.0) -> None:
        loop = self.service._loop
        if loop is not None and self._thread is not None \
                and self._thread.is_alive():
            loop.call_soon_threadsafe(self.service.begin_drain,
                                      "ThreadedService.stop")
        if self._thread is not None:
            self._thread.join(timeout=timeout_s)


#: Re-export for handlers that want the terminal vocabulary.
TERMINAL_EVENT_TYPES = TERMINAL_EVENTS
