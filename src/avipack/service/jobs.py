"""Job records, event buffers and the crash-safe manifest store.

A job is one sweep submission moving through the lifecycle::

    queued -> running -> completed | failed | cancelled
                      -> interrupted           (drain; resumable)

Two artefacts make every job crash-safe:

* its **write-ahead journal** (``<id>.journal.jsonl``) — the PR 5
  :class:`~avipack.durability.SweepJournal` the runner appends every
  outcome to, which makes candidate-level work durable;
* its **manifest** (``<id>.manifest.json``) — a small JSON document
  holding the submission, priority, state and (on completion) the
  ranking summary, rewritten atomically (tmp + ``os.replace``) on
  every state change, which makes job-level *metadata* durable.

On restart the server replays the manifest directory: ``queued`` jobs
re-enter the queue, ``running``/``interrupted`` jobs are resumed from
their journals, terminal jobs are loaded for status queries only.
Event buffers are process-local (sequence numbers restart with the
server); everything rankings depend on lives in journal + manifest.
"""

from __future__ import annotations

import json
import os
import shutil
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from ..errors import ServiceError

__all__ = ["ACTIVE_STATES", "TERMINAL_STATES", "Job", "JobStore"]

#: States in which a job still owns (or will own) compute.
ACTIVE_STATES = ("queued", "running")

#: States a job never leaves (interrupted is *not* terminal: a restart
#: resumes it).
TERMINAL_STATES = ("completed", "failed", "cancelled")

_MANIFEST_SUFFIX = ".manifest.json"
_JOURNAL_SUFFIX = ".journal.jsonl"

#: Manifest fields persisted verbatim.
_PERSISTED_FIELDS = ("job_id", "client", "priority", "state",
                     "submission", "fingerprint", "total", "result",
                     "error", "cancel_reason", "submit_order",
                     "finished_wall", "compacted")


@dataclass
class Job:
    """One submission plus its runtime bookkeeping."""

    job_id: str
    client: str
    priority: int
    submission: Dict[str, Any]
    fingerprint: str
    journal_path: str
    state: str = "queued"
    #: Monotone admission order (tie-break within a priority class).
    submit_order: int = 0
    #: Candidates this job comprises (known at admission).
    total: int = 0
    #: Candidates evaluated by this server process.
    done: int = 0
    #: Candidates restored from the journal by a resume.
    restored: int = 0
    #: Set to a reason string to request cooperative cancellation.
    cancel_reason: Optional[str] = None
    #: Terminal error description (failed jobs).
    error: Optional[str] = None
    #: Completion summary (ranking signature, counters).
    result: Optional[Dict[str, Any]] = None
    #: True when this process should resume from the journal instead of
    #: starting fresh (set by startup recovery).
    resume: bool = False
    #: Wall-clock instant the job reached a terminal state (0.0 while
    #: active) — the age the retention policy's ``max_age_s`` measures.
    finished_wall: float = 0.0
    #: True once a retention pass compacted this job's journal and
    #: result store (terminal jobs only write again if evicted).
    compacted: bool = False
    #: Monotonic start instant of the current run (0.0 = not running).
    started_monotonic: float = 0.0
    #: Monotonic instant of the last progress callback.
    last_progress_monotonic: float = 0.0

    # -- event buffer (process-local) ---------------------------------------

    #: Buffered events, oldest first; ``events[i]["seq"]`` is
    #: ``event_base_seq + i``.
    events: List[Dict[str, Any]] = field(default_factory=list)
    #: Sequence number of ``events[0]`` (advances when the bounded
    #: buffer evicts its head).
    event_base_seq: int = 0
    #: Sequence number the next event will carry.
    next_seq: int = 0

    @property
    def terminal(self) -> bool:
        return self.state in TERMINAL_STATES

    @property
    def deadline_s(self) -> Optional[float]:
        return self.submission.get("deadline_s")

    def append_event(self, event: Dict[str, Any],
                     max_events: int) -> None:
        """Buffer one event, evicting the head beyond ``max_events``."""
        self.events.append(event)
        self.next_seq = event["seq"] + 1
        overflow = len(self.events) - max_events
        if overflow > 0:
            del self.events[:overflow]
            self.event_base_seq += overflow

    def events_from(self, from_seq: int) -> List[Dict[str, Any]]:
        """Buffered events with ``seq >= from_seq``.

        Raises :class:`~avipack.errors.ServiceError` (code
        ``replay_gap``) when the buffer no longer reaches back that
        far — or when ``from_seq`` points beyond every sequence number
        this server instance has issued (the client watched a previous
        incarnation; it must restart from the buffer head).
        """
        if from_seq < self.event_base_seq or from_seq > self.next_seq:
            raise ServiceError(
                f"cannot replay job {self.job_id} events from seq "
                f"{from_seq}: buffer covers [{self.event_base_seq}, "
                f"{self.next_seq})", code="replay_gap")
        return self.events[from_seq - self.event_base_seq:]

    # -- manifest ------------------------------------------------------------

    def to_manifest(self) -> Dict[str, Any]:
        manifest = {name: getattr(self, name)
                    for name in _PERSISTED_FIELDS}
        manifest["journal"] = os.path.basename(self.journal_path)
        return manifest

    @classmethod
    def from_manifest(cls, manifest: Dict[str, Any],
                      journal_dir: str) -> "Job":
        job = cls(
            job_id=str(manifest["job_id"]),
            client=str(manifest.get("client", "anonymous")),
            priority=int(manifest.get("priority", 0)),
            submission=dict(manifest["submission"]),
            fingerprint=str(manifest["fingerprint"]),
            journal_path=os.path.join(
                journal_dir,
                str(manifest.get("journal",
                                 manifest["job_id"] + _JOURNAL_SUFFIX))),
            state=str(manifest.get("state", "queued")),
            submit_order=int(manifest.get("submit_order", 0)),
            total=int(manifest.get("total", 0)),
        )
        job.result = manifest.get("result")
        job.error = manifest.get("error")
        job.cancel_reason = manifest.get("cancel_reason")
        job.finished_wall = float(manifest.get("finished_wall", 0.0))
        job.compacted = bool(manifest.get("compacted", False))
        return job

    def status(self) -> Dict[str, Any]:
        """JSON-ready snapshot for ``status`` responses."""
        return {
            "job_id": self.job_id,
            "client": self.client,
            "priority": self.priority,
            "state": self.state,
            "fingerprint": self.fingerprint,
            "total": self.total,
            "done": self.done,
            "restored": self.restored,
            "cancel_reason": self.cancel_reason,
            "error": self.error,
            "result": self.result,
            "next_seq": self.next_seq,
        }


class JobStore:
    """Atomic manifest persistence under one journal directory."""

    def __init__(self, journal_dir: str) -> None:
        self.journal_dir = journal_dir
        os.makedirs(journal_dir, exist_ok=True)

    def journal_path(self, job_id: str) -> str:
        return os.path.join(self.journal_dir, job_id + _JOURNAL_SUFFIX)

    def result_dir(self, job_id: str) -> str:
        """Per-job columnar result-store directory (sibling of the
        journal, so a job's durable state lives under one root)."""
        return os.path.join(self.journal_dir, job_id + ".results")

    def _manifest_path(self, job_id: str) -> str:
        return os.path.join(self.journal_dir, job_id + _MANIFEST_SUFFIX)

    def save(self, job: Job) -> None:
        """Atomically (re)write one job manifest (tmp + ``os.replace``)."""
        self.save_manifest(job.job_id, job.to_manifest())

    def save_manifest(self, job_id: str,
                      manifest: Dict[str, Any]) -> None:
        """Write a pre-snapshotted manifest document.

        Split out from :meth:`save` so the event loop can snapshot the
        job synchronously (the bytes reflect its state at the call
        site) and hand only this blocking write to a worker thread.
        """
        path = self._manifest_path(job_id)
        tmp = f"{path}.tmp.{os.getpid()}"
        with open(tmp, "w", encoding="utf-8") as stream:
            json.dump(manifest, stream, sort_keys=True)
            stream.flush()
            os.fsync(stream.fileno())
        os.replace(tmp, path)

    def job_paths(self, job_id: str) -> List[str]:
        """Every on-disk path belonging to one job — journal,
        quarantine sidecars, result-store directory, manifest.

        Job ids are fixed-width (``j000042``), so the ``<id>.`` prefix
        match cannot leak onto a neighbouring job's files.
        """
        prefix = job_id + "."
        return sorted(os.path.join(self.journal_dir, name)
                      for name in os.listdir(self.journal_dir)
                      if name.startswith(prefix))

    def job_bytes(self, job_id: str) -> int:
        """On-disk footprint of one job, result store included."""
        total = 0
        for path in self.job_paths(job_id):
            if os.path.isdir(path):
                for root, _dirs, files in os.walk(path):
                    for name in files:
                        try:
                            total += os.path.getsize(
                                os.path.join(root, name))
                        except OSError:
                            continue
            else:
                try:
                    total += os.path.getsize(path)
                except OSError:
                    continue
        return total

    def remove_job(self, job_id: str) -> int:
        """Delete every file of one evicted job; returns bytes removed.

        The manifest goes *last*: a crash mid-eviction leaves a job
        that still loads at restart (with files partially gone — its
        state is terminal, so nothing re-runs) rather than orphan
        journals no manifest names, which nothing would ever clean.
        """
        removed = self.job_bytes(job_id)
        manifest = self._manifest_path(job_id)
        for path in self.job_paths(job_id):
            if path == manifest:
                continue
            if os.path.isdir(path):
                shutil.rmtree(path, ignore_errors=True)
            else:
                try:
                    os.unlink(path)
                except OSError:
                    continue
        try:
            os.unlink(manifest)
        except OSError:
            pass
        return removed

    def load_all(self) -> List[Job]:
        """Every readable manifest, in admission order.

        A torn manifest cannot exist (writes are atomic), but an
        unreadable one — wrong schema, manual edits — is skipped
        rather than killing startup: its journal stays on disk for
        manual recovery.
        """
        jobs: List[Job] = []
        for name in sorted(os.listdir(self.journal_dir)):
            if not name.endswith(_MANIFEST_SUFFIX):
                continue
            path = os.path.join(self.journal_dir, name)
            try:
                with open(path, "r", encoding="utf-8") as stream:
                    manifest = json.load(stream)
                jobs.append(Job.from_manifest(manifest, self.journal_dir))
            except (OSError, ValueError, KeyError, TypeError):
                continue
        jobs.sort(key=lambda job: job.submit_order)
        return jobs
