"""Admission control: bounded queues, quotas, priorities.

Unbounded queues turn overload into latency collapse and OOM death;
the job server instead *rejects with a structured reason* at the door.
:func:`admit` is the single decision point — every rejection names a
code from the protocol vocabulary (``queue_full``, ``quota_exceeded``,
``job_too_large``, ``draining``) plus a human-readable reason, so a
saturated server stays deterministic, observable and small.

:class:`JobQueue` is the ready queue behind the decision: a heap
ordered by descending priority then admission order, so higher
priorities run first and equal priorities stay FIFO.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import List, Optional, Tuple

__all__ = ["AdmissionPolicy", "JobQueue", "Rejection", "admit"]


@dataclass(frozen=True)
class AdmissionPolicy:
    """Bounds one server instance enforces at submission time."""

    #: Queued (not yet running) jobs the server will hold.
    max_queued: int = 16
    #: Active (queued + running) jobs per client identity.
    max_jobs_per_client: int = 4
    #: Candidates one submission may comprise.
    max_candidates_per_job: int = 100_000


@dataclass(frozen=True)
class Rejection:
    """A structured admission refusal (code + human-readable reason)."""

    code: str
    reason: str


def admit(policy: AdmissionPolicy, *, n_candidates: int,
          queued: int, client_active: int,
          draining: bool, disk_low: bool = False) -> Optional[Rejection]:
    """Decide one submission; ``None`` admits, otherwise a rejection.

    Checks run cheapest-refusal-first: a draining server refuses
    everything, then a disk-budget breach (the degraded mode the
    retention governor latches — existing jobs and queries keep
    serving, only *new* work is refused), then size, then the global
    queue bound, then the per-client quota.
    """
    if draining:
        return Rejection(
            "draining",
            "server is draining (shutdown in progress); admission is "
            "closed — resubmit after restart")
    if disk_low:
        return Rejection(
            "disk_low",
            "disk budget exhausted (usage above the high watermark "
            "and retention has not yet reclaimed enough); running "
            "jobs and queries keep serving — resubmit once usage "
            "falls below the low watermark")
    if n_candidates > policy.max_candidates_per_job:
        return Rejection(
            "job_too_large",
            f"submission comprises {n_candidates} candidates, above "
            f"the {policy.max_candidates_per_job}-candidate bound; "
            "split the space or sample it")
    if queued >= policy.max_queued:
        return Rejection(
            "queue_full",
            f"queue is at its {policy.max_queued}-job bound; retry "
            "after a running job finishes")
    if client_active >= policy.max_jobs_per_client:
        return Rejection(
            "quota_exceeded",
            f"client already has {client_active} active jobs, at the "
            f"{policy.max_jobs_per_client}-job quota; wait for one to "
            "finish or cancel it")
    return None


class JobQueue:
    """Priority-then-FIFO ready queue of job ids.

    Heap entries are ``(-priority, submit_order, job_id)``; removal
    (queued-job cancellation) is lazy via a tombstone set, so pops stay
    O(log n).
    """

    def __init__(self) -> None:
        self._heap: List[Tuple[int, int, str]] = []
        self._removed: set = set()

    def __len__(self) -> int:
        return len(self._heap) - len(self._removed)

    def __bool__(self) -> bool:
        return len(self) > 0

    def push(self, job_id: str, priority: int, submit_order: int) -> None:
        self._removed.discard(job_id)
        heapq.heappush(self._heap, (-priority, submit_order, job_id))

    def pop(self) -> Optional[str]:
        """Highest-priority, oldest job id (``None`` when empty)."""
        while self._heap:
            _, _, job_id = heapq.heappop(self._heap)
            if job_id in self._removed:
                self._removed.discard(job_id)
                continue
            return job_id
        return None

    def remove(self, job_id: str) -> None:
        """Tombstone a queued job (cancellation before it ran)."""
        self._removed.add(job_id)

    def ids(self) -> List[str]:
        """Queued job ids in pop order (diagnostics only)."""
        live = [entry for entry in self._heap
                if entry[2] not in self._removed]
        return [job_id for _, _, job_id in sorted(live)]
