"""Wire protocol of the sweep job service: JSON lines over a socket.

One request per line, one JSON document per line, UTF-8, ``\\n``
terminated.  Every request carries an ``op``; every response carries
``ok`` plus either the op's payload or a structured
``{"error": {"code", "reason"}}`` — the code vocabulary is the
machine-readable contract (:data:`ERROR_CODES`) the client branches on.
A ``stream`` request switches the connection into event mode: the
server replays the job's buffered events from the requested sequence
number, then keeps appending live events until the job reaches a
terminal state (events with ``"terminal": true``).

The module is deliberately transport-free and asyncio-free: pure
encode/decode/validate helpers shared by the asyncio server and the
blocking client, so both sides disagree about nothing.
"""

from __future__ import annotations

import json
from dataclasses import fields as dataclass_fields
from typing import Any, Dict, List, Optional, Tuple

from ..errors import ServiceError
from ..fingerprint import stable_fingerprint
from ..sweep.space import Candidate, DesignSpace

__all__ = [
    "ERROR_CODES",
    "MAX_LINE_BYTES",
    "REQUEST_OPS",
    "TERMINAL_EVENTS",
    "ProtocolError",
    "build_candidates",
    "decode_line",
    "encode_line",
    "error_response",
    "normalize_submission",
    "submission_fingerprint",
    "validate_request",
]

#: Requests the server understands.
REQUEST_OPS = ("submit", "status", "stream", "cancel", "results", "jobs",
               "stats", "ping", "retention", "shutdown")

#: Machine-readable rejection/failure codes a response may carry.
ERROR_CODES = (
    "bad_request",      # unparseable line or malformed request shape
    "unknown_op",       # op outside REQUEST_OPS
    "unknown_job",      # job_id the server has never seen
    "invalid_space",    # submission names unknown fields / empty axes
    "job_too_large",    # candidate count above the admission bound
    "queue_full",       # bounded queue at capacity
    "quota_exceeded",   # per-client active-job quota reached
    "draining",         # server is draining; admission is closed
    "disk_low",         # disk budget exhausted; admission is degraded
    "duplicate",        # informational: submission matched an active job
    "replay_gap",       # requested event seq outside the replay buffer
    "not_cancellable",  # job already terminal
    "no_results",       # job has no columnar result store (yet)
)

#: Event types that end a stream (the job reached a final state).
TERMINAL_EVENTS = ("completed", "failed", "cancelled")

#: Hard per-line bound — a submission above this is malformed, not big.
MAX_LINE_BYTES = 4 * 1024 * 1024

#: Scalar JSON types allowed as axis values / candidate fields.
_SCALAR_TYPES = (str, int, float, bool)

_CANDIDATE_FIELDS = tuple(f.name for f in dataclass_fields(Candidate))


class ProtocolError(ServiceError):
    """A request (or a wire line) violates the protocol contract."""

    def __init__(self, message: str, code: str = "bad_request") -> None:
        super().__init__(message, code=code)

    def __reduce__(self) -> Tuple[Any, ...]:
        return (self.__class__,
                (self.args[0] if self.args else "", self.code))


# -- wire encoding -----------------------------------------------------------


def encode_line(payload: Dict[str, Any]) -> bytes:
    """Encode one message as a compact, newline-terminated JSON line."""
    return json.dumps(payload, sort_keys=True,
                      separators=(",", ":")).encode("utf-8") + b"\n"


def decode_line(raw: bytes) -> Dict[str, Any]:
    """Decode one wire line; raises :class:`ProtocolError` on damage."""
    if len(raw) > MAX_LINE_BYTES:
        raise ProtocolError(
            f"line exceeds {MAX_LINE_BYTES} bytes", code="bad_request")
    try:
        message = json.loads(raw.decode("utf-8"))
    except (UnicodeDecodeError, ValueError) as exc:
        raise ProtocolError(f"unparseable line: {exc}") from exc
    if not isinstance(message, dict):
        raise ProtocolError("message must be a JSON object")
    return message


def error_response(code: str, reason: str) -> Dict[str, Any]:
    """The uniform rejection shape every error path responds with."""
    return {"ok": False, "error": {"code": code, "reason": reason}}


# -- request validation ------------------------------------------------------


def validate_request(message: Dict[str, Any]
                     ) -> Tuple[str, Dict[str, Any]]:
    """Check the request envelope; returns ``(op, params)``.

    Op-specific payload validation happens in the handlers (and, for
    submissions, in :func:`normalize_submission`); this gate only
    guarantees the envelope is sane.
    """
    op = message.get("op")
    if not isinstance(op, str):
        raise ProtocolError("request has no 'op' field")
    if op not in REQUEST_OPS:
        raise ProtocolError(
            f"unknown op {op!r}; known: {', '.join(REQUEST_OPS)}",
            code="unknown_op")
    if op in ("status", "stream", "cancel", "results"):
        job_id = message.get("job_id")
        if not isinstance(job_id, str) or not job_id:
            raise ProtocolError(f"{op} requires a 'job_id' string")
    if op == "stream":
        from_seq = message.get("from_seq", 0)
        if not isinstance(from_seq, int) or from_seq < 0:
            raise ProtocolError("'from_seq' must be a non-negative int")
    if op == "results":
        k = message.get("k", 20)
        if not isinstance(k, int) or isinstance(k, bool) or k < 1:
            raise ProtocolError("'k' must be a positive int")
    return op, message


# -- submissions -------------------------------------------------------------


def _validate_axes(axes: Any) -> Dict[str, List[Any]]:
    if not isinstance(axes, dict) or not axes:
        raise ProtocolError("'axes' must be a non-empty object",
                            code="invalid_space")
    # Values stay *lists* (the JSON-native sequence): manifests round-
    # trip submissions through JSON, and the dedup fingerprint must be
    # identical before and after that trip.
    normalized: Dict[str, List[Any]] = {}
    for name in sorted(axes):
        values = axes[name]
        if not isinstance(name, str) or name not in _CANDIDATE_FIELDS:
            raise ProtocolError(
                f"unknown candidate field {name!r}; known: "
                f"{', '.join(sorted(_CANDIDATE_FIELDS))}",
                code="invalid_space")
        if not isinstance(values, (list, tuple)) or not values:
            raise ProtocolError(
                f"axis {name!r} must be a non-empty array",
                code="invalid_space")
        for value in values:
            if not isinstance(value, _SCALAR_TYPES):
                raise ProtocolError(
                    f"axis {name!r} carries a non-scalar value "
                    f"{value!r}", code="invalid_space")
        normalized[name] = list(values)
    return normalized


def _validate_candidates(entries: Any) -> List[Dict[str, Any]]:
    if not isinstance(entries, list) or not entries:
        raise ProtocolError("'candidates' must be a non-empty array",
                            code="invalid_space")
    normalized: List[Dict[str, Any]] = []
    for position, entry in enumerate(entries):
        if not isinstance(entry, dict):
            raise ProtocolError(
                f"candidate #{position} must be an object",
                code="invalid_space")
        for name, value in entry.items():
            if name not in _CANDIDATE_FIELDS:
                raise ProtocolError(
                    f"candidate #{position} names unknown field "
                    f"{name!r}", code="invalid_space")
            if not isinstance(value, _SCALAR_TYPES):
                raise ProtocolError(
                    f"candidate #{position} field {name!r} carries a "
                    f"non-scalar value {value!r}", code="invalid_space")
        normalized.append({name: entry[name] for name in sorted(entry)})
    return normalized


def normalize_submission(params: Dict[str, Any]) -> Dict[str, Any]:
    """Validate a ``submit`` payload into its canonical form.

    The canonical form — sorted axes, sorted candidate fields, explicit
    defaults — is what :func:`submission_fingerprint` hashes, so two
    semantically identical submissions deduplicate regardless of key
    order on the wire.
    """
    axes = params.get("axes")
    candidates = params.get("candidates")
    if (axes is None) == (candidates is None):
        raise ProtocolError(
            "submit requires exactly one of 'axes' (a design-space "
            "grid) or 'candidates' (an explicit list)",
            code="invalid_space")
    sample = params.get("sample")
    if sample is not None and (not isinstance(sample, int) or sample < 1):
        raise ProtocolError("'sample' must be a positive int",
                            code="invalid_space")
    seed = params.get("seed", 0)
    if not isinstance(seed, int):
        raise ProtocolError("'seed' must be an int", code="invalid_space")
    priority = params.get("priority", 0)
    if not isinstance(priority, int):
        raise ProtocolError("'priority' must be an int")
    deadline_s = params.get("deadline_s")
    if deadline_s is not None and (
            not isinstance(deadline_s, (int, float)) or deadline_s <= 0):
        raise ProtocolError("'deadline_s' must be a positive number")
    client = params.get("client", "anonymous")
    if not isinstance(client, str) or not client:
        raise ProtocolError("'client' must be a non-empty string")
    submission: Dict[str, Any] = {
        "client": client,
        "priority": priority,
        "deadline_s": (float(deadline_s) if deadline_s is not None
                       else None),
        "seed": seed,
        "sample": sample,
    }
    if axes is not None:
        submission["axes"] = _validate_axes(axes)
        if sample is not None and candidates is None:
            pass  # sampled grid; size computed below
    else:
        if sample is not None:
            raise ProtocolError(
                "'sample' only applies to 'axes' submissions",
                code="invalid_space")
        submission["candidates"] = _validate_candidates(candidates)
    submission["n_candidates"] = _submission_size(submission)
    return submission


def _submission_size(submission: Dict[str, Any]) -> int:
    if "candidates" in submission:
        return len(submission["candidates"])
    size = 1
    for values in submission["axes"].values():
        size *= len(values)
    if submission["sample"] is not None:
        return min(submission["sample"], size)
    return size


def submission_fingerprint(submission: Dict[str, Any]) -> str:
    """Stable content fingerprint of a normalized submission.

    Hashes only the fields that define the *work* (axes/candidates,
    sample, seed) — not priority, deadline or client — so the same
    space submitted twice deduplicates even across tenants.
    """
    work = {"axes": submission.get("axes"),
            "candidates": submission.get("candidates"),
            "sample": submission.get("sample"),
            "seed": submission.get("seed")}
    return stable_fingerprint(work)


def build_candidates(submission: Dict[str, Any]) -> List[Candidate]:
    """Realise a normalized submission into its candidate list.

    Raises the library's usual :class:`~avipack.errors.InputError`
    family for combinations only the model layer can reject; the
    server converts those into a failed job, never a dead server.
    """
    if "candidates" in submission:
        return [Candidate(**entry) for entry in submission["candidates"]]
    space = DesignSpace(axes=dict(submission["axes"]))
    if submission["sample"] is not None:
        return list(space.sample(submission["sample"],
                                 seed=submission["seed"]))
    return list(space.grid())
