"""Write-ahead journal for design-space sweeps (append-only JSONL).

A multi-hour sweep that dies to SIGKILL, OOM or power loss should cost
the campaign the in-flight candidates, not the finished ones.
:class:`SweepJournal` is the durability contract behind
:meth:`avipack.sweep.SweepRunner.run` (``journal_path=...``) and
:meth:`~avipack.sweep.SweepRunner.resume`:

* every record is one JSON line carrying a ``body`` plus two checksums
  over the canonical body encoding — CRC-32 (cheap first line of
  defence) and SHA-256 (authoritative) — and the journal
  ``schema_version``;
* appends are atomic at the record level: the encoded line is written
  in a single call on an append-mode descriptor, flushed and
  ``fsync``'d before the runner proceeds, so after a crash the journal
  is a prefix of intact records plus at most one torn tail line;
* replay (:func:`replay_journal`) never raises on damage and never
  silently trusts it: a truncated, bit-flipped, stale-schema or
  unpicklable record is moved to a ``.quarantine`` sidecar and its
  candidate is simply recomputed by the resume.

Record kinds: ``plan`` (the pickled candidate list and its space
fingerprint — what makes ``resume(journal_path)`` self-contained),
``dispatched`` (a candidate handed to a worker), the outcome kinds
``completed`` / ``failed`` / ``timeout``, and ``checkpoint`` — one
record folding an entire verified journal prefix (plan, latest outcome
per fingerprint, in-flight markers and the sequence cursor) written by
:func:`avipack.retention.compact_journal`.  A compacted journal is the
checkpoint record plus whatever live tail has been appended since;
replay applies the checkpoint first, then the tail records override it
latest-wins, exactly as the uncompacted record stream would.  Outcomes
are keyed by the candidate's content
:attr:`~avipack.sweep.space.Candidate.fingerprint`, *not* its list
index, so a resume survives re-ordering or extension of the candidate
space.

The payloads are pickles of the library's own outcome records; the
checksums protect against corruption in transit and at rest, not
against an adversary who can rewrite the journal *and* its checksums —
treat journal files with the same trust as the repository they live in.

Fault sites (see :mod:`avipack.resilience.faults`):
``durability.journal_torn_write`` truncates the encoded record before
it reaches the descriptor and ``durability.journal_bitflip`` flips one
bit in it — both scoped per record sequence number, so a seeded plan
corrupts a deterministic subset of records.
"""

from __future__ import annotations

import base64
import json
import os
import pickle
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Dict, List, Optional, Tuple

try:  # pragma: no cover - availability depends on the platform
    import fcntl
except ImportError:  # pragma: no cover - non-POSIX fallback
    fcntl = None  # type: ignore[assignment]

from ..errors import DurabilityError, InputError, JournalError
from ..fingerprint import content_crc32, content_digest
from ..resilience.faults import corrupts as _corrupts

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..sweep.runner import CandidateOutcome
    from ..sweep.space import Candidate

__all__ = ["SCHEMA_VERSION", "JournalReplay", "QuarantinedRecord",
           "SweepJournal", "encode_record", "replay_journal"]

#: Bump when the record encoding changes; replay quarantines any other
#: version rather than guessing at its layout.
SCHEMA_VERSION = 1

#: Record kinds carrying a pickled outcome payload.
_OUTCOME_KINDS = ("completed", "failed", "timeout")


class _DamagedRecord(ValueError):
    """Internal verification signal; always caught by replay, never
    surfaced (a damaged record is quarantined, not raised)."""


def _lock_exclusive(stream, path: str) -> None:
    """Take a non-blocking advisory ``flock`` on an open journal stream.

    Two processes appending to one journal interleave records — a
    corruption the checksums can detect but never repair — so the
    second writer is refused eagerly with :class:`DurabilityError`.
    The lock lives on the open file description: closing the stream
    (or the process dying, however violently) releases it.  On
    platforms without ``fcntl`` the guard degrades to the previous
    unlocked behaviour.
    """
    if fcntl is None:  # pragma: no cover - non-POSIX fallback
        return
    try:
        fcntl.flock(stream.fileno(), fcntl.LOCK_EX | fcntl.LOCK_NB)
    except OSError as exc:
        stream.close()
        raise DurabilityError(
            f"journal {path} is locked by another writer (advisory "
            "flock contention): concurrent appends would interleave "
            "records; wait for the other process to close the journal "
            "or give this run its own --journal path") from exc


def _canonical(body: Dict[str, Any]) -> str:
    """The exact byte form (as str) the checksums are computed over."""
    return json.dumps(body, sort_keys=True, separators=(",", ":"))


def _encode_payload(value: Any) -> str:
    return base64.b64encode(
        pickle.dumps(value, protocol=pickle.HIGHEST_PROTOCOL)).decode()


def _decode_payload(text: str) -> Any:
    return pickle.loads(base64.b64decode(text.encode()))


def encode_record(kind: str, seq: int, fields: Dict[str, Any]) -> bytes:
    """Encode one journal record line (body + CRC-32 + SHA-256 + ``\\n``).

    The single encoding shared by live appends
    (:meth:`SweepJournal._append`) and the compaction checkpoint writer
    (:func:`avipack.retention.compact_journal`), so a checkpoint record
    verifies under exactly the same discipline as every other line.
    """
    body: Dict[str, Any] = {"schema_version": SCHEMA_VERSION,
                            "seq": seq, "kind": kind}
    body.update(fields)
    canonical = _canonical(body)
    record = json.dumps({"body": body,
                         "crc32": content_crc32(canonical),
                         "sha256": content_digest(canonical)},
                        sort_keys=True)
    return record.encode("utf-8") + b"\n"


class SweepJournal:
    """Append-only, checksummed, fsync'd sweep journal.

    Use :meth:`create` to start a fresh journal (writes the ``plan``
    record) or :meth:`append_to` to continue an existing one (the
    resume path).  The journal is a context manager; :meth:`close` is
    idempotent.
    """

    def __init__(self, path: str, stream, next_seq: int = 0) -> None:
        self.path = path
        self._stream = stream
        self._seq = next_seq

    # -- construction --------------------------------------------------------

    @classmethod
    def create(cls, path: str, candidates: Tuple["Candidate", ...],
               space_fingerprint: str = "") -> "SweepJournal":
        """Start a fresh journal at ``path`` and write its plan record.

        The journal is opened append-mode and locked *before* any
        existing content is truncated, so creating over a journal
        another process is still writing raises
        :class:`~avipack.errors.DurabilityError` instead of silently
        destroying the live journal.
        """
        stream = open(path, "ab")
        _lock_exclusive(stream, path)
        # Anything failing past the lock — truncation on an exotic
        # filesystem, an unpicklable candidate in the plan record, a
        # full disk at the first fsync — must release the advisory
        # lock and the descriptor, or the journal path stays locked
        # (and the fd leaked) until process exit.
        try:
            stream.truncate(0)
            journal = cls(path, stream)
            journal.record_plan(candidates, space_fingerprint)
        except BaseException:
            stream.close()
            raise
        return journal

    @classmethod
    def append_to(cls, path: str, next_seq: int = 0) -> "SweepJournal":
        """Open an existing journal for appending (resume path).

        Raises :class:`~avipack.errors.DurabilityError` when another
        process holds the journal's advisory lock.
        """
        if not os.path.exists(path):
            raise JournalError(f"journal not found: {path}")
        stream = open(path, "ab")
        _lock_exclusive(stream, path)
        return cls(path, stream, next_seq)

    def __enter__(self) -> "SweepJournal":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def close(self) -> None:
        """Flush and close the journal stream (idempotent)."""
        if self._stream is not None:
            self._stream.close()
            self._stream = None

    # -- record writers ------------------------------------------------------

    def record_plan(self, candidates: Tuple["Candidate", ...],
                    space_fingerprint: str = "") -> None:
        """Journal the candidate set a resume will need to re-dispatch."""
        self._append("plan",
                     n_candidates=len(candidates),
                     space_fingerprint=space_fingerprint,
                     candidates=_encode_payload(tuple(candidates)))

    def record_dispatched(self, index: int,
                          candidate: "Candidate") -> None:
        """Journal a candidate entering evaluation (in-flight marker)."""
        self._append("dispatched", index=index,
                     fingerprint=candidate.fingerprint)

    def record_outcome(self, outcome: "CandidateOutcome") -> None:
        """Journal a finished candidate as it arrives from a worker."""
        if getattr(outcome, "error_type", None) == "WatchdogTimeout":
            kind = "timeout"
        elif hasattr(outcome, "error_type"):
            kind = "failed"
        else:
            kind = "completed"
        self._append(kind, index=outcome.index,
                     fingerprint=outcome.fingerprint,
                     payload=_encode_payload(outcome))

    def _append(self, kind: str, **fields: Any) -> None:
        """Checksum, encode and durably append one record.

        The write is a single call on an append-mode descriptor
        followed by flush + ``fsync``: after any crash the journal
        holds every acknowledged record intact plus at most one torn
        tail, which replay quarantines.
        """
        if self._stream is None:
            raise InputError("journal is closed")
        data = encode_record(kind, self._seq, fields)
        if _corrupts("durability.journal_torn_write", ("journal", self._seq)):
            data = data[:max(1, (2 * len(data)) // 3)]
        elif _corrupts("durability.journal_bitflip", ("journal", self._seq)):
            flipped = bytearray(data)
            flipped[len(flipped) // 2] ^= 0x08
            data = bytes(flipped)
        self._seq += 1
        self._stream.write(data)
        self._stream.flush()
        os.fsync(self._stream.fileno())


@dataclass(frozen=True)
class QuarantinedRecord:
    """One journal line that failed verification, preserved as evidence."""

    line_number: int
    reason: str
    raw: bytes


@dataclass
class JournalReplay:
    """Everything an intact-prefix replay of one journal recovered."""

    path: str
    #: Candidate set from the latest intact plan record (None if no
    #: plan record survived — resuming is then impossible).
    candidates: Optional[Tuple["Candidate", ...]] = None
    space_fingerprint: str = ""
    #: Latest intact outcome per candidate fingerprint.
    outcomes: Dict[str, "CandidateOutcome"] = field(default_factory=dict)
    #: Latest dispatched index per fingerprint (in-flight markers).
    dispatched: Dict[str, int] = field(default_factory=dict)
    n_records: int = 0
    next_seq: int = 0
    quarantined: Tuple[QuarantinedRecord, ...] = ()

    @property
    def n_quarantined(self) -> int:
        """Records that failed verification and were set aside."""
        return len(self.quarantined)


def _verify_line(line: bytes) -> Dict[str, Any]:
    """Decode and checksum-verify one line; raises _DamagedRecord."""
    try:
        envelope = json.loads(line.decode("utf-8"))
    except (UnicodeDecodeError, ValueError) as exc:
        raise _DamagedRecord(f"unparseable record: {exc}") from exc
    if (not isinstance(envelope, dict)
            or not isinstance(envelope.get("body"), dict)):
        raise _DamagedRecord("record has no body")
    body = envelope["body"]
    canonical = _canonical(body)
    if envelope.get("crc32") != content_crc32(canonical):
        raise _DamagedRecord("crc32 mismatch")
    if envelope.get("sha256") != content_digest(canonical):
        raise _DamagedRecord("sha256 mismatch")
    if body.get("schema_version") != SCHEMA_VERSION:
        raise _DamagedRecord(
            f"stale schema_version {body.get('schema_version')!r} "
            f"(expected {SCHEMA_VERSION})")
    if not isinstance(body.get("kind"), str):
        raise _DamagedRecord("record has no kind")
    return body


def _write_quarantine(path: str,
                      records: Tuple[QuarantinedRecord, ...]) -> None:
    """Atomically (re)write the quarantine sidecar for one replay."""
    lines = [json.dumps({"line_number": record.line_number,
                         "reason": record.reason,
                         "raw": base64.b64encode(record.raw).decode()},
                        sort_keys=True)
             for record in records]
    tmp = f"{path}.tmp.{os.getpid()}"
    with open(tmp, "w", encoding="utf-8") as stream:
        stream.write("\n".join(lines) + "\n")
        stream.flush()
        os.fsync(stream.fileno())
    os.replace(tmp, path)


def replay_journal(path: str, quarantine_path: Optional[str] = None,
                   write_quarantine: bool = True) -> JournalReplay:
    """Verify and replay a journal; damage is quarantined, never fatal.

    Every line is independently decoded and checksum-verified; lines
    that fail (torn tail, bit flips, stale ``schema_version``,
    unpicklable payloads) become :class:`QuarantinedRecord` entries —
    written to ``quarantine_path`` (default ``<path>.quarantine``) as a
    JSONL sidecar when ``write_quarantine`` is set — and replay
    continues.  Only a missing/unreadable journal *file* raises
    :class:`~avipack.errors.JournalError`.
    """
    try:
        with open(path, "rb") as stream:
            raw = stream.read()
    except OSError as exc:
        raise JournalError(f"cannot read journal {path}: {exc}") from exc
    replay = JournalReplay(path=path)
    quarantined: List[QuarantinedRecord] = []
    lines = raw.split(b"\n")
    if lines and lines[-1] == b"":
        lines.pop()
    for line_number, line in enumerate(lines, start=1):
        if not line:
            continue
        try:
            body = _verify_line(line)
            kind = body["kind"]
            if kind == "plan":
                replay.candidates = tuple(
                    _decode_payload(body["candidates"]))
                replay.space_fingerprint = str(
                    body.get("space_fingerprint", ""))
            elif kind == "dispatched":
                replay.dispatched[str(body["fingerprint"])] = \
                    int(body["index"])
            elif kind in _OUTCOME_KINDS:
                outcome = _decode_payload(body["payload"])
                replay.outcomes[str(body["fingerprint"])] = outcome
            elif kind == "checkpoint":
                # One folded prefix (see avipack.retention): apply it
                # wholesale, then let any live-tail records appended
                # after compaction override entries latest-wins, just
                # as the uncompacted stream would have.
                replay.candidates = tuple(
                    _decode_payload(body["candidates"]))
                replay.space_fingerprint = str(
                    body.get("space_fingerprint", ""))
                for fp, payload in body["outcomes"].items():
                    replay.outcomes[str(fp)] = _decode_payload(payload)
                for fp, index in body["dispatched"].items():
                    replay.dispatched[str(fp)] = int(index)
                replay.n_records += int(body.get("n_folded", 1)) - 1
            else:
                raise _DamagedRecord(f"unknown record kind {kind!r}")
        except (ValueError, KeyError, TypeError,
                pickle.UnpicklingError, EOFError, AttributeError,
                ImportError, IndexError) as exc:
            reason = str(exc) or type(exc).__name__
            if line_number == len(lines) and not raw.endswith(b"\n"):
                reason = f"torn tail: {reason}"
            quarantined.append(QuarantinedRecord(
                line_number=line_number, reason=reason, raw=line))
        else:
            replay.n_records += 1
            replay.next_seq = max(replay.next_seq,
                                  int(body.get("seq", -1)) + 1)
    replay.quarantined = tuple(quarantined)
    if write_quarantine and quarantined:
        _write_quarantine(quarantine_path or f"{path}.quarantine",
                          replay.quarantined)
    return replay
