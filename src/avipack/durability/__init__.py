"""Durable sweeps: write-ahead journal, crash-safe resume, audited restore.

The design procedure of Fig. 1/Fig. 4 is an iterative loop over large
candidate spaces — in this library, a multi-hour
:class:`~avipack.sweep.SweepRunner` campaign.  This package makes that
campaign crash-durable:

* :mod:`~avipack.durability.journal` — :class:`SweepJournal`, the
  append-only, per-record-checksummed (CRC-32 + SHA-256), fsync'd
  write-ahead journal the runner writes outcomes to as they arrive,
  and :func:`replay_journal`, the verify-or-quarantine replay that
  never crashes and never silently trusts a damaged record;
* :mod:`~avipack.durability.diskcache` — :class:`DiskSolverCache`, a
  persistent solver-cache backend (atomic tmp-file + ``os.replace``
  publication, checksummed entries, corrupt entries evicted through
  the standard :class:`~avipack.sweep.cache.CacheStats.corrupt` path)
  shared across resumed runs;
* :mod:`~avipack.durability.audit` — the invariant battery
  (energy-balance residual of the level-2 thermal network, temperature
  bounds, fingerprint integrity, monotone-headroom sanity) every
  journal-restored result must pass before it may re-enter the ranked
  report; a stale or tampered journal degrades to recomputation.

Entry points live on the runner:
``SweepRunner.run(space, journal_path=...)`` journals a campaign and
``SweepRunner.resume(journal_path)`` continues one after any crash —
SIGKILL, OOM, power loss — recomputing only what the journal cannot
prove finished.  ``python -m avipack sweep --journal ... [--resume]``
exposes the same loop on the command line.
"""

from .audit import (
    AUDIT_BOARD_LIMIT_C,
    audit_headroom_monotonicity,
    audit_outcomes,
    audit_result,
    energy_balance_residual_c,
)
from .diskcache import DiskSolverCache, worker_disk_cache
from .journal import (
    SCHEMA_VERSION,
    JournalReplay,
    QuarantinedRecord,
    SweepJournal,
    replay_journal,
)

__all__ = [
    "AUDIT_BOARD_LIMIT_C",
    "SCHEMA_VERSION",
    "DiskSolverCache",
    "JournalReplay",
    "QuarantinedRecord",
    "SweepJournal",
    "audit_headroom_monotonicity",
    "audit_outcomes",
    "audit_result",
    "energy_balance_residual_c",
    "replay_journal",
    "worker_disk_cache",
]
