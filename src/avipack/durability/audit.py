"""Invariant audit for journal-restored sweep outcomes.

Checksums prove a journal record holds the bytes that were written;
they cannot prove those bytes still *describe physics* — a stale
journal from an older model, or a record rewritten together with its
checksums, would poison the ranked report while passing every integrity
check.  This module is the second gate: every restored
:class:`~avipack.sweep.runner.CandidateResult` is re-validated against
invariants the thermal model guarantees, and any violation degrades
that candidate to recomputation — never to silent trust.

Per-record checks (:func:`audit_result`):

* **fingerprint integrity** — the recorded fingerprint must equal the
  one recomputed from the restored candidate, so a record cannot be
  replayed against a different design point;
* **temperature bounds** — the worst board temperature must be finite,
  above absolute zero, below the sanity ceiling, and (first law: the
  air can only *heat* a dissipating board) not below the rack supply;
* **internal consistency** — the flattened margin summary must agree
  with the record's own ``worst_board_c``, and a compliant record must
  carry no violations and respect the 85 °C board rule;
* **energy balance** — the level-2 rack airflow network is re-solved
  from the restored candidate (cheap: a closed-form slot recurrence,
  none of the level-1/level-3 cost) and the restored board temperature
  must reproduce it within tolerance
  (:func:`energy_balance_residual_c`).

Cross-record check (:func:`audit_headroom_monotonicity`): among
restored results that differ only in the module power budget, thermal
headroom must not *increase* with power — a monotonicity the physical
model guarantees and a corrupted record readily breaks.

:func:`audit_outcomes` bundles all of the above for the resume path in
:meth:`avipack.sweep.SweepRunner.resume`.
"""

from __future__ import annotations

import dataclasses
import math
from typing import TYPE_CHECKING, Dict, Iterable, List, Tuple

from ..environments.arinc600 import STANDARD_INLET_TEMPERATURE
from ..units import kelvin_to_celsius

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..sweep.runner import CandidateOutcome, CandidateResult

__all__ = ["AUDIT_BOARD_LIMIT_C", "audit_headroom_monotonicity",
           "audit_outcomes", "audit_result", "energy_balance_residual_c"]

#: The 85 °C board acceptance rule the headroom checks audit against.
AUDIT_BOARD_LIMIT_C = 85.0

#: Physical sanity ceiling for a board temperature [°C]; anything above
#: is corruption, not packaging.
_BOARD_CEILING_C = 1000.0

#: Agreement tolerance between the restored board temperature and the
#: re-solved level-2 network [K].  The level-2 solve is deterministic,
#: so the tolerance only absorbs float round-trip noise.
_ENERGY_BALANCE_TOL_C = 0.05

#: Tolerance on duplicated in-record values (margins vs fields) [K].
_CONSISTENCY_TOL = 1e-6


def energy_balance_residual_c(result: "CandidateResult") -> float:
    """Re-solve the candidate's level-2 airflow network; residual [K].

    Rebuilds the rack from the restored candidate and runs the slot
    energy balance (supply air picking up each module's dissipation).
    The returned value is the absolute difference between the restored
    ``worst_board_c`` and the recomputed worst board temperature —
    ``0`` for an intact record, large for a tampered or stale one.
    Raises whatever the rebuild raises for an unbuildable candidate
    (callers treat that as an audit failure too).
    """
    rack, _spec = result.candidate.build()
    worst_k = max(slot.board_temperature for slot in rack.solve())
    return abs(kelvin_to_celsius(worst_k) - result.worst_board_c)


def audit_result(result: "CandidateResult",
                 recompute_level2: bool = True,
                 model_checks: bool = True) -> Tuple[str, ...]:
    """Invariant violations of one restored result (empty = trusted).

    ``model_checks=False`` skips the two invariants that are bound to
    the *default* design-procedure workload — the rack-supply first-law
    floor and the level-2 energy-balance recheck — because a sweep run
    with a custom evaluator (e.g. :class:`~avipack.sweep.
    NetworkSweepEvaluator` over arbitrary networks) makes neither
    guarantee.  The model-free battery (fingerprint integrity,
    temperature sanity bounds, margin/record consistency) always runs.
    """
    issues: List[str] = []
    try:
        expected = result.candidate.fingerprint
    except Exception as exc:
        return (f"candidate cannot be fingerprinted: {exc}",)
    if result.fingerprint != expected:
        issues.append(
            f"fingerprint mismatch: record says {result.fingerprint[:12]}, "
            f"candidate hashes to {expected[:12]}")
    board_c = result.worst_board_c
    supply_c = kelvin_to_celsius(STANDARD_INLET_TEMPERATURE)
    if not math.isfinite(board_c):
        issues.append(f"worst_board_c is not finite ({board_c!r})")
    elif not -273.15 < board_c < _BOARD_CEILING_C:
        issues.append(f"worst_board_c {board_c:g} degC is outside the "
                      f"physical range (-273.15, {_BOARD_CEILING_C:g})")
    elif model_checks and board_c < supply_c - _CONSISTENCY_TOL:
        issues.append(
            f"worst_board_c {board_c:g} degC is below the rack supply "
            f"{supply_c:g} degC: a dissipating board cannot undercut "
            "its coolant (first-law violation)")
    for name, value in result.margins.items():
        if isinstance(value, float) and math.isnan(value):
            issues.append(f"margin {name!r} is NaN")
    recorded = result.margins.get("worst_board_c")
    if (isinstance(recorded, float) and math.isfinite(board_c)
            and abs(recorded - board_c) > _CONSISTENCY_TOL):
        issues.append(
            f"margin summary disagrees with the record: "
            f"{recorded:g} vs {board_c:g} degC")
    if result.compliant:
        if result.violations:
            issues.append("record is compliant yet carries "
                          f"{len(result.violations)} violations")
        if math.isfinite(board_c) \
                and board_c > AUDIT_BOARD_LIMIT_C + _CONSISTENCY_TOL:
            issues.append(
                f"record is compliant at {board_c:g} degC, above the "
                f"{AUDIT_BOARD_LIMIT_C:g} degC board rule")
    if model_checks and recompute_level2 and not issues:
        try:
            residual = energy_balance_residual_c(result)
        except Exception as exc:
            issues.append(f"energy-balance recheck failed to build the "
                          f"candidate: {type(exc).__name__}: {exc}")
        else:
            if not residual <= _ENERGY_BALANCE_TOL_C:
                issues.append(
                    f"energy-balance residual {residual:g} K exceeds "
                    f"{_ENERGY_BALANCE_TOL_C:g} K: restored board "
                    "temperature does not reproduce the level-2 network")
    return tuple(issues)


def audit_headroom_monotonicity(
        results: Iterable["CandidateResult"],
        tolerance_c: float = 1e-6) -> Dict[str, Tuple[str, ...]]:
    """Cross-record check: headroom must not rise with power.

    Groups restored results that are identical except for
    ``power_per_module`` and walks each group in increasing power: a
    higher budget on an otherwise identical stack cannot run *cooler*.
    Both members of a violating adjacent pair are flagged (the corrupt
    one is unknowable from the pair alone; recomputing both is cheap
    and safe).  Returns ``fingerprint -> issues``.
    """
    groups: Dict[str, List["CandidateResult"]] = {}
    for result in results:
        stripped = dataclasses.replace(result.candidate,
                                       power_per_module=1.0)
        groups.setdefault(stripped.fingerprint, []).append(result)
    flagged: Dict[str, Tuple[str, ...]] = {}
    for members in groups.values():
        members.sort(key=lambda r: r.candidate.power_per_module)
        for lower, upper in zip(members, members[1:]):
            rise = upper.thermal_headroom_c - lower.thermal_headroom_c
            if rise > tolerance_c:
                issue = (
                    f"headroom rises {rise:g} K from "
                    f"{lower.candidate.power_per_module:g} W to "
                    f"{upper.candidate.power_per_module:g} W on an "
                    "otherwise identical stack (monotonicity violation)")
                for record in (lower, upper):
                    flagged[record.fingerprint] = \
                        flagged.get(record.fingerprint, ()) + (issue,)
    return flagged


def audit_outcomes(outcomes: Iterable["CandidateOutcome"],
                   recompute_level2: bool = True,
                   model_checks: bool = True
                   ) -> Dict[str, Tuple[str, ...]]:
    """Audit a restored outcome set; returns ``fingerprint -> issues``.

    Results get the full per-record battery plus the cross-record
    monotonicity check; failures only need fingerprint integrity (their
    payload never enters the ranked table).  Any flagged fingerprint
    should be dropped from the restore set and recomputed.
    ``model_checks=False`` relaxes the default-workload invariants for
    custom-evaluator sweeps (see :func:`audit_result`).
    """
    outcomes = list(outcomes)
    flagged: Dict[str, Tuple[str, ...]] = {}
    results: List["CandidateResult"] = []
    for outcome in outcomes:
        if hasattr(outcome, "margins"):
            issues = audit_result(outcome,
                                  recompute_level2=recompute_level2,
                                  model_checks=model_checks)
            if issues:
                flagged[outcome.fingerprint] = issues
            else:
                results.append(outcome)
        else:
            try:
                expected = outcome.candidate.fingerprint
            except Exception as exc:
                flagged[outcome.fingerprint] = (
                    f"candidate cannot be fingerprinted: {exc}",)
                continue
            if outcome.fingerprint != expected:
                flagged[outcome.fingerprint] = (
                    "fingerprint mismatch on restored failure record",)
    for fingerprint, issues in audit_headroom_monotonicity(results).items():
        flagged[fingerprint] = flagged.get(fingerprint, ()) + issues
    return flagged
