"""Persistent on-disk solver-cache backend shared across resumed runs.

:class:`DiskSolverCache` speaks the same duck-typed protocol as the
in-memory :class:`avipack.sweep.cache.SolverCache` —
``get_or_compute(key, compute)`` plus ``hits`` / ``misses`` /
``corrupt`` counters — but stores each entry as one file under a cache
directory, so the sub-solves a journal-resumed campaign already paid
for survive the process that computed them.

Durability discipline matches the journal's:

* entries are written to a temp file in the cache directory and
  published with ``os.replace`` — readers (including concurrent sweep
  workers sharing the directory) see either the old entry, the new
  entry, or no entry, never a half-written one;
* every entry embeds a SHA-256 checksum of its pickled payload; a
  mismatch (or any other read failure, or an injected
  ``durability.cache_disk_corrupt`` fault) evicts the file, counts in
  ``corrupt``, and falls through to a recompute — the same
  treat-as-miss rule :class:`~avipack.sweep.cache.SolverCache` applies
  in memory, surfaced through the same
  :class:`~avipack.sweep.cache.CacheStats.corrupt` statistic.
"""

from __future__ import annotations

import os
import pickle
import tempfile
import threading
from typing import Any, Callable, Optional

from ..errors import InputError
from ..fingerprint import content_digest, stable_fingerprint
from ..resilience.faults import corrupts as _corrupts
from ..sweep.cache import CacheStats

__all__ = ["DiskSolverCache", "worker_disk_cache"]

#: Entry file magic; a version bump orphans (and lazily evicts) old
#: entries instead of misreading them.
_MAGIC = b"avipack-cache/1 "


class _DamagedEntry(ValueError):
    """Internal verification signal; always caught by
    :meth:`DiskSolverCache.get_or_compute` (a damaged entry is evicted
    and recomputed, never raised)."""


class DiskSolverCache:
    """Content-keyed solver cache persisted under a directory.

    Parameters
    ----------
    directory:
        Cache directory (created on demand).  Safe to share between
        concurrent workers and across resumed runs.
    max_entries:
        Optional bound on stored entry files.  When full, new results
        are still returned but not persisted (same no-eviction-churn
        policy as the in-memory cache).
    """

    def __init__(self, directory: str,
                 max_entries: Optional[int] = None) -> None:
        if not directory:
            raise InputError("cache directory must be non-empty")
        if max_entries is not None and max_entries < 0:
            raise InputError("max_entries must be >= 0")
        self.directory = directory
        self.max_entries = max_entries
        self._lock = threading.Lock()
        self._hits = 0
        self._misses = 0
        self._corrupt = 0
        os.makedirs(directory, exist_ok=True)

    # -- counters ------------------------------------------------------------

    @property
    def hits(self) -> int:
        """Lookups served from disk so far."""
        return self._hits

    @property
    def misses(self) -> int:
        """Lookups that had to compute so far."""
        return self._misses

    @property
    def corrupt(self) -> int:
        """Entries found unreadable (evicted and recomputed) so far."""
        return self._corrupt

    def __len__(self) -> int:
        return len(self._entry_names())

    def __contains__(self, key: Any) -> bool:
        return os.path.exists(self._entry_path(key))

    def _entry_names(self) -> list:
        try:
            return [name for name in os.listdir(self.directory)
                    if name.endswith(".entry")]
        except OSError:
            return []

    def _entry_path(self, key: Any) -> str:
        digest = key if isinstance(key, str) else stable_fingerprint(key)
        return os.path.join(self.directory,
                            f"{stable_fingerprint(digest)}.entry")

    # -- entry IO ------------------------------------------------------------

    def _read(self, path: str) -> Any:
        """Load one entry file, raising on any damage."""
        with open(path, "rb") as stream:
            blob = stream.read()
        if _corrupts("durability.cache_disk_corrupt",
                     ("diskcache", os.path.basename(path))):
            raise _DamagedEntry("injected disk-cache corruption")
        if not blob.startswith(_MAGIC):
            raise _DamagedEntry("bad cache entry magic")
        header, _, payload = blob[len(_MAGIC):].partition(b"\n")
        if header.decode("ascii", "replace") != content_digest(payload):
            raise _DamagedEntry("cache entry checksum mismatch")
        return pickle.loads(payload)

    def _write(self, path: str, value: Any) -> None:
        """Atomically publish one entry (tmp file + ``os.replace``)."""
        payload = pickle.dumps(value, protocol=pickle.HIGHEST_PROTOCOL)
        blob = _MAGIC + content_digest(payload).encode("ascii") \
            + b"\n" + payload
        handle, tmp = tempfile.mkstemp(dir=self.directory, suffix=".tmp")
        try:
            with os.fdopen(handle, "wb") as stream:
                stream.write(blob)
                stream.flush()
                os.fsync(stream.fileno())
            os.replace(tmp, path)
        except OSError:
            # A failed store is a lost optimisation, not a lost result:
            # the computed value was already returned to the caller.
            try:
                os.unlink(tmp)
            except OSError:
                pass

    # -- protocol ------------------------------------------------------------

    def get_or_compute(self, key: Any, compute: Callable[[], Any]) -> Any:
        """Return the stored value for ``key``, computing it on a miss.

        A stored entry that cannot be read back is deleted, counted in
        :attr:`corrupt`, and recomputed — a campaign never aborts on a
        damaged cache file.
        """
        path = self._entry_path(key)
        if os.path.exists(path):
            try:
                value = self._read(path)
            except Exception:
                with self._lock:
                    self._corrupt += 1
                    self._misses += 1
                try:
                    os.unlink(path)
                except OSError:
                    pass
            else:
                with self._lock:
                    self._hits += 1
                return value
        else:
            with self._lock:
                self._misses += 1
        value = compute()
        if self.max_entries is None or len(self) < self.max_entries:
            self._write(path, value)
        return value

    def stats(self) -> CacheStats:
        """Snapshot of the counters (entries = files on disk)."""
        with self._lock:
            return CacheStats(hits=self._hits, misses=self._misses,
                              entries=len(self), corrupt=self._corrupt,
                              max_entries=self.max_entries)

    def clear(self) -> None:
        """Delete every entry file and reset the counters."""
        with self._lock:
            for name in self._entry_names():
                try:
                    os.unlink(os.path.join(self.directory, name))
                except OSError:
                    pass
            self._hits = 0
            self._misses = 0
            self._corrupt = 0


_WORKER_DISK_CACHES: dict = {}


def worker_disk_cache(directory: str) -> DiskSolverCache:
    """The process's :class:`DiskSolverCache` for ``directory``.

    One instance per directory per process (the on-disk analogue of
    :func:`avipack.sweep.cache.worker_cache`), so the hit/miss/corrupt
    counters a sweep worker reports are deltas on a stable object.
    """
    cache = _WORKER_DISK_CACHES.get(directory)
    if cache is None:
        cache = _WORKER_DISK_CACHES[directory] = DiskSolverCache(directory)
    return cache
