"""Effective thermal conductivity models for filled thermal interface
materials.

The NANOPACK project's headline results are filler/matrix composites:
silver flakes in mono-epoxy (6 W/m·K), micro silver spheres in multi-epoxy
(9.5 W/m·K) and a metal–polymer composite reaching 20 W/m·K.  These
numbers are governed by classical effective-medium physics, implemented
here:

* **Maxwell–Garnett** — dilute spherical fillers (lower bound at load);
* **Bruggeman** (symmetric, differential) — interpenetrating phases,
  captures percolation-like rise at high loading;
* **Lewis–Nielsen** — the industry-standard fit with particle shape and
  maximum-packing parameters, used to *design* a loading for a target
  conductivity;
* a **percolation** power law for flake/CNT networks past the threshold.

All take matrix conductivity k_m, filler conductivity k_f and volume
fraction φ, and return the composite conductivity in W/(m·K).
"""

from __future__ import annotations

from ..errors import ConvergenceError, InputError

#: (shape factor A, maximum packing fraction φ_max) per filler geometry
#: for the Lewis–Nielsen model (Nielsen 1974).
LEWIS_NIELSEN_SHAPES = {
    "spheres": (1.5, 0.637),           # random close-packed spheres
    "spheres_agglomerated": (3.0, 0.637),
    "irregular": (3.0, 0.637),
    "flakes": (5.0, 0.52),             # platelets / silver flakes
    "short_fibers": (4.93, 0.52),      # aspect ratio ~10 rods
    "long_fibers": (8.38, 0.52),       # aspect ratio ~15+ (CNT bundles)
}


def _validate(k_matrix: float, k_filler: float, fraction: float) -> None:
    if k_matrix <= 0.0 or k_filler <= 0.0:
        raise InputError("conductivities must be positive")
    if not 0.0 <= fraction < 1.0:
        raise InputError("volume fraction must be in [0, 1)")


def maxwell_garnett(k_matrix: float, k_filler: float,
                    fraction: float) -> float:
    """Maxwell–Garnett effective conductivity (dilute spheres).

    k = k_m·[k_f + 2k_m + 2φ(k_f − k_m)] / [k_f + 2k_m − φ(k_f − k_m)].
    Accurate below ~25 % loading; a strict lower bound for well-dispersed
    spherical fillers.
    """
    _validate(k_matrix, k_filler, fraction)
    numerator = k_filler + 2.0 * k_matrix + 2.0 * fraction * (k_filler
                                                              - k_matrix)
    denominator = k_filler + 2.0 * k_matrix - fraction * (k_filler
                                                          - k_matrix)
    return k_matrix * numerator / denominator


def bruggeman(k_matrix: float, k_filler: float, fraction: float) -> float:
    """Symmetric Bruggeman effective-medium conductivity.

    Solves φ·(k_f − k)/(k_f + 2k) + (1−φ)·(k_m − k)/(k_m + 2k) = 0 by
    bisection.  Exhibits a percolation threshold at φ = 1/3 for
    k_f ≫ k_m, making it the better model for the highly loaded NANOPACK
    adhesives.
    """
    _validate(k_matrix, k_filler, fraction)

    def residual(k: float) -> float:
        return (fraction * (k_filler - k) / (k_filler + 2.0 * k)
                + (1.0 - fraction) * (k_matrix - k) / (k_matrix + 2.0 * k))

    lo = min(k_matrix, k_filler)
    hi = max(k_matrix, k_filler)
    r_lo, r_hi = residual(lo), residual(hi)
    if r_lo == 0.0:
        return lo
    if r_hi == 0.0:
        return hi
    if r_lo * r_hi > 0.0:
        raise ConvergenceError("Bruggeman bisection failed to bracket a root")
    for _ in range(200):
        mid = 0.5 * (lo + hi)
        r_mid = residual(mid)
        if abs(r_mid) < 1e-12:
            return mid
        if r_lo * r_mid < 0.0:
            hi = mid
        else:
            lo, r_lo = mid, r_mid
    return 0.5 * (lo + hi)


def lewis_nielsen(k_matrix: float, k_filler: float, fraction: float,
                  shape: str = "spheres") -> float:
    """Lewis–Nielsen model with shape factor and maximum packing.

    k = k_m·(1 + A·B·φ) / (1 − B·ψ·φ) with
    B = (k_f/k_m − 1)/(k_f/k_m + A) and
    ψ = 1 + φ·(1 − φ_max)/φ_max².

    The workhorse for *designing* filled adhesives: pick a shape, then
    invert for the loading that hits a target conductivity.
    """
    _validate(k_matrix, k_filler, fraction)
    if shape not in LEWIS_NIELSEN_SHAPES:
        raise InputError(f"unknown shape {shape!r}; known: "
                         f"{sorted(LEWIS_NIELSEN_SHAPES)}")
    a, phi_max = LEWIS_NIELSEN_SHAPES[shape]
    if fraction >= phi_max:
        raise InputError(
            f"loading {fraction:.2f} exceeds maximum packing "
            f"{phi_max:.3f} for {shape}")
    ratio = k_filler / k_matrix
    b = (ratio - 1.0) / (ratio + a)
    psi = 1.0 + fraction * (1.0 - phi_max) / phi_max ** 2
    return k_matrix * (1.0 + a * b * fraction) / (1.0 - b * psi * fraction)


def loading_for_conductivity(k_matrix: float, k_filler: float,
                             target: float,
                             shape: str = "spheres") -> float:
    """Invert Lewis–Nielsen: the volume fraction that yields ``target``.

    Raises :class:`InputError` if the target is unreachable below maximum
    packing.
    """
    if target <= k_matrix:
        raise InputError("target must exceed the matrix conductivity")
    _a, phi_max = LEWIS_NIELSEN_SHAPES.get(
        shape, (None, None)) if shape in LEWIS_NIELSEN_SHAPES else (None,
                                                                    None)
    if phi_max is None:
        raise InputError(f"unknown shape {shape!r}")
    lo, hi = 0.0, phi_max - 1e-4
    if lewis_nielsen(k_matrix, k_filler, hi, shape) < target:
        raise InputError(
            f"target {target} W/m.K unreachable with this filler/shape "
            f"(max {lewis_nielsen(k_matrix, k_filler, hi, shape):.2f})")
    for _ in range(100):
        mid = 0.5 * (lo + hi)
        if lewis_nielsen(k_matrix, k_filler, mid, shape) < target:
            lo = mid
        else:
            hi = mid
    return 0.5 * (lo + hi)


def percolation_conductivity(k_matrix: float, k_network: float,
                             fraction: float,
                             threshold: float = 0.17,
                             exponent: float = 1.8) -> float:
    """Percolating-network conductivity for flakes/CNT above threshold.

    Below ``threshold`` returns the Maxwell–Garnett estimate; above it
    adds σ ∝ (φ − φ_c)^t of the filler network — the behaviour that lets
    silver-flake adhesives be simultaneously thermally and *electrically*
    conductive.
    """
    _validate(k_matrix, k_network, fraction)
    if not 0.0 < threshold < 1.0:
        raise InputError("threshold must be in (0, 1)")
    if exponent <= 0.0:
        raise InputError("exponent must be positive")
    base = maxwell_garnett(k_matrix, k_network, min(fraction, threshold))
    if fraction <= threshold:
        return base
    network = k_network * ((fraction - threshold)
                           / (1.0 - threshold)) ** exponent
    return base + network


def electrical_resistivity_filled(rho_filler: float, fraction: float,
                                  threshold: float = 0.17,
                                  exponent: float = 1.8) -> float:
    """Electrical resistivity of a percolating filled adhesive [Ω·m].

    Returns ``inf`` below threshold (insulating matrix dominates); above
    it the filler network conducts with ρ = ρ_f·[(1−φ_c)/(φ−φ_c)]^t.
    The NANOPACK silver adhesives report 1e-6–1e-4 Ω·cm class values.
    """
    if rho_filler <= 0.0:
        raise InputError("filler resistivity must be positive")
    if not 0.0 <= fraction < 1.0:
        raise InputError("fraction must be in [0, 1)")
    if fraction <= threshold:
        return float("inf")
    return rho_filler * ((1.0 - threshold)
                         / (fraction - threshold)) ** exponent


def cnt_array_conductivity(cnt_conductivity: float, areal_density: float,
                           alignment_fraction: float = 0.9) -> float:
    """Effective through-thickness conductivity of a vertically aligned
    CNT array [W/(m·K)].

    k_eff = k_CNT·φ_A·f_align, with φ_A the area fraction covered by tubes
    and f_align the fraction effectively bridging the gap.  Multi-wall CNT
    bundles (the NANOPACK partners' approach, ref [10]) have intrinsic
    conductivities of several hundred W/m·K but low φ_A, landing the array
    in the 10–50 W/m·K class.
    """
    if cnt_conductivity <= 0.0:
        raise InputError("CNT conductivity must be positive")
    if not 0.0 < areal_density <= 1.0:
        raise InputError("areal density must be in (0, 1]")
    if not 0.0 < alignment_fraction <= 1.0:
        raise InputError("alignment fraction must be in (0, 1]")
    return cnt_conductivity * areal_density * alignment_fraction
