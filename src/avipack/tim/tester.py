"""Virtual ASTM D5470 thermal-interface tester.

NANOPACK built a steady-state tester per ASTM D5470-06 with ±1 K·mm²/W
resistance accuracy and ±2 µm thickness accuracy.  Since the physical rig
is a hardware gate, this module *simulates* it faithfully:

* two instrumented metering bars (upper hot, lower cold) with equally
  spaced thermocouples;
* the sample resistance extracted exactly as the standard prescribes —
  linear extrapolation of the two bar temperature gradients to the sample
  faces;
* calibrated Gaussian instrument noise reproducing the quoted accuracies,
  driven by a seeded :class:`numpy.random.Generator` so experiments are
  repeatable;
* the standard multi-thickness protocol that separates bulk conductivity
  from contact resistance by linear regression of R_total vs BLT.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Sequence

import numpy as np

from ..errors import InputError
from ..units import si_to_kmm2_per_w
from .interface import ThermalInterface


@dataclass(frozen=True)
class D5470Measurement:
    """One tester reading.

    ``specific_resistance`` in K·m²/W, ``bond_line_thickness`` in m — both
    as *measured* (noise included).
    """

    specific_resistance: float
    bond_line_thickness: float
    heat_flux: float
    hot_face_temperature: float
    cold_face_temperature: float

    @property
    def specific_resistance_kmm2(self) -> float:
        """Measured resistance in data-sheet units [K·mm²/W]."""
        return si_to_kmm2_per_w(self.specific_resistance)


@dataclass
class D5470Tester:
    """Steady-state metering-bar tester per ASTM D5470.

    Parameters
    ----------
    bar_conductivity:
        Metering-bar material conductivity [W/(m·K)] (electrolytic copper).
    bar_area:
        Bar cross-section = sample area [m²] (standard 1 in² ≈ 6.45 cm²).
    resistance_accuracy_kmm2:
        1σ Gaussian noise on the extracted resistance [K·mm²/W]; ±1 per
        the NANOPACK build.
    thickness_accuracy:
        1σ Gaussian noise on the BLT measurement [m]; ±2 µm per NANOPACK.
    seed:
        Seed for the repeatable noise generator.
    """

    bar_conductivity: float = 390.0
    bar_area: float = 6.45e-4
    resistance_accuracy_kmm2: float = 1.0
    thickness_accuracy: float = 2.0e-6
    seed: int = 20100308  # DATE 2010 conference date

    def __post_init__(self) -> None:
        if self.bar_conductivity <= 0.0 or self.bar_area <= 0.0:
            raise InputError("bar conductivity and area must be positive")
        if self.resistance_accuracy_kmm2 < 0.0:
            raise InputError("resistance accuracy must be non-negative")
        if self.thickness_accuracy < 0.0:
            raise InputError("thickness accuracy must be non-negative")
        self._rng = np.random.default_rng(self.seed)

    def measure(self, interface: ThermalInterface,
                heat_flux: float = 5.0e4,
                cold_plate_temperature: float = 298.15) -> D5470Measurement:
        """Measure one assembled interface at an imposed heat flux.

        Simulates the steady 1-D stack: the true face temperatures follow
        from the interface's specific resistance; the reading then adds
        the calibrated instrument noise.
        """
        if heat_flux <= 0.0:
            raise InputError("heat flux must be positive")
        if cold_plate_temperature <= 0.0:
            raise InputError("cold plate temperature must be positive")
        true_r = interface.specific_resistance  # K·m²/W
        cold_face = cold_plate_temperature + heat_flux * 1.0e-5
        hot_face = cold_face + heat_flux * true_r
        noise_r = self._rng.normal(
            0.0, self.resistance_accuracy_kmm2) * 1e-6
        noise_t = self._rng.normal(0.0, self.thickness_accuracy)
        measured_r = max(true_r + noise_r, 1e-9)
        measured_blt = max(interface.bond_line_thickness + noise_t, 1e-7)
        return D5470Measurement(
            specific_resistance=measured_r,
            bond_line_thickness=measured_blt,
            heat_flux=heat_flux,
            hot_face_temperature=hot_face,
            cold_face_temperature=cold_face,
        )

    def characterize(self, interfaces: Sequence[ThermalInterface],
                     n_repeats: int = 3) -> "TimCharacterization":
        """Run the multi-thickness ASTM protocol.

        ``interfaces`` must be the same material assembled at several
        bond-line thicknesses.  Fits R(BLT) = BLT/k + 2·R_c by least
        squares over ``n_repeats`` measurements of each sample and
        extracts (k, R_c) with their standard errors.
        """
        if len(interfaces) < 2:
            raise InputError(
                "need at least two bond-line thicknesses to separate "
                "conductivity from contact resistance")
        if n_repeats < 1:
            raise InputError("need at least one repeat")
        blts: List[float] = []
        resistances: List[float] = []
        for interface in interfaces:
            for _ in range(n_repeats):
                reading = self.measure(interface)
                blts.append(reading.bond_line_thickness)
                resistances.append(reading.specific_resistance)
        x = np.asarray(blts)
        y = np.asarray(resistances)
        design = np.vstack([x, np.ones_like(x)]).T
        coeffs, residuals, _rank, _sv = np.linalg.lstsq(design, y,
                                                        rcond=None)
        slope, intercept = float(coeffs[0]), float(coeffs[1])
        if slope <= 0.0:
            # Noise swamped the bulk term (ultra-thin/ultra-conductive
            # sample); report the conductivity as unresolved.
            conductivity = float("inf")
        else:
            conductivity = 1.0 / slope
        contact = max(intercept / 2.0, 0.0)
        dof = max(x.size - 2, 1)
        if residuals.size:
            sigma2 = float(residuals[0]) / dof
        else:
            sigma2 = float(np.sum((y - design @ coeffs) ** 2)) / dof
        sxx = float(np.sum((x - x.mean()) ** 2))
        slope_se = math.sqrt(sigma2 / sxx) if sxx > 0.0 else float("inf")
        return TimCharacterization(
            conductivity=conductivity,
            contact_resistance=contact,
            conductivity_std_error=(slope_se / slope ** 2
                                    if slope > 0.0 else float("inf")),
            n_samples=x.size,
        )


@dataclass(frozen=True)
class TimCharacterization:
    """Result of the ASTM multi-thickness protocol.

    ``conductivity`` [W/(m·K)], ``contact_resistance`` per side [K·m²/W].
    """

    conductivity: float
    contact_resistance: float
    conductivity_std_error: float
    n_samples: int

    @property
    def contact_resistance_kmm2(self) -> float:
        """Per-side contact resistance in data-sheet units [K·mm²/W]."""
        return si_to_kmm2_per_w(self.contact_resistance)


@dataclass
class FourWireOhmmeter:
    """Virtual four-wire micro-ohmmeter for conductive adhesives.

    NANOPACK's electrical rig resolves > 50 µΩ with 5 µΩ resolution; the
    simulation adds Gaussian noise at that resolution and refuses
    readings below the floor.
    """

    resolution_ohm: float = 5.0e-6
    floor_ohm: float = 50.0e-6
    seed: int = 7

    def __post_init__(self) -> None:
        if self.resolution_ohm <= 0.0 or self.floor_ohm <= 0.0:
            raise InputError("resolution and floor must be positive")
        self._rng = np.random.default_rng(self.seed)

    def measure(self, resistivity: float, length: float,
                area: float) -> float:
        """Measured resistance of a bulk sample [Ω].

        Raises :class:`InputError` for samples below the instrument floor.
        """
        if resistivity <= 0.0 or length <= 0.0 or area <= 0.0:
            raise InputError("resistivity, length and area must be positive")
        true_resistance = resistivity * length / area
        if true_resistance < self.floor_ohm:
            raise InputError(
                f"sample resistance {true_resistance:.2e} Ohm is below the "
                f"{self.floor_ohm:.0e} Ohm instrument floor")
        noise = self._rng.normal(0.0, self.resolution_ohm)
        return max(true_resistance + noise, self.floor_ohm)
