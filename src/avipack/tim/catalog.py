"""Catalogue of thermal interface materials, including the NANOPACK
developments.

Each entry is a :class:`TimMaterial` with the properties an assembly
engineer needs (conductivity, usable BLT range, electrical behaviour,
mechanical strength) plus a factory that assembles it into a
:class:`~avipack.tim.interface.ThermalInterface` at a given area and
pressure.

The NANOPACK entries carry the paper's reported figures:

* ``nanopack_silver_flake_epoxy`` — silver flakes in mono-epoxy,
  6 W/m·K, electrically conductive, 14 MPa shear strength;
* ``nanopack_silver_sphere_epoxy`` — micro silver spheres in multi-epoxy,
  9.5 W/m·K;
* ``nanopack_metal_polymer_composite`` — 20 W/m·K;
* baseline greases/pads for comparison.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from ..errors import InputError, MaterialNotFoundError
from .interface import ThermalInterface, bond_line_thickness


@dataclass(frozen=True)
class TimMaterial:
    """A thermal-interface material as catalogued.

    Parameters
    ----------
    name:
        Unique identifier.
    conductivity:
        Bulk conductivity [W/(m·K)].
    filler_diameter:
        Characteristic filler size, setting the BLT floor [m].
    viscosity:
        Paste viscosity at assembly [Pa·s] (ignored for cured pads).
    contact_resistance:
        Per-side boundary resistance [K·m²/W].
    electrically_conductive:
        True for metal-filled adhesives (a constraint near exposed nets).
    volume_resistivity:
        Electrical resistivity [Ω·m] (``inf`` for insulators).
    shear_strength:
        Adhesive lap-shear strength [Pa] (0 for non-adhesive greases).
    min_blt:
        Thinnest achievable bond line [m].
    """

    name: str
    conductivity: float
    filler_diameter: float
    viscosity: float
    contact_resistance: float
    electrically_conductive: bool = False
    volume_resistivity: float = float("inf")
    shear_strength: float = 0.0
    min_blt: float = 10.0e-6

    def __post_init__(self) -> None:
        if self.conductivity <= 0.0:
            raise InputError(f"{self.name}: conductivity must be positive")
        if self.filler_diameter < 0.0:
            raise InputError(f"{self.name}: filler diameter must be >= 0")
        if self.viscosity <= 0.0:
            raise InputError(f"{self.name}: viscosity must be positive")
        if self.contact_resistance < 0.0:
            raise InputError(
                f"{self.name}: contact resistance must be >= 0")
        if self.min_blt <= 0.0:
            raise InputError(f"{self.name}: min BLT must be positive")

    def assemble(self, area: float, pressure: float = 3.0e5,
                 hnc_surface: bool = False) -> ThermalInterface:
        """Assemble this material into an interface of ``area`` [m²].

        The bond line follows the Prasher squeeze-flow scaling at the
        given ``pressure``, floored at ``min_blt``; ``hnc_surface`` applies
        the NANOPACK hierarchical-nested-channel reduction (> 20 %).
        """
        if area <= 0.0:
            raise InputError("area must be positive")
        if pressure <= 0.0:
            raise InputError("pressure must be positive")
        blt = max(bond_line_thickness(max(self.filler_diameter, 1e-7),
                                      self.viscosity, pressure),
                  self.min_blt)
        interface = ThermalInterface(
            conductivity=self.conductivity,
            bond_line_thickness=blt,
            contact_resistance=self.contact_resistance,
            area=area,
        )
        if hnc_surface:
            interface = interface.with_hnc_surface()
        return interface


_CATALOG: Dict[str, TimMaterial] = {
    material.name: material for material in (
        # --- Baselines --------------------------------------------------------
        TimMaterial(
            name="standard_grease",
            conductivity=0.8,
            filler_diameter=5.0e-6,
            viscosity=200.0,
            contact_resistance=3.0e-6,
            min_blt=25.0e-6,
        ),
        TimMaterial(
            name="silicone_pad",
            conductivity=1.5,
            filler_diameter=50.0e-6,
            viscosity=1.0e4,
            contact_resistance=2.0e-5,
            min_blt=200.0e-6,
        ),
        TimMaterial(
            name="standard_silver_epoxy",
            conductivity=2.5,
            filler_diameter=10.0e-6,
            viscosity=60.0,
            contact_resistance=4.0e-6,
            electrically_conductive=True,
            volume_resistivity=4.0e-6,
            shear_strength=10.0e6,
            min_blt=20.0e-6,
        ),
        # --- NANOPACK developments ---------------------------------------------
        TimMaterial(
            name="nanopack_silver_flake_epoxy",
            conductivity=6.0,
            filler_diameter=3.0e-6,
            viscosity=40.0,
            contact_resistance=1.2e-6,
            electrically_conductive=True,
            volume_resistivity=1.0e-6,  # 1e-4 Ohm.cm class
            shear_strength=14.0e6,
            min_blt=12.0e-6,
        ),
        TimMaterial(
            name="nanopack_silver_sphere_epoxy",
            conductivity=9.5,
            filler_diameter=4.0e-6,
            viscosity=45.0,
            contact_resistance=1.0e-6,
            electrically_conductive=True,
            volume_resistivity=2.0e-6,
            shear_strength=12.0e6,
            min_blt=12.0e-6,
        ),
        TimMaterial(
            name="nanopack_metal_polymer_composite",
            conductivity=20.0,
            filler_diameter=2.0e-6,
            viscosity=80.0,
            contact_resistance=1.0e-6,
            electrically_conductive=True,
            volume_resistivity=5.0e-6,
            shear_strength=8.0e6,
            min_blt=10.0e-6,
        ),
        TimMaterial(
            name="nanopack_cnt_array",
            conductivity=25.0,
            filler_diameter=0.5e-6,
            viscosity=1.0e3,
            contact_resistance=2.5e-6,
            min_blt=15.0e-6,
        ),
    )
}


def get_tim(name: str) -> TimMaterial:
    """Look a TIM up by name."""
    try:
        return _CATALOG[name]
    except KeyError:
        raise MaterialNotFoundError(
            f"unknown TIM {name!r}; known: {', '.join(sorted(_CATALOG))}"
        ) from None


def list_tims() -> Tuple[str, ...]:
    """All catalogued TIM names, sorted."""
    return tuple(sorted(_CATALOG))


def best_tim_for_target(target_kmm2: float, area: float,
                        pressure: float = 3.0e5,
                        require_insulating: bool = False,
                        hnc_surface: bool = False) -> Optional[TimMaterial]:
    """Pick the catalogued TIM meeting a specific-resistance target.

    Returns the *least exotic* (lowest conductivity) material whose
    assembled interface meets ``target_kmm2`` [K·mm²/W] — engineering
    practice is to avoid over-specifying.  ``None`` when nothing passes.
    """
    if target_kmm2 <= 0.0:
        raise InputError("target must be positive")
    candidates = []
    for name in list_tims():
        material = get_tim(name)
        if require_insulating and material.electrically_conductive:
            continue
        interface = material.assemble(area, pressure, hnc_surface)
        if interface.specific_resistance_kmm2 <= target_kmm2:
            candidates.append(material)
    if not candidates:
        return None
    return min(candidates, key=lambda mat: mat.conductivity)
