"""Thermal interface resistance: bond lines, contact and surface
enhancement.

The total interface resistance the NANOPACK project attacks is

.. math:: R_{TIM} = \\frac{BLT}{k_{TIM}} + R_{c1} + R_{c2}

(all area-specific, K·m²/W internally, K·mm²/W in data sheets): a bulk
term set by the bond-line thickness (BLT) and material conductivity, plus
two boundary contact resistances.  The project's levers are modelled here:

* higher k (filled adhesives — :mod:`avipack.tim.models`);
* thinner BLT: Prasher's scaling of BLT with filler size, viscosity and
  assembly pressure, plus the **hierarchical nested channel (HNC)**
  surface machining that drains excess material (> 20 % thinner bond
  lines in the project's measurements);
* lower contact resistance: nanosponge/nanostructured surface factors.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from ..errors import InputError
from ..units import si_to_kmm2_per_w


@dataclass(frozen=True)
class ThermalInterface:
    """One assembled thermal interface.

    Parameters
    ----------
    conductivity:
        Bulk TIM conductivity [W/(m·K)].
    bond_line_thickness:
        Assembled BLT [m].
    contact_resistance:
        Per-side boundary resistance [K·m²/W] (same value both sides).
    area:
        Interface area [m²].
    """

    conductivity: float
    bond_line_thickness: float
    contact_resistance: float
    area: float

    def __post_init__(self) -> None:
        if self.conductivity <= 0.0:
            raise InputError("conductivity must be positive")
        if self.bond_line_thickness <= 0.0:
            raise InputError("bond line thickness must be positive")
        if self.contact_resistance < 0.0:
            raise InputError("contact resistance must be non-negative")
        if self.area <= 0.0:
            raise InputError("area must be positive")

    @property
    def specific_resistance(self) -> float:
        """Area-specific resistance BLT/k + 2·R_c [K·m²/W]."""
        return (self.bond_line_thickness / self.conductivity
                + 2.0 * self.contact_resistance)

    @property
    def specific_resistance_kmm2(self) -> float:
        """Area-specific resistance in data-sheet units [K·mm²/W]."""
        return si_to_kmm2_per_w(self.specific_resistance)

    @property
    def resistance(self) -> float:
        """Absolute resistance [K/W] for network use."""
        return self.specific_resistance / self.area

    def with_hnc_surface(self, blt_reduction: float = 0.22
                         ) -> "ThermalInterface":
        """Interface re-assembled on an HNC-machined surface.

        The hierarchical nested channels drain excess TIM during assembly,
        reducing the BLT by ``blt_reduction`` (the project demonstrated
        > 20 % for the majority of TIMs on cm² interfaces).
        """
        if not 0.0 < blt_reduction < 1.0:
            raise InputError("BLT reduction must be in (0, 1)")
        return replace(self, bond_line_thickness=self.bond_line_thickness
                       * (1.0 - blt_reduction))

    def with_nanosponge_contacts(self, contact_reduction: float = 0.5
                                 ) -> "ThermalInterface":
        """Interface with gold-nanosponge-enhanced boundary contacts.

        The compliant nanosponge conforms to asperities, cutting the
        boundary resistance by ``contact_reduction``.
        """
        if not 0.0 < contact_reduction < 1.0:
            raise InputError("contact reduction must be in (0, 1)")
        return replace(self, contact_resistance=self.contact_resistance
                       * (1.0 - contact_reduction))


def bond_line_thickness(filler_diameter: float, viscosity: float,
                        pressure: float,
                        empirical_coefficient: float = 0.1) -> float:
    """Prasher's bond-line-thickness scaling [m].

    BLT = 1.31·d_f + c·(µ/P)^0.166 — the particle-size floor plus a
    squeeze-flow term falling weakly with assembly pressure.  ``viscosity``
    in Pa·s, ``pressure`` in Pa.
    """
    if filler_diameter <= 0.0:
        raise InputError("filler diameter must be positive")
    if viscosity <= 0.0 or pressure <= 0.0:
        raise InputError("viscosity and pressure must be positive")
    if empirical_coefficient <= 0.0:
        raise InputError("coefficient must be positive")
    squeeze = empirical_coefficient * (viscosity / pressure) ** 0.166
    return 1.31 * filler_diameter + squeeze * 1e-4


def contact_resistance_mikic(roughness: float, asperity_slope: float,
                             k_harmonic: float, pressure: float,
                             hardness: float) -> float:
    """Mikić plastic-contact resistance of a dry metal joint [K·m²/W].

    1/R = 1.13·k_s·(m/σ)·(P/H)^0.94 — used for the *unfilled* screwed
    joints of module shells and to bound what a TIM must beat.

    Parameters
    ----------
    roughness:
        RMS surface roughness σ [m].
    asperity_slope:
        Mean absolute asperity slope m (0.05–0.15 typical).
    k_harmonic:
        Harmonic-mean conductivity of the two solids [W/(m·K)].
    pressure:
        Contact pressure [Pa].
    hardness:
        Micro-hardness of the softer solid [Pa].
    """
    if roughness <= 0.0 or asperity_slope <= 0.0:
        raise InputError("roughness and slope must be positive")
    if k_harmonic <= 0.0 or pressure <= 0.0 or hardness <= 0.0:
        raise InputError("conductivity, pressure and hardness must be "
                         "positive")
    if pressure >= hardness:
        raise InputError("pressure must stay below material hardness")
    conductance = (1.13 * k_harmonic * (asperity_slope / roughness)
                   * (pressure / hardness) ** 0.94)
    return 1.0 / conductance


def series_interface_resistance(*interfaces: ThermalInterface) -> float:
    """Total absolute resistance of stacked interfaces [K/W]."""
    if not interfaces:
        raise InputError("need at least one interface")
    return sum(interface.resistance for interface in interfaces)


def meets_nanopack_target(interface: ThermalInterface,
                          target_kmm2: float = 5.0,
                          max_blt: float = 20.0e-6) -> bool:
    """Check an interface against the NANOPACK objective.

    The project targets a specific resistance below 5 K·mm²/W with a bond
    line under 20 µm.
    """
    if target_kmm2 <= 0.0 or max_blt <= 0.0:
        raise InputError("targets must be positive")
    return (interface.specific_resistance_kmm2 <= target_kmm2
            and interface.bond_line_thickness <= max_blt)
