"""Thermal interface materials (the NANOPACK project, rebuilt in models).

* :mod:`~avipack.tim.models` — effective-medium conductivity of filled
  adhesives, percolation, CNT arrays;
* :mod:`~avipack.tim.interface` — assembled interface resistance, BLT
  scaling, HNC surfaces, contact models;
* :mod:`~avipack.tim.tester` — virtual ASTM D5470 tester and four-wire
  micro-ohmmeter with calibrated noise;
* :mod:`~avipack.tim.catalog` — material catalogue including the
  NANOPACK developments (6 / 9.5 / 20 W/m·K).
"""

from .catalog import TimMaterial, best_tim_for_target, get_tim, list_tims
from .interface import (
    ThermalInterface,
    bond_line_thickness,
    contact_resistance_mikic,
    meets_nanopack_target,
    series_interface_resistance,
)
from .models import (
    LEWIS_NIELSEN_SHAPES,
    bruggeman,
    cnt_array_conductivity,
    electrical_resistivity_filled,
    lewis_nielsen,
    loading_for_conductivity,
    maxwell_garnett,
    percolation_conductivity,
)
from .tester import (
    D5470Measurement,
    D5470Tester,
    FourWireOhmmeter,
    TimCharacterization,
)

__all__ = [
    "D5470Measurement",
    "D5470Tester",
    "FourWireOhmmeter",
    "LEWIS_NIELSEN_SHAPES",
    "ThermalInterface",
    "TimCharacterization",
    "TimMaterial",
    "best_tim_for_target",
    "bond_line_thickness",
    "bruggeman",
    "cnt_array_conductivity",
    "contact_resistance_mikic",
    "electrical_resistivity_filled",
    "get_tim",
    "lewis_nielsen",
    "list_tims",
    "loading_for_conductivity",
    "maxwell_garnett",
    "meets_nanopack_target",
    "percolation_conductivity",
    "series_interface_resistance",
]
