"""Batch evaluation of design-space candidates, serial or process-parallel.

:class:`SweepRunner` fans candidates out over a
:class:`concurrent.futures.ProcessPoolExecutor` (with a serial fallback
that produces bit-identical results) and is robust to individual
candidate failures: a raised :class:`~avipack.errors.InputError`,
:class:`~avipack.errors.SpecificationError` or solver non-convergence
becomes a structured :class:`CandidateFailure` record — never an aborted
sweep.

Beyond failure *isolation*, the runner carries the campaign's failure
*recovery*: every candidate is evaluated under an
:class:`avipack.resilience.Supervisor` (transient convergence failures
retried, level-3 breakdowns degraded to level-2 fidelity per the
:class:`~avipack.resilience.SupervisionPolicy`), a per-candidate
watchdog abandons workers that stop responding, a broken pool triggers
an automatic serial retry of the unfinished candidates, and a seeded
:class:`~avipack.resilience.FaultPlan` can be threaded through the
workers so all of the above is testable on demand.

Each worker process keeps a persistent
:class:`~avipack.sweep.cache.SolverCache`, so the repeated
sub-evaluations a grid generates (the same rack airflow solve reached
from every TIM choice, the same level-1 technique scan reached from
every cooling mode, ...) are computed once per worker; per-candidate
hit/miss deltas are carried back with each result and aggregated into
the sweep report.

Results preserve candidate order regardless of completion order, so a
serial and a parallel run of the same space rank identically.
"""

from __future__ import annotations

import contextlib
import dataclasses
import os
import pickle
import time
import traceback
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple, Union

from .. import perf as _perf
from ..core.design_flow import run_design_procedure
from ..core.report import summarize_margins
from ..errors import InputError, JournalError
from ..perf import SolveStats
from ..packaging.cooling import CoolingTechnique
from ..resilience import faults as _faults
from ..resilience.faults import FaultPlan
from ..resilience.policy import RecoveryTrail, SupervisionPolicy
from ..resilience.supervisor import Supervisor
from .cache import (
    DEFAULT_WORKER_CACHE_MAX_ENTRIES,
    CacheStats,
    SolverCache,
    worker_cache,
)
from .report import DurabilityStats, SweepReport
from .space import Candidate, DesignSpace

__all__ = ["CandidateFailure", "CandidateResult", "SweepRunner",
           "evaluate_candidate"]

#: Cooling techniques by increasing installation cost/complexity — the
#: ranking behind "design at a minimum cost" (Fig. 5 simplicity order).
_TECHNIQUE_COST_RANK: Dict[CoolingTechnique, int] = {
    CoolingTechnique.FREE_CONVECTION: 0,
    CoolingTechnique.DIRECT_AIR_FLOW: 1,
    CoolingTechnique.AIR_FLOW_AROUND: 2,
    CoolingTechnique.CONDUCTION_COOLED: 3,
    CoolingTechnique.AIR_FLOW_THROUGH: 4,
    CoolingTechnique.LIQUID_FLOW_THROUGH: 5,
}

#: Exception attributes lifted into :attr:`CandidateFailure.details`.
_DETAIL_ATTRS = ("iterations", "residual", "limit_name", "limit_value",
                 "violations")


@dataclass(frozen=True)
class CandidateResult:
    """One successfully evaluated candidate, flattened for transport.

    Carries the margin summary rather than the full
    :class:`~avipack.core.design_flow.DesignReview` so results stay
    small crossing process boundaries; every field pickles cleanly.
    """

    index: int
    candidate: Candidate
    fingerprint: str
    compliant: bool
    violations: Tuple[str, ...]
    margins: Dict[str, float]
    worst_board_c: float
    recommended_cooling: Optional[str]
    declared_cooling_feasible: bool
    cost_rank: float
    elapsed_s: float
    worker_pid: int
    cache_hits: int
    cache_misses: int
    #: Any level ran at reduced fidelity (see
    #: :func:`avipack.core.levels.degraded_level3`).
    degraded: bool = False
    #: Recovery trails of every supervised site that misbehaved.
    recovery: Tuple[RecoveryTrail, ...] = ()
    #: Unreadable cache entries encountered (evicted and recomputed).
    cache_corrupt: int = 0
    #: Per-kernel solver counters this evaluation accumulated (the
    #: :mod:`avipack.perf` registry delta, shipped across the process
    #: boundary and aggregated into the sweep report).
    perf: Tuple[SolveStats, ...] = ()
    #: Answered by the vectorized batch path (topology-group solve)
    #: rather than a per-candidate scalar evaluation.
    batched: bool = False

    @property
    def thermal_headroom_c(self) -> float:
        """Board-limit margin [°C]; larger is cooler."""
        return 85.0 - self.worst_board_c

    @property
    def recovered(self) -> bool:
        """True when a supervised site recovered at full fidelity."""
        return any(trail.recovered for trail in self.recovery)


@dataclass(frozen=True)
class CandidateFailure:
    """A candidate that could not be evaluated — isolated, not fatal."""

    index: int
    candidate: Candidate
    fingerprint: str
    stage: str
    error_type: str
    message: str
    elapsed_s: float
    worker_pid: int

    #: Failures never comply; mirrors :class:`CandidateResult` so report
    #: code can treat outcomes uniformly.
    compliant: bool = False

    #: Formatted traceback of the original exception (empty for
    #: synthesised failures such as watchdog timeouts).
    traceback: str = ""

    #: Structured exception attributes (iterations, residual,
    #: limit_name, violations, ...) that survive process boundaries.
    details: Dict[str, object] = field(default_factory=dict)

    #: Recovery trails recorded before the evaluation finally failed.
    recovery: Tuple[RecoveryTrail, ...] = ()

    #: Mirrors :class:`CandidateResult` so report code can treat
    #: outcomes uniformly.
    degraded: bool = False

    #: Solver counters accumulated before the evaluation failed.
    perf: Tuple[SolveStats, ...] = ()


CandidateOutcome = Union[CandidateResult, CandidateFailure]


def _cost_rank(candidate: Candidate) -> float:
    """Installation-cost proxy: cooling complexity, then TIM exoticism."""
    technique = candidate.cooling
    if not isinstance(technique, CoolingTechnique):
        try:
            technique = CoolingTechnique(technique)
        except ValueError:
            return float("inf")
    rank = float(_TECHNIQUE_COST_RANK[technique]) * 10.0
    if candidate.tim_name.startswith("nanopack"):
        rank += 1.0
    return rank


def _exception_details(exc: BaseException) -> Dict[str, object]:
    """Lift the library's structured exception attributes into a dict."""
    details: Dict[str, object] = {}
    for name in _DETAIL_ATTRS:
        value = getattr(exc, name, None)
        if value is not None:
            details[name] = value
    return details


def _unpack_task(task) -> Tuple[int, Candidate, bool,
                                Optional[SupervisionPolicy],
                                Optional[FaultPlan], Optional[str]]:
    """Accept the historical 3-/5-tuples and the durable 6-tuple."""
    if len(task) == 3:
        index, candidate, use_cache = task
        return index, candidate, use_cache, None, None, None
    if len(task) == 5:
        index, candidate, use_cache, policy, plan = task
        return index, candidate, use_cache, policy, plan, None
    index, candidate, use_cache, policy, plan, cache_dir = task
    return index, candidate, use_cache, policy, plan, cache_dir


def evaluate_candidate(task, cache: Optional[SolverCache] = None
                       ) -> CandidateOutcome:
    """Evaluate one ``(index, candidate, use_cache[, policy, faults[,
    cache_dir]])`` task.

    Module-level (hence picklable) worker entry point shared by the
    serial and process-pool paths.  ``cache`` overrides the per-process
    default; when ``None`` and the task requests caching, the process's
    :func:`~avipack.sweep.cache.worker_cache` singleton is used — or,
    when the task names a ``cache_dir``, the process's persistent
    :class:`~avipack.durability.DiskSolverCache` for that directory,
    shared across workers and resumed runs.  Every
    expected failure mode — bad input, specification violations, solver
    non-convergence, out-of-range models, injected faults — is converted
    into a :class:`CandidateFailure` carrying the stage, message,
    formatted traceback and structured exception attributes.

    The evaluation runs under an :class:`avipack.resilience.Supervisor`
    built from ``policy`` (default :class:`SupervisionPolicy`), and an
    optional :class:`~avipack.resilience.FaultPlan` is installed
    process-wide before anything else runs, scoped to the candidate
    index so injection decisions are identical in serial and parallel
    executions.
    """
    index, candidate, use_cache, policy, plan, cache_dir = _unpack_task(task)
    injector = _faults.configure(plan)
    if cache is None and use_cache:
        if cache_dir is not None:
            from ..durability.diskcache import worker_disk_cache
            cache = worker_disk_cache(cache_dir)
        else:
            cache = worker_cache()
    if not use_cache:
        cache = None
    hits0 = cache.hits if cache else 0
    misses0 = cache.misses if cache else 0
    corrupt0 = cache.corrupt if cache else 0
    perf_before = _perf.snapshot()
    supervisor = Supervisor(policy)
    scope = (injector.scoped(index) if injector is not None
             else contextlib.nullcontext())
    start = time.perf_counter()
    stage = "worker"
    with scope:
        try:
            _faults.fire("sweep.worker")
            stage = "build"
            rack, spec = candidate.build()
            stage = "evaluate"
            review = run_design_procedure(rack, spec, cache=cache,
                                          supervisor=supervisor)
        except Exception as exc:
            return CandidateFailure(
                index=index,
                candidate=candidate,
                fingerprint=candidate.fingerprint,
                stage=stage,
                error_type=type(exc).__name__,
                message=str(exc),
                elapsed_s=time.perf_counter() - start,
                worker_pid=os.getpid(),
                traceback=traceback.format_exc(),
                details=_exception_details(exc),
                recovery=supervisor.trails,
                perf=_perf.delta_since(perf_before),
            )
    level1 = review.thermal.level1
    declared = candidate.cooling
    if not isinstance(declared, CoolingTechnique):
        declared = CoolingTechnique(declared)
    return CandidateResult(
        index=index,
        candidate=candidate,
        fingerprint=candidate.fingerprint,
        compliant=review.compliant,
        violations=review.violations,
        margins=summarize_margins(review),
        worst_board_c=review.thermal.level2.worst_board_temperature - 273.15,
        recommended_cooling=(level1.recommended.value
                             if level1.recommended else None),
        declared_cooling_feasible=declared in level1.feasible_techniques,
        cost_rank=_cost_rank(candidate),
        elapsed_s=time.perf_counter() - start,
        worker_pid=os.getpid(),
        cache_hits=(cache.hits - hits0) if cache else 0,
        cache_misses=(cache.misses - misses0) if cache else 0,
        degraded=(review.thermal.degraded
                  if hasattr(review.thermal, "degraded") else False),
        recovery=supervisor.trails,
        cache_corrupt=(cache.corrupt - corrupt0) if cache else 0,
        perf=_perf.delta_since(perf_before),
    )


class _JournalObserver:
    """Journal proxy that fans each outcome out once it is durable.

    Wraps the (possibly absent) :class:`~avipack.durability.SweepJournal`
    the execution paths write to, forwarding every record verbatim, then
    appending the outcome to the (possibly absent) columnar result-store
    writer, then invoking ``progress(outcome)`` — strictly *after* the
    outcome has been journalled, so an observer that raises (the sweep
    service's cooperative-cancellation hook) never loses the triggering
    outcome, and a crash mid-store-append is repaired by re-ingesting
    from the journal.  The callback runs in the main process, in the
    thread driving the sweep, exactly once per outcome.
    """

    def __init__(self, journal, progress, store=None) -> None:
        self._journal = journal
        self._progress = progress
        self._store = store

    def record_plan(self, *args, **kwargs) -> None:
        if self._journal is not None:
            self._journal.record_plan(*args, **kwargs)

    def record_dispatched(self, *args, **kwargs) -> None:
        if self._journal is not None:
            self._journal.record_dispatched(*args, **kwargs)

    def record_outcome(self, outcome: CandidateOutcome) -> None:
        if self._journal is not None:
            self._journal.record_outcome(outcome)
        if self._store is not None:
            self._store.add(outcome)
        if self._progress is not None:
            self._progress(outcome)

    def close(self) -> None:
        if self._journal is not None:
            self._journal.close()


def _watchdog_failure(index: int, candidate: Candidate,
                      timeout_s: float) -> CandidateFailure:
    """Synthesised failure for a candidate whose worker stopped responding."""
    return CandidateFailure(
        index=index,
        candidate=candidate,
        fingerprint=candidate.fingerprint,
        stage="watchdog",
        error_type="WatchdogTimeout",
        message=(f"candidate exceeded the {timeout_s:g} s per-candidate "
                 "watchdog; worker abandoned"),
        elapsed_s=timeout_s,
        worker_pid=0,
    )


class SweepRunner:
    """Run a design space (or explicit candidate list) to a report.

    Parameters
    ----------
    max_workers:
        Process-pool size.  ``0`` or ``1`` selects the serial path;
        ``None`` uses ``os.cpu_count()`` capped at 8.
    parallel:
        Master switch; ``False`` forces the serial path regardless of
        ``max_workers``.
    use_cache:
        Enable solver memoisation (per worker in parallel mode, one
        shared cache in serial mode).  Disable for cold baselines.
    chunksize:
        Tasks handed to a worker per dispatch on the (watchdog-free)
        bulk path; ``None`` picks ``ceil(n / (4 * workers))`` to
        balance load against IPC count.
    timeout_s:
        Per-candidate watchdog [s] for the parallel path.  When set,
        candidates are dispatched one at a time (a sliding window the
        size of the pool) and a candidate whose worker produces nothing
        within the budget is recorded as a ``WatchdogTimeout``
        :class:`CandidateFailure`; the stuck worker is abandoned (the
        pool keeps running at reduced width until it comes back).
        ``None`` (default) keeps the chunked bulk path.
    policy:
        :class:`~avipack.resilience.SupervisionPolicy` applied to every
        candidate evaluation; ``None`` uses the default policy.  Pass
        :data:`~avipack.resilience.NO_SUPERVISION` to disable retries
        and degradation.
    faults:
        Optional seeded :class:`~avipack.resilience.FaultPlan` threaded
        into every worker — the chaos hook the fault-injection suite
        drives.  Injection decisions are scoped per candidate index, so
        a serial and a parallel run of the same plan fault identically.
    evaluator:
        Picklable replacement for :func:`evaluate_candidate` (custom
        workloads on the sweep infrastructure — e.g. supervised raw
        network solves).  It is called with the 5-field task tuple
        (6-field when ``cache_dir`` is set) and must return a
        :class:`CandidateResult` or :class:`CandidateFailure`.
    cache_dir:
        Directory for a persistent
        :class:`~avipack.durability.DiskSolverCache` shared by every
        worker (and across resumed runs) instead of the per-process
        in-memory cache.  ``None`` (default) keeps caching in memory.
    result_store:
        Directory for a columnar
        :class:`~avipack.results.store.ResultStoreWriter`: every
        outcome is appended to memory-mapped, checksummed shards as it
        arrives (after journalling, when both are enabled), so ranking
        and report analytics run zero-unpickle afterwards.  On
        :meth:`resume`, outcomes restored from the journal that the
        store does not yet hold are backfilled, keeping store and
        report in lockstep.  ``None`` (default) keeps results
        in-memory only.
    batch:
        Batch-scheduler switch.  ``None`` (default) batches whenever
        the evaluator declares batch support (a truthy
        ``supports_batch`` attribute and an ``evaluate_batch`` method —
        e.g. :class:`~avipack.sweep.batch.NetworkSweepEvaluator`):
        tasks are grouped and solved through the vectorized batch core
        in-process instead of dispatched one by one.  ``False`` forces
        the classic per-candidate paths (the parity baseline);
        ``True`` requires a batch-capable evaluator and raises
        :class:`~avipack.errors.InputError` otherwise.  Journaling,
        failure isolation and cache semantics are identical either
        way.
    """

    def __init__(self, max_workers: Optional[int] = None,
                 parallel: bool = True, use_cache: bool = True,
                 chunksize: Optional[int] = None,
                 timeout_s: Optional[float] = None,
                 policy: Optional[SupervisionPolicy] = None,
                 faults: Optional[FaultPlan] = None,
                 evaluator=None,
                 cache_dir: Optional[str] = None,
                 result_store: Optional[str] = None,
                 batch: Optional[bool] = None) -> None:
        if max_workers is not None and max_workers < 0:
            raise InputError("max_workers must be >= 0")
        if chunksize is not None and chunksize < 1:
            raise InputError("chunksize must be >= 1")
        if timeout_s is not None and timeout_s <= 0.0:
            raise InputError("timeout_s must be positive")
        self.max_workers = max_workers
        self.parallel = parallel
        self.use_cache = use_cache
        self.chunksize = chunksize
        self.timeout_s = timeout_s
        self.policy = policy
        self.faults = faults
        self.evaluator = evaluator if evaluator is not None \
            else evaluate_candidate
        self.cache_dir = cache_dir
        self.result_store = result_store
        self.batch = batch
        if batch is True and not self._evaluator_batches():
            raise InputError(
                "batch=True needs an evaluator with batch support "
                "(supports_batch attribute and evaluate_batch method)")

    def _resolve_workers(self) -> int:
        if self.max_workers is not None:
            return self.max_workers
        return min(os.cpu_count() or 1, 8)

    def _evaluator_batches(self) -> bool:
        """Whether the configured evaluator can take whole task lists."""
        return bool(getattr(self.evaluator, "supports_batch", False)
                    and hasattr(self.evaluator, "evaluate_batch"))

    # -- execution paths -----------------------------------------------------

    @staticmethod
    def _journal_outcome(journal, outcome: CandidateOutcome) -> None:
        """Durably journal one outcome as it arrives (no-op unjournalled)."""
        if journal is not None:
            journal.record_outcome(outcome)

    def _serial_cache(self):
        """The cache the in-process (serial / retry) path evaluates with."""
        if not self.use_cache:
            return None
        if self.cache_dir is not None:
            from ..durability.diskcache import worker_disk_cache
            return worker_disk_cache(self.cache_dir)
        return SolverCache(max_entries=DEFAULT_WORKER_CACHE_MAX_ENTRIES)

    def _run_serial(self, tasks: List[tuple],
                    journal=None) -> List[CandidateOutcome]:
        cache = self._serial_cache()
        outcomes: List[CandidateOutcome] = []
        for task in tasks:
            outcome = (self.evaluator(task, cache)
                       if self.evaluator is evaluate_candidate
                       else self.evaluator(task))
            self._journal_outcome(journal, outcome)
            outcomes.append(outcome)
        return outcomes

    def _run_batched(self, tasks: List[tuple],
                     journal=None) -> List[CandidateOutcome]:
        """Hand the whole task list to the evaluator's batch scheduler.

        The evaluator groups candidates by network structure and
        advances each group as one vectorized system (see
        :mod:`avipack.thermal.batch`); per-candidate outcomes come back
        in task order with the usual failure isolation and are
        journalled exactly like the scalar paths.
        """
        cache = self._serial_cache()
        outcomes = self.evaluator.evaluate_batch(tasks, cache)
        for outcome in outcomes:
            self._journal_outcome(journal, outcome)
        return outcomes

    def _run_parallel(self, tasks: List[tuple], workers: int,
                      journal=None) -> List[CandidateOutcome]:
        """Bulk chunked dispatch — fastest path, no per-candidate watchdog.

        Results are journalled as ``pool.map`` yields them (in task
        order), so a crash mid-sweep preserves every outcome the main
        process has already collected.
        """
        chunksize = self.chunksize
        if chunksize is None:
            chunksize = max(1, -(-len(tasks) // (4 * workers)))
        outcomes: List[CandidateOutcome] = []
        with ProcessPoolExecutor(max_workers=workers) as pool:
            for outcome in pool.map(self.evaluator, tasks,
                                    chunksize=chunksize):
                self._journal_outcome(journal, outcome)
                outcomes.append(outcome)
        return outcomes

    def _run_watchdog(self, tasks: List[tuple], workers: int, journal=None
                      ) -> Tuple[Dict[int, CandidateOutcome], List[str]]:
        """Sliding-window dispatch with a per-candidate watchdog.

        Keeps at most ``capacity`` tasks in flight (initially the pool
        width), so a submitted task starts on an idle worker at once
        and ``timeout_s`` after submission is an honest per-candidate
        deadline.  A future that misses its deadline is recorded as a
        watchdog failure and abandoned — capacity shrinks while its
        worker is stuck and is restored if the worker ever completes.
        A broken pool stops parallel dispatch; the caller retries the
        unfinished candidates serially.
        """
        timeout_s = float(self.timeout_s or 0.0)
        outcomes: Dict[int, CandidateOutcome] = {}
        incidents: List[str] = []
        queue = list(tasks)
        in_flight: Dict[object, Tuple[int, Candidate, float]] = {}
        abandoned: Dict[object, int] = {}
        capacity = workers
        broken = False
        pool = ProcessPoolExecutor(max_workers=workers)
        try:
            while queue or in_flight:
                while queue and len(in_flight) < capacity and not broken:
                    task = queue.pop(0)
                    try:
                        future = pool.submit(self.evaluator, task)
                    except (BrokenProcessPool, RuntimeError):
                        broken = True
                        queue.insert(0, task)
                        break
                    in_flight[future] = (task[0], task[1],
                                         time.monotonic() + timeout_s)
                if broken and not in_flight:
                    break
                if not in_flight:
                    if queue:
                        # Every worker is stuck: no parallel capacity
                        # left; the caller finishes the queue serially.
                        incidents.append(
                            f"pool exhausted by {len(abandoned)} hung "
                            "workers")
                        broken = True
                    break
                next_deadline = min(deadline for _, _, deadline
                                    in in_flight.values())
                done, _ = wait(list(in_flight), timeout=max(
                    0.0, next_deadline - time.monotonic()),
                    return_when=FIRST_COMPLETED)
                for future in done:
                    index, _, _ = in_flight.pop(future)
                    try:
                        outcomes[index] = future.result()
                        self._journal_outcome(journal, outcomes[index])
                    except BrokenProcessPool:
                        broken = True
                    except Exception as exc:  # pool infrastructure error
                        broken = True
                        incidents.append(
                            f"pool error on #{index}: "
                            f"{type(exc).__name__}")
                now = time.monotonic()
                for future, (index, candidate, deadline) in \
                        list(in_flight.items()):
                    if deadline > now or future.done():
                        continue
                    if future.cancel():
                        # Never started (queued behind a stall): give it
                        # back to the queue with a fresh deadline.
                        in_flight.pop(future)
                        queue.insert(0, (index, candidate) + tuple(
                            t for t in tasks[0][2:]))
                        continue
                    in_flight.pop(future)
                    outcomes[index] = _watchdog_failure(
                        index, candidate, timeout_s)
                    self._journal_outcome(journal, outcomes[index])
                    abandoned[future] = index
                    capacity -= 1
                    incidents.append(f"watchdog abandoned #{index}")
                for future, index in list(abandoned.items()):
                    if future.done():
                        # The stuck worker came back; its (late) result
                        # is discarded but its slot is usable again.
                        del abandoned[future]
                        capacity += 1
                if broken:
                    for future in list(in_flight):
                        index, _, _ = in_flight.pop(future)
                        if future.done():
                            try:
                                outcomes[index] = future.result()
                            except Exception:
                                pass
                            else:
                                self._journal_outcome(journal,
                                                      outcomes[index])
                    break
        finally:
            pool.shutdown(wait=False, cancel_futures=True)
        if broken:
            incidents.append("broken pool: serial retry of unfinished "
                             "candidates")
        return outcomes, incidents

    def _tasks(self, indexed: List[Tuple[int, Candidate]]) -> List[tuple]:
        # The 5-field tuple is a published contract for custom
        # evaluators; the cache directory only extends it when set.
        if self.cache_dir is None:
            return [(index, candidate, self.use_cache, self.policy,
                     self.faults) for index, candidate in indexed]
        return [(index, candidate, self.use_cache, self.policy,
                 self.faults, self.cache_dir)
                for index, candidate in indexed]

    def _execute(self, tasks: List[tuple], journal=None
                 ) -> Tuple[List[CandidateOutcome], str, int]:
        """Run tasks down the configured path; outcomes in task order.

        Shared engine behind :meth:`run` and :meth:`resume`.  Task
        indices need not be contiguous (the resume path dispatches only
        the unfinished subset).  Every outcome is journalled the moment
        the main process holds it.
        """
        workers = self._resolve_workers()
        if self.batch is not False and self._evaluator_batches():
            try:
                return self._run_batched(tasks, journal), "batched", 1
            finally:
                if self.faults is not None:
                    _faults.uninstall()
        mode = "parallel" if (self.parallel and workers > 1
                              and len(tasks) > 1) else "serial"
        try:
            if mode == "parallel" and self.timeout_s is not None:
                outcome_map, incidents = self._run_watchdog(
                    tasks, workers, journal)
                missing = [task for task in tasks
                           if task[0] not in outcome_map]
                if missing:
                    cache = self._serial_cache()
                    for task in missing:
                        outcome = (self.evaluator(task, cache)
                                   if self.evaluator is evaluate_candidate
                                   else self.evaluator(task))
                        self._journal_outcome(journal, outcome)
                        outcome_map[task[0]] = outcome
                outcomes = [outcome_map[task[0]] for task in tasks]
                if incidents:
                    mode = f"parallel ({'; '.join(sorted(set(incidents)))})"
            elif mode == "parallel":
                try:
                    outcomes = self._run_parallel(tasks, workers, journal)
                except (BrokenProcessPool, OSError,
                        pickle.PicklingError) as exc:
                    mode = f"serial (pool fallback: {type(exc).__name__})"
                    outcomes = self._run_serial(tasks, journal)
            else:
                outcomes = self._run_serial(tasks, journal)
        finally:
            # A serial (re-)run in this process may have installed the
            # fault plan here; never leak it into subsequent user code.
            if self.faults is not None:
                _faults.uninstall()
        return outcomes, mode, workers if mode.startswith("parallel") else 1

    def _open_store_writer(self):
        """The columnar store writer for this run (None when disabled)."""
        if self.result_store is None:
            return None
        from ..results.store import ResultStoreWriter
        return ResultStoreWriter(self.result_store)

    def _assemble(self, outcomes: List[CandidateOutcome], wall: float,
                  mode: str, workers: int,
                  durability: Optional[DurabilityStats] = None,
                  store_stats=None) -> SweepReport:
        hits = sum(o.cache_hits for o in outcomes
                   if isinstance(o, CandidateResult))
        misses = sum(o.cache_misses for o in outcomes
                     if isinstance(o, CandidateResult))
        corrupt = sum(o.cache_corrupt for o in outcomes
                      if isinstance(o, CandidateResult))
        limit = (DEFAULT_WORKER_CACHE_MAX_ENTRIES
                 if self.use_cache and self.cache_dir is None else None)
        cache_stats = CacheStats(hits=hits, misses=misses, entries=misses,
                                 corrupt=corrupt, max_entries=limit)
        perf_records = _perf.aggregate(
            getattr(o, "perf", ()) for o in outcomes)
        return SweepReport(
            outcomes=tuple(outcomes),
            wall_time_s=wall,
            mode=mode,
            workers=workers,
            cache=cache_stats,
            perf=perf_records,
            durability=durability,
            result_store=store_stats,
        )

    def run(self, space: Union[DesignSpace, Iterable[Candidate]],
            journal_path: Optional[str] = None,
            progress=None) -> SweepReport:
        """Evaluate every candidate and assemble a :class:`SweepReport`.

        Candidate order is preserved in the outcome list whichever
        execution path runs.  If the process pool cannot be used (no
        ``fork``/``spawn`` support, broken workers, unpicklable
        candidates), the sweep transparently falls back to the serial
        path rather than failing; a pool broken *mid-flight* (worker
        crash) triggers a serial retry of only the unfinished
        candidates, so one bad worker never costs the campaign.

        With ``journal_path`` the sweep additionally writes a
        write-ahead journal (:class:`~avipack.durability.SweepJournal`):
        the candidate plan first, then every outcome as it arrives,
        each record checksummed and fsync'd — if the process dies
        (SIGKILL, OOM, power loss), :meth:`resume` continues the
        campaign from the journal, recomputing only the candidates the
        journal cannot prove finished.

        ``progress`` is an optional callable invoked with each
        :data:`CandidateOutcome` in the main process the moment it is
        held (and, when journalling, durably journalled) — the
        streaming-telemetry hook the sweep service builds on.  An
        exception raised by ``progress`` aborts the sweep at the next
        outcome boundary; everything already journalled stays intact
        and resumable (cooperative cancellation).
        """
        candidates = (list(space.grid()) if isinstance(space, DesignSpace)
                      else list(space))
        if not candidates:
            raise InputError("sweep needs at least one candidate")
        tasks = self._tasks(list(enumerate(candidates)))
        journal = None
        if journal_path is not None:
            from ..durability.journal import SweepJournal
            from ..fingerprint import stable_fingerprint
            journal = SweepJournal.create(
                journal_path, tuple(candidates),
                space_fingerprint=stable_fingerprint(tuple(candidates)))
            for index, candidate in enumerate(candidates):
                journal.record_dispatched(index, candidate)
        store_writer = self._open_store_writer()
        sink = (_JournalObserver(journal, progress, store_writer)
                if progress is not None or store_writer is not None
                else journal)
        start = time.perf_counter()
        try:
            outcomes, mode, workers = self._execute(tasks, sink)
        finally:
            if journal is not None:
                journal.close()
            if store_writer is not None:
                store_writer.close()
        wall = time.perf_counter() - start
        durability = None
        if journal_path is not None:
            durability = DurabilityStats(journal_path=journal_path,
                                         n_recomputed=len(candidates))
        store_stats = (store_writer.stats()
                       if store_writer is not None else None)
        return self._assemble(outcomes, wall, mode, workers, durability,
                              store_stats)

    def resume(self, journal_path: str,
               space: Union[DesignSpace, Iterable[Candidate], None] = None,
               progress=None) -> SweepReport:
        """Continue a journalled sweep after a crash (or completion).

        ``progress`` mirrors :meth:`run`: it fires for every outcome
        *recomputed* by this resume (restored outcomes are already
        durable and are not replayed through the callback).

        Replays the journal (:func:`~avipack.durability.replay_journal`
        — damaged records are quarantined to the ``.quarantine``
        sidecar, never trusted and never fatal), audits every restored
        outcome against the invariant battery in
        :mod:`avipack.durability.audit`, and recomputes whatever is
        left: candidates that were in flight at the crash, candidates
        whose records were quarantined, and restored records the audit
        rejected.  Restored outcomes keep their original metric values,
        so the resumed report ranks identically to an uninterrupted
        run.

        Candidates are matched by content fingerprint, not list index,
        so the resume also survives a re-ordered or extended candidate
        set passed via ``space``; without ``space``, the candidate list
        is taken from the journal's own plan record.  New work is
        appended to the same journal (a resumed run can itself be
        resumed).  Raises :class:`~avipack.errors.JournalError` only
        when the journal is unreadable or carries no usable plan.
        """
        from ..durability.audit import audit_outcomes
        from ..durability.journal import SweepJournal, replay_journal
        from ..fingerprint import stable_fingerprint
        replay = replay_journal(journal_path)
        if space is not None:
            candidates = (list(space.grid())
                          if isinstance(space, DesignSpace)
                          else list(space))
        elif replay.candidates is not None:
            candidates = list(replay.candidates)
        else:
            raise JournalError(
                f"journal {journal_path} has no intact plan record; "
                "pass the candidate space to resume() explicitly")
        if not candidates:
            raise InputError("sweep needs at least one candidate")
        restored = dict(replay.outcomes)
        # The supply-floor and level-2 energy-balance invariants hold
        # only for the default design-procedure workload; a custom
        # evaluator (arbitrary networks) would fail them on every
        # intact record and resume would recompute the whole campaign.
        flagged = audit_outcomes(
            restored.values(),
            model_checks=self.evaluator is evaluate_candidate)
        for fingerprint in flagged:
            restored.pop(fingerprint, None)
        pending = [(index, candidate)
                   for index, candidate in enumerate(candidates)
                   if candidate.fingerprint not in restored]
        start = time.perf_counter()
        mode = "resume"
        workers = 1
        fresh: Dict[int, CandidateOutcome] = {}
        # Fingerprints the store already holds must be read *before*
        # this resume appends to it, so the backfill below adds each
        # restored outcome at most once across repeated resumes.
        stored_fingerprints: set = set()
        if self.result_store is not None:
            from ..results.store import ResultStore
            stored_fingerprints = ResultStore.live_fingerprints(
                self.result_store)
        store_writer = self._open_store_writer()
        journal = SweepJournal.append_to(journal_path,
                                         next_seq=replay.next_seq)
        try:
            if space is not None:
                journal.record_plan(
                    tuple(candidates),
                    space_fingerprint=stable_fingerprint(tuple(candidates)))
            for index, candidate in pending:
                journal.record_dispatched(index, candidate)
            if pending:
                tasks = self._tasks(pending)
                sink = (_JournalObserver(journal, progress, store_writer)
                        if progress is not None or store_writer is not None
                        else journal)
                outcomes, engine_mode, workers = self._execute(tasks,
                                                               sink)
                fresh = {task[0]: outcome
                         for task, outcome in zip(tasks, outcomes)}
                mode = f"resume ({engine_mode})"
        except BaseException:
            if store_writer is not None:
                store_writer.close()
            raise
        finally:
            journal.close()
        wall = time.perf_counter() - start
        merged: List[CandidateOutcome] = []
        n_resumed = 0
        for index, candidate in enumerate(candidates):
            if index in fresh:
                merged.append(fresh[index])
                continue
            outcome = restored[candidate.fingerprint]
            if outcome.index != index:
                outcome = dataclasses.replace(outcome, index=index)
            merged.append(outcome)
            n_resumed += 1
        store_stats = None
        if store_writer is not None:
            # Backfill journal-restored outcomes the store has never
            # seen (fresh ones streamed through the observer already).
            try:
                for outcome in merged:
                    if (outcome.fingerprint not in stored_fingerprints
                            and outcome.fingerprint
                            not in store_writer.added_fingerprints):
                        store_writer.add(outcome)
            finally:
                store_writer.close()
            store_stats = store_writer.stats()
        durability = DurabilityStats(
            journal_path=journal_path,
            n_resumed=n_resumed,
            n_recomputed=len(pending),
            n_quarantined=replay.n_quarantined,
            n_audit_failures=len(flagged),
            audit_issues=tuple(sorted(flagged.items())),
        )
        return self._assemble(merged, wall, mode, workers, durability,
                              store_stats)
