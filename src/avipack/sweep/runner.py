"""Batch evaluation of design-space candidates, serial or process-parallel.

:class:`SweepRunner` fans candidates out over a
:class:`concurrent.futures.ProcessPoolExecutor` (with a serial fallback
that produces bit-identical results) and is robust to individual
candidate failures: a raised :class:`~avipack.errors.InputError`,
:class:`~avipack.errors.SpecificationError` or solver non-convergence
becomes a structured :class:`CandidateFailure` record — never an aborted
sweep.

Each worker process keeps a persistent
:class:`~avipack.sweep.cache.SolverCache`, so the repeated
sub-evaluations a grid generates (the same rack airflow solve reached
from every TIM choice, the same level-1 technique scan reached from
every cooling mode, ...) are computed once per worker; per-candidate
hit/miss deltas are carried back with each result and aggregated into
the sweep report.

Results preserve candidate order regardless of completion order, so a
serial and a parallel run of the same space rank identically.
"""

from __future__ import annotations

import os
import pickle
import time
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Tuple, Union

from ..core.design_flow import run_design_procedure
from ..core.report import summarize_margins
from ..errors import InputError
from ..packaging.cooling import CoolingTechnique
from .cache import CacheStats, SolverCache, worker_cache
from .report import SweepReport
from .space import Candidate, DesignSpace

__all__ = ["CandidateFailure", "CandidateResult", "SweepRunner",
           "evaluate_candidate"]

#: Cooling techniques by increasing installation cost/complexity — the
#: ranking behind "design at a minimum cost" (Fig. 5 simplicity order).
_TECHNIQUE_COST_RANK: Dict[CoolingTechnique, int] = {
    CoolingTechnique.FREE_CONVECTION: 0,
    CoolingTechnique.DIRECT_AIR_FLOW: 1,
    CoolingTechnique.AIR_FLOW_AROUND: 2,
    CoolingTechnique.CONDUCTION_COOLED: 3,
    CoolingTechnique.AIR_FLOW_THROUGH: 4,
    CoolingTechnique.LIQUID_FLOW_THROUGH: 5,
}


@dataclass(frozen=True)
class CandidateResult:
    """One successfully evaluated candidate, flattened for transport.

    Carries the margin summary rather than the full
    :class:`~avipack.core.design_flow.DesignReview` so results stay
    small crossing process boundaries; every field pickles cleanly.
    """

    index: int
    candidate: Candidate
    fingerprint: str
    compliant: bool
    violations: Tuple[str, ...]
    margins: Dict[str, float]
    worst_board_c: float
    recommended_cooling: Optional[str]
    declared_cooling_feasible: bool
    cost_rank: float
    elapsed_s: float
    worker_pid: int
    cache_hits: int
    cache_misses: int

    @property
    def thermal_headroom_c(self) -> float:
        """Board-limit margin [°C]; larger is cooler."""
        return 85.0 - self.worst_board_c


@dataclass(frozen=True)
class CandidateFailure:
    """A candidate that could not be evaluated — isolated, not fatal."""

    index: int
    candidate: Candidate
    fingerprint: str
    stage: str
    error_type: str
    message: str
    elapsed_s: float
    worker_pid: int

    #: Failures never comply; mirrors :class:`CandidateResult` so report
    #: code can treat outcomes uniformly.
    compliant: bool = False


CandidateOutcome = Union[CandidateResult, CandidateFailure]


def _cost_rank(candidate: Candidate) -> float:
    """Installation-cost proxy: cooling complexity, then TIM exoticism."""
    technique = candidate.cooling
    if not isinstance(technique, CoolingTechnique):
        try:
            technique = CoolingTechnique(technique)
        except ValueError:
            return float("inf")
    rank = float(_TECHNIQUE_COST_RANK[technique]) * 10.0
    if candidate.tim_name.startswith("nanopack"):
        rank += 1.0
    return rank


def evaluate_candidate(task: Tuple[int, Candidate, bool],
                       cache: Optional[SolverCache] = None
                       ) -> CandidateOutcome:
    """Evaluate one ``(index, candidate, use_cache)`` task.

    Module-level (hence picklable) worker entry point shared by the
    serial and process-pool paths.  ``cache`` overrides the per-process
    default; when ``None`` and the task requests caching, the process's
    :func:`~avipack.sweep.cache.worker_cache` singleton is used.  Every
    expected failure mode — bad input, specification violations, solver
    non-convergence, out-of-range models — is converted into a
    :class:`CandidateFailure` carrying the stage and message.
    """
    index, candidate, use_cache = task
    if cache is None and use_cache:
        cache = worker_cache()
    if not use_cache:
        cache = None
    hits0 = cache.hits if cache else 0
    misses0 = cache.misses if cache else 0
    start = time.perf_counter()
    stage = "build"
    try:
        rack, spec = candidate.build()
        stage = "evaluate"
        review = run_design_procedure(rack, spec, cache=cache)
    except Exception as exc:
        return CandidateFailure(
            index=index,
            candidate=candidate,
            fingerprint=candidate.fingerprint,
            stage=stage,
            error_type=type(exc).__name__,
            message=str(exc),
            elapsed_s=time.perf_counter() - start,
            worker_pid=os.getpid(),
        )
    level1 = review.thermal.level1
    declared = candidate.cooling
    if not isinstance(declared, CoolingTechnique):
        declared = CoolingTechnique(declared)
    return CandidateResult(
        index=index,
        candidate=candidate,
        fingerprint=candidate.fingerprint,
        compliant=review.compliant,
        violations=review.violations,
        margins=summarize_margins(review),
        worst_board_c=review.thermal.level2.worst_board_temperature - 273.15,
        recommended_cooling=(level1.recommended.value
                             if level1.recommended else None),
        declared_cooling_feasible=declared in level1.feasible_techniques,
        cost_rank=_cost_rank(candidate),
        elapsed_s=time.perf_counter() - start,
        worker_pid=os.getpid(),
        cache_hits=(cache.hits - hits0) if cache else 0,
        cache_misses=(cache.misses - misses0) if cache else 0,
    )


class SweepRunner:
    """Run a design space (or explicit candidate list) to a report.

    Parameters
    ----------
    max_workers:
        Process-pool size.  ``0`` or ``1`` selects the serial path;
        ``None`` uses ``os.cpu_count()`` capped at 8.
    parallel:
        Master switch; ``False`` forces the serial path regardless of
        ``max_workers``.
    use_cache:
        Enable solver memoisation (per worker in parallel mode, one
        shared cache in serial mode).  Disable for cold baselines.
    chunksize:
        Tasks handed to a worker per dispatch; ``None`` picks
        ``ceil(n / (4 * workers))`` to balance load against IPC count.
    """

    def __init__(self, max_workers: Optional[int] = None,
                 parallel: bool = True, use_cache: bool = True,
                 chunksize: Optional[int] = None) -> None:
        if max_workers is not None and max_workers < 0:
            raise InputError("max_workers must be >= 0")
        if chunksize is not None and chunksize < 1:
            raise InputError("chunksize must be >= 1")
        self.max_workers = max_workers
        self.parallel = parallel
        self.use_cache = use_cache
        self.chunksize = chunksize

    def _resolve_workers(self) -> int:
        if self.max_workers is not None:
            return self.max_workers
        return min(os.cpu_count() or 1, 8)

    # -- execution paths -----------------------------------------------------

    def _run_serial(self, tasks: List[Tuple[int, Candidate, bool]]
                    ) -> List[CandidateOutcome]:
        cache = SolverCache() if self.use_cache else None
        return [evaluate_candidate(task, cache) for task in tasks]

    def _run_parallel(self, tasks: List[Tuple[int, Candidate, bool]],
                      workers: int) -> List[CandidateOutcome]:
        chunksize = self.chunksize
        if chunksize is None:
            chunksize = max(1, -(-len(tasks) // (4 * workers)))
        with ProcessPoolExecutor(max_workers=workers) as pool:
            return list(pool.map(evaluate_candidate, tasks,
                                 chunksize=chunksize))

    def run(self, space: Union[DesignSpace, Iterable[Candidate]]
            ) -> SweepReport:
        """Evaluate every candidate and assemble a :class:`SweepReport`.

        Candidate order is preserved in the outcome list whichever
        execution path runs.  If the process pool cannot be used (no
        ``fork``/``spawn`` support, broken workers, unpicklable
        candidates), the sweep transparently falls back to the serial
        path rather than failing.
        """
        candidates = (list(space.grid()) if isinstance(space, DesignSpace)
                      else list(space))
        if not candidates:
            raise InputError("sweep needs at least one candidate")
        tasks = [(index, candidate, self.use_cache)
                 for index, candidate in enumerate(candidates)]
        workers = self._resolve_workers()
        mode = "parallel" if (self.parallel and workers > 1
                              and len(tasks) > 1) else "serial"
        start = time.perf_counter()
        if mode == "parallel":
            try:
                outcomes = self._run_parallel(tasks, workers)
            except (BrokenProcessPool, OSError,
                    pickle.PicklingError) as exc:
                mode = f"serial (pool fallback: {type(exc).__name__})"
                outcomes = self._run_serial(tasks)
        else:
            outcomes = self._run_serial(tasks)
        wall = time.perf_counter() - start

        hits = sum(o.cache_hits for o in outcomes
                   if isinstance(o, CandidateResult))
        misses = sum(o.cache_misses for o in outcomes
                     if isinstance(o, CandidateResult))
        cache_stats = CacheStats(hits=hits, misses=misses, entries=misses)
        return SweepReport(
            outcomes=tuple(outcomes),
            wall_time_s=wall,
            mode=mode,
            workers=workers if mode == "parallel" else 1,
            cache=cache_stats,
        )
