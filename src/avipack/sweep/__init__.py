"""Parallel design-space sweep engine with solver caching.

The batch counterpart of the single-candidate Fig. 1 procedure: sweep
hundreds of candidate packaging stacks (cooling mode × TIM × form
factor × power budget × plenum layout) through the level-1/2/3 pyramid
and the mechanical branch, in parallel, with cross-candidate reuse of
identical solver sub-problems.

* :mod:`~avipack.sweep.space` — :class:`DesignSpace` / :class:`Candidate`
  grid-and-sampler API;
* :mod:`~avipack.sweep.runner` — :class:`SweepRunner` process-pool
  fan-out with serial fallback, per-candidate failure isolation,
  watchdog timeouts and supervised recovery
  (see :mod:`avipack.resilience`);
* :mod:`~avipack.sweep.cache` — :class:`SolverCache` keyed memoisation
  with hit/miss accounting;
* :mod:`~avipack.sweep.batch` — :class:`NetworkSweepEvaluator`
  batch-capable evaluator routing topology-sharing candidate groups
  through the vectorized solver core (:mod:`avipack.thermal.batch`);
* :mod:`~avipack.sweep.report` — :class:`SweepReport` observability and
  the ranked compliant-candidate document.
"""

from .batch import NetworkSweepEvaluator
from .cache import (
    DEFAULT_WORKER_CACHE_MAX_ENTRIES,
    CacheStats,
    SolverCache,
    worker_cache,
)
from .report import DurabilityStats, SweepReport, render_sweep_document
from .runner import (
    CandidateFailure,
    CandidateResult,
    SweepRunner,
    evaluate_candidate,
)
from .space import Candidate, DesignSpace

__all__ = [
    "DEFAULT_WORKER_CACHE_MAX_ENTRIES",
    "CacheStats",
    "Candidate",
    "CandidateFailure",
    "CandidateResult",
    "DesignSpace",
    "DurabilityStats",
    "NetworkSweepEvaluator",
    "SolverCache",
    "SweepReport",
    "SweepRunner",
    "evaluate_candidate",
    "render_sweep_document",
    "worker_cache",
]
