"""Sweep observability: timings, cache statistics, ranked candidates.

:class:`SweepReport` is the terminal artefact of a design-space sweep,
mirroring the role the packaging design document plays for a single
design (:mod:`avipack.core.report`): per-candidate timings, cache
effectiveness, worker utilisation, the failure ledger, and the ranked
table of compliant candidates ("design at a minimum cost" over the
whole space).  :func:`render_sweep_document` renders it in the same
plain-text style as the single-design documents, reusing the header
furniture from :mod:`avipack.core.report`.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, List, Optional, Tuple

from ..core.report import section_header
from ..perf import SolveStats, format_stats
from .cache import CacheStats

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from ..results.store import ResultStoreStats
    from .runner import CandidateFailure, CandidateOutcome, CandidateResult

__all__ = ["DurabilityStats", "SweepReport", "render_sweep_document"]


@dataclass(frozen=True)
class DurabilityStats:
    """What the durability layer did for one (journalled) sweep.

    Attached to :class:`SweepReport` whenever the run wrote a
    write-ahead journal; all-zero counters on a fresh journalled run,
    populated by :meth:`avipack.sweep.SweepRunner.resume`.
    """

    #: Path of the write-ahead journal backing the sweep.
    journal_path: str
    #: Outcomes restored from the journal instead of recomputed.
    n_resumed: int = 0
    #: Candidates (re)computed by this process (in-flight at the crash,
    #: quarantined, audit-flagged, or never dispatched).
    n_recomputed: int = 0
    #: Journal records that failed checksum/schema verification and
    #: were moved to the ``.quarantine`` sidecar.
    n_quarantined: int = 0
    #: Restored records rejected by the invariant audit (and therefore
    #: recomputed) — see :mod:`avipack.durability.audit`.
    n_audit_failures: int = 0
    #: ``fingerprint -> issues`` detail for the audit rejections.
    audit_issues: Tuple[Tuple[str, Tuple[str, ...]], ...] = ()


@dataclass(frozen=True)
class SweepReport:
    """Everything a sweep produced, in candidate order.

    Attributes
    ----------
    outcomes:
        One :class:`~avipack.sweep.runner.CandidateResult` or
        :class:`~avipack.sweep.runner.CandidateFailure` per candidate,
        in enumeration order (identical for serial and parallel runs).
    wall_time_s:
        End-to-end sweep wall-clock [s].
    mode:
        ``"serial"``, ``"parallel"`` or a serial-fallback description.
    workers:
        Worker processes used (1 for serial).
    cache:
        Aggregated solver-cache counters across all workers.
    perf:
        Per-kernel :class:`~avipack.perf.SolveStats` aggregated across
        every candidate and worker (empty when no solver kernel ran).
    durability:
        Journal/resume accounting (``None`` for unjournalled sweeps).
    result_store:
        Columnar result-store accounting when the run streamed outcomes
        into an :class:`~avipack.results.store.ResultStoreWriter`
        (``None`` otherwise).
    """

    outcomes: Tuple["CandidateOutcome", ...]
    wall_time_s: float
    mode: str
    workers: int
    cache: CacheStats
    perf: Tuple[SolveStats, ...] = ()
    durability: Optional[DurabilityStats] = None
    result_store: Optional["ResultStoreStats"] = None

    # -- outcome views -------------------------------------------------------

    @property
    def results(self) -> Tuple["CandidateResult", ...]:
        """Successfully evaluated candidates, in candidate order."""
        return tuple(o for o in self.outcomes if hasattr(o, "margins"))

    @property
    def failures(self) -> Tuple["CandidateFailure", ...]:
        """Candidates that raised, converted to structured records."""
        return tuple(o for o in self.outcomes if hasattr(o, "error_type"))

    @property
    def n_candidates(self) -> int:
        """Total candidates swept."""
        return len(self.outcomes)

    @property
    def n_compliant(self) -> int:
        """Candidates whose design review closed with no violation."""
        return sum(1 for o in self.results if o.compliant)

    @property
    def n_batched(self) -> int:
        """Candidates answered by the vectorized batch path.

        Zero for classic per-candidate sweeps (and for outcomes
        restored from pre-batching journals, which predate the flag).
        """
        return sum(1 for o in self.results
                   if getattr(o, "batched", False))

    def ranked(self) -> List["CandidateResult"]:
        """Compliant candidates, cheapest first.

        Ordering is fully deterministic: ascending installation-cost
        rank, then descending thermal headroom, then candidate index.
        """
        compliant = [o for o in self.results if o.compliant]
        return sorted(compliant,
                      key=lambda o: (o.cost_rank, -o.thermal_headroom_c,
                                     o.index))

    def top(self, k: int) -> List["CandidateResult"]:
        """The ``k`` best compliant candidates, in :meth:`ranked` order.

        Equivalent to ``self.ranked()[:k]`` element for element
        (:func:`heapq.nsmallest` is documented to match a sorted slice,
        including stability), but O(n log k): rendering the top 10 of a
        10^5-candidate campaign no longer sorts the whole population.
        """
        compliant = [o for o in self.results if o.compliant]
        if k >= len(compliant):
            return sorted(compliant,
                          key=lambda o: (o.cost_rank,
                                         -o.thermal_headroom_c, o.index))
        return heapq.nsmallest(
            k, compliant,
            key=lambda o: (o.cost_rank, -o.thermal_headroom_c, o.index))

    def best(self) -> Optional["CandidateResult"]:
        """The minimum-cost compliant candidate, if any."""
        top = self.top(1)
        return top[0] if top else None

    # -- recovery ------------------------------------------------------------

    @property
    def n_recovered(self) -> int:
        """Candidates that hit a solver fault but recovered at full
        fidelity (retry or escalation succeeded)."""
        return sum(1 for o in self.results
                   if getattr(o, "recovered", False))

    @property
    def n_degraded(self) -> int:
        """Candidates evaluated at reduced fidelity (level-3 degraded
        to the level-2 boundary estimate)."""
        return sum(1 for o in self.outcomes
                   if getattr(o, "degraded", False))

    @property
    def n_timeouts(self) -> int:
        """Candidates abandoned by the per-candidate watchdog (plus
        injected hangs classified in-process)."""
        return sum(1 for o in self.failures
                   if o.error_type == "WatchdogTimeout")

    def recovery_trails(self) -> List[Tuple[int, "object"]]:
        """Every recorded recovery trail as ``(candidate_index, trail)``
        pairs, in candidate order — the audit log of what the
        supervision layer had to do to keep the sweep alive."""
        trails: List[Tuple[int, "object"]] = []
        for outcome in self.outcomes:
            for trail in getattr(outcome, "recovery", ()):
                trails.append((outcome.index, trail))
        return trails

    # -- observability -------------------------------------------------------

    @property
    def total_evaluation_s(self) -> float:
        """Sum of per-candidate evaluation times (busy time) [s]."""
        return sum(o.elapsed_s for o in self.outcomes)

    def worker_busy_s(self) -> Dict[int, float]:
        """Busy seconds per worker PID (one entry for serial runs)."""
        busy: Dict[int, float] = {}
        for outcome in self.outcomes:
            busy[outcome.worker_pid] = (busy.get(outcome.worker_pid, 0.0)
                                        + outcome.elapsed_s)
        return busy

    @property
    def worker_utilisation(self) -> float:
        """Mean fraction of the wall-clock each worker spent evaluating.

        1.0 means every worker was busy for the whole sweep; low values
        reveal load imbalance or dispatch overhead.
        """
        if self.wall_time_s <= 0.0 or self.workers < 1:
            return 0.0
        return min(self.total_evaluation_s
                   / (self.wall_time_s * self.workers), 1.0)

    def timings(self) -> List[Tuple[int, float]]:
        """Per-candidate ``(index, elapsed_s)`` pairs, candidate order."""
        return [(o.index, o.elapsed_s) for o in self.outcomes]


def render_sweep_document(report: SweepReport, top: int = 10) -> str:
    """Render a sweep report as a plain-text review document.

    Matches the style of
    :func:`avipack.core.report.render_design_document`; ``top`` bounds
    the ranked-candidate table length.
    """
    lines: List[str] = []
    lines += section_header(
        f"DESIGN-SPACE SWEEP REPORT - {report.n_candidates} candidates")
    lines.append("")
    lines.append("1. EXECUTION")
    lines.append(f"   mode                 : {report.mode} "
                 f"({report.workers} worker"
                 f"{'s' if report.workers != 1 else ''})")
    lines.append(f"   wall clock           : {report.wall_time_s:.2f} s "
                 f"({report.total_evaluation_s:.2f} s busy, "
                 f"utilisation {report.worker_utilisation:.0%})")
    cache_line = (f"   cache                : {report.cache.hits} hits / "
                  f"{report.cache.misses} misses "
                  f"(hit rate {report.cache.hit_rate:.0%})")
    if report.cache.corrupt:
        cache_line += f", {report.cache.corrupt} corrupt evicted"
    if report.cache.max_entries is not None:
        cache_line += f", bound {report.cache.max_entries} entries"
    lines.append(cache_line)
    if report.n_batched:
        lines.append(f"   batched              : {report.n_batched} "
                     "candidates via topology-group solves")
    if report.result_store is not None:
        store = report.result_store
        lines.append(f"   result store         : {store.directory} "
                     f"({store.rows_added} rows, "
                     f"{store.shards_sealed} shards)")
    lines.append("")
    lines.append("2. OUTCOMES")
    lines.append(f"   evaluated            : {len(report.results)}")
    lines.append(f"   compliant            : {report.n_compliant}")
    lines.append(f"   failed               : {len(report.failures)}")
    for failure in report.failures[:5]:
        lines.append(f"   - #{failure.index} [{failure.stage}] "
                     f"{failure.error_type}: {failure.message}")
    if len(report.failures) > 5:
        lines.append(f"   ... and {len(report.failures) - 5} more")
    lines.append("")
    lines.append("3. RANKED COMPLIANT CANDIDATES (cheapest first)")
    # Selection, not a full sort: only the rendered rows are ranked.
    ranked = report.top(top)
    if not ranked:
        lines.append("   NONE - no candidate met the specification")
    for position, result in enumerate(ranked, start=1):
        lines.append(
            f"   {position:>2}. {result.candidate.label:<48} "
            f"board {result.worst_board_c:5.1f} degC  "
            f"cost {result.cost_rank:g}")
    if report.n_compliant > top:
        lines.append(
            f"   ... and {report.n_compliant - top} more compliant")
    trails = report.recovery_trails()
    section = 4
    if trails or report.n_degraded or report.n_timeouts:
        lines.append("")
        lines.append("4. RECOVERY")
        section = 5
        lines.append(f"   recovered            : {report.n_recovered}")
        lines.append(f"   degraded             : {report.n_degraded}")
        lines.append(f"   watchdog timeouts    : {report.n_timeouts}")
        for index, trail in trails[:2 * top]:
            lines.append(f"   - #{index} {trail.summary()}")
        if len(trails) > 2 * top:
            lines.append(f"   ... and {len(trails) - 2 * top} more trails")
    if report.durability is not None:
        durability = report.durability
        lines.append("")
        lines.append(f"{section}. DURABILITY")
        section += 1
        lines.append(f"   journal              : {durability.journal_path}")
        lines.append(f"   resumed from journal : {durability.n_resumed}")
        lines.append(f"   recomputed           : {durability.n_recomputed}")
        lines.append(f"   quarantined records  : {durability.n_quarantined}")
        lines.append(f"   audit failures       : "
                     f"{durability.n_audit_failures}")
        for fingerprint, issues in durability.audit_issues[:top]:
            lines.append(f"   - {fingerprint[:12]}: {issues[0]}")
    if report.perf:
        lines.append("")
        lines.append(f"{section}. PERFORMANCE")
        for stat_line in format_stats(report.perf):
            lines.append(f"   {stat_line}")
        reusable = [s for s in report.perf
                    if s.factorizations or s.factorization_reuses]
        if reusable:
            overall = sum(s.factorization_reuses for s in reusable) / sum(
                s.factorizations + s.factorization_reuses for s in reusable)
            lines.append(f"   factorization reuse  : {overall:.0%}")
    return "\n".join(lines)
