"""Keyed memo cache for solver results, with hit/miss accounting.

One sweep over a cooling-mode × TIM × form-factor × power grid reaches
the *same* sub-problems from many candidates: every TIM choice shares
the rack airflow solve, every cooling mode shares the level-1 technique
scan at a given power, and so on.  :class:`SolverCache` memoises those
sub-evaluations under stable content fingerprints
(:func:`avipack.fingerprint.stable_fingerprint`) so each distinct solve
runs once per process.

The cache is deliberately duck-typed: solver entry points accept any
object with ``get_or_compute(key, compute)`` so the numerical modules
never import :mod:`avipack.sweep`.

In a parallel sweep each worker process holds its own
:func:`worker_cache` singleton that persists across the tasks the worker
executes; per-task hit/miss deltas travel back with each result and are
aggregated by the runner into sweep-level statistics.

A stored entry that cannot be read back — a pickled entry whose bytes
were corrupted, or a fault injected at the ``"sweep.cache"`` site — is
never allowed to poison a campaign: the entry is evicted, counted in
the ``corrupt`` statistic, and the lookup falls through to a recompute,
exactly like a miss.
"""

from __future__ import annotations

import pickle
import threading
from dataclasses import dataclass
from typing import Any, Callable, Dict, Optional

from ..resilience.faults import fire as _fire_fault

__all__ = ["DEFAULT_WORKER_CACHE_MAX_ENTRIES", "CacheStats", "SolverCache",
           "worker_cache"]

#: Default bound on the per-process :func:`worker_cache` singleton.  A
#: resumed long-running campaign funnels every candidate through the
#: same worker caches, so an unbounded store grows with the design
#: space; the bound keeps worker memory flat (new results past the
#: bound are returned but not retained).
DEFAULT_WORKER_CACHE_MAX_ENTRIES = 4096


@dataclass(frozen=True)
class CacheStats:
    """Aggregate hit/miss counters of one cache (or one sweep).

    ``corrupt`` counts entries that were present but unreadable and
    were therefore evicted and recomputed.  ``max_entries`` reports the
    configured retention bound (``None`` = unbounded) so sweep reports
    can show how the cache was provisioned.
    """

    hits: int
    misses: int
    entries: int
    corrupt: int = 0
    max_entries: Optional[int] = None

    @property
    def lookups(self) -> int:
        """Total lookups answered."""
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from memory (0 when unused)."""
        if not self.lookups:
            return 0.0
        return self.hits / self.lookups

    def merged(self, other: "CacheStats") -> "CacheStats":
        """Combine counters from another cache (e.g. another worker).

        Every sweep worker shares one configured bound, so the merged
        record keeps the first non-``None`` ``max_entries``.
        """
        return CacheStats(hits=self.hits + other.hits,
                          misses=self.misses + other.misses,
                          entries=self.entries + other.entries,
                          corrupt=self.corrupt + other.corrupt,
                          max_entries=(self.max_entries
                                       if self.max_entries is not None
                                       else other.max_entries))


class SolverCache:
    """Content-keyed memo store with hit/miss counters.

    Thread-safe for the simple reason sweeps need: concurrent
    ``get_or_compute`` calls never corrupt the store.  A missed key may
    be computed twice under a race (last write wins) — acceptable for
    pure solver functions, and the serial/process-pool runners never
    race anyway.

    Parameters
    ----------
    max_entries:
        Optional bound on stored results.  When full, new results are
        still returned but not retained (sweeps favour predictability
        over eviction churn).
    pickle_entries:
        Store entries as pickled bytes and deserialize on every hit.
        Costs a serialisation round-trip but makes the cache robust to
        (and testable against) entry corruption: unreadable bytes are
        treated as a counted miss, never an aborted sweep.  The default
        in-memory mode applies the same treat-as-miss rule to any error
        raised while loading an entry.
    """

    def __init__(self, max_entries: Optional[int] = None,
                 pickle_entries: bool = False) -> None:
        self._store: Dict[Any, Any] = {}
        self._lock = threading.Lock()
        self._hits = 0
        self._misses = 0
        self._corrupt = 0
        self.max_entries = max_entries
        self.pickle_entries = pickle_entries

    @property
    def hits(self) -> int:
        """Lookups served from the store so far."""
        return self._hits

    @property
    def misses(self) -> int:
        """Lookups that had to compute so far."""
        return self._misses

    @property
    def corrupt(self) -> int:
        """Entries found unreadable (evicted and recomputed) so far."""
        return self._corrupt

    def __len__(self) -> int:
        return len(self._store)

    def __contains__(self, key: Any) -> bool:
        return key in self._store

    def _dump(self, value: Any) -> Any:
        if self.pickle_entries:
            return pickle.dumps(value, protocol=pickle.HIGHEST_PROTOCOL)
        return value

    def _load(self, raw: Any) -> Any:
        _fire_fault("sweep.cache")
        if self.pickle_entries:
            return pickle.loads(raw)
        return raw

    def get_or_compute(self, key: Any, compute: Callable[[], Any]) -> Any:
        """Return the cached value for ``key``, computing it on a miss.

        An entry that cannot be loaded (corrupt pickled bytes, injected
        corruption, any error from the load path) is evicted, counted
        in :attr:`corrupt`, and treated as a miss.
        """
        with self._lock:
            if key in self._store:
                raw = self._store[key]
                try:
                    value = self._load(raw)
                except Exception:
                    self._corrupt += 1
                    self._misses += 1
                    del self._store[key]
                else:
                    self._hits += 1
                    return value
            else:
                self._misses += 1
        value = compute()
        with self._lock:
            if self.max_entries is None or len(self._store) < self.max_entries:
                self._store[key] = self._dump(value)
        return value

    def stats(self) -> CacheStats:
        """Snapshot of the counters."""
        with self._lock:
            return CacheStats(hits=self._hits, misses=self._misses,
                              entries=len(self._store),
                              corrupt=self._corrupt,
                              max_entries=self.max_entries)

    def clear(self) -> None:
        """Drop every entry and reset the counters."""
        with self._lock:
            self._store.clear()
            self._hits = 0
            self._misses = 0
            self._corrupt = 0


#: Per-process cache used by sweep worker processes.  Living at module
#: scope, it survives across the many tasks one pool worker executes, so
#: later candidates reuse earlier candidates' sub-solves.
_WORKER_CACHE: Optional[SolverCache] = None


def worker_cache() -> SolverCache:
    """The calling process's sweep cache singleton (created on demand).

    Bounded at :data:`DEFAULT_WORKER_CACHE_MAX_ENTRIES` by default so a
    resumed multi-hour campaign cannot grow worker memory without
    limit; the bound travels into :class:`CacheStats.max_entries` and
    the sweep report's cache line.
    """
    global _WORKER_CACHE
    if _WORKER_CACHE is None:
        _WORKER_CACHE = SolverCache(
            max_entries=DEFAULT_WORKER_CACHE_MAX_ENTRIES)
    return _WORKER_CACHE
