"""Keyed memo cache for solver results, with hit/miss accounting.

One sweep over a cooling-mode × TIM × form-factor × power grid reaches
the *same* sub-problems from many candidates: every TIM choice shares
the rack airflow solve, every cooling mode shares the level-1 technique
scan at a given power, and so on.  :class:`SolverCache` memoises those
sub-evaluations under stable content fingerprints
(:func:`avipack.fingerprint.stable_fingerprint`) so each distinct solve
runs once per process.

The cache is deliberately duck-typed: solver entry points accept any
object with ``get_or_compute(key, compute)`` so the numerical modules
never import :mod:`avipack.sweep`.

In a parallel sweep each worker process holds its own
:func:`worker_cache` singleton that persists across the tasks the worker
executes; per-task hit/miss deltas travel back with each result and are
aggregated by the runner into sweep-level statistics.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Any, Callable, Dict, Optional

__all__ = ["CacheStats", "SolverCache", "worker_cache"]


@dataclass(frozen=True)
class CacheStats:
    """Aggregate hit/miss counters of one cache (or one sweep)."""

    hits: int
    misses: int
    entries: int

    @property
    def lookups(self) -> int:
        """Total lookups answered."""
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from memory (0 when unused)."""
        if not self.lookups:
            return 0.0
        return self.hits / self.lookups

    def merged(self, other: "CacheStats") -> "CacheStats":
        """Combine counters from another cache (e.g. another worker)."""
        return CacheStats(hits=self.hits + other.hits,
                          misses=self.misses + other.misses,
                          entries=self.entries + other.entries)


class SolverCache:
    """Content-keyed memo store with hit/miss counters.

    Thread-safe for the simple reason sweeps need: concurrent
    ``get_or_compute`` calls never corrupt the store.  A missed key may
    be computed twice under a race (last write wins) — acceptable for
    pure solver functions, and the serial/process-pool runners never
    race anyway.

    Parameters
    ----------
    max_entries:
        Optional bound on stored results.  When full, new results are
        still returned but not retained (sweeps favour predictability
        over eviction churn).
    """

    def __init__(self, max_entries: Optional[int] = None) -> None:
        self._store: Dict[Any, Any] = {}
        self._lock = threading.Lock()
        self._hits = 0
        self._misses = 0
        self.max_entries = max_entries

    @property
    def hits(self) -> int:
        """Lookups served from the store so far."""
        return self._hits

    @property
    def misses(self) -> int:
        """Lookups that had to compute so far."""
        return self._misses

    def __len__(self) -> int:
        return len(self._store)

    def __contains__(self, key: Any) -> bool:
        return key in self._store

    def get_or_compute(self, key: Any, compute: Callable[[], Any]) -> Any:
        """Return the cached value for ``key``, computing it on a miss."""
        with self._lock:
            if key in self._store:
                self._hits += 1
                return self._store[key]
            self._misses += 1
        value = compute()
        with self._lock:
            if self.max_entries is None or len(self._store) < self.max_entries:
                self._store[key] = value
        return value

    def stats(self) -> CacheStats:
        """Snapshot of the counters."""
        with self._lock:
            return CacheStats(hits=self._hits, misses=self._misses,
                              entries=len(self._store))

    def clear(self) -> None:
        """Drop every entry and reset the counters."""
        with self._lock:
            self._store.clear()
            self._hits = 0
            self._misses = 0


#: Per-process cache used by sweep worker processes.  Living at module
#: scope, it survives across the many tasks one pool worker executes, so
#: later candidates reuse earlier candidates' sub-solves.
_WORKER_CACHE: Optional[SolverCache] = None


def worker_cache() -> SolverCache:
    """The calling process's sweep cache singleton (created on demand)."""
    global _WORKER_CACHE
    if _WORKER_CACHE is None:
        _WORKER_CACHE = SolverCache()
    return _WORKER_CACHE
