"""Design-space enumeration: candidate stacks and grids over them.

The paper's "design at a minimum cost and in one shot" objective is, in
practice, a batch problem: hundreds of candidate packaging stacks —
cooling mode × TIM × form factor × power budget × plenum layout — are
pushed through the level-1/2/3 pyramid and the mechanical branch, and
the cheapest compliant stack wins.  This module provides the vocabulary
for that batch:

* :class:`Candidate` — one point of the design space, a *plain record*
  (deliberately unvalidated at construction so invalid points surface as
  structured failures during the sweep, not as an aborted enumeration);
* :class:`DesignSpace` — named axes over candidate fields with
  deterministic full-grid enumeration and seeded sub-sampling.

``Candidate.build()`` realises the point into the objects the design
procedure consumes (:class:`~avipack.packaging.rack.Rack`,
:class:`~avipack.core.design_flow.PackagingSpecification`), raising the
library's usual :class:`~avipack.errors.InputError` family for invalid
combinations.
"""

from __future__ import annotations

import itertools
import random
from dataclasses import dataclass, fields, replace
from typing import Dict, Iterator, List, Sequence, Tuple

from ..core.design_flow import PackagingSpecification
from ..errors import InputError
from ..fingerprint import stable_fingerprint
from ..packaging.cooling import CoolingTechnique, ModuleEnvelope
from ..packaging.formfactors import ATR_WIDTHS, AtrCase
from ..packaging.module import Module
from ..packaging.pcb import Pcb, dummy_resistive_pcb
from ..packaging.rack import Rack
from ..tim.catalog import get_tim

__all__ = ["Candidate", "DesignSpace"]

#: Clamped-edge TIM contact strip width [m] (wedge-lock rail footprint).
_EDGE_STRIP_WIDTH = 8.0e-3


def _coerce_cooling(value) -> CoolingTechnique:
    """Accept a :class:`CoolingTechnique` or its string value."""
    if isinstance(value, CoolingTechnique):
        return value
    try:
        return CoolingTechnique(value)
    except ValueError:
        raise InputError(
            f"unknown cooling technique {value!r}; known: "
            f"{sorted(t.value for t in CoolingTechnique)}") from None


@dataclass(frozen=True)
class Candidate:
    """One candidate packaging stack of the design space.

    Fields are stored as given — validation happens in :meth:`build` so
    a sweep over a grid containing broken points completes, reporting
    per-candidate failures.

    Parameters
    ----------
    power_per_module:
        Module dissipation budget [W].
    n_modules:
        Slots populated in the rack.
    cooling:
        Declared cooling technique (enum or its string value).
    tim_name:
        Catalogue name of the wedge-lock interface TIM
        (:func:`avipack.tim.catalog.get_tim`).
    form_factor:
        ATR width key (:data:`avipack.packaging.formfactors.ATR_WIDTHS`).
    series_fraction:
        Rack plenum layout, 0 = parallel feed, 1 = fully serial.
    temperature_category, vibration_curve:
        DO-160 environment selections for the specification.
    n_components:
        Dissipating components per board (level-3 population).
    long_case:
        ATR depth selection (318 vs 497 mm).
    """

    power_per_module: float = 20.0
    n_modules: int = 4
    cooling: object = CoolingTechnique.DIRECT_AIR_FLOW
    tim_name: str = "standard_grease"
    form_factor: str = "1/2_atr"
    series_fraction: float = 0.3
    temperature_category: str = "A1"
    vibration_curve: str = "C1"
    n_components: int = 6
    long_case: bool = False

    @property
    def fingerprint(self) -> str:
        """Stable content fingerprint of the design point."""
        return stable_fingerprint(self)

    @property
    def label(self) -> str:
        """Short human-readable identifier for tables and logs."""
        technique = (self.cooling.value
                     if isinstance(self.cooling, CoolingTechnique)
                     else str(self.cooling))
        return (f"{self.power_per_module:g}W x{self.n_modules} "
                f"{self.form_factor} {technique} {self.tim_name} "
                f"sf{self.series_fraction:g}")

    # -- realisation ---------------------------------------------------------

    def envelope(self) -> ModuleEnvelope:
        """Module envelope for the chosen form factor and TIM.

        The case sets the board size (depth × height with card margins);
        the TIM sets the wedge-lock edge conductance: the stock rail
        conductance in series with the assembled interface resistance.
        """
        case = AtrCase(size=self.form_factor, long_case=self.long_case)
        board_length = case.depth - 0.04
        board_width = case.height - 0.03
        tim = get_tim(self.tim_name)
        interface = tim.assemble(area=board_length * _EDGE_STRIP_WIDTH)
        rail_conductance = 8.0
        edge_conductance = 1.0 / (1.0 / rail_conductance
                                  + interface.resistance)
        return ModuleEnvelope(
            board_length=board_length,
            board_width=board_width,
            edge_conductance=edge_conductance,
            shell_area=case.external_area / max(self.n_modules, 1),
        )

    def board(self) -> Pcb:
        """The candidate's populated PCB (resistive test-vehicle style)."""
        envelope = self.envelope()
        return dummy_resistive_pcb(envelope.board_length,
                                   envelope.board_width,
                                   self.power_per_module,
                                   n_resistors=self.n_components)

    def build(self) -> Tuple[Rack, PackagingSpecification]:
        """Realise the candidate into a rack and its specification.

        Raises
        ------
        InputError
            For any invalid field combination (negative power, unknown
            TIM or form factor, out-of-range series fraction, ...).
        """
        if self.n_modules < 1:
            raise InputError("candidate needs at least one module")
        if self.power_per_module <= 0.0:
            raise InputError("power per module must be positive")
        technique = _coerce_cooling(self.cooling)
        envelope = self.envelope()
        rack = Rack(name=f"sweep_{self.form_factor}",
                    series_fraction=self.series_fraction)
        for slot in range(self.n_modules):
            rack.add_module(Module(
                name=f"m{slot + 1}",
                pcb=self.board(),
                envelope=envelope,
                technique=technique,
            ))
        spec = PackagingSpecification(
            name=self.label,
            temperature_category_name=self.temperature_category,
            vibration_curve_name=self.vibration_curve,
        )
        return rack, spec


_CANDIDATE_FIELDS = frozenset(f.name for f in fields(Candidate))


class DesignSpace:
    """Named axes over :class:`Candidate` fields.

    Examples
    --------
    >>> space = DesignSpace({
    ...     "power_per_module": (10.0, 30.0),
    ...     "tim_name": ("standard_grease", "nanopack_silver_flake_epoxy"),
    ... })
    >>> space.size
    4
    >>> [c.power_per_module for c in space.grid()]
    [10.0, 10.0, 30.0, 30.0]
    """

    def __init__(self, axes: Dict[str, Sequence],
                 base: Candidate = Candidate()) -> None:
        if not axes:
            raise InputError("design space needs at least one axis")
        for name, values in axes.items():
            if name not in _CANDIDATE_FIELDS:
                raise InputError(
                    f"unknown candidate field {name!r}; known: "
                    f"{sorted(_CANDIDATE_FIELDS)}")
            if not len(tuple(values)):
                raise InputError(f"axis {name!r} has no values")
        self.axes: Dict[str, Tuple] = {name: tuple(values)
                                       for name, values in axes.items()}
        self.base = base

    @property
    def size(self) -> int:
        """Number of grid points (product of axis lengths)."""
        total = 1
        for values in self.axes.values():
            total *= len(values)
        return total

    def __len__(self) -> int:
        return self.size

    def grid(self) -> Iterator[Candidate]:
        """Yield every combination, deterministically.

        The last-declared axis varies fastest (row-major over the axes
        in declaration order), so enumeration order is a stable function
        of the space definition alone.
        """
        names = list(self.axes)
        for combo in itertools.product(*(self.axes[n] for n in names)):
            yield replace(self.base, **dict(zip(names, combo, strict=True)))

    def sample(self, n: int, seed: int = 0) -> List[Candidate]:
        """A seeded uniform sub-sample of the grid, without replacement.

        Deterministic for a given ``(axes, n, seed)``; useful to scout a
        large space before committing to the full grid.
        """
        if n < 1:
            raise InputError("sample size must be >= 1")
        size = self.size
        if n >= size:
            return list(self.grid())
        rng = random.Random(seed)
        picks = sorted(rng.sample(range(size), n))
        wanted = iter(picks)
        target = next(wanted)
        chosen: List[Candidate] = []
        for index, candidate in enumerate(self.grid()):
            if index == target:
                chosen.append(candidate)
                target = next(wanted, None)
                if target is None:
                    break
        return chosen

    @classmethod
    def standard_tradeoff(cls, powers: Sequence[float] = (10.0, 20.0, 30.0),
                          form_factors: Sequence[str] = ("1/2_atr", "1_atr"),
                          ) -> "DesignSpace":
        """The canonical cooling × TIM × form × power trade space.

        Covers every Fig. 5 cooling principle and a cheap/NANOPACK TIM
        pair over the given power budgets and ATR widths.
        """
        for form in form_factors:
            if form not in ATR_WIDTHS:
                raise InputError(f"unknown ATR size {form!r}")
        return cls({
            "power_per_module": tuple(powers),
            "form_factor": tuple(form_factors),
            "cooling": tuple(CoolingTechnique),
            "tim_name": ("standard_grease", "nanopack_silver_flake_epoxy"),
        })
