"""Batch-capable sweep evaluator over raw thermal networks.

:class:`NetworkSweepEvaluator` plugs a *network-level* workload into the
sweep infrastructure (journaling, failure isolation, caching,
reporting) and — unlike the generic design-procedure evaluator — knows
how to evaluate many candidates *at once*: it declares
``supports_batch`` and provides :meth:`~NetworkSweepEvaluator.
evaluate_batch`, which :class:`~avipack.sweep.runner.SweepRunner`
routes whole task lists through.  Internally the candidates' networks
are handed to :func:`avipack.thermal.batch.solve_batched`, which groups
them by structural fingerprint and advances each topology group as one
vectorized system (stacked assembly, shared LU factorizations,
multi-RHS solves, masked fixed-point iteration).

Cache semantics match the scalar path exactly: each candidate's solve
is keyed with the same fingerprint key
:meth:`avipack.thermal.network.ThermalNetwork.solve` uses with a
``cache=`` argument, so batch-path and scalar-path runs share entries —
a candidate solved by one path is a cache hit for the other.

The evaluator is a plain picklable object, so the same instance also
works on the process-pool paths (where it is called per task and solves
scalar, one candidate per worker).
"""

from __future__ import annotations

import contextlib
import dataclasses
import os
import time
import traceback
from typing import Callable, List, Optional, Tuple

from .. import perf as _perf
from ..errors import InputError
from ..fingerprint import stable_fingerprint
from ..resilience import faults as _faults
from ..thermal.batch import DEFAULT_MIN_BATCH, BatchOutcome, solve_batched
from ..thermal.network import NetworkSolution, ThermalNetwork
from .runner import (
    CandidateFailure,
    CandidateOutcome,
    CandidateResult,
    _cost_rank,
    _exception_details,
    _unpack_task,
)

__all__ = ["NetworkSweepEvaluator"]

#: Sentinel distinguishing "cache probe found nothing" from any value.
_MISS = object()


class NetworkSweepEvaluator:
    """Evaluate sweep candidates as raw thermal-network solves.

    Parameters
    ----------
    build_network:
        Picklable callable ``(candidate) -> ThermalNetwork`` realising
        one design point into the network to solve.  Build failures
        become per-candidate :class:`~avipack.sweep.runner.
        CandidateFailure` records, never an aborted sweep.
    board_limit_c:
        Compliance limit on the hottest *free* node [°C]; candidates
        above it are recorded non-compliant with a structured
        violation.
    initial_guess, max_iterations, tolerance, relaxation:
        Solver settings, forwarded identically to the scalar and the
        batched path (the parity contract depends on it).
    min_batch:
        Smallest topology group worth vectorizing; smaller groups take
        the scalar path inside :func:`~avipack.thermal.batch.
        solve_batched`.

    Notes
    -----
    When used as a plain per-task evaluator (``__call__``), behaviour
    matches the sweep's custom-evaluator protocol: one candidate per
    call, scalar solve, cache honoured.  When the runner batches
    (:meth:`evaluate_batch`), outcomes additionally carry
    ``batched=True`` for every candidate the vectorized path answered.
    """

    #: SweepRunner routes task lists through :meth:`evaluate_batch`
    #: when this attribute is truthy (and ``batch`` is not disabled).
    supports_batch = True

    def __init__(self, build_network: Callable[..., ThermalNetwork], *,
                 board_limit_c: float = 85.0,
                 initial_guess: float = 320.0, max_iterations: int = 200,
                 tolerance: float = 1e-8, relaxation: float = 0.7,
                 min_batch: int = DEFAULT_MIN_BATCH) -> None:
        if not callable(build_network):
            raise InputError("build_network must be callable")
        if not 0.0 < relaxation <= 1.0:
            raise InputError("relaxation must be in (0, 1]")
        self.build_network = build_network
        self.board_limit_c = float(board_limit_c)
        self.initial_guess = float(initial_guess)
        self.max_iterations = int(max_iterations)
        self.tolerance = float(tolerance)
        self.relaxation = float(relaxation)
        self.min_batch = int(min_batch)

    # -- cache key (shared with ThermalNetwork.solve) -----------------------

    def _solve_key(self, network: ThermalNetwork) -> str:
        """The exact memo key ``network.solve(cache=...)`` would use."""
        return stable_fingerprint(
            "network_solve", network.fingerprint(), self.initial_guess,
            self.max_iterations, self.tolerance, self.relaxation, None)

    def _resolve_cache(self, use_cache: bool, cache_dir: Optional[str],
                       cache):
        if not use_cache:
            return None
        if cache is not None:
            return cache
        if cache_dir is not None:
            from ..durability.diskcache import worker_disk_cache
            return worker_disk_cache(cache_dir)
        from .cache import worker_cache
        return worker_cache()

    # -- outcome builders ----------------------------------------------------

    def _result(self, index: int, candidate, solution: NetworkSolution,
                network: ThermalNetwork, elapsed_s: float,
                cache_hits: int, cache_misses: int,
                perf: Tuple = (), batched: bool = False
                ) -> CandidateResult:
        free = [name for name in network.node_names
                if network.node_fixed_temperature(name) is None]
        worst_c = (max(solution.temperatures[name] for name in free)
                   - 273.15 if free else -273.15)
        violations: Tuple[str, ...] = ()
        if worst_c > self.board_limit_c:
            violations = (
                f"hottest free node {worst_c:.1f} degC exceeds the "
                f"{self.board_limit_c:g} degC board limit",)
        return CandidateResult(
            index=index,
            candidate=candidate,
            fingerprint=candidate.fingerprint,
            compliant=not violations,
            violations=violations,
            margins={"network_board_margin_c":
                     self.board_limit_c - worst_c},
            worst_board_c=worst_c,
            recommended_cooling=None,
            declared_cooling_feasible=True,
            cost_rank=_cost_rank(candidate),
            elapsed_s=elapsed_s,
            worker_pid=os.getpid(),
            cache_hits=cache_hits,
            cache_misses=cache_misses,
            perf=perf,
            batched=batched,
        )

    def _failure(self, index: int, candidate, stage: str,
                 exc: BaseException, elapsed_s: float,
                 perf: Tuple = ()) -> CandidateFailure:
        return CandidateFailure(
            index=index,
            candidate=candidate,
            fingerprint=candidate.fingerprint,
            stage=stage,
            error_type=type(exc).__name__,
            message=str(exc),
            elapsed_s=elapsed_s,
            worker_pid=os.getpid(),
            traceback="".join(traceback.format_exception(
                type(exc), exc, exc.__traceback__)),
            details=_exception_details(exc),
            perf=perf,
        )

    # -- scalar protocol (process-pool workers, forced-scalar runs) ---------

    def __call__(self, task, cache=None) -> CandidateOutcome:
        """Evaluate one task tuple, scalar — the classic protocol."""
        index, candidate, use_cache, _policy, plan, cache_dir = \
            _unpack_task(task)
        injector = _faults.configure(plan)
        cache = self._resolve_cache(use_cache, cache_dir, cache)
        hits0 = cache.hits if cache else 0
        misses0 = cache.misses if cache else 0
        perf_before = _perf.snapshot()
        start = time.perf_counter()
        scope = (injector.scoped(index) if injector is not None
                 else contextlib.nullcontext())
        with scope:
            try:
                _faults.fire("sweep.worker")
                stage = "build"
                network = self.build_network(candidate)
                stage = "solve"
                solution = network.solve(
                    initial_guess=self.initial_guess,
                    max_iterations=self.max_iterations,
                    tolerance=self.tolerance, relaxation=self.relaxation,
                    cache=cache)
            except Exception as exc:
                return self._failure(index, candidate, stage, exc,
                                     time.perf_counter() - start,
                                     _perf.delta_since(perf_before))
        return self._result(
            index, candidate, solution, network,
            time.perf_counter() - start,
            (cache.hits - hits0) if cache else 0,
            (cache.misses - misses0) if cache else 0,
            _perf.delta_since(perf_before))

    # -- batched protocol ----------------------------------------------------

    def evaluate_batch(self, tasks: List[tuple],
                       cache=None) -> List[CandidateOutcome]:
        """Evaluate a whole task list through the batched solver core.

        Candidates are built, probed against the cache under the scalar
        solve key, and everything unanswered is handed to
        :func:`~avipack.thermal.batch.solve_batched` in one call —
        topology grouping, shared factorizations and convergence
        masking happen there.  Per-candidate failure isolation is
        unchanged: build errors, negative callables, non-convergence
        and invalid networks come back as structured
        :class:`~avipack.sweep.runner.CandidateFailure` records in
        candidate order.

        Solver counters accumulated by the whole batch are attached to
        the first solver-path outcome (the registry delta cannot be
        split per candidate once solves are vectorized); cache-hit
        outcomes carry none.
        """
        if not tasks:
            return []
        _faults.configure(_unpack_task(tasks[0])[4])
        start = time.perf_counter()
        perf_before = _perf.snapshot()
        unpacked = [_unpack_task(task) for task in tasks]
        _, _, use_cache, _, _, cache_dir = unpacked[0]
        cache = self._resolve_cache(use_cache, cache_dir, cache)

        outcomes: List[Optional[CandidateOutcome]] = [None] * len(tasks)
        pending: List[int] = []          # positions awaiting a solve
        networks: List[ThermalNetwork] = []
        hit_count = 0
        for position, (index, candidate, _, _, _, _) in enumerate(unpacked):
            t0 = time.perf_counter()
            try:
                network = self.build_network(candidate)
            except Exception as exc:
                outcomes[position] = self._failure(
                    index, candidate, "build", exc,
                    time.perf_counter() - t0)
                continue
            if cache is not None:
                key = self._solve_key(network)
                found = (cache.get_or_compute(key, lambda: _MISS)
                         if key in cache else _MISS)
                if found is not _MISS:
                    hit_count += 1
                    outcomes[position] = self._result(
                        index, candidate, found, network,
                        time.perf_counter() - t0, cache_hits=1,
                        cache_misses=0, batched=False)
                    continue
            pending.append(position)
            networks.append(network)

        if networks:
            solved = solve_batched(
                networks, initial_guess=self.initial_guess,
                max_iterations=self.max_iterations,
                tolerance=self.tolerance, relaxation=self.relaxation,
                min_batch=self.min_batch)
            share = ((time.perf_counter() - start) / len(networks))
            for position, network, outcome in zip(pending, networks,
                                                  solved, strict=True):
                index, candidate = unpacked[position][:2]
                outcomes[position] = self._batch_outcome(
                    index, candidate, network, outcome, cache, share)

        perf_delta = _perf.delta_since(perf_before)
        if perf_delta:
            for position in pending:
                outcome = outcomes[position]
                if isinstance(outcome, CandidateResult):
                    outcomes[position] = dataclasses.replace(
                        outcome, perf=perf_delta)
                    break
        return [outcome for outcome in outcomes if outcome is not None]

    def _batch_outcome(self, index: int, candidate,
                       network: ThermalNetwork, outcome: BatchOutcome,
                       cache, elapsed_s: float) -> CandidateOutcome:
        if outcome.error is not None:
            return self._failure(index, candidate, "solve",
                                 outcome.error, elapsed_s)
        solution = outcome.solution
        misses = 0
        if cache is not None:
            # Insert under the scalar solve key so a later scalar run
            # (or resume) of the same candidate hits; get_or_compute is
            # the store API and counts this as the one miss the scalar
            # first-solve would have counted.
            cache.get_or_compute(self._solve_key(network),
                                 lambda: solution)
            misses = 1
        return self._result(index, candidate, solution, network,
                            elapsed_s, cache_hits=0, cache_misses=misses,
                            batched=outcome.batched)
