"""Lightweight, zero-dependency solver instrumentation.

The compiled solver core (:mod:`avipack.thermal.network`,
:mod:`avipack.thermal.transient`, :mod:`avipack.thermal.conduction`)
caches compiled structures and LU factorizations so that a design-space
sweep pays for assembly and factorization once, not once per call.  This
module makes those savings *observable*: every kernel records
:class:`SolveStats` counters — compilations, operator assemblies,
factorizations, factorization reuses, linear solves, fixed-point/time
iterations and wall time — into a process-global registry.

The registry is deliberately minimal (a dict behind a lock, plain
dataclasses, stdlib only) so the instrumentation can stay enabled in
release code: one function call per solve-level event, no per-matrix-
entry work.

Typical use::

    from avipack import perf

    perf.reset()
    network.solve()
    network.solve()
    stats = perf.stats("network.steady")
    assert stats.factorizations == 1          # factorized once...
    assert stats.factorization_reuses == 1    # ...reused on the 2nd call

Sweeps aggregate across workers: each worker snapshots the registry
around a candidate evaluation, ships the per-candidate delta back with
the result, and :class:`~avipack.sweep.report.SweepReport` merges the
deltas into the campaign-level "PERFORMANCE" section.
"""

from __future__ import annotations

import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Dict, Iterable, Iterator, Mapping, Optional, Tuple, Union

from .errors import InputError

__all__ = [
    "SolveStats",
    "aggregate",
    "counter",
    "counters",
    "delta_since",
    "increment",
    "record",
    "reset",
    "snapshot",
    "stats",
    "timed",
]

#: Kernel names used by the built-in solvers, plus the sweep-service
#: job kernel (``solves`` = jobs completed, ``iterations`` = candidates
#: evaluated, ``wall_s`` = job wall-clock) the job server records so
#: service throughput shows up in the same registry as solver work,
#: plus the static-analysis engine's own wall-clock kernel.
KERNELS = ("network.steady", "network.transient", "network.batched",
           "conduction.steady", "conduction.transient", "service.job",
           "analysis.engine")

#: Registry of the named scalar counters (:func:`increment` family).
#: Declaring a counter here is the contract the AVI011 lint rule
#: enforces both ways: every entry must have a live increment site,
#: and every increment site must name an entry — so dashboards can
#: enumerate this tuple and trust that each name is real and fed.
COUNTERS = ("analysis.cache_hits", "analysis.call_edges",
            "analysis.files", "analysis.import_edges",
            "results.blob_fetches", "results.quarantined_checksum",
            "results.quarantined_header",
            "results.quarantined_truncation", "results.rows_ingested",
            "results.shards_quarantined", "results.shards_written",
            "retention.bytes_reclaimed", "retention.disk_low_refusals",
            "retention.evictions", "retention.journal_compactions",
            "retention.passes", "retention.store_compactions")


@dataclass(frozen=True)
class SolveStats:
    """Counters for one solver kernel.

    Attributes
    ----------
    kernel:
        Kernel name, e.g. ``"network.steady"``.
    compilations:
        Times a network/grid structure was lowered to index arrays and
        a reusable constant-part operator.
    assemblies:
        Times an operator matrix was (re)built.  A purely linear
        network assembles once per structure; a nonlinear fixed point
        re-assembles the callable part every iteration.
    factorizations:
        LU factorizations computed.
    factorization_reuses:
        Linear solves answered by a previously computed factorization
        (the cheap path the compiled core exists to hit).
    solves:
        Top-level solve/integrate calls.
    iterations:
        Fixed-point iterations (steady) or time steps (transient).
    batched_solves:
        Batched group solves executed (one topology-sharing candidate
        group advanced as a single vectorized system counts once,
        however many candidates it carries).
    batch_width:
        Total candidates answered through the batch path — the
        candidate axis the batched solver amortized structure over.
        ``batch_width / factorizations`` is the candidates-per-
        factorization figure the sweep throughput work targets
        (:attr:`candidates_per_factorization`).
    wall_s:
        Wall-clock seconds spent inside the kernel.
    """

    kernel: str
    compilations: int = 0
    assemblies: int = 0
    factorizations: int = 0
    factorization_reuses: int = 0
    solves: int = 0
    iterations: int = 0
    batched_solves: int = 0
    batch_width: int = 0
    wall_s: float = 0.0

    # -- arithmetic ----------------------------------------------------------

    def merged(self, other: "SolveStats") -> "SolveStats":
        """Counter-wise sum with another record of the same kernel."""
        if other.kernel != self.kernel:
            raise InputError(
                f"cannot merge {self.kernel!r} with {other.kernel!r}")
        return SolveStats(
            kernel=self.kernel,
            compilations=self.compilations + other.compilations,
            assemblies=self.assemblies + other.assemblies,
            factorizations=self.factorizations + other.factorizations,
            factorization_reuses=(self.factorization_reuses
                                  + other.factorization_reuses),
            solves=self.solves + other.solves,
            iterations=self.iterations + other.iterations,
            batched_solves=self.batched_solves + other.batched_solves,
            batch_width=self.batch_width + other.batch_width,
            wall_s=self.wall_s + other.wall_s)

    def minus(self, earlier: "SolveStats") -> "SolveStats":
        """Counter-wise difference (``self`` after, ``earlier`` before)."""
        if earlier.kernel != self.kernel:
            raise InputError(
                f"cannot diff {self.kernel!r} with {earlier.kernel!r}")
        return SolveStats(
            kernel=self.kernel,
            compilations=self.compilations - earlier.compilations,
            assemblies=self.assemblies - earlier.assemblies,
            factorizations=self.factorizations - earlier.factorizations,
            factorization_reuses=(self.factorization_reuses
                                  - earlier.factorization_reuses),
            solves=self.solves - earlier.solves,
            iterations=self.iterations - earlier.iterations,
            batched_solves=self.batched_solves - earlier.batched_solves,
            batch_width=self.batch_width - earlier.batch_width,
            wall_s=self.wall_s - earlier.wall_s)

    @property
    def empty(self) -> bool:
        """True when every counter is zero."""
        return not (self.compilations or self.assemblies
                    or self.factorizations or self.factorization_reuses
                    or self.solves or self.iterations
                    or self.batched_solves or self.batch_width
                    or self.wall_s)

    @property
    def reuse_rate(self) -> float:
        """Fraction of linear solves served by a cached factorization."""
        total = self.factorizations + self.factorization_reuses
        if not total:
            return 0.0
        return self.factorization_reuses / total

    @property
    def candidates_per_factorization(self) -> float:
        """Mean batch-path candidates amortized over one factorization.

        Zero while the batch path has not run (or factorized nothing):
        the figure only describes batched work, so scalar kernels report
        0.0 rather than a misleading ratio.
        """
        if not self.batch_width or not self.factorizations:
            return 0.0
        return self.batch_width / self.factorizations


_REGISTRY: Dict[str, SolveStats] = {}

#: Named scalar counters for subsystems whose events do not fit the
#: :class:`SolveStats` shape (dotted names, e.g. ``results.rows_ingested``,
#: ``results.shards_written``, ``results.blob_fetches``).
_COUNTERS: Dict[str, int] = {}
_LOCK = threading.Lock()


def record(kernel: str, *, compilations: int = 0, assemblies: int = 0,
           factorizations: int = 0, factorization_reuses: int = 0,
           solves: int = 0, iterations: int = 0, batched_solves: int = 0,
           batch_width: int = 0, wall_s: float = 0.0) -> None:
    """Accumulate counters for ``kernel`` in the process registry."""
    increment = SolveStats(
        kernel=kernel, compilations=compilations, assemblies=assemblies,
        factorizations=factorizations,
        factorization_reuses=factorization_reuses, solves=solves,
        iterations=iterations, batched_solves=batched_solves,
        batch_width=batch_width, wall_s=wall_s)
    with _LOCK:
        current = _REGISTRY.get(kernel)
        _REGISTRY[kernel] = (increment if current is None
                             else current.merged(increment))


def stats(kernel: str) -> SolveStats:
    """Current counters for ``kernel`` (all-zero if never recorded)."""
    with _LOCK:
        return _REGISTRY.get(kernel, SolveStats(kernel=kernel))


def snapshot() -> Dict[str, SolveStats]:
    """Copy of the whole registry (records are immutable)."""
    with _LOCK:
        return dict(_REGISTRY)


def reset(kernel: Optional[str] = None) -> None:
    """Zero one kernel's (or named counter's) records, or everything.

    With a name, both registries are consulted: kernel names and named
    scalar counters share the reset vocabulary so call sites need not
    care which family an instrumentation point belongs to.
    """
    with _LOCK:
        if kernel is None:
            _REGISTRY.clear()
            _COUNTERS.clear()
        else:
            _REGISTRY.pop(kernel, None)
            _COUNTERS.pop(kernel, None)


def increment(name: str, amount: int = 1) -> None:
    """Add ``amount`` to the named scalar counter (created at zero).

    The dotted-name companion to :func:`record` for subsystems — the
    columnar result store, notably — whose events are simple tallies
    rather than solver-shaped counter records.
    """
    with _LOCK:
        _COUNTERS[name] = _COUNTERS.get(name, 0) + amount


def counter(name: str) -> int:
    """Current value of one named scalar counter (0 if never bumped)."""
    with _LOCK:
        return _COUNTERS.get(name, 0)


def counters(prefix: Optional[str] = None) -> Dict[str, int]:
    """Copy of the named scalar counters, optionally prefix-filtered.

    ``counters("results.")`` returns every result-store counter; the
    mapping is sorted by name so renderings are deterministic.
    """
    with _LOCK:
        items = sorted(_COUNTERS.items())
    return {name: value for name, value in items
            if prefix is None or name.startswith(prefix)}


def delta_since(before: Dict[str, SolveStats]) -> Tuple[SolveStats, ...]:
    """Per-kernel counter deltas accumulated since ``before``.

    ``before`` is a prior :func:`snapshot`.  Kernels whose counters did
    not move are omitted; the result is ordered by kernel name so two
    identical evaluations produce identical tuples.
    """
    deltas = []
    for kernel, after in sorted(snapshot().items()):
        earlier = before.get(kernel)
        diff = after if earlier is None else after.minus(earlier)
        if not diff.empty:
            deltas.append(diff)
    return tuple(deltas)


def aggregate(groups: Iterable[Iterable[SolveStats]]
              ) -> Tuple[SolveStats, ...]:
    """Merge many per-candidate/per-worker delta tuples by kernel.

    Returns one record per kernel, ordered by kernel name — the shape
    the sweep report renders.
    """
    by_kernel: Dict[str, SolveStats] = {}
    for group in groups:
        for record_ in group:
            current = by_kernel.get(record_.kernel)
            by_kernel[record_.kernel] = (
                record_ if current is None else current.merged(record_))
    return tuple(by_kernel[name] for name in sorted(by_kernel))


@contextmanager
def timed(kernel: str) -> Iterator[None]:
    """Context manager adding the block's wall time to ``kernel``."""
    start = time.perf_counter()
    try:
        yield
    finally:
        record(kernel, wall_s=time.perf_counter() - start)


def format_stats(records: Union[Iterable[SolveStats],
                                Mapping[str, SolveStats]]
                 ) -> Tuple[str, ...]:
    """Render records as aligned plain-text lines (report furniture).

    Accepts either an iterable of records or a :func:`snapshot`-style
    mapping (rendered in kernel-name order).
    """
    if isinstance(records, Mapping):
        records = [records[kernel] for kernel in sorted(records)]
    lines = []
    for item in records:
        line = (
            f"{item.kernel:<22} solves {item.solves:>6}  "
            f"iter {item.iterations:>7}  asm {item.assemblies:>6}  "
            f"LU {item.factorizations:>5}  "
            f"reuse {item.factorization_reuses:>7} "
            f"({item.reuse_rate:.0%})  {item.wall_s:8.3f} s")
        if item.batch_width:
            line += (f"  batched {item.batched_solves} "
                     f"width {item.batch_width} "
                     f"(cand/LU {item.candidates_per_factorization:.0f})")
        lines.append(line)
    return tuple(lines)
