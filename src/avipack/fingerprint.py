"""Stable structural fingerprints for solver memoisation.

The design-space sweep engine (:mod:`avipack.sweep`) avoids recomputing
identical sub-problems — the same rack solve, the same finite-volume
board solve, the same cooling-technique scan — reached from different
candidates.  That requires a *stable, content-based* key for arbitrary
model objects: two objects that would produce the same solver result
must hash identically, within a process and across worker processes.

:func:`stable_fingerprint` walks a value structurally and feeds a
canonical byte encoding into SHA-1:

* scalars (``None``, ``bool``, ``int``, ``float``, ``str``, ``bytes``)
  are encoded by type tag and ``repr`` (exact for floats);
* enums encode as class + value;
* numpy arrays encode dtype, shape and raw bytes;
* dataclasses encode class qualname + every field, recursively;
* mappings encode sorted items; sequences encode element order;
* objects exposing a ``fingerprint()`` method delegate to it;
* callables encode module + qualname only — *by identity of the code
  location, not behaviour* — so closures over changing state must not be
  fingerprinted (the nonlinear-network caveat documented in
  :meth:`avipack.thermal.network.ThermalNetwork.fingerprint`).

Python's built-in ``hash`` is unsuitable: it is salted per process for
strings, which would defeat cross-process cache accounting.
"""

from __future__ import annotations

import dataclasses
import enum
import hashlib
import zlib
from typing import Any, Union

import numpy as np

__all__ = ["content_crc32", "content_digest", "stable_fingerprint"]


def _feed(digest: "hashlib._Hash", value: Any) -> None:
    """Feed one value into ``digest`` using a canonical type-tagged form."""
    if value is None:
        digest.update(b"N;")
    elif isinstance(value, bool):
        digest.update(b"b1;" if value else b"b0;")
    elif isinstance(value, int):
        digest.update(b"i" + repr(value).encode() + b";")
    elif isinstance(value, float):
        digest.update(b"f" + repr(value).encode() + b";")
    elif isinstance(value, str):
        digest.update(b"s" + value.encode("utf-8") + b";")
    elif isinstance(value, bytes):
        digest.update(b"y" + value + b";")
    elif isinstance(value, enum.Enum):
        digest.update(b"e" + type(value).__qualname__.encode() + b":")
        _feed(digest, value.value)
    elif isinstance(value, np.ndarray):
        digest.update(b"a" + str(value.dtype).encode() + b":"
                      + repr(value.shape).encode() + b":")
        digest.update(np.ascontiguousarray(value).tobytes())
        digest.update(b";")
    elif isinstance(value, np.generic):
        _feed(digest, value.item())
    elif dataclasses.is_dataclass(value) and not isinstance(value, type):
        digest.update(b"d" + type(value).__qualname__.encode() + b"{")
        for field in dataclasses.fields(value):
            digest.update(field.name.encode() + b"=")
            _feed(digest, getattr(value, field.name))
        digest.update(b"};")
    elif isinstance(value, dict):
        digest.update(b"m{")
        for key in sorted(value, key=repr):
            _feed(digest, key)
            digest.update(b":")
            _feed(digest, value[key])
        digest.update(b"};")
    elif isinstance(value, (list, tuple)):
        digest.update(b"l[" if isinstance(value, list) else b"t[")
        for item in value:
            _feed(digest, item)
        digest.update(b"];")
    elif isinstance(value, (set, frozenset)):
        digest.update(b"S{")
        for item in sorted(value, key=repr):
            _feed(digest, item)
        digest.update(b"};")
    elif hasattr(value, "fingerprint") and callable(value.fingerprint):
        digest.update(b"F" + value.fingerprint().encode() + b";")
    elif callable(value):
        module = getattr(value, "__module__", "") or ""
        qualname = getattr(value, "__qualname__", repr(value))
        digest.update(b"c" + module.encode() + b":"
                      + qualname.encode() + b";")
    else:
        # Last resort: type + repr.  Adequate for simple value objects;
        # objects with unstable reprs should grow a fingerprint() method.
        digest.update(b"r" + type(value).__qualname__.encode() + b":"
                      + repr(value).encode() + b";")


def stable_fingerprint(*values: Any) -> str:
    """Hex digest identifying ``values`` structurally and stably.

    Equal content gives equal digests in every process and session;
    structurally different content gives (overwhelmingly likely)
    different digests.  Accepts multiple values so call sites can key on
    ``stable_fingerprint("level2", rack, board_limit)`` directly.
    """
    digest = hashlib.sha1()
    for value in values:
        _feed(digest, value)
    return digest.hexdigest()


def content_digest(data: Union[bytes, str]) -> str:
    """SHA-256 hex digest of raw bytes (strings are UTF-8 encoded).

    The integrity checksum used by the durability layer
    (:mod:`avipack.durability`) for journal records and on-disk cache
    entries: unlike :func:`stable_fingerprint` it hashes the *exact
    serialized bytes*, so any bit flip in a persisted artefact changes
    the digest.
    """
    if isinstance(data, str):
        data = data.encode("utf-8")
    return hashlib.sha256(data).hexdigest()


def content_crc32(data: Union[bytes, str]) -> str:
    """CRC-32 of raw bytes as 8 hex digits (strings are UTF-8 encoded).

    The cheap first-line checksum on journal records; a mismatch is
    settled by the authoritative :func:`content_digest` anyway, but the
    CRC catches the common torn-write/bit-rot cases without hashing
    twice over intact files.
    """
    if isinstance(data, str):
        data = data.encode("utf-8")
    return f"{zlib.crc32(data) & 0xFFFFFFFF:08x}"
