"""Zero-unpickle analytics over a :class:`~avipack.results.store.ResultStore`.

Every query here runs on the store's typed columns — ranking, histograms
and per-axis marginals over a million-candidate campaign touch memory-
mapped float and byte arrays only, never the pickled outcome blobs.

The ranking contract matches :meth:`avipack.sweep.report.SweepReport.ranked`
exactly: compliant candidates ordered by ``(cost_rank, -thermal_headroom_c,
index)``.  ``thermal_headroom_c`` is stored at ingest with the same float64
subtraction the dataclass property performs, so the sort keys — and
therefore the ranking — are byte-identical to the in-memory baseline.
"""

from __future__ import annotations

import dataclasses
from typing import Any, List, Optional, Tuple

import numpy as np

from ..errors import InputError
from .schema import AXIS_FIELDS, ROW_DTYPE
from .store import ResultStore

__all__ = [
    "AxisMarginal",
    "axis_marginals",
    "headroom_histogram",
    "ranked_row_ids",
    "ranking_signature",
]

#: Above this boundary-pool size the coarse ``np.partition`` cut is
#: refined on the headroom key before the exact lexsort, keeping the
#: final sort bounded even when one ``cost_rank`` value carries most of
#: the campaign.
_REFINE_THRESHOLD = 4096


def _live_compliant_ids(store: ResultStore) -> np.ndarray:
    """Global row ids of live (latest-per-fingerprint) compliant rows."""
    return np.flatnonzero(store.live_mask()
                          & store.column("compliant"))


def ranked_row_ids(store: ResultStore,
                   k: Optional[int] = None) -> np.ndarray:
    """Global row ids of the top-``k`` compliant candidates, in rank order.

    ``k=None`` returns the full ranking.  For small ``k`` against a
    large campaign the candidate pool is first cut with
    :func:`np.partition` on ``cost_rank`` (O(n)), then the bounded pool
    is sorted exactly — the selection itself never sorts all n rows.
    """
    if k is not None and k < 1:
        raise InputError(f"k must be >= 1, got {k}")
    ids = _live_compliant_ids(store)
    m = len(ids)
    if m == 0:
        return ids
    cost = store.column("cost_rank")[ids]
    head = store.column("thermal_headroom_c")[ids]
    index = store.column("index")[ids]

    if k is None or k >= m:
        order = np.lexsort((index, -head, cost))
        return ids[order]

    # Coarse cut: everything with cost_rank beyond the k-th smallest
    # value cannot be in the top k.
    kth_cost = np.partition(cost, k - 1)[k - 1]
    pool = np.flatnonzero(cost <= kth_cost)
    if len(pool) > max(k, _REFINE_THRESHOLD):
        # Tie-heavy boundary: keep all strictly-better rows, then cut
        # the boundary class on the secondary key (headroom, larger is
        # better).  Ties on the cut value stay in (superset is fine —
        # the exact sort below settles them).
        strict = np.flatnonzero(cost < kth_cost)
        boundary = np.flatnonzero(cost == kth_cost)
        need = k - len(strict)
        neg_head = -head[boundary]
        cut = np.partition(neg_head, need - 1)[need - 1]
        boundary = boundary[neg_head <= cut]
        pool = np.concatenate([strict, boundary])
    order = np.lexsort((index[pool], -head[pool], cost[pool]))
    return ids[pool[order[:k]]]


def ranking_signature(store: ResultStore,
                      k: Optional[int] = None
                      ) -> List[Tuple[str, float, float]]:
    """``(fingerprint, cost_rank, worst_board_c)`` per ranked candidate.

    The parity artifact: the same triple computed from in-memory
    outcomes must match element for element (floats bit-identical).
    """
    ids = ranked_row_ids(store, k)
    fps = store.gather("fingerprint", ids)
    cost = store.column("cost_rank")[ids]
    worst = store.column("worst_board_c")[ids]
    return [(fps[i].decode("ascii"), float(cost[i]), float(worst[i]))
            for i in range(len(ids))]


def headroom_histogram(store: ResultStore, bins: int = 20,
                       bounds: Optional[Tuple[float, float]] = None
                       ) -> Tuple[np.ndarray, np.ndarray]:
    """Histogram of thermal headroom [degC] over live compliant rows.

    Returns ``(counts, edges)`` as :func:`np.histogram` does; ``bounds``
    pins the range (else the data's min/max is used).
    """
    if bins < 1:
        raise InputError(f"bins must be >= 1, got {bins}")
    ids = _live_compliant_ids(store)
    head = store.column("thermal_headroom_c")[ids]
    if len(head) == 0:
        edges = np.linspace(*(bounds or (0.0, 1.0)), bins + 1)
        return np.zeros(bins, dtype=np.int64), edges
    return np.histogram(head, bins=bins, range=bounds)


@dataclasses.dataclass(frozen=True)
class AxisMarginal:
    """Campaign statistics for one value of one candidate axis."""

    #: Axis value (decoded to its Python representation).
    value: Any
    #: Live rows carrying this value (compliant or not).
    n: int
    #: Live compliant rows carrying this value.
    n_compliant: int
    #: Best (largest) thermal headroom [degC] among them (NaN if none).
    best_headroom_c: float
    #: Mean thermal headroom [degC] among them (NaN if none).
    mean_headroom_c: float

    @property
    def compliance_rate(self) -> float:
        return self.n_compliant / self.n if self.n else 0.0


def _decode_axis(values: np.ndarray) -> List[Any]:
    if values.dtype.kind == "S":
        return [value.decode("utf-8") for value in values]
    if values.dtype.kind == "b":
        return [bool(value) for value in values]
    if values.dtype.kind == "i":
        return [int(value) for value in values]
    return [float(value) for value in values]


def _axis_codes(store: ResultStore,
                field: str) -> Tuple[np.ndarray, np.ndarray]:
    """Unique values of an axis column plus per-row integer codes.

    Computed shard by shard off the memory maps: axis columns carry a
    handful of distinct values each, so the per-shard unique sets are
    tiny and the full-campaign column is never concatenated or sorted.
    """
    shard_uniques = []
    shard_codes = []
    for values in store.iter_column(field):
        u, codes = np.unique(values, return_inverse=True)
        shard_uniques.append(u)
        shard_codes.append(codes)
    if not shard_uniques:
        return (np.empty(0, dtype=ROW_DTYPE[field]),
                np.empty(0, dtype=np.int64))
    uniques = np.unique(np.concatenate(shard_uniques))
    inverse = np.empty(store.n_rows, dtype=np.int64)
    base = 0
    for u, codes in zip(shard_uniques, shard_codes):
        remap = np.searchsorted(uniques, u)
        inverse[base:base + len(codes)] = remap[codes]
        base += len(codes)
    return uniques, inverse


def axis_marginals(store: ResultStore,
                   field: str) -> List[AxisMarginal]:
    """Per-value marginals of one candidate axis, best headroom first.

    ``field`` must be one of :data:`~avipack.results.schema.AXIS_FIELDS`.
    Counts cover every live row; headroom statistics cover the compliant
    subset (failures carry NaN headroom by construction).
    """
    if field not in AXIS_FIELDS:
        raise InputError(
            f"unknown axis {field!r}; known: {', '.join(AXIS_FIELDS)}")
    live = store.live_mask()
    # Factor the axis column through its unique values once, then group
    # by the (small) integer codes — the wide string column itself is
    # never concatenated or copied per row mask.
    uniques, inverse = _axis_codes(store, field)
    n_values = len(uniques)
    compliant = live & store.column("compliant")
    counts = np.bincount(inverse[live], minlength=n_values)
    compliant_counts = np.bincount(inverse[compliant],
                                   minlength=n_values)
    best = np.full(n_values, -np.inf)
    sums = np.zeros(n_values)
    if compliant.any():
        groups = inverse[compliant]
        head = store.column("thermal_headroom_c")[compliant]
        np.maximum.at(best, groups, head)
        np.add.at(sums, groups, head)
    decoded = _decode_axis(uniques)
    marginals = []
    for position in range(n_values):
        if not counts[position]:
            # The value exists only in superseded (non-live) rows.
            continue
        n_comp = int(compliant_counts[position])
        marginals.append(AxisMarginal(
            value=decoded[position],
            n=int(counts[position]),
            n_compliant=n_comp,
            best_headroom_c=(float(best[position]) if n_comp
                             else float("nan")),
            mean_headroom_c=(float(sums[position]) / n_comp if n_comp
                             else float("nan"))))
    marginals.sort(key=lambda item: (
        -(item.best_headroom_c
          if item.n_compliant else -np.inf),
        str(item.value)))
    return marginals
