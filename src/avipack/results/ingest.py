"""Journal → columnar store ingestion.

The write-ahead journal remains the source of truth for a sweep's
history; the result store is its queryable projection.  This module
replays a journal (quarantining damaged records exactly as a resume
does) and writes the surviving outcomes — completed, failed, timed out,
recovered, degraded alike — into a store directory, preserving the
journal's latest-wins-per-fingerprint semantics via the store's
:meth:`~avipack.results.store.ResultStore.live_mask`.
"""

from __future__ import annotations

import dataclasses

from ..durability.journal import replay_journal
from .store import DEFAULT_SHARD_ROWS, ResultStoreWriter

__all__ = ["IngestSummary", "ingest_journal"]


@dataclasses.dataclass(frozen=True)
class IngestSummary:
    """What one journal ingestion pass produced."""

    #: Store directory the rows were written to.
    directory: str
    #: Outcome rows written (one per surviving journal outcome).
    n_rows: int
    #: Shards sealed by this pass.
    n_shards: int
    #: Journal records quarantined during replay (gaps, not rows).
    n_quarantined_records: int


def ingest_journal(journal_path: str, directory: str,
                   shard_rows: int = DEFAULT_SHARD_ROWS,
                   write_quarantine: bool = True) -> IngestSummary:
    """Replay ``journal_path`` and ingest every outcome into ``directory``.

    Outcomes are written in candidate-index order (deterministic shard
    layout for a given journal); damaged journal records are skipped
    and counted, mirroring :func:`avipack.durability.journal.replay_journal`.
    """
    replay = replay_journal(journal_path,
                            write_quarantine=write_quarantine)
    outcomes = sorted(replay.outcomes.values(),
                      key=lambda outcome: outcome.index)
    writer = ResultStoreWriter(directory, shard_rows=shard_rows)
    try:
        writer.add_many(outcomes)
    finally:
        writer.close()  # seals the partial shard before stats are read
    stats = writer.stats()
    return IngestSummary(
        directory=directory,
        n_rows=stats.rows_added,
        n_shards=stats.shards_sealed,
        n_quarantined_records=len(replay.quarantined))
