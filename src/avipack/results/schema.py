"""Columnar row schema for the campaign result store.

One sweep outcome — a :class:`~avipack.sweep.runner.CandidateResult` or
:class:`~avipack.sweep.runner.CandidateFailure` — flattens to one row of
:data:`ROW_DTYPE`, a packed numpy structured dtype.  Everything ranking,
histogramming and report rendering needs lives in typed columns
(fingerprint, margins, cost rank, thermal headroom, status flags,
timings, the candidate axes); everything heavy (the full outcome object
with its recovery trails, tracebacks and perf deltas) is pickled into
the shard's side blob pool and fetched lazily by row id.

The dtype is part of the on-disk contract: :data:`DTYPE_FINGERPRINT`
is stamped into every shard header, and a reader refuses (quarantines)
shards whose layout does not match byte for byte — a schema change must
bump :data:`STORE_SCHEMA_VERSION` rather than reinterpret old bytes.
"""

from __future__ import annotations

from typing import Any, Tuple

import numpy as np

from ..fingerprint import stable_fingerprint

__all__ = [
    "AXIS_FIELDS",
    "DTYPE_FINGERPRINT",
    "KIND_COMPLETED",
    "KIND_FAILED",
    "KIND_TIMEOUT",
    "ROW_DTYPE",
    "STORE_SCHEMA_VERSION",
    "fill_row",
    "outcome_kind",
]

#: Bump when :data:`ROW_DTYPE` changes; readers quarantine other versions.
STORE_SCHEMA_VERSION = 1

#: Outcome kinds, mirroring the journal's record vocabulary.
KIND_COMPLETED = 0
KIND_FAILED = 1
KIND_TIMEOUT = 2

#: The board-temperature limit [degC] behind ``thermal_headroom_c``
#: (kept equal to :attr:`CandidateResult.thermal_headroom_c`).
_BOARD_LIMIT_C = 85.0

#: One outcome per row, packed little-endian.  Margin columns are NaN
#: for failures; blob columns locate the pickled outcome in the shard's
#: side pool.
ROW_DTYPE = np.dtype([
    ("index", "<i8"),
    ("fingerprint", "S40"),
    ("kind", "u1"),
    ("compliant", "?"),
    ("degraded", "?"),
    ("recovered", "?"),
    ("batched", "?"),
    ("cost_rank", "<f8"),
    ("worst_board_c", "<f8"),
    ("thermal_headroom_c", "<f8"),
    ("fundamental_hz", "<f8"),
    ("fatigue_margin", "<f8"),
    ("deflection_margin", "<f8"),
    ("mtbf_hours", "<f8"),
    ("n_violations", "<u2"),
    ("n_recovery_trails", "<u2"),
    ("elapsed_s", "<f8"),
    ("worker_pid", "<i8"),
    ("cache_hits", "<i4"),
    ("cache_misses", "<i4"),
    ("cache_corrupt", "<i4"),
    ("power_per_module", "<f8"),
    ("n_modules", "<i4"),
    ("cooling", "S32"),
    ("tim_name", "S48"),
    ("form_factor", "S16"),
    ("series_fraction", "<f8"),
    ("temperature_category", "S8"),
    ("vibration_curve", "S8"),
    ("n_components", "<i4"),
    ("long_case", "?"),
    ("label", "S80"),
    ("stage", "S16"),
    ("error_type", "S40"),
    ("blob_offset", "<i8"),
    ("blob_length", "<i8"),
    ("blob_crc32", "<u4"),
])

#: Stable fingerprint of the dtype layout, stamped into shard headers.
DTYPE_FINGERPRINT = stable_fingerprint(ROW_DTYPE.descr)

#: Candidate-axis columns :func:`avipack.results.query.axis_marginals`
#: accepts, in :class:`~avipack.sweep.space.Candidate` field order.
AXIS_FIELDS: Tuple[str, ...] = (
    "power_per_module", "n_modules", "cooling", "tim_name",
    "form_factor", "series_fraction", "temperature_category",
    "vibration_curve", "n_components", "long_case",
)

#: Margin-summary keys copied verbatim into same-named f8 columns.
_MARGIN_FIELDS = ("fundamental_hz", "fatigue_margin",
                  "deflection_margin", "mtbf_hours")


def outcome_kind(outcome: Any) -> int:
    """Classify one outcome with the journal's kind vocabulary."""
    if getattr(outcome, "error_type", None) == "WatchdogTimeout":
        return KIND_TIMEOUT
    if hasattr(outcome, "error_type"):
        return KIND_FAILED
    return KIND_COMPLETED


def _truncated(text: str, width: int) -> bytes:
    """UTF-8 encode ``text`` clipped to a fixed column width."""
    return text.encode("utf-8", errors="replace")[:width]


def fill_row(rows: np.ndarray, position: int, outcome: Any,
             blob_offset: int, blob_length: int,
             blob_crc32: int) -> None:
    """Flatten one outcome into ``rows[position]``.

    ``rows`` must have dtype :data:`ROW_DTYPE` (typically the writer's
    pre-allocated shard buffer); the blob triplet locates the pickled
    outcome in the shard's side pool.
    """
    row = rows[position]
    candidate = outcome.candidate
    kind = outcome_kind(outcome)
    failed = kind != KIND_COMPLETED

    row["index"] = outcome.index
    row["fingerprint"] = outcome.fingerprint.encode("ascii")
    row["kind"] = kind
    row["compliant"] = bool(outcome.compliant)
    row["degraded"] = bool(getattr(outcome, "degraded", False))
    row["recovered"] = bool(getattr(outcome, "recovered", False))
    row["batched"] = bool(getattr(outcome, "batched", False))
    row["elapsed_s"] = outcome.elapsed_s
    row["worker_pid"] = outcome.worker_pid
    row["n_recovery_trails"] = len(getattr(outcome, "recovery", ()))
    row["blob_offset"] = blob_offset
    row["blob_length"] = blob_length
    row["blob_crc32"] = blob_crc32

    if failed:
        row["cost_rank"] = np.nan
        row["worst_board_c"] = np.nan
        row["thermal_headroom_c"] = np.nan
        for name in _MARGIN_FIELDS:
            row[name] = np.nan
        row["n_violations"] = 0
        row["cache_hits"] = 0
        row["cache_misses"] = 0
        row["cache_corrupt"] = 0
        row["stage"] = _truncated(getattr(outcome, "stage", ""), 16)
        row["error_type"] = _truncated(outcome.error_type, 40)
    else:
        row["cost_rank"] = outcome.cost_rank
        row["worst_board_c"] = outcome.worst_board_c
        # Stored rather than derived at query time; the float64
        # subtraction here is bit-identical to the dataclass property.
        row["thermal_headroom_c"] = _BOARD_LIMIT_C - outcome.worst_board_c
        margins = outcome.margins
        for name in _MARGIN_FIELDS:
            value = margins.get(name)
            row[name] = np.nan if value is None else float(value)
        row["n_violations"] = len(outcome.violations)
        row["cache_hits"] = outcome.cache_hits
        row["cache_misses"] = outcome.cache_misses
        row["cache_corrupt"] = getattr(outcome, "cache_corrupt", 0)
        row["stage"] = b""
        row["error_type"] = b""

    cooling = candidate.cooling
    cooling_text = getattr(cooling, "value", None)
    if not isinstance(cooling_text, str):
        cooling_text = str(cooling)
    row["power_per_module"] = candidate.power_per_module
    row["n_modules"] = candidate.n_modules
    row["cooling"] = _truncated(cooling_text, 32)
    row["tim_name"] = _truncated(candidate.tim_name, 48)
    row["form_factor"] = _truncated(candidate.form_factor, 16)
    row["series_fraction"] = candidate.series_fraction
    row["temperature_category"] = _truncated(
        candidate.temperature_category, 8)
    row["vibration_curve"] = _truncated(candidate.vibration_curve, 8)
    row["n_components"] = candidate.n_components
    row["long_case"] = bool(candidate.long_case)
    row["label"] = _truncated(candidate.label, 80)
