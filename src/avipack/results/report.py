"""Plain-text campaign report rendered straight from store columns.

The columnar twin of :func:`avipack.sweep.report.render_sweep_document`:
the ranking table, headroom histogram and axis marginals are computed
from typed columns only — no outcome blob is unpickled, whatever the
campaign size.  The candidate description comes from the stored
``label`` column, which exists precisely so rendering stays
zero-unpickle.
"""

from __future__ import annotations

import numpy as np

from .query import axis_marginals, headroom_histogram, ranked_row_ids
from .schema import AXIS_FIELDS
from .store import ResultStore

__all__ = ["render_store_report"]

_RULE = "=" * 72


def _format_value(value: object) -> str:
    if isinstance(value, float):
        return f"{value:g}"
    return str(value)


def render_store_report(store: ResultStore, top: int = 10,
                        histogram_bins: int = 12) -> str:
    """Render the campaign analytics document for one result store."""
    live = store.live_mask()
    n_live = int(live.sum())
    compliant = store.column("compliant")
    n_compliant = int((live & compliant).sum())
    kinds = store.column("kind")[live]
    lines = [
        _RULE,
        "CAMPAIGN RESULT STORE".center(72),
        _RULE,
        "",
        f"  Store directory : {store.directory}",
        f"  Shards          : {store.n_shards}"
        + (f"  (quarantined: {len(store.quarantined)})"
           if store.quarantined else ""),
        f"  Rows            : {store.n_rows}"
        f"  (live candidates: {n_live})",
        f"  Compliant       : {n_compliant}",
        f"  Failed/timeout  : {int((kinds != 0).sum())}",
        "",
        f"  TOP {top} BY COST RANK",
        "  " + "-" * 68,
    ]
    ids = ranked_row_ids(store, top)
    labels = store.gather("label", ids)
    cost = store.column("cost_rank")[ids]
    head = store.column("thermal_headroom_c")[ids]
    for position in range(len(ids)):
        label = labels[position].decode("utf-8")
        lines.append(
            f"  {position + 1:>3}. {label:<44} "
            f"cost {cost[position]:7.3f}  "
            f"headroom {head[position]:6.2f} degC")
    if n_compliant > len(ids):
        lines.append(f"  ... and {n_compliant - len(ids)} more compliant")
    if not len(ids):
        lines.append("  (no compliant candidates)")

    counts, edges = headroom_histogram(store, bins=histogram_bins)
    if counts.sum():
        lines += ["", "  THERMAL HEADROOM DISTRIBUTION [degC]",
                  "  " + "-" * 68]
        peak = max(int(counts.max()), 1)
        for position in range(len(counts)):
            bar = "#" * max(1, int(np.ceil(30 * counts[position] / peak))) \
                if counts[position] else ""
            lines.append(
                f"  [{edges[position]:7.2f}, {edges[position + 1]:7.2f})"
                f" {int(counts[position]):>7}  {bar}")

    lines += ["", "  AXIS MARGINALS (best headroom per value)",
              "  " + "-" * 68]
    for field in ("cooling", "form_factor"):
        if field not in AXIS_FIELDS:  # pragma: no cover - schema guard
            continue
        lines.append(f"  {field}:")
        for marginal in axis_marginals(store, field):
            best = (f"{marginal.best_headroom_c:6.2f} degC"
                    if marginal.n_compliant else "   --  ")
            lines.append(
                f"    {_format_value(marginal.value):<28} "
                f"n={marginal.n:<7} compliant {marginal.n_compliant:<7} "
                f"({marginal.compliance_rate:5.1%})  best {best}")
    lines += ["", _RULE]
    return "\n".join(lines)
