"""Columnar result store: zero-unpickle analytics for large campaigns.

At 10^5–10^6 candidates the bottleneck of a sweep moves downstream of
the solver: ranking, resume parity checks and report rendering that
materialize per-candidate dataclasses (or unpickle one journal payload
per record) dominate wall clock and memory.  This package stores each
outcome as one row of a packed numpy structured array, persisted as
checksummed, atomically-published, memory-mapped shards
(:mod:`~avipack.results.store`); heavy payloads live in a side blob
pool fetched lazily by row id.  Query primitives
(:mod:`~avipack.results.query`) and a columnar report renderer
(:mod:`~avipack.results.report`) then answer "top 20 of a million" from
typed columns alone, byte-identical to the in-memory ranking.

Ingestion paths: live (``SweepRunner(result_store=...)`` streams
outcomes through the journal observer) and offline
(:func:`~avipack.results.ingest.ingest_journal` projects an existing
write-ahead journal into a store).
"""

from .ingest import IngestSummary, ingest_journal
from .query import (
    AxisMarginal,
    axis_marginals,
    headroom_histogram,
    ranked_row_ids,
    ranking_signature,
)
from .report import render_store_report
from .schema import (
    AXIS_FIELDS,
    DTYPE_FINGERPRINT,
    KIND_COMPLETED,
    KIND_FAILED,
    KIND_TIMEOUT,
    ROW_DTYPE,
    STORE_SCHEMA_VERSION,
)
from .store import (
    DEFAULT_SHARD_ROWS,
    ResultStore,
    ResultStoreStats,
    ResultStoreWriter,
)

__all__ = [
    "AXIS_FIELDS",
    "AxisMarginal",
    "DEFAULT_SHARD_ROWS",
    "DTYPE_FINGERPRINT",
    "IngestSummary",
    "KIND_COMPLETED",
    "KIND_FAILED",
    "KIND_TIMEOUT",
    "ROW_DTYPE",
    "ResultStore",
    "ResultStoreStats",
    "ResultStoreWriter",
    "STORE_SCHEMA_VERSION",
    "axis_marginals",
    "headroom_histogram",
    "ingest_journal",
    "ranked_row_ids",
    "ranking_signature",
    "render_store_report",
]
