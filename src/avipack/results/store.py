"""Memory-mapped, checksummed shard store for campaign results.

The on-disk layout is a directory of immutable shard pairs::

    shard-000000.rows     # header line + packed ROW_DTYPE records
    shard-000000.blobs    # header line + concatenated pickled outcomes
    shard-000001.rows
    ...

Each file opens with one JSON header line carrying a magic string, the
store schema version, the dtype fingerprint, the row/byte count and two
checksums over the payload — CRC-32 (cheap first line of defence) and
SHA-256 (authoritative) — mirroring the discipline of
:mod:`avipack.durability.journal`.  Publication is atomic (payload to a
temp file in the same directory, flush + ``fsync``, ``os.replace``),
the blob pool lands before its rows file (the rows file is the commit
point), and a shard that fails verification at open is renamed to a
``.quarantine`` sidecar and skipped — its rows are recomputed or
re-ingested from the journal, never trusted.

Readers memory-map the row payloads (``np.memmap`` past the header), so
ranking a million-candidate campaign touches only the columns it needs;
full outcome objects are unpickled one at a time, on demand, via
:meth:`ResultStore.fetch_outcome`.

Observability: ``results.rows_ingested``, ``results.shards_written``,
``results.blob_fetches`` and ``results.shards_quarantined`` named
counters in :mod:`avipack.perf`; each quarantine additionally bumps a
per-reason counter (``results.quarantined_header`` /
``results.quarantined_checksum`` / ``results.quarantined_truncation``)
and writes a ``<file>.quarantine.reason`` sidecar recording *why* the
file was set aside, so an operator triaging a damaged store can tell a
torn write from bit rot without re-running verification.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
import pickle
import re
import tempfile
import zlib
from typing import (
    Any,
    Dict,
    Iterable,
    Iterator,
    List,
    Optional,
    Set,
    Tuple,
)

import numpy as np

try:  # pragma: no cover - availability depends on the platform
    import fcntl
except ImportError:  # pragma: no cover - non-POSIX fallback
    fcntl = None  # type: ignore[assignment]

from .. import perf as _perf
from ..errors import InputError, ResultStoreError
from ..fingerprint import content_crc32, content_digest
from .schema import (
    DTYPE_FINGERPRINT,
    ROW_DTYPE,
    STORE_SCHEMA_VERSION,
    fill_row,
)

__all__ = ["DEFAULT_SHARD_ROWS", "ResultStore", "ResultStoreStats",
           "ResultStoreWriter", "next_shard_number", "publish_shard"]

#: Rows per sealed shard (the memmap granularity).  64k rows of the
#: packed dtype is a ~20 MB shard — large enough to amortize headers,
#: small enough that a quarantined shard loses bounded work.
DEFAULT_SHARD_ROWS = 65_536

_ROWS_MAGIC = "avipack-results-rows/1"
_BLOBS_MAGIC = "avipack-results-blobs/1"
_SHARD_PATTERN = re.compile(r"^shard-(\d{6})\.(rows|blobs)$")
_LOCK_NAME = ".writer.lock"
_VERIFY_CHUNK = 1 << 20


@dataclasses.dataclass(frozen=True)
class ResultStoreStats:
    """What one run's store writer did (attached to the sweep report)."""

    #: Store directory the sweep ingested into.
    directory: str
    #: Rows this writer appended (fresh outcomes plus resume backfill).
    rows_added: int = 0
    #: Shards this writer sealed and published.
    shards_sealed: int = 0


def _lock_writer(stream: Any, directory: str) -> None:
    """Non-blocking advisory ``flock`` guarding one writer per store."""
    if fcntl is None:  # pragma: no cover - non-POSIX fallback
        return
    try:
        fcntl.flock(stream.fileno(), fcntl.LOCK_EX | fcntl.LOCK_NB)
    except OSError as exc:
        stream.close()
        raise ResultStoreError(
            f"result store {directory} is locked by another writer "
            "(advisory flock contention): concurrent writers would "
            "race shard numbers; wait for the other process or give "
            "this run its own store directory") from exc


def _header_line(magic: str, n_rows: int, payload_crc32: str,
                 payload_sha256: str, n_bytes: int) -> bytes:
    header = {
        "magic": magic,
        "schema": STORE_SCHEMA_VERSION,
        "dtype": DTYPE_FINGERPRINT,
        "rows": n_rows,
        "nbytes": n_bytes,
        "crc32": payload_crc32,
        "sha256": payload_sha256,
    }
    return json.dumps(header, sort_keys=True,
                      separators=(",", ":")).encode("ascii") + b"\n"


def _publish(path: str, header: bytes, payload: bytes) -> None:
    """Atomically publish one shard file (tmp + fsync + ``os.replace``)."""
    directory = os.path.dirname(path) or "."
    fd, tmp = tempfile.mkstemp(dir=directory,
                               prefix=os.path.basename(path) + ".tmp.")
    try:
        with os.fdopen(fd, "wb") as stream:
            stream.write(header)
            stream.write(payload)
            stream.flush()
            os.fsync(stream.fileno())
        os.replace(tmp, path)
    except BaseException:
        if os.path.exists(tmp):
            os.unlink(tmp)
        raise


def next_shard_number(directory: str) -> int:
    """First unused shard number (quarantined names count as used).

    Quarantined names stay reserved so a rewrite can never publish a
    fresh shard under a number whose damaged predecessor might later be
    un-quarantined by an operator.
    """
    highest = -1
    for name in os.listdir(directory):
        match = _SHARD_PATTERN.match(
            name[:-len(".quarantine")]
            if name.endswith(".quarantine") else name)
        if match:
            highest = max(highest, int(match.group(1)))
    return highest + 1


def publish_shard(directory: str, number: int, rows: np.ndarray,
                  blobs: bytes) -> None:
    """Atomically publish one sealed shard pair (blobs first, rows last).

    The single publication path shared by :class:`ResultStoreWriter`
    and the retention compactor
    (:func:`avipack.retention.compact_store`): the blob pool lands
    before its rows file, so the rows file remains the commit point
    whoever is writing — a crash between the two leaves an orphan
    ``.blobs`` file that :meth:`ResultStore.open` never looks at.
    """
    rows_payload = rows.tobytes()
    base = os.path.join(directory, f"shard-{number:06d}")
    _publish(base + ".blobs",
             _header_line(_BLOBS_MAGIC, len(rows),
                          content_crc32(blobs),
                          content_digest(blobs),
                          len(blobs)),
             blobs)
    _publish(base + ".rows",
             _header_line(_ROWS_MAGIC, len(rows),
                          content_crc32(rows_payload),
                          content_digest(rows_payload),
                          len(rows_payload)),
             rows_payload)


class ResultStoreWriter:
    """Append outcomes to a store directory as sealed, immutable shards.

    Usable as a context manager; :meth:`close` seals any partial shard.
    One writer per directory at a time (advisory lock); shard numbers
    continue past whatever the directory already holds, so a resumed
    campaign appends rather than rewrites.
    """

    def __init__(self, directory: str,
                 shard_rows: int = DEFAULT_SHARD_ROWS) -> None:
        if shard_rows < 1:
            raise InputError("shard_rows must be >= 1")
        self.directory = directory
        self.shard_rows = shard_rows
        self.rows_added = 0
        self.shards_sealed = 0
        #: Fingerprints appended through this writer (dedup aid for the
        #: resume backfill pass).
        self.added_fingerprints: Set[str] = set()
        os.makedirs(directory, exist_ok=True)
        self._lock_stream = open(os.path.join(directory, _LOCK_NAME), "ab")
        _lock_writer(self._lock_stream, directory)
        self._next_shard = self._scan_next_shard()
        self._rows: Optional[np.ndarray] = None
        self._count = 0
        self._blobs = bytearray()

    def _scan_next_shard(self) -> int:
        return next_shard_number(self.directory)

    def __enter__(self) -> "ResultStoreWriter":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()

    def add(self, outcome: Any) -> None:
        """Flatten one outcome into the open shard (seals when full)."""
        if self._lock_stream is None:
            raise InputError("result store writer is closed")
        if self._rows is None:
            self._rows = np.zeros(self.shard_rows, dtype=ROW_DTYPE)
            self._count = 0
            self._blobs = bytearray()
        blob = pickle.dumps(outcome, protocol=pickle.HIGHEST_PROTOCOL)
        offset = len(self._blobs)
        self._blobs += blob
        fill_row(self._rows, self._count, outcome,
                 blob_offset=offset, blob_length=len(blob),
                 blob_crc32=zlib.crc32(blob) & 0xFFFFFFFF)
        self._count += 1
        self.rows_added += 1
        self.added_fingerprints.add(outcome.fingerprint)
        _perf.increment("results.rows_ingested")
        if self._count >= self.shard_rows:
            self._seal()

    def add_many(self, outcomes: Iterable[Any]) -> None:
        for outcome in outcomes:
            self.add(outcome)

    def _seal(self) -> None:
        """Publish the open shard: blob pool first, rows file last."""
        if self._rows is None or self._count == 0:
            return
        number = self._next_shard
        self._next_shard += 1
        publish_shard(self.directory, number,
                      self._rows[:self._count], bytes(self._blobs))
        self._rows = None
        self._count = 0
        self._blobs = bytearray()
        self.shards_sealed += 1
        _perf.increment("results.shards_written")

    def flush(self) -> None:
        """Seal the partial shard now (durability checkpoint)."""
        self._seal()

    def close(self) -> None:
        """Seal any partial shard and release the writer lock."""
        if self._lock_stream is None:
            return
        try:
            self._seal()
        finally:
            self._lock_stream.close()
            self._lock_stream = None

    def stats(self) -> ResultStoreStats:
        return ResultStoreStats(directory=self.directory,
                                rows_added=self.rows_added,
                                shards_sealed=self.shards_sealed)


class _Shard:
    """One verified, memory-mapped shard (reader side)."""

    def __init__(self, directory: str, name: str, n_rows: int,
                 header_bytes: int, row_base: int,
                 blobs_available: bool, blobs_header_bytes: int) -> None:
        self.name = name
        self.path = os.path.join(directory, name + ".rows")
        self.blob_path = os.path.join(directory, name + ".blobs")
        self.n_rows = n_rows
        #: Global row id of this shard's first row.
        self.row_base = row_base
        self.blobs_available = blobs_available
        self._blobs_header_bytes = blobs_header_bytes
        self.rows: np.ndarray = np.memmap(
            self.path, dtype=ROW_DTYPE, mode="r",
            offset=header_bytes, shape=(n_rows,))

    def read_blob(self, offset: int, length: int) -> bytes:
        with open(self.blob_path, "rb") as stream:
            stream.seek(self._blobs_header_bytes + offset)
            return stream.read(length)


def _verify_file(path: str, magic: str) -> Tuple[Dict[str, Any], int]:
    """Checksum-verify one shard file; returns (header, header_bytes).

    Raises :class:`ResultStoreError` on any damage — the caller
    quarantines and moves on.
    """
    try:
        with open(path, "rb") as stream:
            line = stream.readline()
            try:
                header = json.loads(line.decode("ascii"))
            except (UnicodeDecodeError, ValueError) as exc:
                raise ResultStoreError(
                    f"{path}: unparseable header: {exc}",
                    reason="header") from exc
            if not isinstance(header, dict) \
                    or header.get("magic") != magic:
                raise ResultStoreError(f"{path}: wrong magic",
                                       reason="header")
            if header.get("schema") != STORE_SCHEMA_VERSION:
                raise ResultStoreError(
                    f"{path}: stale schema {header.get('schema')!r}",
                    reason="header")
            if header.get("dtype") != DTYPE_FINGERPRINT:
                raise ResultStoreError(f"{path}: dtype mismatch",
                                       reason="header")
            crc = 0
            sha = hashlib.sha256()
            n_bytes = 0
            while True:
                chunk = stream.read(_VERIFY_CHUNK)
                if not chunk:
                    break
                crc = zlib.crc32(chunk, crc)
                sha.update(chunk)
                n_bytes += len(chunk)
    except OSError as exc:
        raise ResultStoreError(f"cannot read {path}: {exc}",
                               reason="truncation") from exc
    if n_bytes != header.get("nbytes"):
        raise ResultStoreError(
            f"{path}: payload is {n_bytes} bytes, header says "
            f"{header.get('nbytes')}", reason="truncation")
    if f"{crc & 0xFFFFFFFF:08x}" != header.get("crc32"):
        raise ResultStoreError(f"{path}: crc32 mismatch",
                               reason="checksum")
    if sha.hexdigest() != header.get("sha256"):
        raise ResultStoreError(f"{path}: sha256 mismatch",
                               reason="checksum")
    return header, len(line)


def _rename_aside(path: str) -> None:
    """Move a damaged file to its ``.quarantine`` name (rename only —
    no data is written, so durability ordering does not apply)."""
    if os.path.exists(path):
        os.replace(path, path + ".quarantine")


def _write_reason_sidecar(path: str, error: ResultStoreError) -> None:
    """Atomically publish ``<path>.quarantine.reason`` describing why."""
    sidecar = json.dumps({"file": os.path.basename(path),
                          "reason": error.reason,
                          "detail": str(error)}, sort_keys=True)
    tmp = f"{path}.reason.tmp.{os.getpid()}"
    with open(tmp, "w", encoding="utf-8") as stream:
        stream.write(sidecar + "\n")
        stream.flush()
        os.fsync(stream.fileno())
    os.replace(tmp, path + ".quarantine.reason")


def _quarantine(path: str,
                error: Optional[ResultStoreError] = None) -> None:
    """Rename a damaged file aside; record why in an atomic sidecar.

    ``error`` is the verification failure for the file itself; pass
    ``None`` for a companion file quarantined only because its partner
    failed (no sidecar — the partner's sidecar tells the story).
    """
    _rename_aside(path)
    if error is not None:
        _write_reason_sidecar(path, error)


def _count_quarantine(reason: str) -> None:
    """Bump the total and the per-reason quarantine counters.

    The per-reason names are spelled out literally so the AVI011
    perf-registry lint can tie each declared counter to its live
    increment site.
    """
    _perf.increment("results.shards_quarantined")
    if reason == "checksum":
        _perf.increment("results.quarantined_checksum")
    elif reason == "header":
        _perf.increment("results.quarantined_header")
    elif reason == "truncation":
        _perf.increment("results.quarantined_truncation")


class ResultStore:
    """Read-only columnar view over every intact shard of a directory.

    Open with :meth:`open`; shards failing verification are quarantined
    (renamed, counted, skipped) rather than trusted or fatal.  Columns
    are materialised lazily per name and cached; full outcomes are
    fetched lazily per row from the blob pool.
    """

    def __init__(self, directory: str, shards: List[_Shard],
                 quarantined: Tuple[str, ...],
                 quarantine_reasons: Optional[Dict[str, str]] = None
                 ) -> None:
        self.directory = directory
        self._shards = shards
        #: File names moved to ``.quarantine`` by this open.
        self.quarantined = quarantined
        #: File name -> damage class (``header`` / ``checksum`` /
        #: ``truncation``) for each quarantined file, mirroring the
        #: on-disk ``.quarantine.reason`` sidecars.
        self.quarantine_reasons: Dict[str, str] = \
            dict(quarantine_reasons or {})
        self._columns: Dict[str, np.ndarray] = {}
        self._live: Optional[np.ndarray] = None
        self._bases = np.array([shard.row_base for shard in shards],
                               dtype=np.int64)

    # -- construction --------------------------------------------------------

    @classmethod
    def open(cls, directory: str) -> "ResultStore":
        """Verify and map every shard under ``directory``.

        Raises :class:`~avipack.errors.ResultStoreError` only when the
        directory itself is missing; per-shard damage is quarantined.
        """
        if not os.path.isdir(directory):
            raise ResultStoreError(
                f"result store directory not found: {directory}")
        names = sorted(
            match.group(0)[:-len(".rows")]
            for match in (
                _SHARD_PATTERN.match(entry)
                for entry in os.listdir(directory))
            if match and match.group(2) == "rows")
        shards: List[_Shard] = []
        quarantined: List[str] = []
        reasons: Dict[str, str] = {}
        row_base = 0
        for name in names:
            rows_path = os.path.join(directory, name + ".rows")
            blobs_path = os.path.join(directory, name + ".blobs")
            try:
                header, header_bytes = _verify_file(rows_path,
                                                    _ROWS_MAGIC)
                n_rows = int(header["rows"])
                if n_rows < 0 or header["nbytes"] != \
                        n_rows * ROW_DTYPE.itemsize:
                    raise ResultStoreError(
                        f"{rows_path}: row count disagrees with "
                        "payload size", reason="header")
            except ResultStoreError as exc:
                _quarantine(rows_path, exc)
                _quarantine(blobs_path)
                quarantined.append(name + ".rows")
                reasons[name + ".rows"] = exc.reason
                _count_quarantine(exc.reason)
                continue
            blobs_available = True
            blobs_header_bytes = 0
            try:
                blob_header, blobs_header_bytes = _verify_file(
                    blobs_path, _BLOBS_MAGIC)
                if int(blob_header["rows"]) != n_rows:
                    raise ResultStoreError(
                        f"{blobs_path}: row count disagrees with "
                        "rows file", reason="header")
            except ResultStoreError as exc:
                # Rows stay queryable; only lazy fetches are lost.
                _quarantine(blobs_path, exc)
                quarantined.append(name + ".blobs")
                reasons[name + ".blobs"] = exc.reason
                _count_quarantine(exc.reason)
                blobs_available = False
            shards.append(_Shard(directory, name, n_rows, header_bytes,
                                 row_base, blobs_available,
                                 blobs_header_bytes))
            row_base += n_rows
        return cls(directory, shards, tuple(quarantined), reasons)

    @classmethod
    def live_fingerprints(cls, directory: str) -> Set[str]:
        """Fingerprints currently live in the store (empty if absent).

        The cheap existence probe the resume backfill uses; never
        raises for a missing or empty directory.
        """
        if not os.path.isdir(directory):
            return set()
        store = cls.open(directory)
        if store.n_rows == 0:
            return set()
        fps = store.column("fingerprint")[store.live_mask()]
        return {fp.decode("ascii") for fp in fps}

    # -- shape ---------------------------------------------------------------

    @property
    def n_rows(self) -> int:
        return sum(shard.n_rows for shard in self._shards)

    @property
    def n_shards(self) -> int:
        return len(self._shards)

    def shards(self) -> Tuple[_Shard, ...]:
        """The verified shards backing this view, in row order.

        Reader internals (name, ``row_base``, memory-mapped ``rows``,
        ``read_blob``) exposed for the retention compactor
        (:func:`avipack.retention.compact_store`), which must copy
        live rows and their blob bytes shard by shard.
        """
        return tuple(self._shards)

    # -- columnar access -----------------------------------------------------

    def column(self, name: str) -> np.ndarray:
        """One typed column across every shard, as a contiguous copy.

        Numeric and boolean columns are cached (they are the sort keys
        and masks every query touches repeatedly, at 1-8 bytes per
        row).  Wide byte-string columns — ``label``, ``fingerprint``,
        the axis strings — are concatenated fresh on each call and
        released with the caller, so a report over a million-row store
        never pins tens of megabytes of strings; use :meth:`gather`
        when only a few rows of such a column are needed.
        """
        if name not in ROW_DTYPE.names:
            raise InputError(
                f"unknown column {name!r}; known: "
                f"{', '.join(ROW_DTYPE.names)}")
        cached = self._columns.get(name)
        if cached is not None:
            return cached
        if self._shards:
            values = np.concatenate(
                [np.asarray(shard.rows[name])
                 for shard in self._shards])
        else:
            values = np.empty(0, dtype=ROW_DTYPE[name])
        if ROW_DTYPE[name].kind != "S":
            self._columns[name] = values
        return values

    def iter_column(self, name: str) -> Iterator[np.ndarray]:
        """Per-shard views of one column, straight off the memory maps.

        For streaming aggregations (per-axis marginals, notably) that
        must not pay a full-campaign concatenation.
        """
        if name not in ROW_DTYPE.names:
            raise InputError(
                f"unknown column {name!r}; known: "
                f"{', '.join(ROW_DTYPE.names)}")
        for shard in self._shards:
            yield np.asarray(shard.rows[name])

    def gather(self, name: str, row_ids: Any) -> np.ndarray:
        """Column values at the given global row ids only.

        Reads straight from the per-shard memory maps without
        materializing (or caching) the full column — the top-k path
        for wide byte columns, where the ranking needs 20 labels out
        of a million rows.
        """
        if name not in ROW_DTYPE.names:
            raise InputError(
                f"unknown column {name!r}; known: "
                f"{', '.join(ROW_DTYPE.names)}")
        ids = np.asarray(row_ids, dtype=np.int64)
        out = np.empty(len(ids), dtype=ROW_DTYPE[name])
        for position, row_id in enumerate(ids):
            shard, local = self._locate(int(row_id))
            out[position] = shard.rows[local][name]
        return out

    def live_mask(self) -> np.ndarray:
        """True for the *latest* row of each fingerprint.

        A resumed or re-ingested campaign appends corrected rows for
        fingerprints it already holds; queries must see exactly one row
        per candidate — the newest — which mirrors the journal replay's
        latest-wins semantics.

        Deduplication runs on 64-bit FNV hashes of the fingerprints (8
        bytes per row instead of the 40-byte strings, computed shard by
        shard off the memory maps); only rows sharing a hash — actual
        duplicates, or the odd collision — are re-checked against their
        exact bytes.
        """
        if self._live is None:
            n = self.n_rows
            mask = np.zeros(n, dtype=bool)
            if n:
                hashes = self._fingerprint_hashes()
                order = np.argsort(hashes, kind="stable")
                sorted_hashes = hashes[order]
                new_run = np.empty(n, dtype=bool)
                new_run[0] = True
                np.not_equal(sorted_hashes[1:], sorted_hashes[:-1],
                             out=new_run[1:])
                last_in_run = np.empty(n, dtype=bool)
                last_in_run[:-1] = new_run[1:]
                last_in_run[-1] = True
                singleton = new_run & last_in_run
                mask[order[singleton]] = True
                shared = order[~singleton]
                if len(shared):
                    latest: Dict[bytes, int] = {}
                    fps = self.gather("fingerprint", shared)
                    for row_id, fp in zip(shared.tolist(), fps.tolist()):
                        if row_id > latest.get(fp, -1):
                            latest[fp] = row_id
                    mask[list(latest.values())] = True
            self._live = mask
        return self._live

    def _fingerprint_hashes(self) -> np.ndarray:
        """Vectorized FNV-1a of every row's fingerprint, shard by shard."""
        hashes = np.empty(self.n_rows, dtype=np.uint64)
        offset = np.uint64(0xCBF29CE484222325)
        prime = np.uint64(0x100000001B3)
        base = 0
        for shard in self._shards:
            fps = np.ascontiguousarray(
                np.asarray(shard.rows["fingerprint"]))
            words = fps.view(np.uint64).reshape(len(fps), -1)
            mixed = np.full(len(fps), offset)
            for column in range(words.shape[1]):
                mixed ^= words[:, column]
                mixed *= prime
            hashes[base:base + len(fps)] = mixed
            base += len(fps)
        return hashes

    def row(self, row_id: int) -> np.void:
        """One full row record by global row id (copied)."""
        shard, local = self._locate(row_id)
        return shard.rows[local].copy()

    def _locate(self, row_id: int) -> Tuple[_Shard, int]:
        if row_id < 0 or row_id >= self.n_rows:
            raise InputError(
                f"row id {row_id} outside [0, {self.n_rows})")
        position = int(np.searchsorted(self._bases, row_id,
                                       side="right")) - 1
        shard = self._shards[position]
        return shard, row_id - shard.row_base

    # -- lazy blobs ----------------------------------------------------------

    def fetch_outcome(self, row_id: int) -> Any:
        """Unpickle the full outcome behind one row (lazy, verified).

        Raises :class:`~avipack.errors.ResultStoreError` when the
        shard's blob pool was quarantined or the blob's checksum no
        longer matches the row.
        """
        shard, local = self._locate(row_id)
        if not shard.blobs_available:
            raise ResultStoreError(
                f"blob pool for {shard.name} was quarantined; row "
                f"{row_id} has columns only — recompute or re-ingest "
                "from the journal to restore payloads")
        record = shard.rows[local]
        blob = shard.read_blob(int(record["blob_offset"]),
                               int(record["blob_length"]))
        if len(blob) != int(record["blob_length"]) \
                or (zlib.crc32(blob) & 0xFFFFFFFF) \
                != int(record["blob_crc32"]):
            raise ResultStoreError(
                f"blob checksum mismatch for row {row_id} in "
                f"{shard.name}")
        _perf.increment("results.blob_fetches")
        return pickle.loads(blob)
