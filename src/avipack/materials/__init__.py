"""Material and fluid property models.

* :mod:`avipack.materials.library` — solid materials (metals, ceramics,
  laminates, composites) with thermal and structural properties.
* :mod:`avipack.materials.fluids` — single-phase coolant properties and
  saturation-line properties of two-phase working fluids.
"""

from .fluids import (
    FluidState,
    SaturationState,
    air_properties,
    list_working_fluids,
    rank_working_fluids,
    saturation_properties,
    water_properties,
)
from .library import (
    CARBON_COMPOSITE,
    DEFAULT_LIBRARY,
    FR4_LAMINATE,
    Material,
    MaterialLibrary,
    OrthotropicMaterial,
    get_material,
    pcb_effective_conductivity,
)

__all__ = [
    "CARBON_COMPOSITE",
    "DEFAULT_LIBRARY",
    "FR4_LAMINATE",
    "FluidState",
    "Material",
    "MaterialLibrary",
    "OrthotropicMaterial",
    "SaturationState",
    "air_properties",
    "get_material",
    "list_working_fluids",
    "pcb_effective_conductivity",
    "rank_working_fluids",
    "saturation_properties",
    "water_properties",
]
