"""Solid material property database for aerospace packaging.

Each entry is a :class:`Material` dataclass with the properties needed by
the thermal and mechanical solvers: density, thermal conductivity, specific
heat, Young's modulus, Poisson ratio and coefficient of thermal expansion.
Values are room-temperature engineering values from standard handbooks;
an optional linear temperature coefficient refines the conductivity for
solvers that iterate on temperature.

The built-in library covers the materials named in the DATE 2010 paper:
aluminium alloys for module shells and seat structures, copper for thermal
drains, FR-4 for PCB laminates, carbon-fibre composite for the alternative
seat structure, plus common electronics-packaging materials (silicon,
alumina, solders, steels, thermal-drain graphite).
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, Iterator, Optional

from ..errors import InputError, MaterialNotFoundError


@dataclass(frozen=True)
class Material:
    """Isotropic solid material with thermal and structural properties.

    Parameters
    ----------
    name:
        Unique identifier (lower-case snake case by convention).
    density:
        Mass density [kg/m³].
    conductivity:
        Thermal conductivity at the reference temperature [W/(m·K)].
    specific_heat:
        Specific heat capacity [J/(kg·K)].
    youngs_modulus:
        Young's modulus [Pa] (0 for materials never used structurally).
    poisson_ratio:
        Poisson ratio [-].
    cte:
        Coefficient of thermal expansion [1/K].
    emissivity:
        Total hemispherical emissivity of a typical surface finish [-].
    conductivity_temp_coeff:
        Linear temperature coefficient of conductivity [W/(m·K²)], applied
        as ``k(T) = conductivity + coeff * (T - reference_temperature)``.
    reference_temperature:
        Temperature at which ``conductivity`` holds [K].
    yield_strength:
        0.2 % offset yield strength [Pa] (0 if not applicable).
    """

    name: str
    density: float
    conductivity: float
    specific_heat: float
    youngs_modulus: float = 0.0
    poisson_ratio: float = 0.33
    cte: float = 0.0
    emissivity: float = 0.8
    conductivity_temp_coeff: float = 0.0
    reference_temperature: float = 293.15
    yield_strength: float = 0.0

    def __post_init__(self) -> None:
        if self.density <= 0.0:
            raise InputError(f"{self.name}: density must be positive")
        if self.conductivity <= 0.0:
            raise InputError(f"{self.name}: conductivity must be positive")
        if self.specific_heat <= 0.0:
            raise InputError(f"{self.name}: specific heat must be positive")
        if not 0.0 <= self.poisson_ratio < 0.5:
            raise InputError(f"{self.name}: Poisson ratio must be in [0, 0.5)")
        if not 0.0 <= self.emissivity <= 1.0:
            raise InputError(f"{self.name}: emissivity must be in [0, 1]")

    def conductivity_at(self, temperature: float) -> float:
        """Thermal conductivity at ``temperature`` [K], clamped positive."""
        if temperature <= 0.0:
            raise InputError("temperature must be positive kelvin")
        k = (self.conductivity
             + self.conductivity_temp_coeff
             * (temperature - self.reference_temperature))
        return max(k, 1e-3)

    def thermal_diffusivity(self) -> float:
        """Thermal diffusivity α = k / (ρ·cp) [m²/s]."""
        return self.conductivity / (self.density * self.specific_heat)

    def volumetric_heat_capacity(self) -> float:
        """Volumetric heat capacity ρ·cp [J/(m³·K)]."""
        return self.density * self.specific_heat

    def with_conductivity(self, conductivity: float) -> "Material":
        """Return a copy with a different conductivity (derating studies)."""
        if conductivity <= 0.0:
            raise InputError("conductivity must be positive")
        return replace(self, conductivity=conductivity)


@dataclass(frozen=True)
class OrthotropicMaterial:
    """Orthotropic material, used for PCB laminates and composites.

    PCBs conduct heat far better in-plane (copper layers) than
    through-thickness; carbon-fibre composites similarly.  ``conductivity_xy``
    is the in-plane value and ``conductivity_z`` the through-thickness value.
    """

    name: str
    density: float
    conductivity_xy: float
    conductivity_z: float
    specific_heat: float
    youngs_modulus: float = 0.0
    poisson_ratio: float = 0.3
    cte: float = 0.0
    emissivity: float = 0.85

    def __post_init__(self) -> None:
        if min(self.conductivity_xy, self.conductivity_z) <= 0.0:
            raise InputError(f"{self.name}: conductivities must be positive")
        if self.density <= 0.0 or self.specific_heat <= 0.0:
            raise InputError(f"{self.name}: density/cp must be positive")

    def isotropic_equivalent(self) -> Material:
        """Geometric-mean isotropic equivalent for coarse (level-1) models."""
        k_eq = (self.conductivity_xy ** 2 * self.conductivity_z) ** (1.0 / 3.0)
        return Material(
            name=self.name + "_iso",
            density=self.density,
            conductivity=k_eq,
            specific_heat=self.specific_heat,
            youngs_modulus=self.youngs_modulus,
            poisson_ratio=self.poisson_ratio,
            cte=self.cte,
            emissivity=self.emissivity,
        )


class MaterialLibrary:
    """Registry of named materials with lookup and registration."""

    def __init__(self) -> None:
        self._materials: Dict[str, Material] = {}

    def register(self, material: Material, overwrite: bool = False) -> None:
        """Add ``material`` to the library.

        Raises :class:`~avipack.errors.InputError` when the name already
        exists and ``overwrite`` is false.
        """
        if material.name in self._materials and not overwrite:
            raise InputError(f"material {material.name!r} already registered")
        self._materials[material.name] = material

    def get(self, name: str) -> Material:
        """Look a material up by name."""
        try:
            return self._materials[name]
        except KeyError:
            known = ", ".join(sorted(self._materials))
            raise MaterialNotFoundError(
                f"unknown material {name!r}; known: {known}") from None

    def __contains__(self, name: str) -> bool:
        return name in self._materials

    def __iter__(self) -> Iterator[str]:
        return iter(sorted(self._materials))

    def __len__(self) -> int:
        return len(self._materials)


def _build_default_library() -> MaterialLibrary:
    lib = MaterialLibrary()
    entries = [
        # Structural metals -------------------------------------------------
        Material("aluminum_6061", density=2700.0, conductivity=167.0,
                 specific_heat=896.0, youngs_modulus=68.9e9,
                 poisson_ratio=0.33, cte=23.6e-6, emissivity=0.09,
                 yield_strength=276e6),
        Material("aluminum_7075", density=2810.0, conductivity=130.0,
                 specific_heat=960.0, youngs_modulus=71.7e9,
                 poisson_ratio=0.33, cte=23.4e-6, emissivity=0.09,
                 yield_strength=503e6),
        Material("aluminum_anodized", density=2700.0, conductivity=167.0,
                 specific_heat=896.0, youngs_modulus=68.9e9,
                 poisson_ratio=0.33, cte=23.6e-6, emissivity=0.84,
                 yield_strength=276e6),
        Material("copper", density=8960.0, conductivity=398.0,
                 specific_heat=385.0, youngs_modulus=117e9,
                 poisson_ratio=0.34, cte=16.5e-6, emissivity=0.05,
                 conductivity_temp_coeff=-0.05, yield_strength=70e6),
        Material("steel_304", density=8000.0, conductivity=16.2,
                 specific_heat=500.0, youngs_modulus=193e9,
                 poisson_ratio=0.29, cte=17.3e-6, emissivity=0.35,
                 yield_strength=215e6),
        Material("titanium_6al4v", density=4430.0, conductivity=6.7,
                 specific_heat=526.0, youngs_modulus=113.8e9,
                 poisson_ratio=0.342, cte=8.6e-6, emissivity=0.3,
                 yield_strength=880e6),
        Material("magnesium_az31", density=1770.0, conductivity=96.0,
                 specific_heat=1000.0, youngs_modulus=45e9,
                 poisson_ratio=0.35, cte=26.0e-6, emissivity=0.12,
                 yield_strength=200e6),
        # Electronics materials ---------------------------------------------
        Material("silicon", density=2329.0, conductivity=148.0,
                 specific_heat=705.0, youngs_modulus=130e9,
                 poisson_ratio=0.28, cte=2.6e-6, emissivity=0.6,
                 conductivity_temp_coeff=-0.4),
        Material("alumina_96", density=3800.0, conductivity=24.0,
                 specific_heat=880.0, youngs_modulus=310e9,
                 poisson_ratio=0.21, cte=7.2e-6, emissivity=0.75),
        Material("aluminum_nitride", density=3260.0, conductivity=170.0,
                 specific_heat=740.0, youngs_modulus=330e9,
                 poisson_ratio=0.24, cte=4.5e-6, emissivity=0.8),
        Material("solder_sac305", density=7400.0, conductivity=58.0,
                 specific_heat=230.0, youngs_modulus=51e9,
                 poisson_ratio=0.36, cte=21.0e-6, emissivity=0.06,
                 yield_strength=32e6),
        Material("mold_compound", density=1970.0, conductivity=0.9,
                 specific_heat=880.0, youngs_modulus=24e9,
                 poisson_ratio=0.25, cte=12.0e-6, emissivity=0.9),
        Material("graphite_drain", density=1750.0, conductivity=370.0,
                 specific_heat=710.0, youngs_modulus=9e9,
                 poisson_ratio=0.2, cte=1.0e-6, emissivity=0.85),
        # Plastics / elastomers ----------------------------------------------
        Material("epoxy_unfilled", density=1200.0, conductivity=0.20,
                 specific_heat=1100.0, youngs_modulus=3.0e9,
                 poisson_ratio=0.35, cte=55e-6, emissivity=0.9),
        Material("silicone_rubber", density=1100.0, conductivity=0.17,
                 specific_heat=1300.0, youngs_modulus=0.01e9,
                 poisson_ratio=0.47, cte=250e-6, emissivity=0.9),
        Material("polycarbonate", density=1200.0, conductivity=0.21,
                 specific_heat=1250.0, youngs_modulus=2.3e9,
                 poisson_ratio=0.37, cte=68e-6, emissivity=0.9),
    ]
    for mat in entries:
        lib.register(mat)
    return lib


#: Default library instance shared across the package.
DEFAULT_LIBRARY = _build_default_library()


#: FR-4 PCB laminate with typical 4-layer copper coverage (orthotropic).
FR4_LAMINATE = OrthotropicMaterial(
    name="fr4_laminate",
    density=1850.0,
    conductivity_xy=18.0,
    conductivity_z=0.35,
    specific_heat=1100.0,
    youngs_modulus=22e9,
    poisson_ratio=0.28,
    cte=16e-6,
)

#: Quasi-isotropic carbon-fibre composite seat structure (COSEE variant).
CARBON_COMPOSITE = OrthotropicMaterial(
    name="carbon_composite",
    density=1600.0,
    conductivity_xy=5.0,
    conductivity_z=0.8,
    specific_heat=900.0,
    youngs_modulus=70e9,
    poisson_ratio=0.3,
    cte=2.0e-6,
    emissivity=0.88,
)


def get_material(name: str,
                 library: Optional[MaterialLibrary] = None) -> Material:
    """Convenience lookup in ``library`` (default: the built-in library)."""
    return (library or DEFAULT_LIBRARY).get(name)


def pcb_effective_conductivity(copper_fraction_per_layer: float,
                               n_copper_layers: int,
                               layer_thickness: float,
                               board_thickness: float,
                               k_copper: float = 398.0,
                               k_resin: float = 0.35) -> tuple:
    """Effective in-plane / through-thickness conductivity of a PCB.

    The classical rule-of-mixtures model used at "level 2" of the design
    flow: copper layers act in parallel for in-plane conduction and in
    series for through-thickness conduction.

    Parameters
    ----------
    copper_fraction_per_layer:
        Fractional copper coverage of each layer (0–1).
    n_copper_layers:
        Number of copper layers.
    layer_thickness:
        Thickness of one copper layer [m] (35 µm for 1 oz copper).
    board_thickness:
        Total board thickness [m].
    k_copper, k_resin:
        Conductivities of copper and of the resin/glass matrix [W/(m·K)].

    Returns
    -------
    tuple
        ``(k_inplane, k_through)`` in W/(m·K).
    """
    if not 0.0 <= copper_fraction_per_layer <= 1.0:
        raise InputError("copper fraction must be in [0, 1]")
    if n_copper_layers < 0:
        raise InputError("layer count must be non-negative")
    if layer_thickness < 0.0 or board_thickness <= 0.0:
        raise InputError("thicknesses must be positive")
    total_cu = n_copper_layers * layer_thickness * copper_fraction_per_layer
    if total_cu > board_thickness:
        raise InputError("copper thickness exceeds board thickness")
    phi = total_cu / board_thickness
    k_inplane = phi * k_copper + (1.0 - phi) * k_resin
    # Series (harmonic) stack through thickness.
    k_through = 1.0 / (phi / k_copper + (1.0 - phi) / k_resin)
    return k_inplane, k_through
