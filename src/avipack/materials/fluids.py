"""Temperature-dependent fluid properties for cooling and two-phase devices.

Two kinds of fluid are needed:

* **coolants** (air, water, PAO-like oil) evaluated single-phase for the
  convection correlations of :mod:`avipack.thermal.convection`;
* **working fluids** (ammonia, acetone, methanol, ethanol, water) evaluated
  on the saturation line for the heat-pipe and loop-heat-pipe models of
  :mod:`avipack.twophase`.

Properties are computed from compact engineering correlations (polynomial
fits, Antoine vapour pressure, Watson latent-heat scaling) that are accurate
to a few percent over the avionics temperature range (−55 to +125 °C) — the
same fidelity class as the lookup tables inside commercial tools such as
FloTHERM.  Every correlation validates its temperature range and raises
:class:`~avipack.errors.ModelRangeError` outside it.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict

from ..errors import InputError, ModelRangeError
from ..units import ATM, R_UNIVERSAL


@dataclass(frozen=True)
class FluidState:
    """Single-phase thermophysical state of a coolant at (T, p).

    Attributes are the quantities consumed by convection correlations:
    density ρ [kg/m³], dynamic viscosity µ [Pa·s], conductivity k [W/(m·K)],
    specific heat cp [J/(kg·K)], Prandtl number and volumetric expansion
    coefficient β [1/K].
    """

    temperature: float
    pressure: float
    density: float
    viscosity: float
    conductivity: float
    specific_heat: float
    expansion_coeff: float

    @property
    def prandtl(self) -> float:
        """Prandtl number Pr = µ·cp / k."""
        return self.viscosity * self.specific_heat / self.conductivity

    @property
    def kinematic_viscosity(self) -> float:
        """Kinematic viscosity ν = µ / ρ [m²/s]."""
        return self.viscosity / self.density

    @property
    def thermal_diffusivity(self) -> float:
        """Thermal diffusivity α = k / (ρ·cp) [m²/s]."""
        return self.conductivity / (self.density * self.specific_heat)


def _check_range(name: str, temperature: float, lo: float, hi: float) -> None:
    if not lo <= temperature <= hi:
        raise ModelRangeError(
            f"{name} correlation valid for {lo:.0f}-{hi:.0f} K, "
            f"got {temperature:.1f} K")


def air_properties(temperature: float, pressure: float = ATM) -> FluidState:
    """Dry-air properties from Sutherland viscosity + ideal-gas density.

    Valid 150–1000 K, any pressure in the troposphere/avionics bay range.
    """
    _check_range("air", temperature, 150.0, 1000.0)
    if pressure <= 0.0:
        raise InputError("pressure must be positive")
    r_specific = R_UNIVERSAL / 0.0289647  # J/(kg K)
    density = pressure / (r_specific * temperature)
    # Sutherland's law for viscosity and conductivity.
    viscosity = 1.716e-5 * (temperature / 273.15) ** 1.5 * (
        273.15 + 110.4) / (temperature + 110.4)
    conductivity = 0.0241 * (temperature / 273.15) ** 1.5 * (
        273.15 + 194.0) / (temperature + 194.0)
    # cp of air varies weakly over the range of interest.
    specific_heat = 1002.5 + 0.0322 * (temperature - 273.15)
    return FluidState(
        temperature=temperature,
        pressure=pressure,
        density=density,
        viscosity=viscosity,
        conductivity=conductivity,
        specific_heat=specific_heat,
        expansion_coeff=1.0 / temperature,
    )


def water_properties(temperature: float, pressure: float = ATM) -> FluidState:
    """Liquid-water properties, polynomial fits valid 273.16–373 K."""
    _check_range("water", temperature, 273.16, 373.15)
    t_c = temperature - 273.15
    density = 1000.0 * (1.0 - (t_c + 288.9414) / (508929.2 * (t_c + 68.12963))
                        * (t_c - 3.9863) ** 2)
    viscosity = 2.414e-5 * 10.0 ** (247.8 / (temperature - 140.0))
    conductivity = -0.5752 + 6.397e-3 * temperature - 8.151e-6 * temperature ** 2
    specific_heat = 4217.4 - 3.720 * t_c + 0.1412 * t_c ** 2 - 2.654e-3 * t_c ** 3 \
        + 2.093e-5 * t_c ** 4
    beta = max(1e-6, -(-6.8e-5 + 1.66e-5 * t_c - 5.8e-8 * t_c ** 2) * -1.0)
    # simple monotone fit for expansion coefficient
    beta = max(1e-6, 2.1e-4 * (1.0 + 0.016 * (t_c - 20.0)))
    return FluidState(
        temperature=temperature,
        pressure=pressure,
        density=density,
        viscosity=viscosity,
        conductivity=conductivity,
        specific_heat=specific_heat,
        expansion_coeff=beta,
    )


# ---------------------------------------------------------------------------
# Saturated working fluids for two-phase devices
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class SaturationState:
    """Saturation-line state of a two-phase working fluid at temperature T.

    Attributes
    ----------
    temperature:
        Saturation temperature [K].
    pressure:
        Saturation pressure [Pa].
    latent_heat:
        Enthalpy of vaporisation [J/kg].
    liquid_density / vapor_density:
        Phase densities [kg/m³].
    liquid_viscosity / vapor_viscosity:
        Phase dynamic viscosities [Pa·s].
    liquid_conductivity:
        Liquid thermal conductivity [W/(m·K)].
    surface_tension:
        Liquid–vapour surface tension [N/m].
    liquid_specific_heat:
        Liquid cp [J/(kg·K)].
    """

    temperature: float
    pressure: float
    latent_heat: float
    liquid_density: float
    vapor_density: float
    liquid_viscosity: float
    vapor_viscosity: float
    liquid_conductivity: float
    surface_tension: float
    liquid_specific_heat: float

    def merit_number(self) -> float:
        """Liquid transport figure of merit M = ρ_l·σ·h_fg / µ_l [W/m²].

        The standard ranking metric for heat-pipe working fluids
        (Peterson 1994): higher M means more capillary heat transport.
        """
        return (self.liquid_density * self.surface_tension * self.latent_heat
                / self.liquid_viscosity)


@dataclass(frozen=True)
class _FluidCorrelation:
    """Correlation coefficients defining one working fluid.

    Vapour pressure uses the Antoine equation
    ``log10(p_mmHg) = A - B / (T + C - 273.15)`` with T in kelvin shifted to
    the Celsius-based Antoine constants; latent heat uses Watson scaling
    from a reference point; the remaining liquid properties use low-order
    polynomials in reduced temperature.
    """

    name: str
    molar_mass: float           # kg/mol
    t_min: float                # K, validity range
    t_max: float                # K
    t_critical: float           # K
    antoine_a: float            # Antoine constants, p in mmHg, T in degC
    antoine_b: float
    antoine_c: float
    h_fg_ref: float             # J/kg at t_ref
    t_ref: float                # K
    rho_l_ref: float            # kg/m³ at t_ref
    rho_l_slope: float          # kg/m³/K (negative)
    mu_l_ref: float             # Pa·s at t_ref
    mu_l_activation: float      # K, exponential activation temperature
    k_l_ref: float              # W/m·K at t_ref
    k_l_slope: float            # W/m·K/K
    sigma_ref: float            # N/m at t_ref
    cp_l_ref: float             # J/kg/K


_WORKING_FLUIDS: Dict[str, _FluidCorrelation] = {
    "water": _FluidCorrelation(
        name="water", molar_mass=0.018015,
        t_min=280.0, t_max=500.0, t_critical=647.1,
        antoine_a=8.07131, antoine_b=1730.63, antoine_c=233.426,
        h_fg_ref=2.257e6, t_ref=373.15,
        rho_l_ref=958.4, rho_l_slope=-0.75,
        mu_l_ref=2.82e-4, mu_l_activation=1825.0,
        k_l_ref=0.68, k_l_slope=-5e-4,
        sigma_ref=0.0589, cp_l_ref=4217.0,
    ),
    "ammonia": _FluidCorrelation(
        name="ammonia", molar_mass=0.017031,
        t_min=200.0, t_max=380.0, t_critical=405.5,
        antoine_a=7.36050, antoine_b=926.132, antoine_c=240.17,
        h_fg_ref=1.371e6, t_ref=239.8,
        rho_l_ref=682.0, rho_l_slope=-1.4,
        mu_l_ref=2.55e-4, mu_l_activation=600.0,
        k_l_ref=0.665, k_l_slope=-2.5e-3,
        sigma_ref=0.0335, cp_l_ref=4700.0,
    ),
    "acetone": _FluidCorrelation(
        name="acetone", molar_mass=0.05808,
        t_min=250.0, t_max=480.0, t_critical=508.1,
        antoine_a=7.11714, antoine_b=1210.595, antoine_c=229.664,
        h_fg_ref=5.18e5, t_ref=329.2,
        rho_l_ref=748.0, rho_l_slope=-1.1,
        mu_l_ref=2.37e-4, mu_l_activation=780.0,
        k_l_ref=0.151, k_l_slope=-3.0e-4,
        sigma_ref=0.0192, cp_l_ref=2160.0,
    ),
    "methanol": _FluidCorrelation(
        name="methanol", molar_mass=0.03204,
        t_min=250.0, t_max=480.0, t_critical=512.6,
        antoine_a=8.08097, antoine_b=1582.271, antoine_c=239.726,
        h_fg_ref=1.10e6, t_ref=337.8,
        rho_l_ref=751.0, rho_l_slope=-1.0,
        mu_l_ref=3.26e-4, mu_l_activation=1100.0,
        k_l_ref=0.190, k_l_slope=-2.4e-4,
        sigma_ref=0.0189, cp_l_ref=2530.0,
    ),
    "ethanol": _FluidCorrelation(
        name="ethanol", molar_mass=0.04607,
        t_min=250.0, t_max=480.0, t_critical=513.9,
        antoine_a=8.20417, antoine_b=1642.89, antoine_c=230.3,
        h_fg_ref=8.46e5, t_ref=351.4,
        rho_l_ref=757.0, rho_l_slope=-0.95,
        mu_l_ref=4.29e-4, mu_l_activation=1350.0,
        k_l_ref=0.154, k_l_slope=-2.0e-4,
        sigma_ref=0.0177, cp_l_ref=2840.0,
    ),
}


def list_working_fluids() -> tuple:
    """Names of the available two-phase working fluids."""
    return tuple(sorted(_WORKING_FLUIDS))


def saturation_properties(fluid: str, temperature: float) -> SaturationState:
    """Saturation-line properties of ``fluid`` at ``temperature`` [K].

    Raises
    ------
    InputError
        If the fluid name is unknown.
    ModelRangeError
        If the temperature lies outside the correlation's validity range.
    """
    try:
        corr = _WORKING_FLUIDS[fluid]
    except KeyError:
        raise InputError(
            f"unknown working fluid {fluid!r}; "
            f"known: {', '.join(list_working_fluids())}") from None
    _check_range(corr.name, temperature, corr.t_min, corr.t_max)

    t_c = temperature - 273.15
    p_mmhg = 10.0 ** (corr.antoine_a - corr.antoine_b / (t_c + corr.antoine_c))
    pressure = p_mmhg * 133.322

    # Watson scaling of the latent heat towards the critical point.
    tr = temperature / corr.t_critical
    tr_ref = corr.t_ref / corr.t_critical
    latent = corr.h_fg_ref * ((1.0 - tr) / (1.0 - tr_ref)) ** 0.38

    rho_l = corr.rho_l_ref + corr.rho_l_slope * (temperature - corr.t_ref)
    if rho_l <= 0.0:
        raise ModelRangeError(f"{fluid}: liquid density model collapsed")

    # Ideal-gas vapour density at saturation pressure.
    rho_v = pressure * corr.molar_mass / (R_UNIVERSAL * temperature)

    mu_l = corr.mu_l_ref * math.exp(
        corr.mu_l_activation * (1.0 / temperature - 1.0 / corr.t_ref))
    mu_v = 1.0e-5 * (temperature / 300.0) ** 0.7

    k_l = corr.k_l_ref + corr.k_l_slope * (temperature - corr.t_ref)
    k_l = max(k_l, 1e-3)

    # Surface tension vanishes at the critical point (Guggenheim-Katayama).
    sigma = corr.sigma_ref * ((1.0 - tr) / (1.0 - tr_ref)) ** 1.26
    sigma = max(sigma, 1e-5)

    return SaturationState(
        temperature=temperature,
        pressure=pressure,
        latent_heat=latent,
        liquid_density=rho_l,
        vapor_density=rho_v,
        liquid_viscosity=mu_l,
        vapor_viscosity=mu_v,
        liquid_conductivity=k_l,
        surface_tension=sigma,
        liquid_specific_heat=corr.cp_l_ref,
    )


def rank_working_fluids(temperature: float) -> tuple:
    """Rank all working fluids by merit number at ``temperature``.

    Fluids whose correlation does not cover ``temperature`` are skipped.
    Returns a tuple of ``(name, merit_number)`` sorted descending.
    """
    ranking = []
    for name in list_working_fluids():
        try:
            state = saturation_properties(name, temperature)
        except ModelRangeError:
            continue
        ranking.append((name, state.merit_number()))
    ranking.sort(key=lambda item: item[1], reverse=True)
    return tuple(ranking)
