"""Command-line entry point: reproduce the paper's headline results.

Usage::

    python -m avipack            # Fig. 10 table + headline claims
    python -m avipack fig10      # just the Fig. 10 series
    python -m avipack claims     # just the SIV.A claims
    python -m avipack nanopack   # the NANOPACK TIM results
    python -m avipack qual       # the virtual qualification campaign
    python -m avipack sweep --journal sweep.jsonl        # durable sweep
    python -m avipack sweep --journal sweep.jsonl --resume  # continue it
    python -m avipack sweep --store-dir results/ \\
        --report-json report.json     # columnar store + JSON report
    python -m avipack results --store results/   # store analytics
    python -m avipack compact --journal sweep.jsonl \\
        --store results/              # crash-safe space reclamation
    python -m avipack serve --socket /tmp/avipack.sock \\
        --journal-dir jobs/                     # resilient job server
"""

from __future__ import annotations

import argparse
import sys


def _print_fig10() -> None:
    from .experiments.cosee import fig10_curves

    curves = fig10_curves()
    print("Fig. 10 - Tpcb1 - Tair [K] vs SEB power [W]")
    print(f"{'P [W]':>6} {'no LHP':>8} {'LHP horiz':>10} "
          f"{'LHP 22deg':>10}")
    without = dict(curves["without_lhp"])
    horizontal = dict(curves["with_lhp_horizontal"])
    tilted = dict(curves["with_lhp_tilt22"])
    for power in sorted(horizontal):
        no_lhp = f"{without[power]:8.1f}" if power in without \
            else "       -"
        print(f"{power:6.0f} {no_lhp} {horizontal[power]:10.1f} "
              f"{tilted[power]:10.1f}")


def _print_claims() -> None:
    from .experiments.cosee import measure_claims, \
        measure_composite_claims

    aluminum = measure_claims()
    composite = measure_composite_claims()
    print("SIV.A claims (paper -> model):")
    print(f"  capability increase (Al)   : +150 %  -> "
          f"+{aluminum.capability_increase_pct:.0f} %")
    print(f"  PCB drop at 40 W (Al)      :   32 K  -> "
          f"{aluminum.temperature_drop_at_40w:.1f} K")
    print(f"  LHP power at capability    :   58 W  -> "
          f"{aluminum.lhp_heat_at_capability:.1f} W")
    print(f"  capability increase (CFRP) :  +80 %  -> "
          f"+{composite.capability_increase_pct:.0f} %")
    print(f"  PCB drop at 40 W (CFRP)    :   20 K  -> "
          f"{composite.temperature_drop_at_40w:.1f} K")


def _print_nanopack() -> None:
    from .experiments.nanopack import design_nanopack_adhesives, \
        hnc_interface_study

    print("SIV.B NANOPACK adhesive designs:")
    for design in design_nanopack_adhesives():
        print(f"  {design.name:<28} {design.filler_loading * 100:5.1f} "
              f"vol% -> {design.achieved_conductivity:5.2f} W/m.K")
    passing = [s for s in hnc_interface_study() if s.meets_target_hnc]
    print(f"  interfaces meeting <5 K.mm2/W @ <20 um (HNC): "
          f"{', '.join(s.material_name for s in passing)}")


def _print_qualification() -> None:
    from .core.qualification import run_campaign
    from .core.report import render_qualification_report
    from .environments.profiles import cosee_campaign
    from .experiments.cosee import seb_under_test

    report = run_campaign(seb_under_test(power=40.0), cosee_campaign())
    print(render_qualification_report(report))


def _report_json_payload(report, top: int) -> dict:
    """Machine-readable projection of a sweep report (ranked top-k)."""
    ranking = [
        {
            "position": position,
            "index": result.index,
            "fingerprint": result.fingerprint,
            "label": result.candidate.label,
            "cost_rank": result.cost_rank,
            "worst_board_c": result.worst_board_c,
            "thermal_headroom_c": result.thermal_headroom_c,
        }
        for position, result in enumerate(report.top(top), start=1)]
    payload = {
        "n_candidates": report.n_candidates,
        "n_compliant": report.n_compliant,
        "n_failures": len(report.failures),
        "mode": report.mode,
        "workers": report.workers,
        "wall_time_s": report.wall_time_s,
        "ranking": ranking,
    }
    if report.durability is not None:
        payload["durability"] = {
            "journal_path": report.durability.journal_path,
            "n_resumed": report.durability.n_resumed,
            "n_recomputed": report.durability.n_recomputed,
            "n_quarantined": report.durability.n_quarantined,
            "n_audit_failures": report.durability.n_audit_failures,
        }
    if report.result_store is not None:
        payload["result_store"] = {
            "directory": report.result_store.directory,
            "rows_added": report.result_store.rows_added,
            "shards_sealed": report.result_store.shards_sealed,
        }
    return payload


def _write_report_json(path: str, report, top: int) -> None:
    """Atomically publish the ranked report as JSON (tmp + os.replace)."""
    import json
    import os
    import tempfile

    payload = _report_json_payload(report, top)
    directory = os.path.dirname(os.path.abspath(path))
    fd, tmp = tempfile.mkstemp(dir=directory,
                               prefix=os.path.basename(path) + ".tmp.")
    try:
        with os.fdopen(fd, "w", encoding="ascii") as stream:
            json.dump(payload, stream, indent=2, sort_keys=True)
            stream.write("\n")
            stream.flush()
            os.fsync(stream.fileno())
        os.replace(tmp, path)
    except BaseException:
        if os.path.exists(tmp):
            os.unlink(tmp)
        raise


def _run_sweep(argv) -> int:
    """``python -m avipack sweep`` — a durable design-space campaign.

    Exit codes: 0 — sweep finished with compliant candidates; 1 —
    sweep finished but nothing complied; 2 — usage error; 3 — the
    ``--resume`` journal is unusable (missing, unreadable, or every
    record quarantined).
    """
    from .durability import replay_journal
    from .errors import JournalError
    from .sweep import DesignSpace, SweepRunner, render_sweep_document

    parser = argparse.ArgumentParser(
        prog="python -m avipack sweep",
        description="Run (or resume) a journalled standard-tradeoff "
                    "design-space sweep.")
    parser.add_argument("--journal", metavar="PATH", default=None,
                        help="write-ahead journal path (enables "
                             "crash-safe resume)")
    parser.add_argument("--resume", action="store_true",
                        help="resume the campaign recorded in --journal "
                             "instead of starting fresh")
    parser.add_argument("--sample", type=int, metavar="N", default=None,
                        help="evaluate a seeded N-candidate sub-sample "
                             "of the grid instead of the full space")
    parser.add_argument("--seed", type=int, default=0,
                        help="sample seed (default 0)")
    parser.add_argument("--cache-dir", metavar="DIR", default=None,
                        help="persistent on-disk solver cache shared "
                             "across (resumed) runs")
    parser.add_argument("--serial", action="store_true",
                        help="force the serial execution path")
    parser.add_argument("--top", type=int, default=10,
                        help="ranked-table length (default 10)")
    parser.add_argument("--store-dir", metavar="DIR", default=None,
                        help="columnar result-store directory: stream "
                             "every outcome into memory-mapped shards "
                             "for zero-unpickle analytics "
                             "(python -m avipack results)")
    parser.add_argument("--report-json", metavar="PATH", default=None,
                        help="additionally publish the ranked report "
                             "as JSON at PATH (atomic write)")
    args = parser.parse_args(argv)
    if args.resume and args.journal is None:
        parser.error("--resume requires --journal")

    space = DesignSpace.standard_tradeoff()
    candidates = (space.sample(args.sample, seed=args.seed)
                  if args.sample is not None else space)
    runner = SweepRunner(parallel=not args.serial,
                         cache_dir=args.cache_dir,
                         result_store=args.store_dir)
    if args.resume:
        try:
            replay = replay_journal(args.journal, write_quarantine=True)
        except JournalError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 3
        if replay.n_records == 0:
            print(
                f"error: journal {args.journal} holds no usable records"
                f" ({replay.n_quarantined} damaged record(s) quarantined"
                f" to {args.journal}.quarantine); the campaign cannot be"
                " resumed. Restore the journal from a backup, or re-run"
                " without --resume to start fresh.",
                file=sys.stderr)
            return 3
        try:
            report = runner.resume(args.journal)
        except JournalError as exc:
            print(f"error: cannot resume from {args.journal}: {exc}",
                  file=sys.stderr)
            return 3
    else:
        report = runner.run(candidates, journal_path=args.journal)
    print(render_sweep_document(report, top=args.top))
    if args.report_json is not None:
        _write_report_json(args.report_json, report, args.top)
    return 0 if report.n_compliant else 1


def _run_results(argv) -> int:
    """``python -m avipack results`` — analytics over a result store.

    Everything is computed from the store's typed columns (no outcome
    payload is unpickled).  Exit codes: 0 — store served and holds
    compliant candidates; 1 — store served but nothing complied; 2 —
    usage error or missing/unreadable store.
    """
    from .errors import InputError, ResultStoreError
    from .results import ResultStore, render_store_report

    parser = argparse.ArgumentParser(
        prog="python -m avipack results",
        description="Render zero-unpickle analytics for a columnar "
                    "result store written by `sweep --store-dir`.")
    parser.add_argument("--store", metavar="DIR", required=True,
                        help="result-store directory")
    parser.add_argument("--top", type=int, default=10,
                        help="ranked-table length (default 10)")
    parser.add_argument("--bins", type=int, default=12,
                        help="headroom-histogram bins (default 12)")
    args = parser.parse_args(argv)
    try:
        store = ResultStore.open(args.store)
        document = render_store_report(store, top=args.top,
                                       histogram_bins=args.bins)
        n_compliant = int((store.live_mask()
                           & store.column("compliant")).sum())
    except (ResultStoreError, InputError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    print(document)
    return 0 if n_compliant else 1


def _run_compact(argv) -> int:
    """``python -m avipack compact`` — crash-safe space reclamation.

    Folds a journal's verified prefix into one checkpoint record
    and/or rewrites a result store's shards dropping superseded rows —
    both atomic, both ranking-preserving.  Exit codes: 0 — every
    requested compaction succeeded; 2 — usage error or a target that
    cannot be compacted (missing file, lock contention, no intact
    plan record).
    """
    from .errors import DurabilityError
    from .retention import compact_journal, compact_store

    parser = argparse.ArgumentParser(
        prog="python -m avipack compact",
        description="Compact a sweep journal (fold into a checkpoint "
                    "record) and/or a columnar result store (drop "
                    "superseded rows and orphaned blobs); resume and "
                    "rankings are byte-identical afterwards.")
    parser.add_argument("--journal", metavar="PATH", default=None,
                        help="write-ahead journal to compact in place")
    parser.add_argument("--store", metavar="DIR", default=None,
                        help="result-store directory to compact")
    args = parser.parse_args(argv)
    if args.journal is None and args.store is None:
        parser.error("nothing to compact: give --journal and/or --store")
    try:
        if args.journal is not None:
            folded = compact_journal(args.journal)
            print(f"journal {args.journal}: folded {folded.n_folded} "
                  f"record(s) into one checkpoint "
                  f"({folded.bytes_before} -> {folded.bytes_after} "
                  f"bytes, {folded.bytes_reclaimed} reclaimed, "
                  f"{folded.n_quarantined} quarantined)")
        if args.store is not None:
            rewritten = compact_store(args.store)
            print(f"store {args.store}: rewrote "
                  f"{rewritten.shards_rewritten} shard(s) into "
                  f"{rewritten.shards_published}, dropped "
                  f"{rewritten.rows_dropped} superseded row(s), swept "
                  f"{rewritten.orphan_blobs_removed} orphan blob "
                  f"pool(s) ({rewritten.bytes_reclaimed} bytes "
                  "reclaimed)")
    except DurabilityError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    return 0


def _run_serve(argv) -> int:
    """``python -m avipack serve`` — the resilient sweep job server.

    Serves JSON-lines requests over a local Unix socket until drained
    (SIGTERM/SIGINT, or a client ``shutdown`` request); exits 0 after a
    graceful drain, 2 on a usage/startup error.  On startup every
    unfinished job found in ``--journal-dir`` is recovered and resumed.
    """
    import asyncio

    from .errors import ServiceError
    from .retention import RetentionPolicy
    from .service import AdmissionPolicy, ServiceConfig, SweepService

    parser = argparse.ArgumentParser(
        prog="python -m avipack serve",
        description="Serve sweep jobs over a local Unix socket "
                    "(JSON lines; see the avipack.service docs).")
    parser.add_argument("--socket", metavar="PATH", required=True,
                        help="Unix-domain socket path to listen on")
    parser.add_argument("--journal-dir", metavar="DIR", required=True,
                        help="directory for per-job journals and "
                             "manifests (created if missing; scanned "
                             "for unfinished jobs at startup)")
    parser.add_argument("--max-queued", type=int, default=16,
                        help="bounded-queue size (default 16)")
    parser.add_argument("--max-jobs-per-client", type=int, default=4,
                        help="active-job quota per client (default 4)")
    parser.add_argument("--max-candidates-per-job", type=int,
                        default=100_000,
                        help="per-submission size bound (default 100000)")
    parser.add_argument("--heartbeat-s", type=float, default=1.0,
                        metavar="S", help="heartbeat period (default 1)")
    parser.add_argument("--stall-timeout-s", type=float, default=300.0,
                        metavar="S",
                        help="cancel a running job making no candidate "
                             "progress for this long (default 300)")
    parser.add_argument("--deadline-s", type=float, default=None,
                        metavar="S",
                        help="default per-job wall-clock deadline "
                             "(submissions may set their own)")
    parser.add_argument("--candidate-timeout-s", type=float,
                        default=None, metavar="S",
                        help="per-candidate watchdog handed to the "
                             "sweep runner (parallel mode)")
    parser.add_argument("--max-running", type=int, default=1,
                        help="jobs executed concurrently (default 1)")
    parser.add_argument("--serial", action="store_true",
                        help="run sweeps on the serial path (no "
                             "process pool)")
    parser.add_argument("--max-workers", type=int, default=None,
                        help="sweep process-pool width")
    parser.add_argument("--throttle-s", type=float, default=0.0,
                        metavar="S",
                        help="artificial per-candidate delay (pacing "
                             "for demos and chaos drills; default 0)")
    parser.add_argument("--disk-high-watermark-bytes", type=int,
                        default=None, metavar="N",
                        help="journal-dir footprint that triggers "
                             "retention and degrades admission to "
                             "disk_low refusals (default: no governor)")
    parser.add_argument("--disk-low-watermark-bytes", type=int,
                        default=None, metavar="N",
                        help="footprint admission recovery requires "
                             "(default: half the high watermark)")
    parser.add_argument("--disk-poll-s", type=float, default=5.0,
                        metavar="S",
                        help="disk-usage poll period (default 5)")
    parser.add_argument("--keep-last-n", type=int, default=None,
                        metavar="N",
                        help="retention: keep at most N finished jobs")
    parser.add_argument("--max-age-s", type=float, default=None,
                        metavar="S",
                        help="retention: evict finished jobs older "
                             "than S seconds")
    parser.add_argument("--max-bytes", type=int, default=None,
                        metavar="N",
                        help="retention: evict oldest finished jobs "
                             "beyond N bytes of footprint")
    args = parser.parse_args(argv)

    config = ServiceConfig(
        socket_path=args.socket,
        journal_dir=args.journal_dir,
        admission=AdmissionPolicy(
            max_queued=args.max_queued,
            max_jobs_per_client=args.max_jobs_per_client,
            max_candidates_per_job=args.max_candidates_per_job),
        heartbeat_s=args.heartbeat_s,
        stall_timeout_s=args.stall_timeout_s,
        deadline_s=args.deadline_s,
        candidate_timeout_s=args.candidate_timeout_s,
        max_running=args.max_running,
        parallel=not args.serial,
        max_workers=args.max_workers,
        throttle_s=args.throttle_s,
        disk_high_watermark_bytes=args.disk_high_watermark_bytes,
        disk_low_watermark_bytes=args.disk_low_watermark_bytes,
        disk_poll_s=args.disk_poll_s,
        retention=RetentionPolicy(
            keep_last_n=args.keep_last_n,
            max_age_s=args.max_age_s,
            max_bytes=args.max_bytes))
    try:
        asyncio.run(SweepService(config).serve())
    except ServiceError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    return 0


#: Zero-argument report commands (legacy dispatch).
_COMMANDS = {
    "fig10": _print_fig10,
    "claims": _print_claims,
    "nanopack": _print_nanopack,
    "qual": _print_qualification,
}

#: Commands that parse their own argument vector.
_ARG_COMMANDS = {
    "compact": _run_compact,
    "results": _run_results,
    "serve": _run_serve,
    "sweep": _run_sweep,
}


def main(argv=None) -> int:
    """CLI dispatcher; returns a process exit code."""
    argv = list(sys.argv[1:] if argv is None else argv)
    if not argv:
        _print_fig10()
        print()
        _print_claims()
        return 0
    command = argv[0]
    if command in ("-h", "--help"):
        print(__doc__)
        return 0
    if command in _ARG_COMMANDS:
        return _ARG_COMMANDS[command](argv[1:])
    if command not in _COMMANDS:
        print(f"unknown command {command!r}; choose from "
              f"{', '.join(sorted(_COMMANDS) + sorted(_ARG_COMMANDS))}",
              file=sys.stderr)
        return 2
    _COMMANDS[command]()
    return 0


if __name__ == "__main__":
    sys.exit(main())
