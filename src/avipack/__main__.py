"""Command-line entry point: reproduce the paper's headline results.

Usage::

    python -m avipack            # Fig. 10 table + headline claims
    python -m avipack fig10      # just the Fig. 10 series
    python -m avipack claims     # just the SIV.A claims
    python -m avipack nanopack   # the NANOPACK TIM results
    python -m avipack qual       # the virtual qualification campaign
    python -m avipack sweep --journal sweep.jsonl        # durable sweep
    python -m avipack sweep --journal sweep.jsonl --resume  # continue it
"""

from __future__ import annotations

import argparse
import sys


def _print_fig10() -> None:
    from .experiments.cosee import fig10_curves

    curves = fig10_curves()
    print("Fig. 10 - Tpcb1 - Tair [K] vs SEB power [W]")
    print(f"{'P [W]':>6} {'no LHP':>8} {'LHP horiz':>10} "
          f"{'LHP 22deg':>10}")
    without = dict(curves["without_lhp"])
    horizontal = dict(curves["with_lhp_horizontal"])
    tilted = dict(curves["with_lhp_tilt22"])
    for power in sorted(horizontal):
        no_lhp = f"{without[power]:8.1f}" if power in without \
            else "       -"
        print(f"{power:6.0f} {no_lhp} {horizontal[power]:10.1f} "
              f"{tilted[power]:10.1f}")


def _print_claims() -> None:
    from .experiments.cosee import measure_claims, \
        measure_composite_claims

    aluminum = measure_claims()
    composite = measure_composite_claims()
    print("SIV.A claims (paper -> model):")
    print(f"  capability increase (Al)   : +150 %  -> "
          f"+{aluminum.capability_increase_pct:.0f} %")
    print(f"  PCB drop at 40 W (Al)      :   32 K  -> "
          f"{aluminum.temperature_drop_at_40w:.1f} K")
    print(f"  LHP power at capability    :   58 W  -> "
          f"{aluminum.lhp_heat_at_capability:.1f} W")
    print(f"  capability increase (CFRP) :  +80 %  -> "
          f"+{composite.capability_increase_pct:.0f} %")
    print(f"  PCB drop at 40 W (CFRP)    :   20 K  -> "
          f"{composite.temperature_drop_at_40w:.1f} K")


def _print_nanopack() -> None:
    from .experiments.nanopack import design_nanopack_adhesives, \
        hnc_interface_study

    print("SIV.B NANOPACK adhesive designs:")
    for design in design_nanopack_adhesives():
        print(f"  {design.name:<28} {design.filler_loading * 100:5.1f} "
              f"vol% -> {design.achieved_conductivity:5.2f} W/m.K")
    passing = [s for s in hnc_interface_study() if s.meets_target_hnc]
    print(f"  interfaces meeting <5 K.mm2/W @ <20 um (HNC): "
          f"{', '.join(s.material_name for s in passing)}")


def _print_qualification() -> None:
    from .core.qualification import run_campaign
    from .core.report import render_qualification_report
    from .environments.profiles import cosee_campaign
    from .experiments.cosee import seb_under_test

    report = run_campaign(seb_under_test(power=40.0), cosee_campaign())
    print(render_qualification_report(report))


def _run_sweep(argv) -> int:
    """``python -m avipack sweep`` — a durable design-space campaign."""
    from .sweep import DesignSpace, SweepRunner, render_sweep_document

    parser = argparse.ArgumentParser(
        prog="python -m avipack sweep",
        description="Run (or resume) a journalled standard-tradeoff "
                    "design-space sweep.")
    parser.add_argument("--journal", metavar="PATH", default=None,
                        help="write-ahead journal path (enables "
                             "crash-safe resume)")
    parser.add_argument("--resume", action="store_true",
                        help="resume the campaign recorded in --journal "
                             "instead of starting fresh")
    parser.add_argument("--sample", type=int, metavar="N", default=None,
                        help="evaluate a seeded N-candidate sub-sample "
                             "of the grid instead of the full space")
    parser.add_argument("--seed", type=int, default=0,
                        help="sample seed (default 0)")
    parser.add_argument("--cache-dir", metavar="DIR", default=None,
                        help="persistent on-disk solver cache shared "
                             "across (resumed) runs")
    parser.add_argument("--serial", action="store_true",
                        help="force the serial execution path")
    parser.add_argument("--top", type=int, default=10,
                        help="ranked-table length (default 10)")
    args = parser.parse_args(argv)
    if args.resume and args.journal is None:
        parser.error("--resume requires --journal")

    space = DesignSpace.standard_tradeoff()
    candidates = (space.sample(args.sample, seed=args.seed)
                  if args.sample is not None else space)
    runner = SweepRunner(parallel=not args.serial,
                         cache_dir=args.cache_dir)
    if args.resume:
        report = runner.resume(args.journal)
    else:
        report = runner.run(candidates, journal_path=args.journal)
    print(render_sweep_document(report, top=args.top))
    return 0 if report.n_compliant else 1


#: Zero-argument report commands (legacy dispatch).
_COMMANDS = {
    "fig10": _print_fig10,
    "claims": _print_claims,
    "nanopack": _print_nanopack,
    "qual": _print_qualification,
}

#: Commands that parse their own argument vector.
_ARG_COMMANDS = {
    "sweep": _run_sweep,
}


def main(argv=None) -> int:
    """CLI dispatcher; returns a process exit code."""
    argv = list(sys.argv[1:] if argv is None else argv)
    if not argv:
        _print_fig10()
        print()
        _print_claims()
        return 0
    command = argv[0]
    if command in ("-h", "--help"):
        print(__doc__)
        return 0
    if command in _ARG_COMMANDS:
        return _ARG_COMMANDS[command](argv[1:])
    if command not in _COMMANDS:
        print(f"unknown command {command!r}; choose from "
              f"{', '.join(sorted(_COMMANDS) + sorted(_ARG_COMMANDS))}",
              file=sys.stderr)
        return 2
    _COMMANDS[command]()
    return 0


if __name__ == "__main__":
    sys.exit(main())
