"""Euler–Bernoulli beam finite elements.

A small but genuine FEM kernel: 2-node beam elements with transverse
displacement + rotation DOFs, consistent mass matrices, point masses,
static solves and eigenvalue extraction.  Used for chassis rails,
connector brackets and the seat-structure rods of the COSEE demonstrator,
and as an independent cross-check of the plate Rayleigh–Ritz results
(a 1-D plate strip is a beam).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Tuple

import numpy as np
from scipy.linalg import eigh

from ..errors import InputError


@dataclass(frozen=True)
class BeamSection:
    """Beam cross-section and material.

    ``area`` [m²], ``inertia`` (second moment, bending) [m⁴],
    ``youngs_modulus`` [Pa], ``density`` [kg/m³].
    """

    area: float
    inertia: float
    youngs_modulus: float
    density: float

    def __post_init__(self) -> None:
        for name in ("area", "inertia", "youngs_modulus", "density"):
            if getattr(self, name) <= 0.0:
                raise InputError(f"{name} must be positive")

    @classmethod
    def rectangular(cls, width: float, height: float, youngs_modulus: float,
                    density: float) -> "BeamSection":
        """Solid rectangular section bending about the width axis."""
        if width <= 0.0 or height <= 0.0:
            raise InputError("section dimensions must be positive")
        return cls(area=width * height,
                   inertia=width * height ** 3 / 12.0,
                   youngs_modulus=youngs_modulus, density=density)

    @classmethod
    def tube(cls, outer_diameter: float, wall_thickness: float,
             youngs_modulus: float, density: float) -> "BeamSection":
        """Circular tube section (seat-structure rods)."""
        if outer_diameter <= 0.0 or wall_thickness <= 0.0:
            raise InputError("tube dimensions must be positive")
        inner = outer_diameter - 2.0 * wall_thickness
        if inner < 0.0:
            raise InputError("wall thickness exceeds radius")
        area = math.pi / 4.0 * (outer_diameter ** 2 - inner ** 2)
        inertia = math.pi / 64.0 * (outer_diameter ** 4 - inner ** 4)
        return cls(area=area, inertia=inertia,
                   youngs_modulus=youngs_modulus, density=density)


class BeamModel:
    """Assembled FE model of a straight beam.

    Nodes are equally spaced along the length; each node carries
    (deflection w, rotation θ).  Boundary conditions fix DOFs at the end
    nodes; point masses model mounted equipment.
    """

    def __init__(self, length: float, section: BeamSection,
                 n_elements: int = 20) -> None:
        if length <= 0.0:
            raise InputError("length must be positive")
        if n_elements < 1:
            raise InputError("need at least one element")
        self.length = float(length)
        self.section = section
        self.n_elements = int(n_elements)
        self.n_nodes = self.n_elements + 1
        self._point_masses: Dict[int, float] = {}
        self._fixed_dofs: set = set()

    # -- model editing ---------------------------------------------------------

    def add_point_mass(self, position: float, mass: float) -> None:
        """Attach ``mass`` [kg] at the node nearest ``position`` [m]."""
        if not 0.0 <= position <= self.length:
            raise InputError("position must lie on the beam")
        if mass < 0.0:
            raise InputError("mass must be non-negative")
        node = int(round(position / self.length * self.n_elements))
        self._point_masses[node] = self._point_masses.get(node, 0.0) + mass

    def set_support(self, end: str, kind: str) -> None:
        """Support an end: ``end`` in {"left", "right"}, ``kind`` in
        {"pinned", "clamped", "free"}."""
        if end not in ("left", "right"):
            raise InputError("end must be 'left' or 'right'")
        if kind not in ("pinned", "clamped", "free"):
            raise InputError("kind must be pinned, clamped or free")
        node = 0 if end == "left" else self.n_nodes - 1
        w_dof, theta_dof = 2 * node, 2 * node + 1
        self._fixed_dofs.discard(w_dof)
        self._fixed_dofs.discard(theta_dof)
        if kind in ("pinned", "clamped"):
            self._fixed_dofs.add(w_dof)
        if kind == "clamped":
            self._fixed_dofs.add(theta_dof)

    # -- assembly ----------------------------------------------------------------

    def _element_matrices(self) -> Tuple[np.ndarray, np.ndarray]:
        sec = self.section
        le = self.length / self.n_elements
        ei = sec.youngs_modulus * sec.inertia
        k = ei / le ** 3 * np.array([
            [12.0, 6.0 * le, -12.0, 6.0 * le],
            [6.0 * le, 4.0 * le ** 2, -6.0 * le, 2.0 * le ** 2],
            [-12.0, -6.0 * le, 12.0, -6.0 * le],
            [6.0 * le, 2.0 * le ** 2, -6.0 * le, 4.0 * le ** 2],
        ])
        rho_a = sec.density * sec.area
        m = rho_a * le / 420.0 * np.array([
            [156.0, 22.0 * le, 54.0, -13.0 * le],
            [22.0 * le, 4.0 * le ** 2, 13.0 * le, -3.0 * le ** 2],
            [54.0, 13.0 * le, 156.0, -22.0 * le],
            [-13.0 * le, -3.0 * le ** 2, -22.0 * le, 4.0 * le ** 2],
        ])
        return k, m

    def assemble(self) -> Tuple[np.ndarray, np.ndarray]:
        """Global (stiffness, mass) matrices including point masses."""
        n_dof = 2 * self.n_nodes
        stiffness = np.zeros((n_dof, n_dof))
        mass = np.zeros((n_dof, n_dof))
        k_el, m_el = self._element_matrices()
        for element in range(self.n_elements):
            dofs = [2 * element, 2 * element + 1,
                    2 * element + 2, 2 * element + 3]
            for i_local, i_global in enumerate(dofs):
                for j_local, j_global in enumerate(dofs):
                    stiffness[i_global, j_global] += k_el[i_local, j_local]
                    mass[i_global, j_global] += m_el[i_local, j_local]
        for node, point_mass in self._point_masses.items():
            mass[2 * node, 2 * node] += point_mass
        return stiffness, mass

    def _free_dofs(self) -> List[int]:
        return [dof for dof in range(2 * self.n_nodes)
                if dof not in self._fixed_dofs]

    # -- solutions ------------------------------------------------------------------

    def natural_frequencies(self, n_modes: int = 5) -> np.ndarray:
        """Lowest ``n_modes`` natural frequencies [Hz]."""
        if n_modes < 1:
            raise InputError("need at least one mode")
        if not self._fixed_dofs:
            raise InputError(
                "model is unconstrained; set at least one support")
        stiffness, mass = self.assemble()
        free = self._free_dofs()
        k_ff = stiffness[np.ix_(free, free)]
        m_ff = mass[np.ix_(free, free)]
        eigenvalues = eigh(k_ff, m_ff, eigvals_only=True)
        eigenvalues = np.clip(eigenvalues, 0.0, None)
        frequencies = np.sqrt(eigenvalues) / (2.0 * math.pi)
        return frequencies[:n_modes]

    def static_deflection(self, loads: Dict[float, float]) -> np.ndarray:
        """Deflection at every node under point loads [m].

        ``loads`` maps position [m] → force [N] (positive = transverse).
        """
        if not self._fixed_dofs:
            raise InputError(
                "model is unconstrained; set at least one support")
        stiffness, _mass = self.assemble()
        force = np.zeros(2 * self.n_nodes)
        for position, value in loads.items():
            if not 0.0 <= position <= self.length:
                raise InputError("load position must lie on the beam")
            node = int(round(position / self.length * self.n_elements))
            force[2 * node] += value
        free = self._free_dofs()
        solution = np.zeros(2 * self.n_nodes)
        solution[free] = np.linalg.solve(stiffness[np.ix_(free, free)],
                                         force[free])
        return solution[0::2]

    def quasi_static_acceleration_deflection(self, accel_m_s2: float
                                             ) -> np.ndarray:
        """Deflection under a uniform quasi-static acceleration [m].

        Models the 9 g linear-acceleration qualification test: inertial
        load ρ·A·a per unit length plus point-mass inertia.
        """
        sec = self.section
        le = self.length / self.n_elements
        line_load = sec.density * sec.area * accel_m_s2
        loads: Dict[float, float] = {}
        for node in range(self.n_nodes):
            tributary = le if 0 < node < self.n_nodes - 1 else le / 2.0
            loads[node * le] = loads.get(node * le, 0.0) \
                + line_load * tributary
        for node, point_mass in self._point_masses.items():
            position = node * le
            loads[position] = loads.get(position, 0.0) \
                + point_mass * accel_m_s2
        return self.static_deflection(loads)

    def max_bending_stress(self, deflections: np.ndarray,
                           fiber_distance: float) -> float:
        """Peak bending stress from a deflection field [Pa].

        σ = E·c·|w''| with curvature from central differences.
        """
        if deflections.shape != (self.n_nodes,):
            raise InputError("deflection array has wrong length")
        if fiber_distance <= 0.0:
            raise InputError("fiber distance must be positive")
        le = self.length / self.n_elements
        curvature = np.gradient(np.gradient(deflections, le), le)
        return float(self.section.youngs_modulus * fiber_distance
                     * np.abs(curvature).max())


def simply_supported_beam_frequency(length: float, section: BeamSection,
                                    mode: int = 1) -> float:
    """Closed-form pinned-pinned beam frequency [Hz] for verification.

    f_n = (nπ)²/(2π·L²)·sqrt(EI/ρA).
    """
    if length <= 0.0:
        raise InputError("length must be positive")
    if mode < 1:
        raise InputError("mode must be >= 1")
    ei = section.youngs_modulus * section.inertia
    rho_a = section.density * section.area
    return ((mode * math.pi) ** 2 / (2.0 * math.pi * length ** 2)
            * math.sqrt(ei / rho_a))
