"""Kirchhoff plate modal analysis for PCBs and panels.

The mechanical design examples of the paper hinge on *mode placement*: the
Ariane navigation-unit power supply was designed so its first resonance
lands near 500 Hz, per the launcher's frequency-allocation plan (Fig. 2).
This module computes natural frequencies and mode shapes of thin
rectangular plates — the standard idealisation of a PCB — via the
Rayleigh–Ritz method with separable beam characteristic functions, which
is accurate to a few percent for the low modes that matter.

Supported edge conditions per edge pair: simply supported (``"SS"``),
clamped (``"CC"``), free (``"FF"``) and clamped-free (``"CF"``).  Component
masses are smeared into an effective surface density, the common practice
for populated boards; stiffeners add smeared bending stiffness.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Tuple

from ..errors import InputError

#: Beam eigenvalue coefficients (λ_i·L) for the characteristic functions
#: used by the Rayleigh–Ritz expansion, per boundary pair.
_BEAM_LAMBDAS: Dict[str, Tuple[float, ...]] = {
    # simply supported - simply supported: λ_i = i·π
    "SS": tuple(i * math.pi for i in range(1, 7)),
    # clamped-clamped
    "CC": (4.7300, 7.8532, 10.9956, 14.1372, 17.2788, 20.4204),
    # clamped-free (cantilever)
    "CF": (1.8751, 4.6941, 7.8548, 10.9955, 14.1372, 17.2788),
    # free-free: the rigid-body mode (lambda = 0) followed by the
    # elastic free-free eigenvalues
    "FF": (0.0, 4.7300, 7.8532, 10.9956, 14.1372, 17.2788),
}

#: Galerkin integral coefficients for the beam functions: for each support
#: pair, the ratio ∫(φ'')²dx·L⁴ / (λ⁴·∫φ²dx) equals 1 exactly, so the
#: classical separable approximation ω² ≈ D/ρh · (λx⁴ + λy⁴ + 2·λx²·λy²)/L⁴
#: holds with correction factors close to 1 (Blevins 1979).


@dataclass(frozen=True)
class PlateSpec:
    """A rectangular plate (PCB, panel, cover).

    Parameters
    ----------
    length, width:
        In-plane dimensions a × b [m]; modes are indexed (m, n) along them.
    thickness:
        Plate thickness [m].
    youngs_modulus, poisson_ratio, density:
        Plate material properties (FR-4 laminate for a PCB).
    support:
        Two-character codes for the (x, y) edge pairs, e.g. ``("SS", "SS")``
        for a board simply supported on all four edges (card guides), or
        ``("CC", "SS")`` for wedge-locked edges.
    component_mass:
        Total mass of mounted components [kg], smeared uniformly.
    stiffener_rigidity:
        Additional smeared bending rigidity from stiffeners/frames [N·m].
    """

    length: float
    width: float
    thickness: float
    youngs_modulus: float
    poisson_ratio: float
    density: float
    support: Tuple[str, str] = ("SS", "SS")
    component_mass: float = 0.0
    stiffener_rigidity: float = 0.0

    def __post_init__(self) -> None:
        for name in ("length", "width", "thickness", "youngs_modulus",
                     "density"):
            if getattr(self, name) <= 0.0:
                raise InputError(f"{name} must be positive")
        if not 0.0 <= self.poisson_ratio < 0.5:
            raise InputError("Poisson ratio must be in [0, 0.5)")
        if self.component_mass < 0.0 or self.stiffener_rigidity < 0.0:
            raise InputError(
                "component mass and stiffener rigidity must be >= 0")
        for code in self.support:
            if code not in _BEAM_LAMBDAS:
                raise InputError(
                    f"unknown support code {code!r}; expected one of "
                    f"{sorted(_BEAM_LAMBDAS)}")

    @property
    def flexural_rigidity(self) -> float:
        """Bending rigidity D = E·h³/(12(1−ν²)) + stiffeners [N·m]."""
        d_plate = (self.youngs_modulus * self.thickness ** 3
                   / (12.0 * (1.0 - self.poisson_ratio ** 2)))
        return d_plate + self.stiffener_rigidity

    @property
    def surface_density(self) -> float:
        """Mass per unit area including smeared components [kg/m²]."""
        return (self.density * self.thickness
                + self.component_mass / (self.length * self.width))

    @property
    def total_mass(self) -> float:
        """Plate + component mass [kg]."""
        return self.surface_density * self.length * self.width


@dataclass(frozen=True)
class PlateMode:
    """One plate natural mode.

    ``indices`` are the half-wave counts (m, n) along (length, width).
    """

    frequency_hz: float
    indices: Tuple[int, int]

    @property
    def omega(self) -> float:
        """Angular frequency [rad/s]."""
        return 2.0 * math.pi * self.frequency_hz


def plate_modes(plate: PlateSpec, n_modes: int = 6) -> List[PlateMode]:
    """Natural frequencies of ``plate``, lowest first.

    Uses the separable Rayleigh quotient with beam characteristic
    eigenvalues per direction:

    .. math::

       \\omega_{mn}^2 = \\frac{D}{\\rho h}
           \\left[ \\left(\\frac{\\lambda_m}{a}\\right)^4
                 + \\left(\\frac{\\lambda_n}{b}\\right)^4
                 + 2 \\left(\\frac{\\lambda_m}{a}\\right)^2
                     \\left(\\frac{\\lambda_n}{b}\\right)^2 \\right]

    which is exact for all-simply-supported plates and a standard upper
    bound otherwise.
    """
    if n_modes < 1:
        raise InputError("need at least one mode")
    lambdas_x = _BEAM_LAMBDAS[plate.support[0]]
    lambdas_y = _BEAM_LAMBDAS[plate.support[1]]
    stiffness_ratio = plate.flexural_rigidity / plate.surface_density
    modes: List[PlateMode] = []
    for m, lam_x in enumerate(lambdas_x, start=1):
        for n, lam_y in enumerate(lambdas_y, start=1):
            kx = lam_x / plate.length
            ky = lam_y / plate.width
            omega_sq = stiffness_ratio * (kx ** 4 + ky ** 4
                                          + 2.0 * kx ** 2 * ky ** 2)
            frequency = math.sqrt(omega_sq) / (2.0 * math.pi)
            modes.append(PlateMode(frequency, (m, n)))
    modes.sort(key=lambda mode: mode.frequency_hz)
    return modes[:n_modes]


def fundamental_frequency(plate: PlateSpec) -> float:
    """First natural frequency of ``plate`` [Hz]."""
    return plate_modes(plate, 1)[0].frequency_hz


def mode_shape(plate: PlateSpec, mode: PlateMode, x: float, y: float) -> float:
    """Normalised deflection of ``mode`` at in-plane position (x, y).

    For the common simply supported case this is the exact
    ``sin(mπx/a)·sin(nπy/b)`` shape; other supports use the sine shape of
    the same half-wave count as an approximation adequate for response
    estimates at interior points.
    """
    if not (0.0 <= x <= plate.length and 0.0 <= y <= plate.width):
        raise InputError("(x, y) must lie on the plate")
    m, n = mode.indices
    return (math.sin(m * math.pi * x / plate.length)
            * math.sin(n * math.pi * y / plate.width))


def thickness_for_frequency(plate: PlateSpec, target_hz: float,
                            tolerance_hz: float = 0.5) -> float:
    """Thickness that places the fundamental at ``target_hz``.

    Bisection on thickness between 0.1 mm and 20 mm; other plate
    parameters are held.  This is the design move of Fig. 2: choosing the
    laminate/stiffening so the power-supply board resonates where the
    frequency-allocation plan puts it.
    """
    from dataclasses import replace

    if target_hz <= 0.0:
        raise InputError("target frequency must be positive")
    lo, hi = 1e-4, 2e-2
    f_lo = fundamental_frequency(replace(plate, thickness=lo))
    f_hi = fundamental_frequency(replace(plate, thickness=hi))
    if not f_lo <= target_hz <= f_hi:
        raise InputError(
            f"target {target_hz:.0f} Hz outside achievable range "
            f"[{f_lo:.0f}, {f_hi:.0f}] Hz for thickness 0.1-20 mm")
    for _ in range(80):
        mid = 0.5 * (lo + hi)
        f_mid = fundamental_frequency(replace(plate, thickness=mid))
        if abs(f_mid - target_hz) <= tolerance_hz:
            return mid
        if f_mid < target_hz:
            lo = mid
        else:
            hi = mid
    return 0.5 * (lo + hi)


def stiffener_rigidity_for_frequency(plate: PlateSpec, target_hz: float
                                     ) -> float:
    """Smeared stiffener rigidity that places the fundamental at
    ``target_hz`` [N·m], holding the laminate fixed.

    Returns 0 if the bare plate already exceeds the target.
    """
    from dataclasses import replace

    if target_hz <= 0.0:
        raise InputError("target frequency must be positive")
    bare = fundamental_frequency(replace(plate, stiffener_rigidity=0.0))
    if bare >= target_hz:
        return 0.0
    # f ∝ sqrt(D): solve directly.
    d_bare = replace(plate, stiffener_rigidity=0.0).flexural_rigidity
    required_d = d_bare * (target_hz / bare) ** 2
    return required_d - d_bare
