"""Thermo-mechanical stress: CTE mismatch, warpage and solder strain.

§II of the paper lists "thermo-mechanical induced stress" among the main
causes of failure in airborne equipment.  The classical engineering
models are implemented here:

* **bimaterial (Timoshenko) strip**: curvature and interface stresses of
  two bonded layers under a temperature change — the PCB-on-heatsink,
  die-on-substrate and stiffener-on-board cases;
* **distance-to-neutral-point (DNP) solder shear strain**: the strain a
  corner joint of a surface-mount package sees per thermal cycle, fed to
  the Coffin–Manson life already available in
  :mod:`avipack.mechanical.fatigue`;
* **constrained thermal stress** of a clamped part (σ = E·α·ΔT), the
  quick bolted-interface check.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import InputError


@dataclass(frozen=True)
class Layer:
    """One layer of a bonded bimaterial stack.

    ``thickness`` [m], ``youngs_modulus`` [Pa], ``cte`` [1/K].
    """

    thickness: float
    youngs_modulus: float
    cte: float

    def __post_init__(self) -> None:
        if self.thickness <= 0.0 or self.youngs_modulus <= 0.0:
            raise InputError("thickness and modulus must be positive")
        if self.cte < 0.0:
            raise InputError("CTE must be non-negative")


def bimaterial_curvature(layer_a: Layer, layer_b: Layer,
                         delta_t: float) -> float:
    """Curvature κ of a bonded two-layer strip under ΔT [1/m].

    Timoshenko's 1925 bimetal result:

    .. math::

       \\kappa = \\frac{6 (\\alpha_b - \\alpha_a) \\Delta T (1+m)^2}
                       {h \\left[3(1+m)^2 +
                        (1+mn)\\left(m^2 + \\frac{1}{mn}\\right)\\right]}

    with m = t_a/t_b, n = E_a/E_b and h = t_a + t_b.  Positive κ bends
    towards the lower-CTE layer side when heated.
    """
    m = layer_a.thickness / layer_b.thickness
    n = layer_a.youngs_modulus / layer_b.youngs_modulus
    h = layer_a.thickness + layer_b.thickness
    numerator = 6.0 * (layer_b.cte - layer_a.cte) * delta_t * (1.0 + m) ** 2
    denominator = h * (3.0 * (1.0 + m) ** 2
                       + (1.0 + m * n) * (m * m + 1.0 / (m * n)))
    return numerator / denominator


def bimaterial_bow(layer_a: Layer, layer_b: Layer, delta_t: float,
                   length: float) -> float:
    """Centre bow (sagitta) of a strip of ``length`` under ΔT [m].

    δ = κ·L²/8 for small curvature — the PCB warpage number compared
    against coplanarity limits after reflow or in a cold soak.
    """
    if length <= 0.0:
        raise InputError("length must be positive")
    return bimaterial_curvature(layer_a, layer_b, delta_t) * length ** 2 / 8.0


def bimaterial_interface_stress(layer_a: Layer, layer_b: Layer,
                                delta_t: float) -> float:
    """Peak interfacial shear-related axial stress estimate [Pa].

    First-order force balance: the mismatch strain is shared between the
    layers in proportion to their stiffness; the reported value is the
    axial stress in the *stiffer constraint direction* of layer a,
    σ_a = E_eff·Δα·ΔT with E_eff the series combination — the standard
    screening number for delamination risk (exact distributions need the
    Suhir analysis; this bounds them within ~20 %).
    """
    mismatch = abs(layer_a.cte - layer_b.cte) * abs(delta_t)
    stiffness_a = layer_a.youngs_modulus * layer_a.thickness
    stiffness_b = layer_b.youngs_modulus * layer_b.thickness
    effective = (stiffness_a * stiffness_b
                 / (stiffness_a + stiffness_b)) / layer_a.thickness
    return effective * mismatch


def constrained_thermal_stress(youngs_modulus: float, cte: float,
                               delta_t: float) -> float:
    """Stress of a fully constrained part under ΔT: σ = E·α·ΔT [Pa]."""
    if youngs_modulus <= 0.0 or cte < 0.0:
        raise InputError("modulus must be positive, CTE non-negative")
    return youngs_modulus * cte * abs(delta_t)


@dataclass(frozen=True)
class SolderJointAssessment:
    """Thermal-cycling verdict for one surface-mount solder joint."""

    shear_strain: float
    cycles_to_failure: float
    life_years_at_daily_cycles: float

    def survives(self, required_cycles: float) -> bool:
        """True when the predicted life covers ``required_cycles``."""
        if required_cycles <= 0.0:
            raise InputError("required cycles must be positive")
        return self.cycles_to_failure >= required_cycles


def solder_joint_assessment(package_half_diagonal: float,
                            joint_height: float,
                            cte_component: float,
                            cte_board: float,
                            delta_t: float,
                            cycles_per_day: float = 2.0,
                            reference_strain: float = 0.01,
                            reference_cycles: float = 3000.0,
                            exponent: float = 2.0
                            ) -> SolderJointAssessment:
    """Assess a corner solder joint under thermal cycling.

    The DNP (distance-to-neutral-point) shear strain is

    .. math:: \\gamma = \\frac{DNP \\cdot |\\alpha_c - \\alpha_b|
                               \\cdot \\Delta T}{h_{joint}}

    and the life follows a Coffin–Manson power law anchored at
    ``reference_strain`` → ``reference_cycles`` (SAC305 class defaults).

    Parameters
    ----------
    package_half_diagonal:
        DNP of the worst (corner) joint [m].
    joint_height:
        Solder stand-off height [m].
    cte_component, cte_board:
        Expansion coefficients [1/K] (ceramic ~7 ppm, FR-4 ~16 ppm).
    delta_t:
        Cycle temperature swing [K].
    cycles_per_day:
        Mission cycling rate for the life-in-years figure.
    """
    if package_half_diagonal <= 0.0 or joint_height <= 0.0:
        raise InputError("geometry must be positive")
    if delta_t <= 0.0:
        raise InputError("temperature swing must be positive")
    if cycles_per_day <= 0.0:
        raise InputError("cycling rate must be positive")
    strain = (package_half_diagonal * abs(cte_component - cte_board)
              * delta_t / joint_height)
    if strain <= 0.0:
        cycles = float("inf")
    else:
        cycles = reference_cycles * (reference_strain / strain) ** exponent
    years = cycles / (cycles_per_day * 365.0)
    return SolderJointAssessment(
        shear_strain=strain,
        cycles_to_failure=cycles,
        life_years_at_daily_cycles=years,
    )


def underfill_benefit_factor(strain_reduction: float = 0.7,
                             exponent: float = 2.0) -> float:
    """Life multiplication from underfilling a BGA/CSP.

    Underfill shares the shear load and typically cuts the joint strain
    by ~70 %; with a Coffin–Manson exponent of 2 that multiplies life by
    (1/(1−0.7))² ≈ 11×.  Returns the life factor.
    """
    if not 0.0 <= strain_reduction < 1.0:
        raise InputError("strain reduction must be in [0, 1)")
    if exponent <= 0.0:
        raise InputError("exponent must be positive")
    return (1.0 / (1.0 - strain_reduction)) ** exponent


def qualification_shock_joint_life(package_half_diagonal: float,
                                   joint_height: float,
                                   cte_component: float,
                                   cte_board: float,
                                   chamber_swing: float,
                                   n_test_cycles: int,
                                   life_factor: float = 4.0) -> bool:
    """Pass/fail of a joint against a thermal-shock qualification.

    True when the Coffin–Manson life at the chamber swing covers
    ``life_factor`` × the test cycle count — the acceptance rule applied
    by the virtual campaign of :mod:`avipack.core.qualification`.
    """
    if n_test_cycles < 1:
        raise InputError("need at least one test cycle")
    if life_factor <= 0.0:
        raise InputError("life factor must be positive")
    assessment = solder_joint_assessment(
        package_half_diagonal, joint_height, cte_component, cte_board,
        chamber_swing)
    return assessment.cycles_to_failure >= life_factor * n_test_cycles
