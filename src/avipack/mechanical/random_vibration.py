"""Random-vibration response: PSD handling and Miles' equation.

Avionics vibration environments are specified as acceleration power
spectral densities (g²/Hz vs Hz) — DO-160 curve C1 in the paper's
qualification campaign.  This module provides

* a :class:`PowerSpectralDensity` defined by (frequency, level) break-
  points joined by dB/octave straight lines in log–log space, with exact
  segment integration for the overall g-RMS;
* Miles' equation for the RMS response of a lightly damped single mode
  driven by a broadband PSD;
* response PSD through a transmissibility function (isolator chains).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Tuple

import numpy as np

from ..errors import InputError


@dataclass(frozen=True)
class PowerSpectralDensity:
    """Piecewise log–log linear acceleration PSD.

    ``points`` is a sequence of (frequency_hz, level_g2_hz) break-points
    with strictly increasing frequencies; between break-points the level
    follows a straight line in log–log space (constant dB/octave slope),
    matching how DO-160 and MIL-STD-810 define their curves.
    """

    points: Tuple[Tuple[float, float], ...]

    def __post_init__(self) -> None:
        if len(self.points) < 2:
            raise InputError("PSD needs at least two break-points")
        freqs = [f for f, _ in self.points]
        if any(f <= 0.0 for f in freqs):
            raise InputError("frequencies must be positive")
        if any(f2 <= f1 for f1, f2 in zip(freqs, freqs[1:], strict=False)):
            raise InputError("frequencies must be strictly increasing")
        if any(level <= 0.0 for _, level in self.points):
            raise InputError("PSD levels must be positive")

    @property
    def f_min(self) -> float:
        """Lower frequency bound [Hz]."""
        return self.points[0][0]

    @property
    def f_max(self) -> float:
        """Upper frequency bound [Hz]."""
        return self.points[-1][0]

    def level(self, frequency: float) -> float:
        """PSD level at ``frequency`` [g²/Hz]; 0 outside the band."""
        if frequency <= 0.0:
            raise InputError("frequency must be positive")
        if frequency < self.f_min or frequency > self.f_max:
            return 0.0
        for (f1, l1), (f2, l2) in zip(self.points, self.points[1:],
                                      strict=False):
            if f1 <= frequency <= f2:
                slope = math.log(l2 / l1) / math.log(f2 / f1)
                return l1 * (frequency / f1) ** slope
        return self.points[-1][1]

    def slope_db_per_octave(self, segment: int) -> float:
        """dB/octave slope of segment ``segment`` (0-based)."""
        if not 0 <= segment < len(self.points) - 1:
            raise InputError("segment index out of range")
        (f1, l1), (f2, l2) = self.points[segment], self.points[segment + 1]
        return 10.0 * math.log10(l2 / l1) / math.log2(f2 / f1)

    def rms_g(self) -> float:
        """Overall g-RMS: sqrt of the exact integral of the PSD.

        Each log–log segment W(f) = W₁·(f/f₁)^m integrates in closed form
        (with the m = −1 special case handled).
        """
        total = 0.0
        for (f1, l1), (f2, l2) in zip(self.points, self.points[1:],
                                      strict=False):
            m = math.log(l2 / l1) / math.log(f2 / f1)
            if abs(m + 1.0) < 1e-12:
                total += l1 * f1 * math.log(f2 / f1)
            else:
                total += l1 / (m + 1.0) * (f2 * (f2 / f1) ** m - f1)
        return math.sqrt(total)

    def scaled(self, factor: float) -> "PowerSpectralDensity":
        """PSD with every level multiplied by ``factor`` (test margins)."""
        if factor <= 0.0:
            raise InputError("scale factor must be positive")
        return PowerSpectralDensity(
            tuple((f, level * factor) for f, level in self.points))

    def through_transmissibility(
            self, transmissibility: Callable[[float], float],
            n_points: int = 400) -> "PowerSpectralDensity":
        """Response PSD after a transfer function: W_out = |H|²·W_in.

        ``transmissibility`` maps frequency [Hz] to the magnitude |H(f)|.
        The result is re-sampled on a log grid of ``n_points``.
        """
        if n_points < 2:
            raise InputError("need at least two sample points")
        freqs = np.geomspace(self.f_min, self.f_max, n_points)
        points = []
        for f in freqs:
            h = float(transmissibility(float(f)))
            if h < 0.0:
                raise InputError("transmissibility must be non-negative")
            points.append((float(f), max(self.level(float(f)) * h * h,
                                         1e-30)))
        return PowerSpectralDensity(tuple(points))


def miles_rms_acceleration(natural_frequency: float, q_factor: float,
                           psd: PowerSpectralDensity) -> float:
    """Miles' equation: RMS response of a 1-DOF mode to broadband noise.

    g_RMS = sqrt(π/2 · f_n · Q · W(f_n)) — the standard avionics sizing
    formula (Steinberg).  Returns the response in g.
    """
    if natural_frequency <= 0.0:
        raise InputError("natural frequency must be positive")
    if q_factor <= 0.0:
        raise InputError("Q factor must be positive")
    w_fn = psd.level(natural_frequency)
    return math.sqrt(math.pi / 2.0 * natural_frequency * q_factor * w_fn)


def rms_displacement_from_acceleration(rms_accel_g: float,
                                       natural_frequency: float) -> float:
    """RMS displacement of a resonant mode from its RMS acceleration [m].

    z_RMS = a_RMS / ω_n² with a in m/s².
    """
    if natural_frequency <= 0.0:
        raise InputError("natural frequency must be positive")
    if rms_accel_g < 0.0:
        raise InputError("RMS acceleration must be non-negative")
    omega = 2.0 * math.pi * natural_frequency
    return rms_accel_g * 9.80665 / omega ** 2


def three_sigma(value_rms: float) -> float:
    """The 3σ peak used for design margins on Gaussian responses."""
    if value_rms < 0.0:
        raise InputError("RMS value must be non-negative")
    return 3.0 * value_rms


def positive_crossings_per_second(natural_frequency: float) -> float:
    """Expected positive-slope zero crossings of a narrow-band resonant
    response — equals the natural frequency [1/s] (Rice's formula)."""
    if natural_frequency <= 0.0:
        raise InputError("natural frequency must be positive")
    return natural_frequency


def default_q_factor(natural_frequency: float) -> float:
    """Steinberg's empirical transmissibility estimate Q ≈ √f_n.

    Used when no measured damping is available for a PCB assembly.
    """
    if natural_frequency <= 0.0:
        raise InputError("natural frequency must be positive")
    return math.sqrt(natural_frequency)
