"""Vibration fatigue: Steinberg's PCB criterion and three-band counting.

The paper's packaging objective is to "identify the weaknesses of the
design and margins regarding fatigue effects".  The industry-standard
method for electronics is Steinberg's:

* an **allowable board deflection** that guarantees 10⁷ (sine) / 2·10⁷
  (random) stress reversals for the mounted components,
  ``Z_allow = 0.00022·B / (C·h·r·sqrt(L))`` (inches in the original —
  handled here in SI);
* the **three-band technique** for random vibration: the response spends
  68.3 % of the time within 1σ, 27.1 % within 2σ and 4.33 % within 3σ,
  and Miner's rule accumulates the damage of the three bands against a
  power-law S–N curve.
"""

from __future__ import annotations

import math
from typing import Dict

from ..errors import InputError

#: Steinberg constant in inch units (0.00022) converted factor handled below.
_STEINBERG_CONSTANT_INCH = 0.00022

#: Gaussian band occupancy fractions for the three-band method.
BAND_FRACTIONS = (0.683, 0.271, 0.0433)

#: Steinberg's reference cycle capacities.
CYCLES_TO_FAIL_RANDOM = 2.0e7
CYCLES_TO_FAIL_SINE = 1.0e7


#: Component-type position constants C for the Steinberg formula.
COMPONENT_CONSTANTS: Dict[str, float] = {
    "dip_axial": 1.0,          # standard DIP / axial leaded
    "dip_side_brazed": 1.26,   # side-brazed DIP
    "pga": 1.26,               # pin grid array
    "smt_leadless": 2.25,      # leadless chip carrier / large BGA class
    "smt_gullwing": 1.0,       # gull-wing SMT
    "to_can": 0.75,            # transistor cans, robust small parts
}


def steinberg_allowable_deflection(board_length: float,
                                   component_length: float,
                                   component_type: str,
                                   relative_position: float = 1.0,
                                   board_thickness: float = 1.6e-3) -> float:
    """Steinberg allowable 3σ single-amplitude board deflection [m].

    ``Z_allow = 0.00022·B / (C·h·r·√L)`` with all lengths in inches in
    Steinberg's original; converted transparently here.

    Parameters
    ----------
    board_length:
        Board edge length parallel to the component [m] (``B``).
    component_length:
        Component body length [m] (``L``).
    component_type:
        Key into :data:`COMPONENT_CONSTANTS` (``C``).
    relative_position:
        ``r`` ∈ (0, 1]: 1.0 for a component at the board centre (worst),
        smaller towards the supported edges.
    board_thickness:
        PCB thickness [m] (``h``); 1.6 mm standard laminate by default.

    Returns the deflection that yields ~2·10⁷ cycles under random
    vibration.
    """
    if board_length <= 0.0 or component_length <= 0.0:
        raise InputError("lengths must be positive")
    if board_thickness <= 0.0:
        raise InputError("board thickness must be positive")
    if component_type not in COMPONENT_CONSTANTS:
        raise InputError(
            f"unknown component type {component_type!r}; known: "
            f"{sorted(COMPONENT_CONSTANTS)}")
    if not 0.0 < relative_position <= 1.0:
        raise InputError("relative position must be in (0, 1]")
    c = COMPONENT_CONSTANTS[component_type]
    b_in = board_length / 25.4e-3
    l_in = component_length / 25.4e-3
    h_in = board_thickness / 25.4e-3
    z_in = _STEINBERG_CONSTANT_INCH * b_in / (
        c * h_in * relative_position * math.sqrt(l_in))
    return z_in * 25.4e-3


def sn_cycles_to_failure(stress_amplitude: float, fatigue_strength: float,
                         reference_cycles: float = 1.0e3,
                         exponent: float = 6.4) -> float:
    """Power-law S–N life: N = N_ref·(S_ref/S)^b.

    ``fatigue_strength`` is the stress amplitude S_ref that fails at
    ``reference_cycles``; ``exponent`` b ≈ 6.4 for solder joints
    (Steinberg), ~9 for aluminium structure.
    """
    if stress_amplitude <= 0.0 or fatigue_strength <= 0.0:
        raise InputError("stresses must be positive")
    if reference_cycles <= 0.0 or exponent <= 0.0:
        raise InputError("reference cycles and exponent must be positive")
    return reference_cycles * (fatigue_strength / stress_amplitude) ** exponent


def three_band_damage_rate(rms_deflection: float,
                           allowable_deflection: float,
                           natural_frequency: float,
                           exponent: float = 6.4) -> float:
    """Fractional fatigue damage per second by the three-band method.

    The 1σ/2σ/3σ response bands occur with Gaussian occupancy; each band's
    cycle life follows from the S–N exponent anchored at the Steinberg
    allowable (3σ deflection = ``allowable_deflection`` ⇒ life =
    2·10⁷ cycles).  Damage rate = Σ f_n·p_i / N_i (Miner).
    """
    if rms_deflection < 0.0:
        raise InputError("RMS deflection must be non-negative")
    if allowable_deflection <= 0.0:
        raise InputError("allowable deflection must be positive")
    if natural_frequency <= 0.0:
        raise InputError("natural frequency must be positive")
    if rms_deflection == 0.0:
        return 0.0
    damage_rate = 0.0
    for sigma_level, fraction in zip((1.0, 2.0, 3.0), BAND_FRACTIONS,
                                     strict=True):
        amplitude = sigma_level * rms_deflection
        # Life at this amplitude via the S-N power law anchored at the
        # allowable 3-sigma deflection.
        life = CYCLES_TO_FAIL_RANDOM * (allowable_deflection
                                        / amplitude) ** exponent
        damage_rate += natural_frequency * fraction / life
    return damage_rate


def fatigue_life_hours(rms_deflection: float, allowable_deflection: float,
                       natural_frequency: float,
                       exponent: float = 6.4) -> float:
    """Random-vibration fatigue life [h] from the three-band damage rate.

    Returns ``inf`` for zero response.
    """
    rate = three_band_damage_rate(rms_deflection, allowable_deflection,
                                  natural_frequency, exponent)
    if rate == 0.0:
        return float("inf")
    return 1.0 / rate / 3600.0


def margin_of_safety(actual: float, allowable: float) -> float:
    """Classical margin of safety MS = allowable/actual − 1.

    Positive = compliant.  ``actual`` may be stress, deflection or any
    like-for-like demand measure.
    """
    if actual <= 0.0:
        return float("inf")
    if allowable <= 0.0:
        raise InputError("allowable must be positive")
    return allowable / actual - 1.0


def thermal_cycling_life_coffin_manson(delta_t: float,
                                       reference_delta_t: float = 75.0,
                                       reference_cycles: float = 10_000.0,
                                       exponent: float = 2.0) -> float:
    """Coffin–Manson solder-joint life under thermal cycling.

    N = N_ref·(ΔT_ref/ΔT)^m with m ≈ 2.0–2.7 for SnAgCu solder.  Used to
    assess the −45/+55 °C thermal-shock qualification of the SEB.
    """
    if delta_t <= 0.0:
        raise InputError("temperature swing must be positive")
    if reference_delta_t <= 0.0 or reference_cycles <= 0.0:
        raise InputError("reference values must be positive")
    return reference_cycles * (reference_delta_t / delta_t) ** exponent
