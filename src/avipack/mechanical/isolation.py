"""Vibration isolation and damping: the IMU mechanical filter of Fig. 3.

An inertial measurement unit cannot tolerate the raw rack vibration, so it
is mounted on elastomeric isolators tuned as a low-pass mechanical filter
with added damping.  This module models the classical single-DOF isolator:

* absolute transmissibility |H(f)| with viscous damping,
* isolation efficiency above the crossover f√2,
* design helpers: pick stiffness for a target mount frequency, evaluate a
  full isolator chain against a PSD, and tune damping to cap resonant
  amplification while keeping high-frequency attenuation.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Tuple

from ..errors import InputError
from .random_vibration import PowerSpectralDensity


@dataclass(frozen=True)
class Isolator:
    """Single-DOF viscously damped isolator.

    Parameters
    ----------
    mount_frequency:
        Mounted natural frequency f_n [Hz].
    damping_ratio:
        Viscous damping ratio ζ (elastomers 0.05–0.15, wire-rope ≈ 0.2).
    """

    mount_frequency: float
    damping_ratio: float

    def __post_init__(self) -> None:
        if self.mount_frequency <= 0.0:
            raise InputError("mount frequency must be positive")
        if not 0.0 < self.damping_ratio < 2.0:
            raise InputError("damping ratio must be in (0, 2)")

    def transmissibility(self, frequency: float) -> float:
        """Absolute transmissibility |X/Y| at ``frequency`` [-].

        T(r) = sqrt[(1 + (2ζr)²) / ((1 − r²)² + (2ζr)²)], r = f/f_n.
        """
        if frequency <= 0.0:
            raise InputError("frequency must be positive")
        r = frequency / self.mount_frequency
        num = 1.0 + (2.0 * self.damping_ratio * r) ** 2
        den = (1.0 - r * r) ** 2 + (2.0 * self.damping_ratio * r) ** 2
        return math.sqrt(num / den)

    @property
    def resonant_transmissibility(self) -> float:
        """Peak transmissibility Q at resonance ≈ 1/(2ζ) for light damping."""
        zeta = self.damping_ratio
        if zeta >= 1.0 / math.sqrt(2.0):
            return 1.0
        r_peak = math.sqrt(
            (math.sqrt(1.0 + 8.0 * zeta ** 2) - 1.0) / (4.0 * zeta ** 2))
        return self.transmissibility(r_peak * self.mount_frequency)

    @property
    def crossover_frequency(self) -> float:
        """Frequency above which isolation begins: f_n·√2 [Hz]."""
        return self.mount_frequency * math.sqrt(2.0)

    def isolation_efficiency(self, frequency: float) -> float:
        """Isolation efficiency 1 − T at ``frequency`` (may be negative
        below crossover, meaning amplification)."""
        return 1.0 - self.transmissibility(frequency)

    def response_psd(self, input_psd: PowerSpectralDensity
                     ) -> PowerSpectralDensity:
        """Equipment-side PSD after the isolator."""
        return input_psd.through_transmissibility(self.transmissibility)

    def response_rms_g(self, input_psd: PowerSpectralDensity) -> float:
        """Overall g-RMS experienced by the isolated equipment."""
        return self.response_psd(input_psd).rms_g()


def stiffness_for_frequency(mass: float, mount_frequency: float) -> float:
    """Total isolator stiffness k = m·(2π·f_n)² [N/m]."""
    if mass <= 0.0 or mount_frequency <= 0.0:
        raise InputError("mass and frequency must be positive")
    return mass * (2.0 * math.pi * mount_frequency) ** 2


def static_sag(mount_frequency: float) -> float:
    """Static deflection under 1 g for a given mount frequency [m].

    δ = g/(2π·f_n)² — the classic check that a soft mount still fits the
    sway space.
    """
    if mount_frequency <= 0.0:
        raise InputError("mount frequency must be positive")
    return 9.80665 / (2.0 * math.pi * mount_frequency) ** 2


def design_isolator(equipment_mass: float, disturbance_frequency: float,
                    required_attenuation: float,
                    damping_ratio: float = 0.1,
                    max_sag: float = 5.0e-3) -> Tuple[Isolator, float]:
    """Size an isolator to attenuate a disturbance by a required factor.

    Finds the highest mount frequency whose transmissibility at
    ``disturbance_frequency`` is below ``required_attenuation`` (e.g. 0.1
    for 90 % isolation), subject to the static-sag limit.  Returns the
    isolator and its total stiffness [N/m].

    Raises
    ------
    InputError
        If the attenuation cannot be met within the sag limit.
    """
    if equipment_mass <= 0.0:
        raise InputError("equipment mass must be positive")
    if disturbance_frequency <= 0.0:
        raise InputError("disturbance frequency must be positive")
    if not 0.0 < required_attenuation < 1.0:
        raise InputError("required attenuation must be in (0, 1)")
    if max_sag <= 0.0:
        raise InputError("sag limit must be positive")

    # Mount frequency floor imposed by the sag limit.
    f_min = math.sqrt(9.80665 / max_sag) / (2.0 * math.pi)
    # Bisection: transmissibility at the disturbance decreases as f_n drops.
    lo, hi = f_min, disturbance_frequency
    iso_lo = Isolator(lo, damping_ratio)
    if iso_lo.transmissibility(disturbance_frequency) > required_attenuation:
        raise InputError(
            f"cannot reach T={required_attenuation} at "
            f"{disturbance_frequency} Hz within the {max_sag*1e3:.1f} mm "
            "sag limit; increase allowed sag or damping trade-off")
    for _ in range(60):
        mid = 0.5 * (lo + hi)
        iso = Isolator(mid, damping_ratio)
        if iso.transmissibility(disturbance_frequency) <= required_attenuation:
            lo = mid
        else:
            hi = mid
    isolator = Isolator(lo, damping_ratio)
    return isolator, stiffness_for_frequency(equipment_mass, lo)


def damper_tuning(isolator: Isolator, input_psd: PowerSpectralDensity,
                  max_resonant_q: float) -> Isolator:
    """Raise damping until the resonant transmissibility is capped.

    Returns a new isolator with the smallest damping ratio whose peak
    transmissibility is at most ``max_resonant_q`` (keeping damping low
    preserves the high-frequency roll-off).
    """
    if max_resonant_q <= 1.0:
        raise InputError("resonant Q cap must exceed 1")
    if isolator.resonant_transmissibility <= max_resonant_q:
        return isolator
    lo, hi = isolator.damping_ratio, 1.2
    for _ in range(60):
        mid = 0.5 * (lo + hi)
        candidate = Isolator(isolator.mount_frequency, mid)
        if candidate.resonant_transmissibility > max_resonant_q:
            lo = mid
        else:
            hi = mid
    return Isolator(isolator.mount_frequency, hi)
