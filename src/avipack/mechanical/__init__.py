"""Mechanical analysis substrate (the paper's ANSYS workflow, rebuilt).

* :mod:`~avipack.mechanical.plate` — PCB/panel modal analysis
  (Rayleigh–Ritz Kirchhoff plates) and mode-placement design helpers;
* :mod:`~avipack.mechanical.beam` — Euler–Bernoulli beam FEM;
* :mod:`~avipack.mechanical.random_vibration` — PSD handling and Miles'
  equation;
* :mod:`~avipack.mechanical.fatigue` — Steinberg criterion, three-band
  damage, Coffin–Manson thermal cycling;
* :mod:`~avipack.mechanical.isolation` — isolator/damper design (the IMU
  mechanical filter of Fig. 3);
* :mod:`~avipack.mechanical.shock` — SRS and quasi-static acceleration.
"""

from .beam import BeamModel, BeamSection, simply_supported_beam_frequency
from .fatigue import (
    BAND_FRACTIONS,
    COMPONENT_CONSTANTS,
    CYCLES_TO_FAIL_RANDOM,
    fatigue_life_hours,
    margin_of_safety,
    sn_cycles_to_failure,
    steinberg_allowable_deflection,
    thermal_cycling_life_coffin_manson,
    three_band_damage_rate,
)
from .isolation import (
    Isolator,
    damper_tuning,
    design_isolator,
    static_sag,
    stiffness_for_frequency,
)
from .plate import (
    PlateMode,
    PlateSpec,
    fundamental_frequency,
    mode_shape,
    plate_modes,
    stiffener_rigidity_for_frequency,
    thickness_for_frequency,
)
from .random_vibration import (
    PowerSpectralDensity,
    default_q_factor,
    miles_rms_acceleration,
    positive_crossings_per_second,
    rms_displacement_from_acceleration,
    three_sigma,
)
from .shock import (
    QuasiStaticLoadCase,
    bracket_stress,
    fastener_shear_stress,
    half_sine_pulse,
    sdof_peak_response,
    shock_response_spectrum,
    terminal_sawtooth_pulse,
)
from .sine import (
    SineSpec,
    do160_propeller_sine,
    peak_sine_response,
    resonance_dwell_cycles,
    sdof_magnification,
)
from .thermomechanical import (
    Layer,
    SolderJointAssessment,
    bimaterial_bow,
    bimaterial_curvature,
    bimaterial_interface_stress,
    constrained_thermal_stress,
    qualification_shock_joint_life,
    solder_joint_assessment,
    underfill_benefit_factor,
)

__all__ = [
    "BAND_FRACTIONS",
    "SineSpec",
    "do160_propeller_sine",
    "peak_sine_response",
    "resonance_dwell_cycles",
    "sdof_magnification",
    "Layer",
    "SolderJointAssessment",
    "bimaterial_bow",
    "bimaterial_curvature",
    "bimaterial_interface_stress",
    "constrained_thermal_stress",
    "qualification_shock_joint_life",
    "solder_joint_assessment",
    "underfill_benefit_factor",
    "BeamModel",
    "BeamSection",
    "COMPONENT_CONSTANTS",
    "CYCLES_TO_FAIL_RANDOM",
    "Isolator",
    "PlateMode",
    "PlateSpec",
    "PowerSpectralDensity",
    "QuasiStaticLoadCase",
    "bracket_stress",
    "damper_tuning",
    "default_q_factor",
    "design_isolator",
    "fastener_shear_stress",
    "fatigue_life_hours",
    "fundamental_frequency",
    "half_sine_pulse",
    "margin_of_safety",
    "miles_rms_acceleration",
    "mode_shape",
    "plate_modes",
    "positive_crossings_per_second",
    "rms_displacement_from_acceleration",
    "sdof_peak_response",
    "shock_response_spectrum",
    "simply_supported_beam_frequency",
    "sn_cycles_to_failure",
    "static_sag",
    "steinberg_allowable_deflection",
    "stiffener_rigidity_for_frequency",
    "stiffness_for_frequency",
    "terminal_sawtooth_pulse",
    "thermal_cycling_life_coffin_manson",
    "thickness_for_frequency",
    "three_band_damage_rate",
    "three_sigma",
]
