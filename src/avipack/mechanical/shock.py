"""Shock and quasi-static acceleration analysis.

Covers the remaining mechanical qualification loads of the paper's
campaign: the 9 g linear acceleration (3 minutes per axis — quasi-static)
and mechanical shock pulses (DO-160 half-sine).  Provides

* the shock response spectrum (SRS) of classical pulse shapes computed by
  direct time integration of the 1-DOF oscillator (Smallwood-style ramp-
  invariant recursion),
* quasi-static load factors and stress checks for bracket-mounted
  equipment.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Sequence

import numpy as np

from ..errors import InputError
from ..units import G0


def half_sine_pulse(peak_g: float, duration: float
                    ) -> Callable[[float], float]:
    """Half-sine base-acceleration pulse a(t) [m/s²].

    DO-160 operational shock is a 6 g / 11 ms half-sine; crash safety is
    20 g / 11 ms.
    """
    if peak_g <= 0.0 or duration <= 0.0:
        raise InputError("peak and duration must be positive")

    def pulse(time: float) -> float:
        if 0.0 <= time <= duration:
            return peak_g * G0 * math.sin(math.pi * time / duration)
        return 0.0

    return pulse


def terminal_sawtooth_pulse(peak_g: float, duration: float
                            ) -> Callable[[float], float]:
    """Terminal-peak sawtooth pulse a(t) [m/s²] (MIL-S-901 style)."""
    if peak_g <= 0.0 or duration <= 0.0:
        raise InputError("peak and duration must be positive")

    def pulse(time: float) -> float:
        if 0.0 <= time <= duration:
            return peak_g * G0 * (time / duration)
        return 0.0

    return pulse


def sdof_peak_response(natural_frequency: float, damping_ratio: float,
                       base_acceleration: Callable[[float], float],
                       pulse_duration: float,
                       settle_periods: float = 10.0) -> float:
    """Peak absolute acceleration of a 1-DOF system under a base pulse [g].

    Integrates ``ẍ + 2ζω(ẋ−ẏ) + ω²(x−y) = 0`` in relative coordinates
    with RK4, through the pulse and ``settle_periods`` of residual ringing,
    and returns the peak absolute acceleration in g.
    """
    if natural_frequency <= 0.0:
        raise InputError("natural frequency must be positive")
    if not 0.0 <= damping_ratio < 1.0:
        raise InputError("damping ratio must be in [0, 1)")
    if pulse_duration <= 0.0:
        raise InputError("pulse duration must be positive")
    omega = 2.0 * math.pi * natural_frequency
    period = 1.0 / natural_frequency
    t_end = pulse_duration + settle_periods * period
    dt = min(period, pulse_duration) / 40.0
    n_steps = int(math.ceil(t_end / dt))

    def derivatives(time: float, state: np.ndarray) -> np.ndarray:
        z, z_dot = state
        z_ddot = (-2.0 * damping_ratio * omega * z_dot
                  - omega * omega * z - base_acceleration(time))
        return np.array([z_dot, z_ddot])

    state = np.zeros(2)
    peak = 0.0
    time = 0.0
    for _ in range(n_steps):
        k1 = derivatives(time, state)
        k2 = derivatives(time + dt / 2.0, state + dt / 2.0 * k1)
        k3 = derivatives(time + dt / 2.0, state + dt / 2.0 * k2)
        k4 = derivatives(time + dt, state + dt * k3)
        state = state + dt / 6.0 * (k1 + 2.0 * k2 + 2.0 * k3 + k4)
        time += dt
        # Absolute acceleration = -(2ζω·ż + ω²·z).
        abs_accel = -(2.0 * damping_ratio * omega * state[1]
                      + omega * omega * state[0])
        peak = max(peak, abs(abs_accel))
    return peak / G0


def shock_response_spectrum(base_acceleration: Callable[[float], float],
                            pulse_duration: float,
                            frequencies: Sequence[float],
                            q_factor: float = 10.0) -> np.ndarray:
    """SRS: peak 1-DOF response [g] at each analysis frequency.

    ``q_factor`` = 10 (ζ = 5 %) is the aerospace convention.
    """
    freqs = np.asarray(list(frequencies), dtype=float)
    if freqs.size == 0 or np.any(freqs <= 0.0):
        raise InputError("frequencies must be positive and non-empty")
    if q_factor <= 0.5:
        raise InputError("Q factor must exceed 0.5")
    zeta = 1.0 / (2.0 * q_factor)
    return np.array([
        sdof_peak_response(f, zeta, base_acceleration, pulse_duration)
        for f in freqs])


@dataclass(frozen=True)
class QuasiStaticLoadCase:
    """A quasi-static acceleration load case (e.g. 9 g per axis).

    ``acceleration_g`` applies along ``axis`` ∈ {"x", "y", "z"}; the
    duration only matters for creep/fatigue bookkeeping.
    """

    acceleration_g: float
    axis: str = "z"
    duration_s: float = 180.0

    def __post_init__(self) -> None:
        if self.acceleration_g <= 0.0:
            raise InputError("acceleration must be positive")
        if self.axis not in ("x", "y", "z"):
            raise InputError("axis must be x, y or z")
        if self.duration_s <= 0.0:
            raise InputError("duration must be positive")

    def inertial_force(self, mass: float) -> float:
        """Inertial force on a mass [N]."""
        if mass <= 0.0:
            raise InputError("mass must be positive")
        return mass * self.acceleration_g * G0


def bracket_stress(force: float, arm_length: float,
                   section_modulus: float) -> float:
    """Bending stress at the root of a cantilever bracket [Pa].

    σ = F·L / Z — the quick check run for every boxed equipment under the
    linear-acceleration case.
    """
    if force < 0.0:
        raise InputError("force must be non-negative")
    if arm_length <= 0.0 or section_modulus <= 0.0:
        raise InputError("arm length and section modulus must be positive")
    return force * arm_length / section_modulus


def fastener_shear_stress(force: float, n_fasteners: int,
                          fastener_diameter: float) -> float:
    """Mean shear stress in a bolt pattern [Pa]."""
    if force < 0.0:
        raise InputError("force must be non-negative")
    if n_fasteners < 1:
        raise InputError("need at least one fastener")
    if fastener_diameter <= 0.0:
        raise InputError("fastener diameter must be positive")
    area = math.pi / 4.0 * fastener_diameter ** 2
    return force / (n_fasteners * area)
