"""Sinusoidal vibration: sweeps and steady-state response.

DO-160 prescribes *sinusoidal* vibration for propeller aircraft and
helicopters in addition to the random curves; launcher specifications
(the Ariane navigation unit of Fig. 2) define sine-equivalent levels per
frequency band.  This module provides

* a :class:`SineSpec` of (frequency band → acceleration level) segments,
* the steady-state SDOF magnification |H(f)| and peak response over a
  swept sine,
* the dwell-at-resonance fatigue cycle count of a sweep (the log-sweep
  closed form), feeding the S–N models in
  :mod:`avipack.mechanical.fatigue`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Tuple

from ..errors import InputError


@dataclass(frozen=True)
class SineSpec:
    """Piecewise-constant sine test specification.

    ``segments`` is a sequence of ``(f_low, f_high, level_g)`` bands with
    contiguous, increasing frequencies (e.g. DO-160 category S curves).
    """

    segments: Tuple[Tuple[float, float, float], ...]

    def __post_init__(self) -> None:
        if not self.segments:
            raise InputError("sine spec needs at least one segment")
        previous_high = 0.0
        for f_low, f_high, level in self.segments:
            if f_low <= 0.0 or f_high <= f_low:
                raise InputError("segment frequencies must be increasing "
                                 "and positive")
            if f_low < previous_high:
                raise InputError("segments must not overlap")
            if level <= 0.0:
                raise InputError("levels must be positive")
            previous_high = f_high

    @property
    def f_min(self) -> float:
        """Sweep start frequency [Hz]."""
        return self.segments[0][0]

    @property
    def f_max(self) -> float:
        """Sweep end frequency [Hz]."""
        return self.segments[-1][1]

    def level(self, frequency: float) -> float:
        """Input acceleration at ``frequency`` [g]; 0 outside the bands."""
        if frequency <= 0.0:
            raise InputError("frequency must be positive")
        for f_low, f_high, level in self.segments:
            if f_low <= frequency <= f_high:
                return level
        return 0.0


def sdof_magnification(frequency: float, natural_frequency: float,
                       q_factor: float) -> float:
    """Steady-state base-excitation magnification |H| of a 1-DOF system.

    |H| = sqrt[(1 + (r/Q)²) / ((1 − r²)² + (r/Q)²)], r = f/f_n — equals
    Q at resonance, 1 at low frequency.
    """
    if frequency <= 0.0 or natural_frequency <= 0.0:
        raise InputError("frequencies must be positive")
    if q_factor <= 0.5:
        raise InputError("Q must exceed 0.5")
    r = frequency / natural_frequency
    zeta2r = r / q_factor
    return math.sqrt((1.0 + zeta2r ** 2)
                     / ((1.0 - r * r) ** 2 + zeta2r ** 2))


def peak_sine_response(spec: SineSpec, natural_frequency: float,
                       q_factor: float,
                       n_scan: int = 2000) -> Tuple[float, float]:
    """Peak response over a sweep: ``(response_g, frequency_hz)``.

    Scans the spec band on a log grid; if the resonance lies inside the
    band the peak is essentially Q × the local input level.
    """
    if n_scan < 10:
        raise InputError("need at least 10 scan points")
    best = (0.0, spec.f_min)
    ratio = (spec.f_max / spec.f_min) ** (1.0 / (n_scan - 1))
    frequency = spec.f_min
    for _ in range(n_scan):
        level = spec.level(frequency)
        if level > 0.0:
            response = level * sdof_magnification(frequency,
                                                  natural_frequency,
                                                  q_factor)
            if response > best[0]:
                best = (response, frequency)
        frequency *= ratio
    return best


def resonance_dwell_cycles(natural_frequency: float, q_factor: float,
                           sweep_rate_oct_min: float) -> float:
    """Effective resonance dwell cycles of one log sweep.

    A log sweep at R octaves/minute crosses the resonator's half-power
    bandwidth Δf = f_n/Q in ``t = 60·Δf / (R·f_n·ln 2)`` seconds, during
    which the response runs at (close to) full amplification; the
    effective full-amplitude cycle count is ``N = f_n · t`` — the number
    fed to the S–N fatigue models for sine qualification.
    """
    if natural_frequency <= 0.0:
        raise InputError("natural frequency must be positive")
    if q_factor <= 0.5:
        raise InputError("Q must exceed 0.5")
    if sweep_rate_oct_min <= 0.0:
        raise InputError("sweep rate must be positive")
    bandwidth = natural_frequency / q_factor
    dwell_time = 60.0 * bandwidth / (sweep_rate_oct_min
                                     * natural_frequency * math.log(2.0))
    return natural_frequency * dwell_time


def do160_propeller_sine() -> SineSpec:
    """A representative DO-160 propeller-aircraft sine curve.

    Constant displacement below the crossover, constant g above —
    encoded here as stepped g-levels: 2.5 mm DA below 28 Hz (rendered as
    rising g), 4 g from 28 to 500 Hz.
    """
    return SineSpec(segments=(
        (5.0, 14.0, 0.5),
        (14.0, 28.0, 1.5),
        (28.0, 500.0, 4.0),
    ))
