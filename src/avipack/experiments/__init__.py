"""Canned experiment builders reproducing the paper's figures and claims."""

from .cosee import (
    CAPABILITY_DELTA_T,
    DEFAULT_POWER_SWEEP,
    CoseeClaims,
    altitude_derating_study,
    ceiling_installation_study,
    ceiling_structure,
    fig10_configurations,
    fig10_curves,
    measure_claims,
    measure_composite_claims,
    seb_under_test,
)
from .nanopack import (
    TARGETS,
    AdhesiveDesign,
    InterfaceStudy,
    characterize_material,
    design_nanopack_adhesives,
    electrical_campaign,
    hnc_interface_study,
)

__all__ = [
    "AdhesiveDesign",
    "altitude_derating_study",
    "ceiling_installation_study",
    "ceiling_structure",
    "CAPABILITY_DELTA_T",
    "CoseeClaims",
    "DEFAULT_POWER_SWEEP",
    "InterfaceStudy",
    "TARGETS",
    "characterize_material",
    "design_nanopack_adhesives",
    "electrical_campaign",
    "fig10_configurations",
    "fig10_curves",
    "hnc_interface_study",
    "measure_claims",
    "measure_composite_claims",
    "seb_under_test",
]
