"""Canned builders for the NANOPACK experiments (§IV.B).

Regenerates the project's reported results on the simulation side:

* design of the three adhesive classes (silver flakes 6 W/m·K, micro
  silver spheres 9.5 W/m·K, metal–polymer composite 20 W/m·K) by
  effective-medium filler design;
* the interface-resistance objective (< 5 K·mm²/W at BLT < 20 µm);
* the HNC surface result (> 20 % BLT reduction);
* the virtual ASTM D5470 characterisation campaign and the electrical
  four-wire measurements of the conductive adhesives.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Sequence, Tuple

from ..errors import InputError
from ..tim.catalog import get_tim, list_tims
from ..tim.interface import ThermalInterface, meets_nanopack_target
from ..tim.models import (
    electrical_resistivity_filled,
    lewis_nielsen,
    loading_for_conductivity,
)
from ..tim.tester import D5470Tester, FourWireOhmmeter, TimCharacterization

#: Silver's bulk properties used by the filler-design study.
SILVER_CONDUCTIVITY = 429.0
SILVER_RESISTIVITY = 1.59e-8

#: Epoxy matrix conductivities (mono- and multi-component systems).
MONO_EPOXY_K = 0.20
MULTI_EPOXY_K = 0.25

#: The project's material targets [W/(m·K)].
TARGETS = {
    "silver_flake_mono_epoxy": 6.0,
    "silver_sphere_multi_epoxy": 9.5,
    "metal_polymer_composite": 20.0,
}


@dataclass(frozen=True)
class AdhesiveDesign:
    """A designed filled adhesive: loading + achieved properties."""

    name: str
    target_conductivity: float
    filler_loading: float
    achieved_conductivity: float
    volume_resistivity: float

    @property
    def electrically_conductive(self) -> bool:
        """True when the percolated network conducts."""
        return self.volume_resistivity != float("inf")


def design_nanopack_adhesives() -> Tuple[AdhesiveDesign, ...]:
    """Design the three NANOPACK adhesive classes by filler loading.

    Each target conductivity is inverted through the Lewis–Nielsen model
    with the appropriate filler shape; the resulting loading also fixes
    the electrical resistivity through the percolation model.
    """
    recipes = (
        ("silver_flake_mono_epoxy", MONO_EPOXY_K, "flakes"),
        ("silver_sphere_multi_epoxy", MULTI_EPOXY_K, "spheres"),
        ("metal_polymer_composite", MULTI_EPOXY_K, "flakes"),
    )
    designs = []
    for name, k_matrix, shape in recipes:
        target = TARGETS[name]
        loading = loading_for_conductivity(k_matrix, SILVER_CONDUCTIVITY,
                                           target, shape)
        achieved = lewis_nielsen(k_matrix, SILVER_CONDUCTIVITY, loading,
                                 shape)
        resistivity = electrical_resistivity_filled(
            SILVER_RESISTIVITY * 50.0, loading)  # network, not bulk silver
        designs.append(AdhesiveDesign(
            name=name,
            target_conductivity=target,
            filler_loading=loading,
            achieved_conductivity=achieved,
            volume_resistivity=resistivity,
        ))
    return tuple(designs)


@dataclass(frozen=True)
class InterfaceStudy:
    """One TIM assembled flat vs. on an HNC surface."""

    material_name: str
    resistance_flat_kmm2: float
    resistance_hnc_kmm2: float
    blt_flat_um: float
    blt_hnc_um: float
    meets_target_flat: bool
    meets_target_hnc: bool

    @property
    def blt_reduction_pct(self) -> float:
        """BLT reduction achieved by the HNC surface [%]."""
        return (1.0 - self.blt_hnc_um / self.blt_flat_um) * 100.0


def hnc_interface_study(area: float = 1.0e-4,
                        pressure: float = 3.0e5
                        ) -> Tuple[InterfaceStudy, ...]:
    """Assemble every catalogued TIM flat and on an HNC surface.

    Reproduces the project's claim that HNC machining reduces the final
    bond line by > 20 % "for the majority of TIMs on cm² interfaces"
    (hence the default 1 cm² area).
    """
    if area <= 0.0 or pressure <= 0.0:
        raise InputError("area and pressure must be positive")
    studies = []
    for name in list_tims():
        material = get_tim(name)
        flat = material.assemble(area, pressure, hnc_surface=False)
        hnc = material.assemble(area, pressure, hnc_surface=True)
        studies.append(InterfaceStudy(
            material_name=name,
            resistance_flat_kmm2=flat.specific_resistance_kmm2,
            resistance_hnc_kmm2=hnc.specific_resistance_kmm2,
            blt_flat_um=flat.bond_line_thickness * 1e6,
            blt_hnc_um=hnc.bond_line_thickness * 1e6,
            meets_target_flat=meets_nanopack_target(flat),
            meets_target_hnc=meets_nanopack_target(hnc),
        ))
    return tuple(studies)


def characterize_material(material_name: str,
                          blt_series_um: Sequence[float] = (15.0, 30.0,
                                                            60.0, 120.0,
                                                            200.0),
                          n_repeats: int = 5,
                          seed: int = 20100308) -> TimCharacterization:
    """Run the virtual D5470 multi-thickness protocol on a catalogue TIM."""
    material = get_tim(material_name)
    samples = [
        ThermalInterface(
            conductivity=material.conductivity,
            bond_line_thickness=blt * 1e-6,
            contact_resistance=material.contact_resistance,
            area=6.45e-4,
        )
        for blt in blt_series_um
    ]
    tester = D5470Tester(seed=seed)
    return tester.characterize(samples, n_repeats=n_repeats)


def electrical_campaign(sample_length: float = 10.0e-3,
                        sample_area: float = 1.0e-6
                        ) -> Dict[str, float]:
    """Four-wire resistance of every conductive adhesive [Ω].

    Non-conductive TIMs are skipped; samples below the instrument floor
    are reported at the floor (the tester refuses them).
    """
    meter = FourWireOhmmeter()
    results: Dict[str, float] = {}
    for name in list_tims():
        material = get_tim(name)
        if not material.electrically_conductive:
            continue
        try:
            results[name] = meter.measure(material.volume_resistivity,
                                          sample_length, sample_area)
        except InputError:
            results[name] = meter.floor_ohm
    return results
