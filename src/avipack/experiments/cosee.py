"""Canned builders for the COSEE experiments (Fig. 10 and §IV.A claims).

Everything a bench or example needs to regenerate the paper's seat-
electronics-box results: the three Fig. 10 configurations, the power
sweep, the headline-claim extraction (+150 % capability, −32 °C at 40 W,
and the carbon-composite variant), and the equipment-under-test wrapper
for the virtual qualification campaign.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Sequence, Tuple

from ..core.qualification import EquipmentUnderTest
from ..errors import InputError
from ..mechanical.plate import PlateSpec
from ..packaging.seb import (
    SeatElectronicsBox,
    SebConfiguration,
    aluminum_seat_structure,
    carbon_composite_seat_structure,
)
from ..thermal.network import ThermalNetwork
from ..units import celsius_to_kelvin

#: The Fig. 10 abscissa: SEB power sweep [W].
DEFAULT_POWER_SWEEP = (10.0, 20.0, 30.0, 40.0, 50.0, 60.0, 70.0, 80.0,
                       90.0, 100.0)

#: The paper's capability criterion: constant PCB temperature at
#: "about 60 degC difference between the PCB and the ambient".
CAPABILITY_DELTA_T = 60.0


def fig10_configurations() -> Dict[str, SebConfiguration]:
    """The three Fig. 10 curves: without LHP / LHP horizontal / 22° tilt."""
    return {
        "without_lhp": SebConfiguration(cooling="natural"),
        "with_lhp_horizontal": SebConfiguration(cooling="hp_lhp"),
        "with_lhp_tilt22": SebConfiguration(cooling="hp_lhp",
                                            tilt_deg=22.0),
    }


def fig10_curves(powers: Sequence[float] = DEFAULT_POWER_SWEEP,
                 seb: SeatElectronicsBox = None
                 ) -> Dict[str, Tuple[Tuple[float, float], ...]]:
    """Regenerate Fig. 10: ΔT(PCB−air) vs SEB power per configuration.

    The "without LHP" curve is truncated where the solved ΔT exceeds
    120 K — the physical rig would have been shut down well before
    (matching the paper's curve stopping near 55 W).
    """
    seb = seb or SeatElectronicsBox()
    curves: Dict[str, Tuple[Tuple[float, float], ...]] = {}
    for name, config in fig10_configurations().items():
        points = []
        for power in powers:
            solution = seb.solve(float(power), config)
            if name == "without_lhp" and solution.delta_t_pcb_air > 120.0:
                break
            points.append((float(power), solution.delta_t_pcb_air))
        curves[name] = tuple(points)
    return curves


@dataclass(frozen=True)
class CoseeClaims:
    """The §IV.A quantitative claims, as measured on the model."""

    capability_without_lhp: float      # W at ΔT = 60 K
    capability_with_lhp: float         # W at ΔT = 60 K
    capability_increase_pct: float     # paper: ~150 %
    delta_t_without_at_40w: float      # K
    delta_t_with_at_40w: float         # K
    temperature_drop_at_40w: float     # K, paper: ~32
    lhp_heat_at_capability: float      # W, paper: ~58


def measure_claims(seb: SeatElectronicsBox = None,
                   structure=None) -> CoseeClaims:
    """Measure the §IV.A claims for a structure variant.

    ``structure=None`` uses the aluminium baseline; pass
    :func:`~avipack.packaging.seb.carbon_composite_seat_structure` ``()``
    for the composite variant (paper: +80 % instead of +150 %, −20 °C
    instead of −32 °C).
    """
    seb = seb or SeatElectronicsBox()
    structure = structure or aluminum_seat_structure()
    natural = SebConfiguration(cooling="natural")
    assisted = SebConfiguration(cooling="hp_lhp", structure=structure)
    cap_without = seb.max_power_for_delta_t(CAPABILITY_DELTA_T, natural)
    cap_with = seb.max_power_for_delta_t(CAPABILITY_DELTA_T, assisted)
    if cap_without <= 0.0:
        raise InputError("baseline capability measured as zero")
    d40_without = seb.solve(40.0, natural).delta_t_pcb_air
    d40_with = seb.solve(40.0, assisted).delta_t_pcb_air
    at_capability = seb.solve(cap_with, assisted)
    return CoseeClaims(
        capability_without_lhp=cap_without,
        capability_with_lhp=cap_with,
        capability_increase_pct=(cap_with / cap_without - 1.0) * 100.0,
        delta_t_without_at_40w=d40_without,
        delta_t_with_at_40w=d40_with,
        temperature_drop_at_40w=d40_without - d40_with,
        lhp_heat_at_capability=at_capability.lhp_heat,
    )


def measure_composite_claims(seb: SeatElectronicsBox = None) -> CoseeClaims:
    """The carbon-composite-seat variant of :func:`measure_claims`."""
    return measure_claims(seb, carbon_composite_seat_structure())


def ceiling_structure() -> "SeatStructure":
    """Aircraft ceiling structure as the LHP sink (the paper's variant
    for IFE equipment "installed in the ceiling").

    The crown-area structure offers more wetted area than two seat rods
    and the LHP condensers clamp onto stringers at close pitch (short
    fin half-length), but the zone runs warmer and the convection is
    confined — modelled by the cabin-air properties the configuration
    supplies.
    """
    from ..packaging.seb import SeatStructure

    return SeatStructure(conductivity=167.0, rod_diameter=0.04,
                         wall_thickness=2.5e-3, total_area=0.30,
                         fin_half_length=0.08, emissivity=0.85)


def ceiling_installation_study(power: float = 60.0
                               ) -> Dict[str, float]:
    """Compare the seat-frame sink with the ceiling-structure sink.

    Returns ΔT(PCB−air) at ``power`` and the ΔT≤60 K capability for
    both installations — the trade the COSEE project evaluated when
    placing IFE boxes.
    """
    if power < 0.0:
        raise InputError("power must be non-negative")
    seb = SeatElectronicsBox()
    seat = SebConfiguration(cooling="hp_lhp",
                            structure=aluminum_seat_structure())
    # Ceiling: warmer local ambient (lights/ducts) but a larger sink.
    ceiling = SebConfiguration(cooling="hp_lhp",
                               structure=ceiling_structure(),
                               ambient=celsius_to_kelvin(25.0))
    return {
        "seat_delta_t": seb.solve(power, seat).delta_t_pcb_air,
        "ceiling_delta_t": seb.solve(power, ceiling).delta_t_pcb_air,
        "seat_capability": seb.max_power_for_delta_t(60.0, seat),
        "ceiling_capability": seb.max_power_for_delta_t(60.0, ceiling),
    }


def altitude_derating_study(power: float = 40.0
                            ) -> Dict[float, float]:
    """ΔT(PCB−air) vs cabin pressure for the LHP-cooled SEB.

    Natural convection weakens with air density; the study sweeps from
    sea level to a depressurised 25 000 ft survival case, exercising the
    pressure dependence of every convection correlation in the chain.
    Returns pressure [Pa] → ΔT [K].
    """
    if power < 0.0:
        raise InputError("power must be non-negative")
    seb = SeatElectronicsBox()
    pressures = (101_325.0, 75_000.0, 54_000.0, 37_600.0)
    result = {}
    for pressure in pressures:
        config = SebConfiguration(cooling="hp_lhp",
                                  cabin_pressure=pressure)
        result[pressure] = seb.solve(power, config).delta_t_pcb_air
    return result


def seb_under_test(power: float = 40.0,
                   tilt_deg: float = 0.0) -> EquipmentUnderTest:
    """Wrap the LHP-cooled SEB for the virtual qualification campaign.

    The dummy PCB is idealised as a 260 × 160 mm FR-4 plate with 150 g of
    components; the thermal model is the full HP+LHP network at ``power``
    against a schedulable ambient.
    """
    if power < 0.0:
        raise InputError("power must be non-negative")
    seb = SeatElectronicsBox()
    board = PlateSpec(
        length=0.26, width=0.16, thickness=1.6e-3,
        youngs_modulus=22e9, poisson_ratio=0.28, density=1850.0,
        support=("SS", "SS"), component_mass=0.15,
    )

    def builder(ambient: float) -> ThermalNetwork:
        config = SebConfiguration(
            cooling="hp_lhp", tilt_deg=tilt_deg,
            ambient=max(ambient, 200.0))
        return seb.build_network(power, config)

    return EquipmentUnderTest(
        name="COSEE_SEB",
        board=board,
        critical_component_length=0.015,
        critical_component_type="to_can",
        network_builder=builder,
        monitor_node="pcb",
        temperature_limit=celsius_to_kelvin(85.0),
    )
