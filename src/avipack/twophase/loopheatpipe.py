"""Loop heat pipe (LHP) model.

A loop heat pipe separates the capillary structure (a fine-pored sintered
wick confined to the evaporator) from smooth-walled vapour and liquid
transport lines, which is why it moves heat over *large distances with
small temperature differences* — exactly the property the COSEE project
exploits to couple the seat electronics box to the seat structure
(references [4–7] of the paper).

The model solves the loop pressure balance

.. math::

   \\Delta p_{cap,max} = \\frac{2\\sigma}{r_{eff}} \\geq
   \\Delta p_{vap} + \\Delta p_{cond} + \\Delta p_{liq} +
   \\Delta p_{wick} + \\Delta p_{grav}(tilt)

for the transport limit, and a series resistance model (evaporation film
+ wick conduction + Clausius–Clapeyron vapour-line drop + condensation
film) for the operating temperature drop.  Tilting the loop adds an
adverse hydrostatic term that both erodes the capillary margin and raises
the required evaporator saturation pressure — reproducing the small but
visible 22° tilt penalty of Fig. 10.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Dict

from ..errors import InputError, OperatingLimitError
from ..units import G0
from .wick import Wick, sintered_powder_wick
from .workingfluid import WorkingFluid


@dataclass(frozen=True)
class TransportLine:
    """A smooth transport line (vapour or liquid) of the loop."""

    diameter: float
    length: float

    def __post_init__(self) -> None:
        if self.diameter <= 0.0 or self.length <= 0.0:
            raise InputError("line diameter and length must be positive")

    @property
    def area(self) -> float:
        """Flow cross-section [m²]."""
        return math.pi * self.diameter ** 2 / 4.0

    def laminar_pressure_drop(self, mass_flow: float, density: float,
                              viscosity: float) -> float:
        """Hagen–Poiseuille pressure drop [Pa] (laminar, checked by Re)."""
        if mass_flow < 0.0:
            raise InputError("mass flow must be non-negative")
        if mass_flow == 0.0:
            return 0.0
        velocity = mass_flow / (density * self.area)
        reynolds = density * velocity * self.diameter / viscosity
        if reynolds < 2300.0:
            return (128.0 * viscosity * self.length * mass_flow
                    / (math.pi * density * self.diameter ** 4))
        # Blasius turbulent friction for the rare high-flow cases.
        friction = 0.3164 / reynolds ** 0.25
        return (friction * self.length / self.diameter
                * 0.5 * density * velocity ** 2)


@dataclass(frozen=True)
class LoopHeatPipe:
    """A complete loop heat pipe.

    Parameters
    ----------
    wick:
        Primary evaporator wick (typically fine sintered nickel/titanium).
    fluid:
        Working fluid (ammonia for the COSEE/ITP units).
    evaporator_area:
        Active evaporation area inside the evaporator [m²].
    condenser_area:
        Condensation area wetted by the condenser line [m²].
    vapor_line, liquid_line:
        Transport-line geometries.
    wick_thickness:
        Radial thickness of the primary wick [m].
    wick_area:
        Wick cross-section normal to the liquid feed [m²].
    evaporation_coefficient:
        Evaporation film coefficient [W/(m²·K)]; 2–5·10⁴ typical.
    condensation_coefficient:
        Condensation film coefficient [W/(m²·K)].
    elevation:
        Height of the evaporator **above** the condenser at zero tilt [m]
        (positive = adverse).
    loop_span:
        Horizontal distance between evaporator and condenser [m]; tilting
        the whole installation by θ adds ``loop_span·sin(θ)`` of adverse
        elevation.
    max_evaporator_flux:
        Boiling-crisis heat flux of the evaporator [W/m²]; miniature
        ammonia LHPs sustain roughly 10 W/cm² before vapour blankets the
        wick.
    wick_participation:
        Fraction of the wick thickness the heat actually conducts across
        before evaporating at the vapour-groove menisci (< 1 because
        evaporation occurs near the heated fin/groove interface, not at
        the inner wick surface).
    """

    wick: Wick
    fluid: WorkingFluid
    evaporator_area: float
    condenser_area: float
    vapor_line: TransportLine
    liquid_line: TransportLine
    wick_thickness: float = 3.0e-3
    wick_area: float = 8.0e-4
    evaporation_coefficient: float = 3.0e4
    condensation_coefficient: float = 8.0e3
    elevation: float = 0.0
    loop_span: float = 0.5
    max_evaporator_flux: float = 1.0e5
    wick_participation: float = 0.25
    tilt_resistance_coefficient: float = 0.15

    def __post_init__(self) -> None:
        for name in ("evaporator_area", "condenser_area", "wick_thickness",
                     "wick_area", "evaporation_coefficient",
                     "condensation_coefficient", "loop_span",
                     "max_evaporator_flux"):
            if getattr(self, name) <= 0.0:
                raise InputError(f"{name} must be positive")
        if not 0.0 < self.wick_participation <= 1.0:
            raise InputError("wick participation must be in (0, 1]")

    # -- pressure balance --------------------------------------------------------

    def adverse_head(self, tilt_deg: float) -> float:
        """Adverse elevation of the evaporator over the condenser [m]."""
        if not -90.0 <= tilt_deg <= 90.0:
            raise InputError("tilt must be within +/-90 degrees")
        return self.elevation + self.loop_span * math.sin(
            math.radians(tilt_deg))

    def pressure_drops(self, power: float, temperature: float,
                       tilt_deg: float = 0.0) -> Dict[str, float]:
        """Loop pressure drops at ``power`` [W] and vapour temperature [K].

        Returns a dict with keys ``vapor``, ``liquid``, ``wick``,
        ``gravity`` and ``capillary_max``; all in Pa.  The gravity term may
        be negative (assisting) for downward tilt.
        """
        if power < 0.0:
            raise InputError("power must be non-negative")
        sat = self.fluid.saturation(temperature)
        mass_flow = power / sat.latent_heat
        dp_vapor = self.vapor_line.laminar_pressure_drop(
            mass_flow, sat.vapor_density, sat.vapor_viscosity)
        dp_liquid = self.liquid_line.laminar_pressure_drop(
            mass_flow, sat.liquid_density, sat.liquid_viscosity)
        dp_wick = self.wick.liquid_pressure_drop(
            mass_flow, sat.liquid_viscosity, sat.liquid_density,
            self.wick_thickness, self.wick_area)
        dp_gravity = (sat.liquid_density * G0
                      * self.adverse_head(tilt_deg))
        return {
            "vapor": dp_vapor,
            "liquid": dp_liquid,
            "wick": dp_wick,
            "gravity": dp_gravity,
            "capillary_max": self.wick.max_capillary_pressure(
                sat.surface_tension),
        }

    def capillary_margin(self, power: float, temperature: float,
                         tilt_deg: float = 0.0) -> float:
        """Remaining capillary pressure margin [Pa] (negative = dry-out)."""
        drops = self.pressure_drops(power, temperature, tilt_deg)
        consumed = (drops["vapor"] + drops["liquid"] + drops["wick"]
                    + max(drops["gravity"], 0.0))
        return drops["capillary_max"] - consumed

    def capillary_limit(self, temperature: float,
                        tilt_deg: float = 0.0) -> float:
        """Capillary-limited maximum power at ``temperature`` [W].

        Found by bisection on the pressure balance; returns 0 when gravity
        alone exceeds the capillary pump.
        """
        if self.capillary_margin(0.0, temperature, tilt_deg) <= 0.0:
            return 0.0
        lo, hi = 0.0, 10.0
        while (self.capillary_margin(hi, temperature, tilt_deg) > 0.0
               and hi < 1.0e6):
            hi *= 2.0
        for _ in range(60):
            mid = 0.5 * (lo + hi)
            if self.capillary_margin(mid, temperature, tilt_deg) > 0.0:
                lo = mid
            else:
                hi = mid
        return 0.5 * (lo + hi)

    def boiling_limit(self) -> float:
        """Evaporator boiling-crisis limit q''_max · A_evap [W]."""
        return self.max_evaporator_flux * self.evaporator_area

    def max_transport(self, temperature: float,
                      tilt_deg: float = 0.0) -> float:
        """Binding maximum power: min(capillary, boiling) [W]."""
        return min(self.capillary_limit(temperature, tilt_deg),
                   self.boiling_limit())

    # -- thermal model ------------------------------------------------------------

    def thermal_resistance(self, power: float, temperature: float,
                           tilt_deg: float = 0.0) -> float:
        """Evaporator-saddle to condenser-saddle resistance [K/W].

        Series terms: evaporation film, wick radial conduction, the
        vapour-line saturation-temperature drop (Clausius–Clapeyron on the
        line + gravity pressure difference) and condensation film.  The
        power dependence is weak; pass the actual power for the
        vapour-line term (use a small floor at very low power).
        """
        sat = self.fluid.saturation(temperature)
        r_evap = 1.0 / (self.evaporation_coefficient * self.evaporator_area)
        effective_thickness = self.wick_thickness * self.wick_participation
        r_wick = effective_thickness / (self.wick.conductivity_saturated
                                        * self.evaporator_area)
        r_cond = 1.0 / (self.condensation_coefficient * self.condenser_area)
        dt_per_dp = temperature / (sat.latent_heat * sat.vapor_density)
        power_floor = max(power, 1.0)
        drops = self.pressure_drops(power_floor, temperature, tilt_deg)
        dp_loop = drops["vapor"] + max(drops["gravity"], 0.0)
        r_line = dp_loop * dt_per_dp / power_floor
        # Adverse tilt increases the compensation-chamber heat leak (the
        # liquid column partially floods the CC), seen experimentally as a
        # small extra resistance growing with sin(tilt).
        head = self.adverse_head(tilt_deg)
        r_tilt = (self.tilt_resistance_coefficient
                  * max(head, 0.0) / max(self.loop_span, 1e-9))
        return r_evap + r_wick + r_cond + r_line + r_tilt

    def conductance(self, power: float, temperature: float,
                    tilt_deg: float = 0.0) -> float:
        """Loop conductance [W/K] = 1 / resistance."""
        return 1.0 / self.thermal_resistance(power, temperature, tilt_deg)

    def check_operation(self, power: float, temperature: float,
                        tilt_deg: float = 0.0) -> None:
        """Raise :class:`OperatingLimitError` when beyond the binding
        limit (capillary pressure balance or evaporator boiling) at this
        tilt."""
        if power < 0.0:
            raise InputError("power must be non-negative")
        q_cap = self.capillary_limit(temperature, tilt_deg)
        q_boil = self.boiling_limit()
        name, q_max = (("capillary", q_cap) if q_cap <= q_boil
                       else ("boiling", q_boil))
        if power > q_max:
            raise OperatingLimitError(
                f"LHP overloaded: {power:.1f} W exceeds the {name} limit "
                f"of {q_max:.1f} W at {temperature:.1f} K, "
                f"tilt {tilt_deg:.0f} deg",
                limit_name=name, limit_value=q_max)

    def temperature_drop(self, power: float, temperature: float,
                         tilt_deg: float = 0.0) -> float:
        """Saddle-to-saddle ΔT at ``power`` [K], limit-checked."""
        self.check_operation(power, temperature, tilt_deg)
        return power * self.thermal_resistance(power, temperature, tilt_deg)

    def network_conductance(self, power_hint: float,
                            tilt_deg: float = 0.0
                            ) -> Callable[[float, float], float]:
        """Conductance callable ``g(t_hot, t_cold)`` for a thermal network.

        The saturation temperature is approximated by the hot-side
        temperature; ``power_hint`` sets the vapour-line term.  When the
        hot side exceeds the fluid's validity range the conductance
        degrades to a tiny value, mimicking loop shutdown/dry-out.
        """
        if power_hint < 0.0:
            raise InputError("power hint must be non-negative")

        def conductance(t_hot: float, t_cold: float) -> float:
            try:
                q_max = self.max_transport(t_hot, tilt_deg)
                if q_max < power_hint:
                    # Partially dried loop: conductance collapses smoothly.
                    factor = max(q_max / max(power_hint, 1e-9), 1e-3)
                else:
                    factor = 1.0
                return factor * self.conductance(power_hint, t_hot, tilt_deg)
            except Exception:
                return 1e-4

        return conductance


def cosee_ammonia_lhp(elevation: float = 0.0,
                      loop_span: float = 0.6) -> LoopHeatPipe:
    """A COSEE-class miniature ammonia LHP (ITP / Euro Heat Pipes style).

    Sintered nickel primary wick (≈1–2 µm pores), ammonia fill, ~0.6 m
    transport lines to the seat structure.  Each unit carries roughly
    30 W — the paper reports two such loops moving 58 W together.
    """
    wick = sintered_powder_wick(particle_radius=1.5e-6, porosity=0.6,
                                k_solid=90.0, k_liquid=0.5)
    return LoopHeatPipe(
        wick=wick,
        fluid=WorkingFluid("ammonia"),
        evaporator_area=1.8e-3,
        condenser_area=6.0e-3,
        vapor_line=TransportLine(diameter=3.0e-3, length=loop_span),
        liquid_line=TransportLine(diameter=2.0e-3, length=loop_span),
        wick_thickness=3.0e-3,
        wick_area=6.0e-4,
        evaporation_coefficient=2.5e4,
        condensation_coefficient=6.0e3,
        elevation=elevation,
        loop_span=loop_span,
        max_evaporator_flux=5.0e4,
        wick_participation=0.25,
    )
