"""Two-phase (phase-change) cooling devices.

The novel cooling technologies the paper investigates through the COSEE
project: heat pipes, loop heat pipes and thermosyphons, plus the wick
structures and working-fluid models they share.
"""

from .heatpipe import (
    NUCLEATION_RADIUS,
    HeatPipe,
    HeatPipeGeometry,
    standard_copper_water_heatpipe,
)
from .loopheatpipe import LoopHeatPipe, TransportLine, cosee_ammonia_lhp
from .thermosyphon import Thermosyphon
from .vaporchamber import VaporChamber, electronics_vapor_chamber
from .wick import (
    Wick,
    axial_groove_wick,
    screen_mesh_wick,
    sintered_necked_wick,
    sintered_powder_wick,
)
from .workingfluid import WorkingFluid, select_fluid

__all__ = [
    "HeatPipe",
    "HeatPipeGeometry",
    "LoopHeatPipe",
    "NUCLEATION_RADIUS",
    "Thermosyphon",
    "TransportLine",
    "VaporChamber",
    "electronics_vapor_chamber",
    "sintered_necked_wick",
    "Wick",
    "WorkingFluid",
    "axial_groove_wick",
    "cosee_ammonia_lhp",
    "screen_mesh_wick",
    "select_fluid",
    "sintered_powder_wick",
    "standard_copper_water_heatpipe",
]
