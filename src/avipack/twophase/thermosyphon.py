"""Two-phase closed thermosyphon model.

A thermosyphon is a wickless heat pipe: gravity returns the condensate, so
it only works with the evaporator *below* the condenser.  The paper lists
thermosyphon loops among the phase-change options investigated for cabin
equipment; compared with an LHP it is cheaper but orientation-critical —
an important trade-off the core design flow must expose.

The model provides the flooding (counter-current flow) limit via the
Wallis/Kutateladze correlation, a dry-out limit from the fill charge, film
condensation and nucleate boiling resistances (Nusselt and Rohsenow), and
an orientation check.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Tuple

from ..errors import InputError, OperatingLimitError
from ..units import G0
from .workingfluid import WorkingFluid

#: Rohsenow surface/fluid coefficient for copper-water class surfaces.
ROHSENOW_CSF = 0.013


@dataclass(frozen=True)
class Thermosyphon:
    """Closed two-phase thermosyphon tube.

    Parameters
    ----------
    inner_diameter:
        Tube bore [m].
    evaporator_length, adiabatic_length, condenser_length:
        Section lengths [m].
    fluid:
        Working fluid.
    fill_ratio:
        Liquid charge as a fraction of evaporator volume (0.2–0.8 typical).
    inclination_deg:
        Angle from vertical; 0 = perfectly vertical (condenser up).
        Beyond ``max_inclination_deg`` the condensate no longer returns.
    max_inclination_deg:
        Orientation tolerance before gravity return fails.
    """

    inner_diameter: float
    evaporator_length: float
    adiabatic_length: float
    condenser_length: float
    fluid: WorkingFluid
    fill_ratio: float = 0.5
    inclination_deg: float = 0.0
    max_inclination_deg: float = 80.0

    def __post_init__(self) -> None:
        if self.inner_diameter <= 0.0:
            raise InputError("inner diameter must be positive")
        for name in ("evaporator_length", "condenser_length"):
            if getattr(self, name) <= 0.0:
                raise InputError(f"{name} must be positive")
        if self.adiabatic_length < 0.0:
            raise InputError("adiabatic length must be non-negative")
        if not 0.05 <= self.fill_ratio <= 1.0:
            raise InputError("fill ratio must be in [0.05, 1.0]")
        if not 0.0 <= self.max_inclination_deg < 90.0:
            raise InputError("max inclination must be in [0, 90) degrees")

    @property
    def cross_section(self) -> float:
        """Vapour-core cross-section [m²]."""
        return math.pi * self.inner_diameter ** 2 / 4.0

    def check_orientation(self) -> None:
        """Raise :class:`OperatingLimitError` when gravity return fails."""
        if abs(self.inclination_deg) > self.max_inclination_deg:
            raise OperatingLimitError(
                f"thermosyphon inclined {self.inclination_deg:.0f} deg "
                f"exceeds the {self.max_inclination_deg:.0f} deg gravity-"
                "return tolerance",
                limit_name="orientation",
                limit_value=self.max_inclination_deg)

    # -- limits ---------------------------------------------------------------

    def flooding_limit(self, temperature: float) -> float:
        """Counter-current flooding limit (Kutateladze/Faghri) [W].

        Q_max = f·A·h_fg·[g·σ·(ρ_l−ρ_v)]^0.25·ρ_v^0.5 with the Bond-number
        factor f and the effective gravity reduced by inclination.
        """
        self.check_orientation()
        sat = self.fluid.saturation(temperature)
        g_eff = G0 * math.cos(math.radians(self.inclination_deg))
        bond = self.inner_diameter * math.sqrt(
            g_eff * (sat.liquid_density - sat.vapor_density)
            / sat.surface_tension)
        kutateladze = (bond / (1.0 + bond)) * 3.2
        flux_term = (g_eff * sat.surface_tension
                     * (sat.liquid_density - sat.vapor_density)) ** 0.25
        return (kutateladze * self.cross_section * sat.latent_heat
                * math.sqrt(sat.vapor_density) * flux_term)

    def dryout_limit(self, temperature: float) -> float:
        """Dry-out limit from the liquid charge [W].

        Scales the flooding limit by the fill ratio: an under-filled tube
        dries before it floods (Faghri's engineering approximation).
        """
        fill_factor = min(1.0, self.fill_ratio / 0.5)
        return fill_factor * self.flooding_limit(temperature)

    def operating_limits(self, temperature: float) -> Dict[str, float]:
        """Both limits at ``temperature`` [W], keyed by name."""
        return {
            "flooding": self.flooding_limit(temperature),
            "dryout": self.dryout_limit(temperature),
        }

    def max_heat_transport(self, temperature: float) -> Tuple[float, str]:
        """Binding limit: ``(Q_max, name)``."""
        limits = self.operating_limits(temperature)
        name = min(limits, key=limits.get)
        return limits[name], name

    # -- resistances -------------------------------------------------------------

    def condensation_resistance(self, power: float,
                                temperature: float) -> float:
        """Nusselt falling-film condensation resistance [K/W]."""
        self.check_orientation()
        sat = self.fluid.saturation(temperature)
        area = math.pi * self.inner_diameter * self.condenser_length
        g_eff = G0 * math.cos(math.radians(self.inclination_deg))
        # Nusselt film with ΔT eliminated via q = h·ΔT: iterate twice.
        delta_t = 2.0
        for _ in range(3):
            h = 0.943 * (sat.liquid_density
                         * (sat.liquid_density - sat.vapor_density)
                         * g_eff * sat.latent_heat
                         * sat.liquid_conductivity ** 3
                         / (sat.liquid_viscosity * delta_t
                            * self.condenser_length)) ** 0.25
            delta_t = max(power / (h * area), 0.05)
        return 1.0 / (h * area)

    def boiling_resistance(self, power: float, temperature: float) -> float:
        """Nucleate pool-boiling resistance in the evaporator [K/W].

        Rohsenow correlation inverted for ΔT at the imposed flux.
        """
        if power <= 0.0:
            raise InputError("power must be positive for boiling resistance")
        sat = self.fluid.saturation(temperature)
        area = math.pi * self.inner_diameter * self.evaporator_length
        flux = power / area
        prandtl = (sat.liquid_viscosity * sat.liquid_specific_heat
                   / sat.liquid_conductivity)
        bubble_length = math.sqrt(
            sat.surface_tension
            / (G0 * (sat.liquid_density - sat.vapor_density)))
        delta_t = (ROHSENOW_CSF * sat.latent_heat * prandtl
                   / sat.liquid_specific_heat
                   * (flux / (sat.liquid_viscosity * sat.latent_heat)
                      * bubble_length) ** (1.0 / 3.0))
        return delta_t / power

    def thermal_resistance(self, power: float, temperature: float) -> float:
        """Total evaporator-wall to condenser-wall resistance [K/W]."""
        return (self.boiling_resistance(power, temperature)
                + self.condensation_resistance(power, temperature))

    def temperature_drop(self, power: float, temperature: float) -> float:
        """ΔT at ``power`` [K]; raises beyond the binding limit."""
        q_max, name = self.max_heat_transport(temperature)
        if power > q_max:
            raise OperatingLimitError(
                f"thermosyphon overloaded: {power:.1f} W exceeds the {name} "
                f"limit of {q_max:.1f} W", limit_name=name,
                limit_value=q_max)
        return power * self.thermal_resistance(power, temperature)
