"""Capillary wick structures for heat pipes and loop heat pipes.

The wick sets the two numbers that govern capillary devices:

* the **effective pore radius** r_eff, which caps the available capillary
  pressure  Δp_cap,max = 2σ/r_eff;
* the **permeability** K, which sets the liquid-return pressure drop
  through Darcy's law.

Three classical structures are modelled with their standard correlations
(Chi 1976, Faghri 1995): sintered powder (small pores, high Δp_cap — used
in LHP primary wicks), wrapped screen mesh, and axial grooves (high
permeability, gravity-sensitive).  Each also supplies an effective
saturated thermal conductivity used for the radial evaporator resistance.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..errors import InputError


def _require_fraction(name: str, value: float) -> None:
    if not 0.0 < value < 1.0:
        raise InputError(f"{name} must lie strictly between 0 and 1")


@dataclass(frozen=True)
class Wick:
    """Base class: a wick with pore radius, permeability and conductivity.

    Attributes
    ----------
    effective_pore_radius:
        Effective capillary pore radius r_eff [m].
    permeability:
        Darcy permeability K [m²].
    porosity:
        Void fraction ε [-].
    conductivity_saturated:
        Effective conductivity of the liquid-saturated wick [W/(m·K)].
    """

    effective_pore_radius: float
    permeability: float
    porosity: float
    conductivity_saturated: float

    def __post_init__(self) -> None:
        if self.effective_pore_radius <= 0.0:
            raise InputError("pore radius must be positive")
        if self.permeability <= 0.0:
            raise InputError("permeability must be positive")
        _require_fraction("porosity", self.porosity)
        if self.conductivity_saturated <= 0.0:
            raise InputError("saturated conductivity must be positive")

    def max_capillary_pressure(self, surface_tension: float) -> float:
        """Maximum capillary pressure 2σ/r_eff [Pa]."""
        if surface_tension <= 0.0:
            raise InputError("surface tension must be positive")
        return 2.0 * surface_tension / self.effective_pore_radius

    def liquid_pressure_drop(self, mass_flow: float, viscosity: float,
                             density: float, length: float,
                             flow_area: float) -> float:
        """Darcy pressure drop of the liquid return path [Pa].

        Δp = µ·L·ṁ / (ρ·K·A).
        """
        if min(mass_flow, viscosity, density, length, flow_area) < 0.0:
            raise InputError("inputs must be non-negative")
        if flow_area <= 0.0:
            raise InputError("flow area must be positive")
        return (viscosity * length * mass_flow
                / (density * self.permeability * flow_area))


def sintered_powder_wick(particle_radius: float, porosity: float,
                         k_solid: float, k_liquid: float) -> Wick:
    """Sintered-powder wick (LHP primary wicks, high-performance HPs).

    Uses the Kozeny–Carman permeability
    ``K = r_s²·ε³ / (37.5·(1−ε)²)`` (with r_s the particle radius), the
    standard pore-radius estimate ``r_eff = 0.41·r_s`` and the Maxwell
    effective conductivity of a saturated packed bed.
    """
    if particle_radius <= 0.0:
        raise InputError("particle radius must be positive")
    _require_fraction("porosity", porosity)
    if k_solid <= 0.0 or k_liquid <= 0.0:
        raise InputError("conductivities must be positive")
    permeability = (particle_radius ** 2 * porosity ** 3
                    / (37.5 * (1.0 - porosity) ** 2))
    pore_radius = 0.41 * particle_radius
    k_eff = k_liquid * ((2.0 + k_solid / k_liquid
                         - 2.0 * porosity * (1.0 - k_solid / k_liquid))
                        / (2.0 + k_solid / k_liquid
                           + porosity * (1.0 - k_solid / k_liquid)))
    return Wick(pore_radius, permeability, porosity, abs(k_eff))


def sintered_necked_wick(particle_radius: float, porosity: float,
                         k_solid: float, k_liquid: float) -> Wick:
    """Well-sintered (necked) powder wick with continuous metal paths.

    Same pore/permeability geometry as :func:`sintered_powder_wick`, but
    the effective saturated conductivity uses Alexander's correlation
    ``k_eff = k_l·(k_s/k_l)^((1−ε)^0.59)``, appropriate when the
    particles are metallurgically fused: copper/water sintered wicks
    measure 30–50 W/m·K, far above the packed-bed (Maxwell) bound.
    The two factories bracket real hardware.
    """
    base = sintered_powder_wick(particle_radius, porosity, k_solid,
                                k_liquid)
    k_eff = k_liquid * (k_solid / k_liquid) ** ((1.0 - porosity) ** 0.59)
    return Wick(base.effective_pore_radius, base.permeability,
                base.porosity, k_eff)


def screen_mesh_wick(mesh_number_per_m: float, wire_diameter: float,
                     n_layers: int, k_solid: float, k_liquid: float,
                     crimping_factor: float = 1.05) -> Wick:
    """Wrapped screen-mesh wick (the classic cylindrical heat-pipe wick).

    Pore radius r_eff = 1/(2N) with N the mesh number; porosity from the
    Marcus relation ε = 1 − π·S·N·d/4; permeability from the modified
    Blake–Kozeny equation K = d²·ε³ / (122·(1−ε)²).
    """
    if mesh_number_per_m <= 0.0 or wire_diameter <= 0.0:
        raise InputError("mesh number and wire diameter must be positive")
    if n_layers < 1:
        raise InputError("need at least one screen layer")
    if crimping_factor < 1.0:
        raise InputError("crimping factor must be >= 1")
    porosity = 1.0 - math.pi * crimping_factor * mesh_number_per_m \
        * wire_diameter / 4.0
    if not 0.0 < porosity < 1.0:
        raise InputError(
            f"mesh geometry gives non-physical porosity {porosity:.3f}")
    pore_radius = 1.0 / (2.0 * mesh_number_per_m)
    permeability = (wire_diameter ** 2 * porosity ** 3
                    / (122.0 * (1.0 - porosity) ** 2))
    # Parallel/series bound mix for layered screens (Chi).
    k_eff = k_liquid * (k_liquid + k_solid
                        - (1.0 - porosity) * (k_liquid - k_solid)) / (
        k_liquid + k_solid + (1.0 - porosity) * (k_liquid - k_solid))
    return Wick(pore_radius, permeability, porosity, abs(k_eff))


def axial_groove_wick(groove_width: float, groove_depth: float,
                      n_grooves: int, k_solid: float,
                      k_liquid: float) -> Wick:
    """Axial rectangular-groove wick (aluminium-extrusion heat pipes).

    Pore radius equals the groove half-width; permeability from laminar
    flow in a rectangular channel K = ε·(D_h)²/(2·f·Re) with f·Re ≈ 16 for
    the aspect ratios of practical grooves.
    """
    if groove_width <= 0.0 or groove_depth <= 0.0:
        raise InputError("groove dimensions must be positive")
    if n_grooves < 1:
        raise InputError("need at least one groove")
    pore_radius = groove_width / 2.0
    hydraulic_diameter = (2.0 * groove_width * groove_depth
                          / (groove_width + groove_depth))
    porosity = 0.5  # groove land/void ratio of typical extrusions
    permeability = porosity * hydraulic_diameter ** 2 / 32.0
    # Grooves conduct mostly through the solid fins between channels.
    k_eff = 0.5 * (k_solid + k_liquid)
    return Wick(pore_radius, permeability, porosity, k_eff)
