"""Cylindrical heat-pipe model: operating limits and thermal resistance.

Implements the classical engineering model of a wicked heat pipe
(Peterson, *An Introduction to Heat Pipes*, 1994 — reference [3] of the
paper): the five operating limits that bound the transportable power as a
function of vapour temperature, and the series radial-resistance model
that gives the evaporator-to-condenser temperature drop in normal
operation.

In the COSEE seat-electronics-box demonstrator, heat pipes carry the
component heat to the edge of the box; the model here reproduces both
their very low thermal resistance (effective conductivity 10–100× copper)
and their power ceiling.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Tuple

from ..errors import InputError, OperatingLimitError
from ..units import G0
from .wick import Wick
from .workingfluid import WorkingFluid

#: Typical nucleation-site radius for the boiling limit [m] (Chi 1976).
NUCLEATION_RADIUS = 2.54e-7

#: Ratio of specific heats used for the sonic limit (vapour, diatomic-ish).
GAMMA_VAPOR = 1.33


@dataclass(frozen=True)
class HeatPipeGeometry:
    """Geometry of a cylindrical wicked heat pipe.

    Lengths along the pipe: evaporator, adiabatic section, condenser.
    Radii from outside in: ``outer_radius`` → wall → ``inner_radius`` →
    wick → ``vapor_radius``.
    """

    outer_radius: float
    wall_thickness: float
    wick_thickness: float
    evaporator_length: float
    adiabatic_length: float
    condenser_length: float

    def __post_init__(self) -> None:
        for name in ("outer_radius", "wall_thickness", "wick_thickness",
                     "evaporator_length", "condenser_length"):
            if getattr(self, name) <= 0.0:
                raise InputError(f"{name} must be positive")
        if self.adiabatic_length < 0.0:
            raise InputError("adiabatic length must be non-negative")
        if self.vapor_radius <= 0.0:
            raise InputError(
                "wall + wick thickness leaves no vapour core")

    @property
    def inner_radius(self) -> float:
        """Radius at the wall/wick interface [m]."""
        return self.outer_radius - self.wall_thickness

    @property
    def vapor_radius(self) -> float:
        """Radius of the vapour core [m]."""
        return self.inner_radius - self.wick_thickness

    @property
    def total_length(self) -> float:
        """End-to-end pipe length [m]."""
        return (self.evaporator_length + self.adiabatic_length
                + self.condenser_length)

    @property
    def effective_length(self) -> float:
        """Effective transport length L_eff = L_a + (L_e + L_c)/2 [m]."""
        return (self.adiabatic_length
                + 0.5 * (self.evaporator_length + self.condenser_length))

    @property
    def vapor_area(self) -> float:
        """Vapour-core cross-section [m²]."""
        return math.pi * self.vapor_radius ** 2

    @property
    def wick_area(self) -> float:
        """Wick cross-section (annulus) [m²]."""
        return math.pi * (self.inner_radius ** 2 - self.vapor_radius ** 2)


@dataclass(frozen=True)
class HeatPipe:
    """A complete heat pipe: geometry + wick + fluid + wall material.

    Parameters
    ----------
    geometry:
        Cylindrical geometry.
    wick:
        Wick structure (see :mod:`avipack.twophase.wick`).
    fluid:
        Working fluid.
    wall_conductivity:
        Wall material conductivity [W/(m·K)] (copper ≈ 398).
    tilt_deg:
        Orientation: positive when the **evaporator is above** the
        condenser (adverse gravity head working against the capillary
        pump); negative for gravity-assisted operation.
    """

    geometry: HeatPipeGeometry
    wick: Wick
    fluid: WorkingFluid
    wall_conductivity: float = 398.0
    tilt_deg: float = 0.0

    def __post_init__(self) -> None:
        if self.wall_conductivity <= 0.0:
            raise InputError("wall conductivity must be positive")
        if not -90.0 <= self.tilt_deg <= 90.0:
            raise InputError("tilt must be within +/-90 degrees")

    # -- operating limits ------------------------------------------------------

    def capillary_limit(self, temperature: float) -> float:
        """Capillary (wicking) limit at vapour temperature ``T`` [W].

        Classical closed form: the capillary pressure 2σ/r_eff minus the
        hydrostatic head must overcome the Darcy liquid-return loss.
        Returns 0 when gravity alone exceeds the pump (dried-out pipe).
        """
        sat = self.fluid.saturation(temperature)
        geo = self.geometry
        pump = self.wick.max_capillary_pressure(sat.surface_tension)
        head = (sat.liquid_density * G0 * geo.total_length
                * math.sin(math.radians(self.tilt_deg)))
        available = pump - head
        if available <= 0.0:
            return 0.0
        mass_flow_per_pa = (sat.liquid_density * self.wick.permeability
                            * geo.wick_area
                            / (sat.liquid_viscosity * geo.effective_length))
        return available * mass_flow_per_pa * sat.latent_heat

    def sonic_limit(self, temperature: float) -> float:
        """Sonic (choked vapour flow) limit [W]."""
        sat = self.fluid.saturation(temperature)
        gamma = GAMMA_VAPOR
        r_specific = sat.pressure / (sat.vapor_density * temperature)
        speed_term = math.sqrt(gamma * r_specific * temperature
                               / (2.0 * (gamma + 1.0)))
        return (self.geometry.vapor_area * sat.vapor_density
                * sat.latent_heat * speed_term)

    def entrainment_limit(self, temperature: float) -> float:
        """Entrainment limit: counterflow vapour shearing liquid off the
        wick surface [W]."""
        sat = self.fluid.saturation(temperature)
        hydraulic_radius = self.wick.effective_pore_radius
        return (self.geometry.vapor_area * sat.latent_heat
                * math.sqrt(sat.surface_tension * sat.vapor_density
                            / (2.0 * hydraulic_radius)))

    def boiling_limit(self, temperature: float) -> float:
        """Boiling limit: nucleate boiling in the wick blocks liquid
        return [W]."""
        sat = self.fluid.saturation(temperature)
        geo = self.geometry
        ln_ratio = math.log(geo.inner_radius / geo.vapor_radius)
        critical_superheat_term = (2.0 * sat.surface_tension
                                   * (1.0 / NUCLEATION_RADIUS
                                      - 1.0 / self.wick.effective_pore_radius))
        return (2.0 * math.pi * geo.evaporator_length
                * self.wick.conductivity_saturated * temperature
                * critical_superheat_term
                / (sat.latent_heat * sat.vapor_density * ln_ratio))

    def viscous_limit(self, temperature: float) -> float:
        """Viscous (vapour-pressure) limit, relevant near start-up [W]."""
        sat = self.fluid.saturation(temperature)
        geo = self.geometry
        return (math.pi * geo.vapor_radius ** 4 * sat.latent_heat
                * sat.vapor_density * sat.pressure
                / (12.0 * sat.vapor_viscosity * geo.effective_length))

    def operating_limits(self, temperature: float) -> Dict[str, float]:
        """All five limits at ``temperature`` [W], keyed by name."""
        return {
            "capillary": self.capillary_limit(temperature),
            "sonic": self.sonic_limit(temperature),
            "entrainment": self.entrainment_limit(temperature),
            "boiling": self.boiling_limit(temperature),
            "viscous": self.viscous_limit(temperature),
        }

    def max_heat_transport(self, temperature: float) -> Tuple[float, str]:
        """Binding limit at ``temperature``: ``(Q_max, limit_name)``."""
        limits = self.operating_limits(temperature)
        name = min(limits, key=limits.get)
        return limits[name], name

    # -- thermal resistance -----------------------------------------------------

    def thermal_resistance(self, temperature: float) -> float:
        """End-to-end resistance (evaporator wall → condenser wall) [K/W].

        Series model: radial wall conduction and saturated-wick conduction
        at both ends, plus the (tiny) axial vapour temperature drop derived
        from the Clausius–Clapeyron slope.
        """
        sat = self.fluid.saturation(temperature)
        geo = self.geometry

        def radial(length: float, r_out: float, r_in: float,
                   conductivity: float) -> float:
            return math.log(r_out / r_in) / (2.0 * math.pi * length
                                             * conductivity)

        r_wall_e = radial(geo.evaporator_length, geo.outer_radius,
                          geo.inner_radius, self.wall_conductivity)
        r_wick_e = radial(geo.evaporator_length, geo.inner_radius,
                          geo.vapor_radius,
                          self.wick.conductivity_saturated)
        r_wall_c = radial(geo.condenser_length, geo.outer_radius,
                          geo.inner_radius, self.wall_conductivity)
        r_wick_c = radial(geo.condenser_length, geo.inner_radius,
                          geo.vapor_radius,
                          self.wick.conductivity_saturated)
        # Vapour-space resistance from Clausius-Clapeyron: dT/dp = T·v_fg/h_fg,
        # combined with laminar vapour pressure drop per watt.
        dp_per_q = (8.0 * sat.vapor_viscosity * geo.effective_length
                    / (math.pi * sat.vapor_density * geo.vapor_radius ** 4
                       * sat.latent_heat))
        dt_per_dp = temperature / (sat.latent_heat * sat.vapor_density)
        r_vapor = dp_per_q * dt_per_dp
        return r_wall_e + r_wick_e + r_vapor + r_wick_c + r_wall_c

    def effective_conductivity(self, temperature: float) -> float:
        """Equivalent rod conductivity k_eff = L / (R·A) [W/(m·K)].

        The figure of merit quoted against solid copper drains.
        """
        geo = self.geometry
        area = math.pi * geo.outer_radius ** 2
        return geo.total_length / (self.thermal_resistance(temperature)
                                   * area)

    def check_operation(self, power: float, temperature: float) -> None:
        """Raise :class:`OperatingLimitError` if ``power`` exceeds the
        binding limit at ``temperature``."""
        if power < 0.0:
            raise InputError("power must be non-negative")
        q_max, name = self.max_heat_transport(temperature)
        if power > q_max:
            raise OperatingLimitError(
                f"heat pipe overloaded: {power:.1f} W exceeds the "
                f"{name} limit of {q_max:.1f} W at {temperature:.1f} K",
                limit_name=name, limit_value=q_max)

    def temperature_drop(self, power: float, temperature: float) -> float:
        """Evaporator-to-condenser ΔT at ``power`` [K].

        Raises :class:`OperatingLimitError` above the binding limit.
        """
        self.check_operation(power, temperature)
        return power * self.thermal_resistance(temperature)


def standard_copper_water_heatpipe(diameter: float = 6.0e-3,
                                   length: float = 0.15,
                                   tilt_deg: float = 0.0) -> HeatPipe:
    """A representative COTS copper/water/sintered heat pipe.

    6 mm copper envelope, sintered copper-powder wick, water fill — the
    kind of pipe used inside the COSEE SEB to drain component heat to the
    box edge.  ``length`` is split 30 % evaporator / 40 % adiabatic /
    30 % condenser.
    """
    from .wick import sintered_powder_wick

    if diameter <= 0.0 or length <= 0.0:
        raise InputError("diameter and length must be positive")
    geometry = HeatPipeGeometry(
        outer_radius=diameter / 2.0,
        wall_thickness=0.3e-3,
        wick_thickness=0.6e-3,
        evaporator_length=0.3 * length,
        adiabatic_length=0.4 * length,
        condenser_length=0.3 * length,
    )
    wick = sintered_powder_wick(particle_radius=50e-6, porosity=0.5,
                                k_solid=398.0, k_liquid=0.63)
    return HeatPipe(geometry=geometry, wick=wick,
                    fluid=WorkingFluid("water"), wall_conductivity=398.0,
                    tilt_deg=tilt_deg)
