"""Working-fluid abstraction for two-phase devices.

Wraps the saturation-property correlations of
:mod:`avipack.materials.fluids` into a :class:`WorkingFluid` object that a
heat pipe, loop heat pipe or thermosyphon can hold, plus selection helpers
that rank candidate fluids for a given operating envelope — the trade
study a packaging engineer runs before committing to ammonia (ITP/Euro
Heat Pipes LHPs), water or methanol.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

from ..errors import InputError, ModelRangeError
from ..materials.fluids import (
    SaturationState,
    list_working_fluids,
    saturation_properties,
)


@dataclass(frozen=True)
class WorkingFluid:
    """A named two-phase working fluid.

    Thin immutable handle; property evaluation delegates to the saturation
    correlations, so two devices sharing a fluid stay consistent.
    """

    name: str

    def __post_init__(self) -> None:
        if self.name not in list_working_fluids():
            raise InputError(
                f"unknown working fluid {self.name!r}; known: "
                f"{', '.join(list_working_fluids())}")

    def saturation(self, temperature: float) -> SaturationState:
        """Saturation state at ``temperature`` [K]."""
        return saturation_properties(self.name, temperature)

    def merit_number(self, temperature: float) -> float:
        """Liquid transport figure of merit at ``temperature`` [W/m²]."""
        return self.saturation(temperature).merit_number()

    def vapor_pressure(self, temperature: float) -> float:
        """Saturation pressure at ``temperature`` [Pa]."""
        return self.saturation(temperature).pressure

    def operating_range(self) -> Tuple[float, float]:
        """(t_min, t_max) validity range of the property correlations [K]."""

        def valid(t: float) -> bool:
            try:
                saturation_properties(self.name, t)
                return True
            except ModelRangeError:
                return False

        # Locate any valid probe temperature, then bisect each boundary.
        probe = next((t for t in (320.0, 280.0, 250.0, 360.0, 220.0)
                      if valid(t)), None)
        if probe is None:
            raise InputError(
                f"fluid {self.name!r} has no valid probe temperature")
        lo, hi = 150.0, probe
        for _ in range(60):
            mid = 0.5 * (lo + hi)
            if valid(mid):
                hi = mid
            else:
                lo = mid
        t_min = hi
        lo, hi = probe, 700.0
        for _ in range(60):
            mid = 0.5 * (lo + hi)
            if valid(mid):
                lo = mid
            else:
                hi = mid
        t_max = lo
        return t_min, t_max


def select_fluid(t_operating: float, t_min_survival: float = 218.15,
                 max_pressure: float = 4.0e6) -> Tuple[str, float]:
    """Pick the best working fluid for an operating point.

    Ranks fluids by merit number at ``t_operating`` and discards candidates
    whose saturation pressure at ``t_operating`` exceeds ``max_pressure``
    (container strength) or whose correlation cannot represent the cold
    survival temperature ``t_min_survival`` (freezing / property validity —
    the −55 °C avionics storage requirement by default).

    Returns the winning ``(name, merit_number)``.

    Raises
    ------
    InputError
        If no fluid survives the screening.
    """
    if t_operating <= 0.0:
        raise InputError("operating temperature must be positive kelvin")
    best_name, best_merit = "", -1.0
    for name in list_working_fluids():
        try:
            state = saturation_properties(name, t_operating)
        except ModelRangeError:
            continue
        if state.pressure > max_pressure:
            continue
        try:
            saturation_properties(name, max(t_min_survival, 150.1))
        except ModelRangeError:
            continue
        merit = state.merit_number()
        if merit > best_merit:
            best_name, best_merit = name, merit
    if not best_name:
        raise InputError(
            f"no working fluid satisfies T_op={t_operating} K, "
            f"T_survival={t_min_survival} K, p_max={max_pressure} Pa")
    return best_name, best_merit
