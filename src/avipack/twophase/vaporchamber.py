"""Flat vapor-chamber heat spreader model.

The paper's hot-spot crisis (10 → 100 W/cm²) is attacked two ways:
better interfaces (NANOPACK) and better *spreading*.  A vapor chamber —
a flat heat pipe used as a heat spreader under a high-flux die — turns a
cm²-class hot spot into a package-sized warm zone.  The model gives:

* the effective in-plane conductivity of the chamber (saturated-vapour
  transport, typically 5–50× copper);
* the hot-spot thermal resistance with and without the chamber, using
  the Song/Lee/Au spreading-resistance closed form on the enhanced
  conductivity;
* the operating limits that bound it: evaporator boiling flux and the
  wick capillary limit over the spreading distance.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..errors import InputError, OperatingLimitError
from ..thermal.network import spreading_resistance
from .wick import Wick, sintered_necked_wick
from .workingfluid import WorkingFluid


@dataclass(frozen=True)
class VaporChamber:
    """A rectangular flat vapor chamber used as a heat spreader.

    Parameters
    ----------
    length, width:
        Footprint [m].
    thickness:
        Total chamber thickness including both walls [m].
    wall_thickness:
        Each envelope wall [m].
    wick:
        Evaporator/condenser wick lining both faces.
    wick_thickness:
        Per-face wick layer [m].
    fluid:
        Working fluid (water for electronics temperatures).
    wall_conductivity:
        Envelope material conductivity [W/(m·K)].
    max_evaporator_flux:
        Boiling-crisis flux of the evaporator wick [W/m²]; sintered
        copper/water chambers sustain 50–150 W/cm², the enabling number
        for the paper's 100 W/cm² hot spots.
    max_effective_conductivity:
        Practical ceiling on the effective conductivity [W/(m·K)].  The
        ideal vapour-transport value runs to 10⁶ W/m·K, but evaporation/
        condensation interface kinetics and wick superheat limit real
        chambers to roughly 10–50× copper; 20 000 W/m·K is the
        literature's upper band for copper/water units.
    """

    length: float
    width: float
    thickness: float
    wall_thickness: float
    wick: Wick
    wick_thickness: float
    fluid: WorkingFluid
    wall_conductivity: float = 398.0
    max_evaporator_flux: float = 1.0e6
    max_effective_conductivity: float = 20_000.0

    def __post_init__(self) -> None:
        for name in ("length", "width", "thickness", "wall_thickness",
                     "wick_thickness", "wall_conductivity",
                     "max_evaporator_flux", "max_effective_conductivity"):
            if getattr(self, name) <= 0.0:
                raise InputError(f"{name} must be positive")
        if self.vapor_gap <= 0.0:
            raise InputError("walls + wicks leave no vapour space")

    @property
    def vapor_gap(self) -> float:
        """Vapour core height [m]."""
        return (self.thickness - 2.0 * self.wall_thickness
                - 2.0 * self.wick_thickness)

    @property
    def footprint_area(self) -> float:
        """Chamber footprint [m²]."""
        return self.length * self.width

    # -- effective conductivity --------------------------------------------------

    def effective_conductivity(self, temperature: float) -> float:
        """Effective in-plane conductivity of the chamber [W/(m·K)].

        The vapour core transports heat with an equivalent conductivity
        derived from Clausius–Clapeyron (Prasher 2003):

        .. math::

           k_{vap} = \\frac{h_{fg}^2 \\, \\rho_v \\, P_v \\, d^2}
                          {12 \\, \\mu_v \\, R_u T^2 / M \\cdot P_v}
                   \\approx \\frac{h_{fg}^2 \\rho_v^2 d^2}
                                   {12 \\mu_v} \\cdot
                     \\frac{1}{\\rho_v h_{fg} T / p \\cdot p / T}

        implemented via the exact chain: laminar vapour flow conductance
        between parallel plates × the saturation-slope dT/dp.  The walls
        and wick add in parallel by cross-section.
        """
        sat = self.fluid.saturation(temperature)
        d = self.vapor_gap
        # Laminar slot flow: mass flow per unit width per pressure
        # gradient = rho d^3 / (12 mu).  Heat flux = mdot * h_fg; the
        # driving dp maps to dT through Clausius-Clapeyron.
        dp_per_dt = sat.latent_heat * sat.vapor_density / temperature
        k_vapor = (sat.vapor_density * d ** 2 / (12.0 * sat.vapor_viscosity)
                   * sat.latent_heat * dp_per_dt * d) / d
        # Parallel combination weighted by layer thickness.
        k_walls = self.wall_conductivity
        k_wick = self.wick.conductivity_saturated
        total = self.thickness
        k_eff = (k_vapor * d
                 + k_walls * 2.0 * self.wall_thickness
                 + k_wick * 2.0 * self.wick_thickness) / total
        # Interface kinetics cap the practical value far below the ideal
        # vapour-transport figure.
        return min(k_eff, self.max_effective_conductivity)

    # -- limits ------------------------------------------------------------------

    def boiling_limit(self, source_area: float) -> float:
        """Maximum power before the evaporator wick dries by boiling [W]."""
        if source_area <= 0.0:
            raise InputError("source area must be positive")
        return self.max_evaporator_flux * source_area

    def capillary_limit(self, temperature: float) -> float:
        """Capillary limit over the spreading distance [W].

        The condensate must return from the chamber periphery to the
        source across half the diagonal through the wick.
        """
        sat = self.fluid.saturation(temperature)
        travel = 0.5 * math.hypot(self.length, self.width)
        pump = self.wick.max_capillary_pressure(sat.surface_tension)
        # Darcy return through both wick faces.
        wick_section = 2.0 * self.wick_thickness * min(self.length,
                                                       self.width)
        flow_per_pa = (sat.liquid_density * self.wick.permeability
                       * wick_section / (sat.liquid_viscosity * travel))
        return pump * flow_per_pa * sat.latent_heat

    def check_operation(self, power: float, source_area: float,
                        temperature: float) -> None:
        """Raise :class:`OperatingLimitError` above a binding limit."""
        if power < 0.0:
            raise InputError("power must be non-negative")
        q_boil = self.boiling_limit(source_area)
        q_cap = self.capillary_limit(temperature)
        name, q_max = (("boiling", q_boil) if q_boil <= q_cap
                       else ("capillary", q_cap))
        if power > q_max:
            raise OperatingLimitError(
                f"vapor chamber overloaded: {power:.1f} W exceeds the "
                f"{name} limit {q_max:.1f} W", limit_name=name,
                limit_value=q_max)

    # -- spreading performance ------------------------------------------------------

    def evaporator_stack_resistance(self, source_area: float) -> float:
        """Through-thickness resistance under the source [K/W].

        The wall plus the saturated wick that the heat must cross before
        reaching the vapour — the term that dominates real chambers.
        """
        if source_area <= 0.0:
            raise InputError("source area must be positive")
        r_wall = self.wall_thickness / (self.wall_conductivity
                                        * source_area)
        r_wick = self.wick_thickness / (self.wick.conductivity_saturated
                                        * source_area)
        return r_wall + r_wick

    def hotspot_resistance(self, source_area: float, temperature: float,
                           h_sink: float = 5000.0) -> float:
        """Source-to-sink-side resistance of a centred hot spot [K/W].

        Series: evaporator wall+wick stack under the source, then the
        spreading-resistance closed form with the chamber's effective
        conductivity plus the through-thickness slab term.
        """
        if source_area <= 0.0 or h_sink <= 0.0:
            raise InputError("source area and h must be positive")
        source_radius = math.sqrt(source_area / math.pi)
        plate_radius = math.sqrt(self.footprint_area / math.pi)
        if source_radius >= plate_radius:
            raise InputError("source covers the whole chamber")
        k_eff = self.effective_conductivity(temperature)
        r_spread = spreading_resistance(source_radius, plate_radius,
                                        self.thickness, k_eff, h_sink)
        r_slab = self.thickness / (k_eff * self.footprint_area)
        return self.evaporator_stack_resistance(source_area) \
            + r_spread + r_slab

    def improvement_over_copper(self, source_area: float,
                                temperature: float,
                                h_sink: float = 5000.0) -> float:
        """Hot-spot resistance ratio copper-plate / vapor-chamber [-].

        > 1 means the chamber wins; the figure of merit for the paper's
        100 W/cm² problem.
        """
        source_radius = math.sqrt(source_area / math.pi)
        plate_radius = math.sqrt(self.footprint_area / math.pi)
        r_copper = (spreading_resistance(source_radius, plate_radius,
                                         self.thickness, 398.0, h_sink)
                    + self.thickness / (398.0 * self.footprint_area))
        return r_copper / self.hotspot_resistance(source_area,
                                                  temperature, h_sink)


def electronics_vapor_chamber(length: float = 0.08, width: float = 0.08,
                              thickness: float = 3.0e-3) -> VaporChamber:
    """A representative copper/water electronics vapor chamber.

    80 × 80 × 3 mm envelope, sintered-copper wick — the class of spreader
    placed under a 100 W/cm² processor lid.
    """
    wick = sintered_necked_wick(particle_radius=40e-6, porosity=0.55,
                                k_solid=398.0, k_liquid=0.63)
    return VaporChamber(
        length=length, width=width, thickness=thickness,
        wall_thickness=0.5e-3, wick=wick, wick_thickness=0.5e-3,
        fluid=WorkingFluid("water"), wall_conductivity=398.0,
        max_evaporator_flux=1.2e6,
    )
