"""Inline suppression directives.

A finding is suppressed by putting a directive comment on the same line
as the flagged construct (for multi-line statements: the line the
statement *starts* on, which is where findings anchor)::

    network.add_heat_load("cpu", 40.0)  # avilint: disable=AVI005
    rng = np.random.default_rng()       # avilint: disable=AVI004,AVI001
    legacy_shim()                       # avilint: disable=all

``disable=all`` silences every rule on that line.  Suppressions are
counted and reported separately, so a suppressed finding never gates CI
but also never disappears silently.
"""

from __future__ import annotations

import re
from typing import Dict, FrozenSet, Sequence

__all__ = ["SUPPRESS_ALL", "line_suppressions", "suppresses"]

#: Sentinel rule id meaning "every rule".
SUPPRESS_ALL = "ALL"

_DIRECTIVE = re.compile(
    r"#\s*avilint:\s*disable=([A-Za-z0-9_]+(?:\s*,\s*[A-Za-z0-9_]+)*)")


def line_suppressions(lines: Sequence[str]) -> Dict[int, FrozenSet[str]]:
    """Map 1-based line number -> set of suppressed rule ids on that line."""
    table: Dict[int, FrozenSet[str]] = {}
    for number, text in enumerate(lines, start=1):
        if "avilint" not in text:
            continue
        match = _DIRECTIVE.search(text)
        if match is None:
            continue
        rules = frozenset(
            SUPPRESS_ALL if token.strip().lower() == "all"
            else token.strip().upper()
            for token in match.group(1).split(","))
        table[number] = rules
    return table


def suppresses(table: Dict[int, FrozenSet[str]], line: int,
               rule_id: str) -> bool:
    """True when ``rule_id`` is disabled on ``line`` by the table."""
    rules = table.get(line)
    if rules is None:
        return False
    return SUPPRESS_ALL in rules or rule_id.upper() in rules
