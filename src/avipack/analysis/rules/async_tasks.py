"""AVI007 — no fire-and-forget asyncio tasks.

The event loop keeps only a *weak* reference to tasks created with
``asyncio.create_task`` / ``asyncio.ensure_future`` / the loop method
of the same name.  A task whose result is discarded can therefore be
garbage-collected mid-flight, and any exception it raises is swallowed
until interpreter shutdown prints an opaque "Task exception was never
retrieved".  In a job server that pattern silently drops jobs.

This rule flags task-creation calls used as bare expression statements
— the result neither stored, awaited, returned nor passed on::

    asyncio.create_task(self._run_job(job))        # flagged
    loop.create_task(worker())                     # flagged

and stays quiet on every referenced form::

    task = asyncio.create_task(self._run_job(job)) # kept alive
    await asyncio.create_task(worker())            # awaited
    tasks.append(loop.create_task(worker()))       # stored
    tg.create_task(worker())                       # TaskGroup owns it

``TaskGroup.create_task`` is recognised by the receiver's name
(``tg``, ``group``, ``task_group``, ``taskgroup``, ``nursery``): the
group holds a strong reference and re-raises exceptions, which is the
recommended idiom when structured concurrency fits.
"""

from __future__ import annotations

import ast
from typing import Iterable, Optional

from ..context import FileContext
from ..findings import Finding, Severity
from . import Rule, register

__all__ = ["AVI007FireAndForgetTask"]

#: Call names that create an event-loop task.
_TASK_FACTORIES = ("create_task", "ensure_future")

#: Receiver names that denote a TaskGroup-style owner (holds a strong
#: reference to the task and surfaces its exceptions).
_GROUP_RECEIVERS = ("tg", "group", "task_group", "taskgroup", "nursery")

_SUGGESTION = ("store the returned task (and await it, gather it, or "
               "register a done callback) so it cannot be "
               "garbage-collected and its exception is retrieved")


def _task_factory_call(call: ast.Call) -> Optional[str]:
    """The factory name when ``call`` creates an asyncio task."""
    func = call.func
    if isinstance(func, ast.Name) and func.id in _TASK_FACTORIES:
        return func.id
    if isinstance(func, ast.Attribute) and func.attr in _TASK_FACTORIES:
        receiver = func.value
        if isinstance(receiver, ast.Name) \
                and receiver.id in _GROUP_RECEIVERS:
            return None
        if isinstance(receiver, ast.Attribute) \
                and receiver.attr in _GROUP_RECEIVERS:
            return None
        return func.attr
    return None


@register
class AVI007FireAndForgetTask(Rule):
    """Flag asyncio task creation whose result is discarded."""

    rule_id = "AVI007"
    name = "fire-and-forget-task"
    severity = Severity.ERROR
    version = 1

    def check(self, ctx: FileContext) -> Iterable[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Expr):
                continue
            call = node.value
            if not isinstance(call, ast.Call):
                continue
            factory = _task_factory_call(call)
            if factory is None:
                continue
            yield self.finding(
                ctx, call,
                f"fire-and-forget {factory}(): the loop holds only a "
                "weak reference, so the task can be garbage-collected "
                "mid-flight and its exception is never retrieved",
                suggestion=_SUGGESTION)
