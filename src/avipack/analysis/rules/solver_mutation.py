"""AVI005 — solver-mutation safety.

The compiled solver core (PR 3) lowers a :class:`ThermalNetwork` to
index arrays and a reusable factorization on the first ``solve()``;
topology mutations (``add_node``/``add_conductance``/``add_heat_load``/
``add_resistance``) invalidate that compilation.  Code that mutates a
network *after* solving it therefore works — but only because of the
invalidation hook, pays a silent recompilation on every iteration, and
breaks outright if the mutation ever bypasses the public mutators.

This rule flags, within a single function body, any topology mutation
on a receiver that was already solved earlier in that body (same
receiver name, mutation site after the first ``solve``/``solve_transient``
call).  Intentional mutate-and-resolve loops should restructure to
mutate *before* solving, use time-dependent loads on the transient
solver, or carry an explicit ``# avilint: disable=AVI005``.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterable, Iterator, Optional, Tuple

from ..context import FileContext
from ..findings import Finding, Severity
from . import Rule, register

__all__ = ["AVI005SolverMutation"]

#: Method names that trigger (or imply) compilation.
_SOLVE_METHODS = frozenset({"solve", "solve_transient"})

#: ThermalNetwork topology mutators.
_MUTATORS = frozenset(
    {"add_node", "add_conductance", "add_heat_load", "add_resistance"})


def _method_call(node: ast.Call) -> Optional[Tuple[str, str]]:
    """``receiver.method(...)`` -> (receiver name, method name)."""
    func = node.func
    if not isinstance(func, ast.Attribute):
        return None
    value = func.value
    if isinstance(value, ast.Name):
        return value.id, func.attr
    if isinstance(value, ast.Attribute):  # self.network.solve(...)
        return value.attr, func.attr
    return None


@register
class AVI005SolverMutation(Rule):
    """Flag ThermalNetwork topology mutations after a solve call."""

    rule_id = "AVI005"
    name = "solver-mutation-safety"
    severity = Severity.ERROR
    version = 1

    def check(self, ctx: FileContext) -> Iterable[Finding]:
        for node in ast.walk(ctx.tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                yield from self._check_function(ctx, node)

    def _check_function(self, ctx: FileContext, func) -> Iterator[Finding]:
        calls = []
        for node in ast.walk(func):
            if isinstance(node, ast.Call):
                if self._owning_function(ctx, node) is not func:
                    continue  # nested defs get their own pass
                target = _method_call(node)
                if target is not None:
                    calls.append((node.lineno, node.col_offset, node,
                                  *target))
        calls.sort(key=lambda item: (item[0], item[1]))

        first_solve: Dict[str, int] = {}
        for lineno, _col, node, receiver, method in calls:
            if method in _SOLVE_METHODS:
                first_solve.setdefault(receiver, lineno)
            elif (method in _MUTATORS and receiver in first_solve
                    and lineno > first_solve[receiver]):
                yield self.finding(
                    ctx, node,
                    f"'{receiver}.{method}(...)' mutates network topology "
                    f"after '{receiver}.solve(...)' on line "
                    f"{first_solve[receiver]}; this silently relies on "
                    f"compilation invalidation and recompiles the network",
                    suggestion="restructure to finish building the network "
                               "before solving, or suppress if the "
                               "mutate-resolve loop is intentional")

    @staticmethod
    def _owning_function(ctx: FileContext, node: ast.AST) -> Optional[ast.AST]:
        for ancestor in ctx.ancestors(node):
            if isinstance(ancestor, (ast.FunctionDef, ast.AsyncFunctionDef)):
                return ancestor
        return None
