"""AVI001 — unit-suffix consistency.

The library's convention (DESIGN.md section 6) is that every identifier
carrying a physical quantity names its unit as a suffix: ``power_w``,
``temp_k``, ``resistance_k_w``, ``freq_hz``.  Two failure modes are
checked:

1. **Spelled-out suffix aliases** — ``temp_celsius``, ``power_watts``,
   ``freq_hertz`` — are flagged on public function parameters and class
   attributes, with the canonical suffix suggested.
2. **Docstring contradictions** — a parameter named ``..._k`` whose
   docstring block documents degrees Celsius (or ``..._c`` documenting
   kelvin, ``..._m`` documenting millimetres, etc.) is flagged: either
   the name or the documentation is lying, and the solver will happily
   consume the wrong magnitude.

The canonical suffix vocabulary is *derived* from
:mod:`avipack.units`: every ``<a>_to_<b>`` converter contributes its
unit tokens, so adding a converter (say ``bar_to_pa``) automatically
teaches the rule the corresponding suffixes.  A small core table covers
SI units that need no conversion helper.
"""

from __future__ import annotations

import ast
import re
from functools import lru_cache
from typing import Dict, FrozenSet, Iterable, Iterator, List, Optional, Tuple

from ... import units as units_module
from ..context import FileContext
from ..findings import Finding, Severity
from . import Rule, register

__all__ = ["AVI001UnitSuffix", "canonical_suffixes"]

# Core SI suffixes used throughout the package (no converter needed).
_CORE_SUFFIXES = (
    "_w", "_k", "_c", "_m", "_s", "_h", "_hz", "_pa", "_kg", "_g", "_n",
    "_j", "_v", "_a", "_m2", "_m3", "_mm", "_um", "_w_m2", "_w_cm2",
    "_w_mk", "_k_w", "_c_w", "_kmm2_w", "_m_s", "_m_s2", "_kg_s",
    "_kg_m3", "_kg_h", "_j_kgk", "_j_kg", "_pa_s", "_g2_hz", "_grms",
    "_mpa", "_gpa", "_ppm_k", "_per_k", "_cycles", "_db", "_db_oct",
)

# Unit token (as it appears in an avipack.units converter name) to the
# canonical identifier suffix it implies.
_TOKEN_TO_SUFFIX = {
    "kelvin": "_k",
    "celsius": "_c",
    "hz": "_hz",
    "rpm": "_rpm",
    "m": "_m",
    "mil": "_mil",
    "inch": "_in",
    "g": "_g",
    "m_s2": "_m_s2",
    "kg_per_s": "_kg_s",
    "seconds": "_s",
    "hours": "_h",
    "w_per_cm2": "_w_cm2",
    "kmm2_per_w": "_kmm2_w",
}

# Spelled-out aliases that should be the canonical suffix instead.
_ALIASES = {
    "_celsius": "_c",
    "_degc": "_c",
    "_deg_c": "_c",
    "_kelvin": "_k",
    "_watt": "_w",
    "_watts": "_w",
    "_hertz": "_hz",
    "_pascal": "_pa",
    "_pascals": "_pa",
    "_meter": "_m",
    "_meters": "_m",
    "_metre": "_m",
    "_metres": "_m",
    "_kilogram": "_kg",
    "_kilograms": "_kg",
    "_second": "_s",
    "_secs": "_s",
    "_hrs": "_h",
}

# Suffix -> regex patterns whose presence in the parameter's doc block
# contradicts the suffix.  Case-sensitive patterns guard unit symbols
# (mm vs m, kW vs W); IGNORECASE ones guard spelled-out unit words.
_CONTRADICTIONS: Dict[str, Tuple[Tuple[str, int], ...]] = {
    "_k": ((r"°\s*C", 0), (r"\bdeg\s*C\b", 0), (r"\bcelsius\b", re.I)),
    "_c": ((r"\bkelvin\b", re.I), (r"\[K\]", 0)),
    "_w": ((r"\bkW\b", 0), (r"\bmW\b", 0)),
    "_m": ((r"\bmm\b", 0), (r"\bcm\b", 0), (r"\bmils?\b", re.I),
           (r"\binch(?:es)?\b", re.I)),
    "_hz": ((r"\brpm\b", re.I),),
    "_pa": ((r"\bkPa\b", 0), (r"\bMPa\b", 0), (r"\bbar\b", re.I),
            (r"\bpsi\b", re.I)),
    "_s": ((r"\bhours?\b", re.I), (r"\bminutes?\b", re.I)),
    "_h": ((r"\bseconds?\b", re.I),),
    "_kg": ((r"\bgrams?\b", re.I), (r"\blbs?\b", re.I)),
}


@lru_cache(maxsize=1)
def canonical_suffixes() -> FrozenSet[str]:
    """Canonical unit-suffix vocabulary, derived from avipack.units."""
    suffixes = set(_CORE_SUFFIXES)
    for name in dir(units_module):
        if "_to_" not in name or name.startswith("_"):
            continue
        for token in name.split("_to_"):
            suffix = _TOKEN_TO_SUFFIX.get(token)
            if suffix is not None:
                suffixes.add(suffix)
    return frozenset(suffixes)


def _suffix_of(name: str) -> Optional[str]:
    """Longest canonical suffix that ``name`` carries, if any."""
    best = None
    for suffix in canonical_suffixes():
        if name.endswith(suffix) and len(name) > len(suffix):
            if best is None or len(suffix) > len(best):
                best = suffix
    return best


def _doc_block(doc: str, name: str) -> str:
    """The docstring lines documenting parameter/attribute ``name``.

    Matches numpydoc-style blocks: a line whose stripped text is the
    name (optionally followed by ``:`` and a type) plus every following
    line indented deeper than it.
    """
    lines = doc.splitlines()
    for index, raw in enumerate(lines):
        stripped = raw.strip()
        if not (stripped == name or stripped.startswith(name + ":")
                or stripped.startswith(name + " :")):
            continue
        indent = len(raw) - len(raw.lstrip())
        block: List[str] = [raw]
        for follow in lines[index + 1:]:
            if follow.strip() and len(follow) - len(follow.lstrip()) <= indent:
                break
            block.append(follow)
        return "\n".join(block)
    return ""


def _contradiction(suffix: str, block: str) -> Optional[str]:
    """First contradictory unit token found in ``block``, if any."""
    for pattern, flags in _CONTRADICTIONS.get(suffix, ()):
        match = re.search(pattern, block, flags)
        if match is not None:
            return match.group(0)
    return None


def _named_args(node: ast.arguments) -> Iterator[ast.arg]:
    for arg in (*node.posonlyargs, *node.args, *node.kwonlyargs):
        if arg.arg not in ("self", "cls"):
            yield arg


@register
class AVI001UnitSuffix(Rule):
    """Flag spelled-out unit suffixes and docstring/unit contradictions."""

    rule_id = "AVI001"
    name = "unit-suffix-consistency"
    severity = Severity.WARNING
    version = 1

    def check(self, ctx: FileContext) -> Iterable[Finding]:
        for node in ast.walk(ctx.tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                yield from self._check_function(ctx, node)
            elif isinstance(node, ast.ClassDef):
                yield from self._check_class(ctx, node)

    # -- functions -----------------------------------------------------------

    def _check_function(self, ctx: FileContext, node) -> Iterator[Finding]:
        public = not node.name.startswith("_")
        doc = ast.get_docstring(node, clean=True) or ""
        for arg in _named_args(node.args):
            alias = self._alias_of(arg.arg)
            if public and alias is not None:
                yield self.finding(
                    ctx, arg,
                    f"parameter '{arg.arg}' spells out its unit; the "
                    f"repo convention is the '{_ALIASES[alias]}' suffix",
                    suggestion=f"rename to "
                               f"'{arg.arg[:-len(alias)]}{_ALIASES[alias]}'")
                continue
            suffix = _suffix_of(arg.arg)
            if suffix is None or not doc:
                continue
            token = _contradiction(suffix, _doc_block(doc, arg.arg))
            if token is not None:
                yield self.finding(
                    ctx, arg,
                    f"parameter '{arg.arg}' carries the '{suffix}' unit "
                    f"suffix but its docstring says '{token}'",
                    suggestion="make the name and the documented unit agree")

    # -- class attributes ----------------------------------------------------

    def _check_class(self, ctx: FileContext, node: ast.ClassDef
                     ) -> Iterator[Finding]:
        doc = ast.get_docstring(node, clean=True) or ""
        for stmt in node.body:
            if not (isinstance(stmt, ast.AnnAssign)
                    and isinstance(stmt.target, ast.Name)):
                continue
            attr = stmt.target.id
            alias = self._alias_of(attr)
            if alias is not None and not attr.startswith("_"):
                yield self.finding(
                    ctx, stmt,
                    f"attribute '{attr}' spells out its unit; the repo "
                    f"convention is the '{_ALIASES[alias]}' suffix",
                    suggestion=f"rename to "
                               f"'{attr[:-len(alias)]}{_ALIASES[alias]}'")
                continue
            suffix = _suffix_of(attr)
            if suffix is None or not doc:
                continue
            token = _contradiction(suffix, _doc_block(doc, attr))
            if token is not None:
                yield self.finding(
                    ctx, stmt,
                    f"attribute '{attr}' carries the '{suffix}' unit "
                    f"suffix but the class docstring says '{token}'",
                    suggestion="make the name and the documented unit agree")

    @staticmethod
    def _alias_of(name: str) -> Optional[str]:
        for alias in _ALIASES:
            if name.endswith(alias) and len(name) > len(alias):
                return alias
        return None
