"""AVI011 — the perf registry and its call sites must agree.

:mod:`avipack.perf` is the system's single pane of glass: benchmarks,
the sweep report and the service's ``stats`` op all read it.  Its two
registry tuples (``KERNELS``, ``COUNTERS``) declare what exists.  Two
drift modes silently corrupt that contract:

* a counter stays registered after the code that incremented it was
  refactored away — dashboards render an eternal zero and regressions
  in the metric it used to carry go unnoticed;
* code increments (or records into) a name the registry never
  declared — the value accumulates but nothing that enumerates the
  registry will surface it.

This is inherently a *project* property: registration lives in one
module, increments in any other.  The rule therefore runs at project
scope over the summaries' counter events.  Names are resolved through
literals, same-module constants and cross-module constant imports; a
*dynamic* name (``perf.record(kernel, ...)`` with a runtime value)
disables the dead-registration check for that family — the dynamic
site might be feeding any registered name — while the
unregistered-name check keeps running on the sites that did resolve.
Events inside :mod:`avipack.perf` itself are registry machinery, not
instrumentation, and are skipped.
"""

from __future__ import annotations

from typing import Iterable, List, Tuple

from ..context import FileContext
from ..findings import Finding, Severity
from ..project import PERF_MODULE, ProjectGraph, graph_of
from . import Rule, register

__all__ = ["AVI011PerfCounterHygiene"]

_REGISTER_SUGGESTION = ("add the name to the matching registry tuple in "
                        "avipack/perf.py (KERNELS for record/timed, "
                        "COUNTERS for increment)")
_REMOVE_SUGGESTION = ("drop the dead registry entry or restore the "
                      "instrumentation that fed it")


@register
class AVI011PerfCounterHygiene(Rule):
    """Flag registry/call-site drift in the perf counter registry."""

    rule_id = "AVI011"
    name = "perf-counter-hygiene"
    severity = Severity.WARNING
    scope = "project"
    version = 1

    def check(self, ctx: FileContext) -> Iterable[Finding]:
        # Standalone invocation: judge the single-file graph (useful
        # for fixtures where one file plays the perf module).
        graph, _ = graph_of(ctx)
        yield from self.check_project(graph)

    def check_project(self, graph: object) -> Iterable[Finding]:
        if not isinstance(graph, ProjectGraph):
            return
        perf = graph.modules.get(PERF_MODULE)
        if perf is None:
            return  # tree without a perf registry: nothing to check

        records: List[Tuple[str, str, int, int, str]] = []
        increments: List[Tuple[str, str, int, int, str]] = []
        dynamic_records = dynamic_increments = 0
        for summary in graph.files.values():
            if summary.module == PERF_MODULE:
                continue  # registry machinery, not instrumentation
            for event in summary.counter_events:
                name = graph.resolve_counter_name(summary, event.name)
                entry = (summary.rel_path, name, event.line,
                         event.column, summary.module)
                if event.kind == "record":
                    if name:
                        records.append(entry)
                    else:
                        dynamic_records += 1
                elif event.kind == "increment":
                    if name:
                        increments.append(entry)
                    else:
                        dynamic_increments += 1

        kernels = set(perf.kernel_registry)
        counters = set(perf.counter_registry)

        # Unregistered names at resolved call sites.
        for rel_path, name, line, column, module in records:
            if kernels and name not in kernels:
                yield Finding(
                    rule_id=self.rule_id, severity=self.severity,
                    path=rel_path, line=line, column=column,
                    message=(f"kernel {name!r} is recorded here but not "
                             f"declared in perf.KERNELS: registry "
                             f"consumers will never surface it"),
                    suggestion=_REGISTER_SUGGESTION, symbol=module)
        for rel_path, name, line, column, module in increments:
            if name not in counters:
                yield Finding(
                    rule_id=self.rule_id, severity=self.severity,
                    path=rel_path, line=line, column=column,
                    message=(f"counter {name!r} is incremented here but "
                             f"not declared in perf.COUNTERS: registry "
                             f"consumers will never surface it"),
                    suggestion=_REGISTER_SUGGESTION, symbol=module)

        # Dead registrations (skipped per family when a dynamic call
        # site could be feeding any name).
        if not dynamic_records:
            recorded = {name for _, name, _, _, _ in records}
            for name in sorted(kernels - recorded):
                yield Finding(
                    rule_id=self.rule_id, severity=self.severity,
                    path=perf.rel_path, line=perf.kernel_registry_line,
                    column=0,
                    message=(f"kernel {name!r} is declared in "
                             f"perf.KERNELS but nothing records into "
                             f"it: the metric reads as an eternal zero"),
                    suggestion=_REMOVE_SUGGESTION, symbol="KERNELS")
        if not dynamic_increments:
            bumped = {name for _, name, _, _, _ in increments}
            for name in sorted(counters - bumped):
                yield Finding(
                    rule_id=self.rule_id, severity=self.severity,
                    path=perf.rel_path, line=perf.counter_registry_line,
                    column=0,
                    message=(f"counter {name!r} is declared in "
                             f"perf.COUNTERS but nothing increments "
                             f"it: the metric reads as an eternal zero"),
                    suggestion=_REMOVE_SUGGESTION, symbol="COUNTERS")
