"""AVI002 — error-taxonomy enforcement.

Two checks, both born out of real incidents in this repo's history:

1. **Bare builtin raises** — ``raise ValueError(...)`` (or
   ``RuntimeError``/``Exception``/``KeyError``/``TypeError``) inside the
   ``avipack`` package bypasses the :mod:`avipack.errors` taxonomy, so
   callers catching :class:`~avipack.errors.AvipackError` miss it and
   sweep failure classification degrades to "unknown exception".
2. **Unpicklable custom exceptions** — an exception class whose custom
   ``__init__`` takes extra constructor arguments loses them when it
   crosses a process boundary unless it defines ``__reduce__`` (the
   default ``Exception`` reduction replays ``args`` only, which no
   longer match the signature).  This is exactly the PR 2 bug class
   fixed on ``ConvergenceError``/``OperatingLimitError``.
"""

from __future__ import annotations

import ast
from typing import Iterable, Iterator, Optional

from ..context import FileContext
from ..findings import Finding, Severity
from . import Rule, register

__all__ = ["AVI002ErrorTaxonomy"]

#: Builtin exception types that must not be raised directly in-package.
_BANNED_RAISES = frozenset(
    {"ValueError", "RuntimeError", "Exception", "KeyError", "TypeError"})

#: Taxonomy hint per banned builtin.
_REPLACEMENTS = {
    "ValueError": "avipack.errors.InputError (or ModelRangeError)",
    "TypeError": "avipack.errors.InputError",
    "KeyError": "avipack.errors.MaterialNotFoundError (or InputError)",
    "RuntimeError": "an avipack.errors.AvipackError subclass",
    "Exception": "an avipack.errors.AvipackError subclass",
}


def _raised_name(node: ast.Raise) -> Optional[str]:
    """Name of the exception type in ``raise Name``/``raise Name(...)``."""
    exc = node.exc
    if isinstance(exc, ast.Call):
        exc = exc.func
    if isinstance(exc, ast.Name):
        return exc.id
    return None


def _extra_init_args(init: ast.FunctionDef) -> int:
    """Constructor arguments beyond ``self`` (including keyword-only)."""
    args = init.args
    count = len(args.posonlyargs) + len(args.args) + len(args.kwonlyargs)
    names = [a.arg for a in (*args.posonlyargs, *args.args)]
    if names and names[0] in ("self", "cls"):
        count -= 1
    return count


def _is_exception_class(node: ast.ClassDef) -> bool:
    """Heuristic: a base name ending in Error/Exception marks the class."""
    for base in node.bases:
        name = base.attr if isinstance(base, ast.Attribute) else (
            base.id if isinstance(base, ast.Name) else "")
        if name.endswith(("Error", "Exception")):
            return True
    return False


@register
class AVI002ErrorTaxonomy(Rule):
    """Flag bare builtin raises and unpicklable custom exceptions."""

    rule_id = "AVI002"
    name = "error-taxonomy"
    severity = Severity.ERROR
    version = 1

    def check(self, ctx: FileContext) -> Iterable[Finding]:
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Raise) and ctx.in_package:
                yield from self._check_raise(ctx, node)
            elif isinstance(node, ast.ClassDef):
                yield from self._check_exception_class(ctx, node)

    def _check_raise(self, ctx: FileContext,
                     node: ast.Raise) -> Iterator[Finding]:
        name = _raised_name(node)
        if name in _BANNED_RAISES:
            yield self.finding(
                ctx, node,
                f"bare builtin 'raise {name}' bypasses the avipack.errors "
                f"taxonomy; callers catching AvipackError will miss it",
                suggestion=f"raise {_REPLACEMENTS[name]}")

    def _check_exception_class(self, ctx: FileContext,
                               node: ast.ClassDef) -> Iterator[Finding]:
        if not _is_exception_class(node):
            return
        init = None
        has_reduce = False
        for stmt in node.body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                if stmt.name == "__init__":
                    init = stmt
                elif stmt.name in ("__reduce__", "__reduce_ex__",
                                   "__getnewargs__", "__getnewargs_ex__"):
                    has_reduce = True
        if init is None or has_reduce:
            return
        if init.args.vararg is not None:
            return  # *args pass-through keeps the default reduction valid
        if _extra_init_args(init) > 1:
            yield self.finding(
                ctx, init,
                f"exception '{node.name}' has a custom __init__ with extra "
                f"arguments but no __reduce__; it will not survive "
                f"pickling across sweep worker boundaries",
                suggestion="define __reduce__ returning the constructor "
                           "arguments (see avipack.errors.ConvergenceError)")
