"""AVI010 — advisory locks pair with releases; no use after close.

The durability layer serialises journal and shard writers with
``fcntl`` advisory locks (PR 7/8).  An acquire whose release can be
skipped — an exception between ``flock(LOCK_EX)`` and the unlock, an
early return — wedges every later writer on that path *silently*:
advisory locks don't crash, they queue.  The mirror-image hazard is
temporal: touching a shard's ``mmap`` or a writer after ``close()`` /
``seal()`` reads through a mapping the kernel may already have torn
down.

Two checks per function:

**Release pairing.**  For each ``fcntl.flock``/``lockf`` acquire whose
subject is a *local* stream (parameters are owned by the caller, which
carries the obligation), the lock must provably outlive the function's
error paths.  That means one of:

* the subject *escapes* — returned, stored on an object, or handed to
  another callable (ownership transfer; ``_lock_writer``-style helpers
  that return the locked stream are the idiom here), or
* a release (``LOCK_UN`` or ``subject.close()``) sits in a ``finally``
  block, the only construct Python guarantees to run on every exit.

A release that only exists on the happy path is reported.

**Use after close.**  Along every enumerated path
(:mod:`avipack.analysis.flow`), a method call or subscript on a local
name after its ``close()``/``seal()`` — without an intervening rebind
— is reported.  Plain attribute reads stay legal (``writer.path`` after
close is fine); it is I/O-shaped access that dies.
"""

from __future__ import annotations

import ast
from typing import Iterable, List, Optional, Set, Tuple

from ..context import FileContext
from ..findings import Finding, Severity
from .. import flow
from . import Rule, register

__all__ = ["AVI010LockDiscipline"]

_FUNCTION_NODES = (ast.FunctionDef, ast.AsyncFunctionDef)

_RELEASE_SUGGESTION = ("release the lock in a finally block (or return "
                       "the locked stream to transfer ownership)")
_USE_SUGGESTION = "finish all access to the handle before closing it"

#: Callables allowed to receive the lock subject without counting as
#: an ownership transfer (they *are* the lock machinery).
_LOCK_CALLS = ("fcntl.flock", "fcntl.lockf", "flock", "lockf")

#: Methods that are *meant* to run after close: shutdown-completion
#: waits and summary accessors read bookkeeping, not the torn-down
#: handle (``server.close(); await server.wait_closed()`` is the
#: canonical asyncio sequence; ``writer.stats()`` after close reports
#: the sealed totals).
_POST_CLOSE_OK = ("wait_closed", "stats", "join")


def _call_parts(call: ast.Call) -> Tuple[str, ...]:
    parts: List[str] = []
    node: ast.expr = call.func
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
    return tuple(reversed(parts))


def _is_lock_call(call: ast.Call) -> bool:
    parts = _call_parts(call)
    return parts in (("fcntl", "flock"), ("fcntl", "lockf")) \
        or parts in (("flock",), ("lockf",))


def _mentions_unlock(node: ast.expr) -> bool:
    for child in ast.walk(node):
        if isinstance(child, ast.Attribute) and child.attr == "LOCK_UN":
            return True
        if isinstance(child, ast.Name) and child.id == "LOCK_UN":
            return True
    return False


def _subject_name(arg: ast.expr) -> Optional[str]:
    """Local name a flock subject resolves to (``s`` / ``s.fileno()``)."""
    if isinstance(arg, ast.Name):
        return arg.id
    if isinstance(arg, ast.Call) and isinstance(arg.func, ast.Attribute) \
            and arg.func.attr == "fileno" \
            and isinstance(arg.func.value, ast.Name):
        return arg.func.value.id
    return None


def _param_names(func: ast.AST) -> Set[str]:
    args = func.args
    names = {a.arg for a in args.args + args.kwonlyargs
             + args.posonlyargs}
    if args.vararg:
        names.add(args.vararg.arg)
    if args.kwarg:
        names.add(args.kwarg.arg)
    return names


def _releases(func: ast.AST, subject: str) -> List[Tuple[ast.Call, bool]]:
    """(release call, is_in_finally) pairs for ``subject``."""
    finally_spans: List[Tuple[int, int]] = []
    for node in ast.walk(func):
        if isinstance(node, ast.Try) and node.finalbody:
            first, last = node.finalbody[0], node.finalbody[-1]
            finally_spans.append(
                (first.lineno, getattr(last, "end_lineno", last.lineno)))
    out: List[Tuple[ast.Call, bool]] = []
    for node in ast.walk(func):
        if not isinstance(node, ast.Call):
            continue
        released = False
        if _is_lock_call(node) and node.args \
                and _subject_name(node.args[0]) == subject \
                and len(node.args) > 1 and _mentions_unlock(node.args[1]):
            released = True
        parts = _call_parts(node)
        if parts == (subject, "close"):
            released = True
        if released:
            in_finally = any(lo <= node.lineno <= hi
                             for lo, hi in finally_spans)
            out.append((node, in_finally))
    return out


# -- use-after-close events --------------------------------------------------

def _close_events(node: ast.AST):
    """(kind, name, node) events for the use-after-close check."""
    events = []
    for child in ast.walk(node):
        if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef,
                              ast.Lambda)):
            continue
        if isinstance(child, ast.Call):
            parts = _call_parts(child)
            if len(parts) == 2:
                name, method = parts
                if method in ("close", "seal"):
                    events.append(("close", name, child))
                elif method not in _POST_CLOSE_OK:
                    events.append(("use", name, child))
        elif isinstance(child, ast.Subscript) \
                and isinstance(child.value, ast.Name):
            events.append(("use", child.value.id, child))
        elif isinstance(child, ast.Assign):
            for target in child.targets:
                if isinstance(target, ast.Name):
                    events.append(("rebind", target.id, child))
    return events


@register
class AVI010LockDiscipline(Rule):
    """Flag skippable lock releases and use-after-close access."""

    rule_id = "AVI010"
    name = "lock-discipline"
    severity = Severity.ERROR
    version = 1

    def check(self, ctx: FileContext) -> Iterable[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, _FUNCTION_NODES):
                continue
            yield from self._check_release_pairing(ctx, node)
            yield from self._check_use_after_close(ctx, node)

    # -- release pairing -----------------------------------------------------

    def _check_release_pairing(self, ctx: FileContext,
                               func: ast.AST) -> Iterable[Finding]:
        params = _param_names(func)
        for node in ast.walk(func):
            if not (isinstance(node, ast.Call) and _is_lock_call(node)
                    and node.args):
                continue
            if len(node.args) > 1 and _mentions_unlock(node.args[1]):
                continue  # this *is* a release
            subject = _subject_name(node.args[0])
            if subject is None or subject in params:
                continue  # unresolvable or caller-owned
            if flow.name_escapes(func, subject, ignore_calls=_LOCK_CALLS):
                continue  # ownership transferred
            releases = _releases(func, subject)
            if not releases:
                yield self.finding(
                    ctx, node,
                    f"advisory lock on {subject!r} is never released in "
                    f"this function and the stream does not escape: "
                    f"every later writer queues forever",
                    suggestion=_RELEASE_SUGGESTION)
            elif not any(in_finally for _, in_finally in releases):
                yield self.finding(
                    ctx, node,
                    f"advisory lock on {subject!r} is released only on "
                    f"the happy path: an exception before the release "
                    f"leaves the lock held",
                    suggestion=_RELEASE_SUGGESTION)

    # -- use after close -----------------------------------------------------

    def _check_use_after_close(self, ctx: FileContext,
                               func: ast.AST) -> Iterable[Finding]:
        paths = flow.enumerate_paths(func.body, _close_events)
        if paths is None:
            return
        reported: Set[int] = set()
        # ``self.close()`` delegates to the object's own lifecycle —
        # only plain local/parameter handles are tracked.
        names = {event[1] for path in paths for event in path
                 if event[0] == "close" and event[1] not in ("self", "cls")}
        for name in sorted(names):
            use = flow.event_after(
                paths,
                is_marker=lambda e, n=name: e[0] == "close" and e[1] == n,
                is_use=lambda e, n=name: e[0] == "use" and e[1] == n,
                is_reset=lambda e, n=name: e[0] == "rebind" and e[1] == n)
            if use is not None and id(use[2]) not in reported:
                reported.add(id(use[2]))
                yield self.finding(
                    ctx, use[2],
                    f"{name!r} is used after close()/seal() on this "
                    f"path: the handle (or mapping) is already torn "
                    f"down", suggestion=_USE_SUGGESTION)
