"""Rule base class and registry for :mod:`avipack.analysis`.

Every rule is a small stateless object with a stable ``rule_id``, a
``version`` (bumped whenever its behaviour changes, which invalidates
cached results for every file) and a ``check`` method yielding
:class:`~avipack.analysis.findings.Finding` records for one parsed
file.  Rules self-register at import time via :func:`register`; the
engine iterates :func:`all_rules` so adding a rule is: write the module,
import it below, done.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterable, Tuple

from ...errors import InputError
from ...fingerprint import stable_fingerprint
from ..context import FileContext
from ..findings import Finding, Severity

__all__ = ["Rule", "all_rules", "get_rule", "register", "rule_range",
           "rules_signature"]


class Rule:
    """Base class for one static-analysis rule."""

    #: Stable identifier, e.g. ``"AVI001"``.
    rule_id: str = ""
    #: Short human name shown in ``--format json`` metadata.
    name: str = ""
    #: Default severity of findings this rule emits.
    severity: Severity = Severity.ERROR
    #: Bump to invalidate cached results after a behaviour change.
    version: int = 1
    #: ``"file"`` rules are pure functions of one file (plus its import
    #: closure) and cache per file; ``"project"`` rules need the whole
    #: graph at once — the engine runs them once per run, uncached,
    #: via :meth:`check_project`.
    scope: str = "file"

    def check(self, ctx: FileContext) -> Iterable[Finding]:
        """Yield findings for one file."""
        raise NotImplementedError

    def check_project(self, graph: object) -> Iterable[Finding]:
        """Yield findings for a whole project graph (project scope)."""
        raise NotImplementedError

    def finding(self, ctx: FileContext, node: ast.AST, message: str,
                suggestion: str = "") -> Finding:
        """Build a finding anchored at ``node`` in ``ctx``."""
        return Finding(
            rule_id=self.rule_id,
            severity=self.severity,
            path=ctx.rel_path,
            line=getattr(node, "lineno", 1),
            column=getattr(node, "col_offset", 0),
            message=message,
            suggestion=suggestion,
            symbol=ctx.symbol(node),
        )


_REGISTRY: Dict[str, Rule] = {}


def register(cls: type) -> type:
    """Class decorator adding one instance of ``cls`` to the registry."""
    rule = cls()
    if not rule.rule_id:
        raise InputError(f"rule {cls.__name__} has no rule_id")
    if rule.rule_id in _REGISTRY:
        raise InputError(f"duplicate rule id {rule.rule_id}")
    _REGISTRY[rule.rule_id] = rule
    return cls


def all_rules() -> Tuple[Rule, ...]:
    """Every registered rule, ordered by rule id."""
    return tuple(_REGISTRY[rule_id] for rule_id in sorted(_REGISTRY))


def get_rule(rule_id: str) -> Rule:
    """Look up one rule by id."""
    try:
        return _REGISTRY[rule_id.upper()]
    except KeyError as exc:
        raise InputError(f"unknown rule id {rule_id!r}") from exc


def rule_range() -> str:
    """Human-readable id range of the registry, e.g. ``AVI001-AVI012``.

    Derived, never hardcoded: CLI help, CI job names and docs all pull
    from here so a new rule cannot leave a stale range behind.
    """
    rules = all_rules()
    if not rules:
        return "none"
    if len(rules) == 1:
        return rules[0].rule_id
    return f"{rules[0].rule_id}-{rules[-1].rule_id}"


def rules_signature() -> str:
    """Fingerprint of the active rule set (ids + versions).

    Stored in the result cache; a version bump or a new rule changes the
    signature, which discards every cached entry at once.
    """
    return stable_fingerprint(
        [(rule.rule_id, rule.version, type(rule).__qualname__)
         for rule in all_rules()])


# Import rule modules for their registration side effect.  Keep this at
# the bottom so the base class exists when the modules load.
from . import async_blocking  # noqa: E402,F401
from . import async_tasks  # noqa: E402,F401
from . import atomic_writes  # noqa: E402,F401
from . import determinism  # noqa: E402,F401
from . import error_taxonomy  # noqa: E402,F401
from . import lock_discipline  # noqa: E402,F401
from . import perf_counters  # noqa: E402,F401
from . import persist_ordering  # noqa: E402,F401
from . import pickle_safety  # noqa: E402,F401
from . import resource_leaks  # noqa: E402,F401
from . import solver_mutation  # noqa: E402,F401
from . import unit_suffix  # noqa: E402,F401
