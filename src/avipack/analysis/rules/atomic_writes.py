"""AVI006 — persisted artefacts must be written atomically.

The durability layer (PR 5) guarantees that every on-disk artefact a
crash can interrupt — journals, baselines, caches, benchmark records —
is either the old version or the new version, never a torn half-write.
That guarantee dies wherever code opens the destination path directly
in write mode: a crash (or a concurrent reader) between ``open`` and
``close`` observes a truncated file.  This rule flags the non-atomic
idiom at the source:

* ``open(path, "w")`` where the destination is a JSON-ish literal
  (``*.json`` / ``*.jsonl``) or where the opened stream receives a
  ``json.dump`` in the enclosing ``with`` — a persisted document, not
  a scratch file;
* ``path.write_text(json.dumps(...))`` / ``write_bytes`` of an encoded
  ``json.dumps`` — the same torn-write window behind a helper.

The accepted idiom — write the full payload to a temporary file in the
*same directory*, flush, then ``os.replace`` it onto the destination —
exempts the enclosing function: any scope that calls ``os.replace``
is presumed to be implementing exactly that pattern.  Appends
(``"a"`` modes) are out of scope: the journal's record-level framing
handles torn appends by design.
"""

from __future__ import annotations

import ast
from typing import Iterable, Iterator, Optional, Tuple

from ..context import FileContext
from ..findings import Finding, Severity
from . import Rule, register

__all__ = ["AVI006AtomicPersist"]

#: Destination suffixes treated as persisted documents even when the
#: stream usage cannot be traced.
_PERSISTED_SUFFIXES = (".json", ".jsonl")

_SUGGESTION = ("write the payload to a temp file in the same directory "
               "and os.replace() it onto the destination")

_FUNCTION_NODES = (ast.FunctionDef, ast.AsyncFunctionDef)


def _literal_path(node: ast.expr) -> Optional[str]:
    """Best-effort literal destination of an ``open``/``Path`` call."""
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return node.value
    if isinstance(node, ast.JoinedStr) and node.values:
        tail = node.values[-1]
        if isinstance(tail, ast.Constant) and isinstance(tail.value, str):
            return tail.value
    if isinstance(node, ast.Call):  # Path("x.json"), os.path.join(..., "x.json")
        for arg in reversed(node.args):
            literal = _literal_path(arg)
            if literal is not None:
                return literal
    return None


def _is_persisted_path(node: ast.expr) -> bool:
    literal = _literal_path(node)
    return literal is not None and literal.endswith(_PERSISTED_SUFFIXES)


def _open_write_mode(call: ast.Call) -> bool:
    """True for ``open(..., "w"/"wb"/"w+"...)`` (not append, not read)."""
    if not (isinstance(call.func, ast.Name) and call.func.id == "open"):
        return False
    mode: Optional[ast.expr] = None
    if len(call.args) >= 2:
        mode = call.args[1]
    for keyword in call.keywords:
        if keyword.arg == "mode":
            mode = keyword.value
    if not (isinstance(mode, ast.Constant) and isinstance(mode.value, str)):
        return False
    return "w" in mode.value or "x" in mode.value


def _json_dump_into(body: Iterable[ast.stmt], stream_name: str) -> bool:
    """True when the with-body json.dump()s into ``stream_name``."""
    for statement in body:
        for node in ast.walk(statement):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if not (isinstance(func, ast.Attribute) and func.attr == "dump"
                    and isinstance(func.value, ast.Name)
                    and func.value.id == "json"):
                continue
            targets = list(node.args[1:]) + [
                keyword.value for keyword in node.keywords
                if keyword.arg == "fp"]
            if any(isinstance(target, ast.Name)
                   and target.id == stream_name for target in targets):
                return True
    return False


def _calls_json_dumps(node: ast.expr) -> bool:
    for child in ast.walk(node):
        if isinstance(child, ast.Call) \
                and isinstance(child.func, ast.Attribute) \
                and child.func.attr == "dumps" \
                and isinstance(child.func.value, ast.Name) \
                and child.func.value.id == "json":
            return True
    return False


@register
class AVI006AtomicPersist(Rule):
    """Flag non-atomic writes of persisted JSON documents."""

    rule_id = "AVI006"
    name = "atomic-persist"
    severity = Severity.ERROR
    version = 1

    def check(self, ctx: FileContext) -> Iterable[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            message = self._classify(ctx, node)
            if message is None:
                continue
            if self._scope_uses_replace(ctx, node):
                continue
            yield self.finding(ctx, node, message, suggestion=_SUGGESTION)

    # -- classification ------------------------------------------------------

    def _classify(self, ctx: FileContext,
                  call: ast.Call) -> Optional[str]:
        if _open_write_mode(call) and call.args:
            if _is_persisted_path(call.args[0]):
                return ("persisted document opened for direct write: a "
                        "crash mid-write leaves a torn file at the "
                        "destination")
            stream_name = self._with_alias(ctx, call)
            if stream_name is not None:
                with_node = self._enclosing_with(ctx, call)
                if with_node is not None and _json_dump_into(
                        with_node.body, stream_name):
                    return ("json.dump() straight onto the destination "
                            "stream: a crash mid-dump leaves a torn "
                            "document")
            return None
        if isinstance(call.func, ast.Attribute) \
                and call.func.attr in ("write_text", "write_bytes") \
                and call.args and _calls_json_dumps(call.args[0]):
            return (f"{call.func.attr}() of a json.dumps() payload "
                    "rewrites the destination in place: a crash "
                    "mid-write leaves a torn document")
        return None

    # -- structure helpers ---------------------------------------------------

    @staticmethod
    def _enclosing_with(ctx: FileContext,
                        call: ast.Call) -> Optional[ast.With]:
        for ancestor in ctx.ancestors(call):
            if isinstance(ancestor, ast.With):
                for item in ancestor.items:
                    if item.context_expr is call:
                        return ancestor
            if isinstance(ancestor, _FUNCTION_NODES):
                break
        return None

    def _with_alias(self, ctx: FileContext,
                    call: ast.Call) -> Optional[str]:
        with_node = self._enclosing_with(ctx, call)
        if with_node is None:
            return None
        for item in with_node.items:
            if item.context_expr is call \
                    and isinstance(item.optional_vars, ast.Name):
                return item.optional_vars.id
        return None

    @staticmethod
    def _scope_uses_replace(ctx: FileContext, call: ast.Call) -> bool:
        """True when the enclosing function (or module, for module-level
        code) also calls ``os.replace`` — the atomic-publish idiom."""
        scope: ast.AST = ctx.tree
        for ancestor in ctx.ancestors(call):
            if isinstance(ancestor, _FUNCTION_NODES):
                scope = ancestor
                break
        for node in ast.walk(scope):
            if isinstance(node, ast.Call) \
                    and isinstance(node.func, ast.Attribute) \
                    and node.func.attr == "replace" \
                    and isinstance(node.func.value, ast.Name) \
                    and node.func.value.id == "os":
                return True
        return False
