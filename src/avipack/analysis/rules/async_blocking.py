"""AVI008 — no blocking calls reachable from ``async def``.

The job service (PR 7) runs every heartbeat, deadline check and client
conversation on one asyncio event loop; the sweeps themselves run in a
thread pool.  One synchronous ``time.sleep``, ``fcntl`` lock, file
write or subprocess wait executed *on the loop* stalls every job's
supervision at once — the textbook integration failure the service
tests cannot reliably catch because it only shows up under load.

A syntactic check would stop at the async function's own body.  This
rule resolves calls through the project call graph
(:mod:`avipack.analysis.project`): an ``async def`` that calls a sync
helper which calls ``JobStore.save`` which calls ``os.fsync`` is
flagged at the original call site, with the full witness chain in the
message.  The resolution is conservative, which keeps the exemptions
structural rather than annotated:

* handing a callable to an executor (``loop.run_in_executor(None,
  fn)``, ``asyncio.to_thread(fn)``) passes ``fn`` as an argument — it
  is never a *call site*, so nothing is reported;
* awaiting another coroutine only creates/schedules it — calls whose
  target is itself ``async`` are skipped (the target's own body is
  judged separately);
* unresolvable calls are ignored, never guessed.
"""

from __future__ import annotations

from typing import Iterable

from ..context import FileContext
from ..findings import Finding, Severity
from ..project import ProjectGraph, graph_of
from . import Rule, register

__all__ = ["AVI008BlockingInAsync"]

_SUGGESTION = ("run the blocking work in an executor "
               "(loop.run_in_executor / asyncio.to_thread)")


@register
class AVI008BlockingInAsync(Rule):
    """Flag blocking operations reachable from async functions."""

    rule_id = "AVI008"
    name = "async-blocking-call"
    severity = Severity.ERROR
    version = 1

    def check(self, ctx: FileContext) -> Iterable[Finding]:
        graph, summary = graph_of(ctx)
        if not isinstance(graph, ProjectGraph) or not summary.module:
            return
        for qualname, fn in sorted(summary.functions.items()):
            if not fn.is_async:
                continue
            for op in fn.blocking:
                yield Finding(
                    rule_id=self.rule_id, severity=self.severity,
                    path=ctx.rel_path, line=op.line, column=op.column,
                    message=(f"blocking operation on the event loop: "
                             f"{op.description}"),
                    suggestion=_SUGGESTION, symbol=qualname)
            for call in fn.calls:
                target = graph.resolve_method(call.ref)
                if target is None:
                    continue
                callee = graph.function(target)
                if callee is None or callee.is_async:
                    continue
                chain = graph.blocking_chain(target)
                if chain is None:
                    continue
                witness = " -> ".join(chain[:-1])
                yield Finding(
                    rule_id=self.rule_id, severity=self.severity,
                    path=ctx.rel_path, line=call.line, column=call.column,
                    message=(f"call to blocking sync code from an async "
                             f"function: {call.display}() reaches "
                             f"[{chain[-1]}] via {witness}"),
                    suggestion=_SUGGESTION, symbol=qualname)
