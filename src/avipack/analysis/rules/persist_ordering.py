"""AVI009 — atomic publication must be durable *in order* on every path.

AVI006 catches code that skips the tmp+``os.replace`` idiom entirely.
This rule checks the idiom itself: once a function both writes data and
calls ``os.replace``, the write must be flushed and fsynced *before*
the rename on **every** control-flow path, or a crash immediately
after the rename can publish a name that points at data the kernel
never made durable — the torn-state class the durability layer (PR 5)
exists to exclude.

Concretely, per function containing both a buffered write (``.write``
/ ``.writelines`` / ``json.dump`` / ``pickle.dump``) and an
``os.replace``:

* every path reaching ``os.replace`` must see an ``os.fsync`` first;
* every path reaching ``os.fsync`` must see a ``flush()`` first
  (``os.fsync`` pushes kernel buffers, not Python's userspace buffer).

Paths are enumerated by :mod:`avipack.analysis.flow` (branches both
ways, loops 0/1 times, exception edges through handlers); functions
whose control flow exceeds the path budget are skipped rather than
guessed at.  Rename-only uses of ``os.replace`` (quarantine moves,
rotations) contain no write event and are out of scope.  ``os.write``
on a raw fd is unbuffered and intentionally not a write event.
"""

from __future__ import annotations

import ast
from typing import Iterable, List, Optional, Tuple

from ..context import FileContext
from ..findings import Finding, Severity
from .. import flow
from . import Rule, register

__all__ = ["AVI009PersistOrdering"]

_SUGGESTION = ("order the publish as write -> flush() -> os.fsync() -> "
               "os.replace() on every path")

_FUNCTION_NODES = (ast.FunctionDef, ast.AsyncFunctionDef)

#: Event kinds, in the order the publish protocol requires them.
_WRITE, _FLUSH, _FSYNC, _REPLACE = "write", "flush", "fsync", "replace"


def _call_parts(call: ast.Call) -> Tuple[str, ...]:
    parts: List[str] = []
    node: ast.expr = call.func
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
    return tuple(reversed(parts))


def _classify(call: ast.Call) -> Optional[str]:
    parts = _call_parts(call)
    if not parts:
        return None
    head, tail = parts[0], parts[-1]
    # Generous write/flush matching (any receiver depth): missing a
    # flush event would make the fsync check fire falsely.  ``os.write``
    # is raw-fd and unbuffered, hence excluded.
    if tail in ("write", "writelines") and len(parts) > 1 and head != "os":
        return _WRITE
    if tail == "dump" and len(parts) == 2 \
            and head in ("json", "pickle", "marshal"):
        return _WRITE
    if tail == "flush" and len(parts) > 1:
        return _FLUSH
    if parts == ("os", "fsync"):
        return _FSYNC
    if parts == ("os", "replace"):
        return _REPLACE
    return None


def _events_of(node: ast.AST):
    """Publish-protocol events in one atomic statement/expression."""
    events = []
    for child in ast.walk(node):
        if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef,
                              ast.Lambda)):
            continue
        if isinstance(child, ast.Call):
            kind = _classify(child)
            if kind is not None:
                events.append((kind, child))
    return events


def _is_kind(kind: str):
    return lambda event: event[0] == kind


@register
class AVI009PersistOrdering(Rule):
    """Flag publish sequences whose durability ordering can be skipped."""

    rule_id = "AVI009"
    name = "persist-ordering"
    severity = Severity.ERROR
    version = 1

    def check(self, ctx: FileContext) -> Iterable[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, _FUNCTION_NODES):
                continue
            yield from self._check_function(ctx, node)

    def _check_function(self, ctx: FileContext,
                        func: ast.AST) -> Iterable[Finding]:
        kinds = {kind for kind, _ in _events_of(func)}
        if _REPLACE not in kinds or _WRITE not in kinds:
            return
        paths = flow.enumerate_paths(func.body, _events_of)
        if paths is None:  # over budget: unknown, stay silent
            return
        violation = flow.must_precede(paths, _is_kind(_FSYNC),
                                      _is_kind(_REPLACE))
        if violation is not None:
            yield self.finding(
                ctx, violation[1],
                "os.replace() publishes data no os.fsync() made durable "
                "on this path: a crash after the rename can expose a "
                "torn or empty file", suggestion=_SUGGESTION)
        violation = flow.must_precede(paths, _is_kind(_FLUSH),
                                      _is_kind(_FSYNC))
        if violation is not None:
            yield self.finding(
                ctx, violation[1],
                "os.fsync() without a preceding flush(): Python's "
                "userspace buffer is not yet in the kernel, so the "
                "fsync durability guarantee does not cover it",
                suggestion=_SUGGESTION)
