"""AVI003 — worker-boundary pickle safety.

Anything handed to a process pool must survive ``pickle``.  Lambdas,
functions/classes defined inside another function (their qualname
contains ``<locals>``, which pickle cannot import on the worker side)
all fail — but only at runtime, typically twenty minutes into a sweep.

This rule flags those payloads *at the submission site*:

* ``SweepRunner(..., evaluator=<lambda/local def>)``
* ``runner.run(...)`` where ``runner`` was built from ``SweepRunner(...)``
* ``pool.submit/apply_async/map_async/imap/imap_unordered(...)``
* ``pool.map(...)``/``executor.map(...)`` when the receiver name looks
  like a pool (contains ``pool``, ``executor`` or ``runner``)

Note the parallel path *does* fall back to serial on a pickling error
(PR 2), so these payloads "work" — by silently discarding the
parallelism the sweep engine exists to provide.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterable, Iterator, Optional, Set, Tuple

from ..context import FileContext
from ..findings import Finding, Severity
from . import Rule, register

__all__ = ["AVI003PickleSafety"]

#: Attribute names that always denote a pool submission.
_SUBMIT_ATTRS = frozenset(
    {"submit", "apply_async", "map_async", "imap", "imap_unordered"})

#: Attribute names that denote submission only on pool-like receivers.
_POOLISH_ATTRS = frozenset({"map", "starmap"})
_POOLISH_NAMES = ("pool", "executor", "runner")


def _receiver_name(func: ast.Attribute) -> Optional[str]:
    value = func.value
    if isinstance(value, ast.Name):
        return value.id
    if isinstance(value, ast.Attribute):  # self.pool.submit(...)
        return value.attr
    return None


class _ScopeIndex:
    """Names bound to defs/classes nested inside functions, per scope."""

    def __init__(self, ctx: FileContext) -> None:
        self.ctx = ctx
        # id(function node) -> names of local defs/classes/lambdas bound
        # anywhere inside that function.
        self.local_defs: Dict[int, Set[str]] = {}
        self.runner_names: Set[str] = set()
        for node in ast.walk(ctx.tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                                 ast.ClassDef)):
                owner = self._enclosing_function(node)
                if owner is not None:
                    self.local_defs.setdefault(id(owner), set()).add(node.name)
            elif isinstance(node, ast.Assign):
                self._track_runner(node)
            elif (isinstance(node, ast.AnnAssign)
                  and node.value is not None
                  and isinstance(node.target, ast.Name)):
                if _is_sweeprunner_call(node.value):
                    self.runner_names.add(node.target.id)

    def _track_runner(self, node: ast.Assign) -> None:
        if not _is_sweeprunner_call(node.value):
            return
        for target in node.targets:
            if isinstance(target, ast.Name):
                self.runner_names.add(target.id)
            elif isinstance(target, ast.Attribute):
                self.runner_names.add(target.attr)

    def _enclosing_function(self, node: ast.AST) -> Optional[ast.AST]:
        for ancestor in self.ctx.ancestors(node):
            if isinstance(ancestor, (ast.FunctionDef, ast.AsyncFunctionDef)):
                return ancestor
        return None

    def locally_defined(self, call: ast.Call, name: str) -> bool:
        """Is ``name`` (used at ``call``) bound to a local def/class?"""
        for ancestor in self.ctx.ancestors(call):
            if isinstance(ancestor, (ast.FunctionDef, ast.AsyncFunctionDef)):
                if name in self.local_defs.get(id(ancestor), ()):
                    return True
        return False


def _is_sweeprunner_call(node: Optional[ast.AST]) -> bool:
    if not isinstance(node, ast.Call):
        return False
    func = node.func
    name = func.attr if isinstance(func, ast.Attribute) else (
        func.id if isinstance(func, ast.Name) else "")
    return name == "SweepRunner"


@register
class AVI003PickleSafety(Rule):
    """Flag unpicklable payloads at process-pool submission sites."""

    rule_id = "AVI003"
    name = "worker-pickle-safety"
    severity = Severity.ERROR
    version = 1

    def check(self, ctx: FileContext) -> Iterable[Finding]:
        index = _ScopeIndex(ctx)
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            site = self._submission_site(node, index)
            if site is None:
                continue
            for arg in self._payload_args(node):
                yield from self._check_payload(ctx, index, node, arg, site)

    # -- site detection ------------------------------------------------------

    def _submission_site(self, call: ast.Call,
                         index: _ScopeIndex) -> Optional[str]:
        func = call.func
        if _is_sweeprunner_call(call):
            return "SweepRunner(...)"
        if not isinstance(func, ast.Attribute):
            return None
        receiver = _receiver_name(func) or ""
        if func.attr in _SUBMIT_ATTRS:
            return f"{receiver or '<pool>'}.{func.attr}(...)"
        if (func.attr in _POOLISH_ATTRS
                and any(tag in receiver.lower() for tag in _POOLISH_NAMES)):
            return f"{receiver}.{func.attr}(...)"
        if func.attr == "run" and receiver in index.runner_names:
            return f"{receiver}.run(...)"
        return None

    @staticmethod
    def _payload_args(call: ast.Call) -> Iterator[ast.expr]:
        yield from call.args
        for keyword in call.keywords:
            if keyword.arg is not None:
                yield keyword.value

    # -- payload classification ----------------------------------------------

    def _check_payload(self, ctx: FileContext, index: _ScopeIndex,
                       call: ast.Call, arg: ast.expr,
                       site: str) -> Iterator[Finding]:
        if isinstance(arg, ast.Lambda):
            yield self.finding(
                ctx, arg,
                f"lambda passed to worker-boundary site {site}; lambdas "
                f"cannot be pickled into pool workers",
                suggestion="use a module-level function")
            return
        if isinstance(arg, ast.Name) and index.locally_defined(call, arg.id):
            yield self.finding(
                ctx, arg,
                f"locally-defined '{arg.id}' passed to worker-boundary "
                f"site {site}; nested defs/classes cannot be pickled "
                f"into pool workers",
                suggestion="move the definition to module level")
