"""AVI004 — determinism in solver/sweep/resilience code.

The fault-injection and chaos suites (PR 2) assert *bitwise identical*
behaviour between serial and parallel runs of the same seeds, and the
solver cache keys on structural fingerprints.  Both guarantees die the
moment solver, sweep or resilience code consumes an unseeded source of
entropy.  Inside ``avipack.thermal``, ``avipack.sweep`` and
``avipack.resilience`` this rule flags:

* calls on the process-global ``random`` module state
  (``random.random()``, ``random.choice(...)``, ...) — ``random.Random(seed)``
  with an explicit seed is the accepted idiom;
* legacy global-state numpy entropy (``np.random.rand`` etc.) and
  ``np.random.default_rng()`` *without* a seed argument;
* wall-clock reads via ``time.time()`` — interval measurement belongs to
  ``time.perf_counter()``/``time.monotonic()`` (which never feed logic),
  and anything keyed on absolute time is unreproducible by definition.
"""

from __future__ import annotations

import ast
from typing import Iterable, Iterator, Optional, Tuple

from ..context import FileContext
from ..findings import Finding, Severity
from . import Rule, register

__all__ = ["AVI004Determinism"]

#: avipack sub-packages the rule applies to.
_SCOPED_SUBPACKAGES = ("thermal", "sweep", "resilience", "durability")

#: Legacy numpy global-state entropy functions.
_NP_LEGACY = frozenset(
    {"rand", "randn", "randint", "random", "random_sample", "ranf",
     "sample", "choice", "shuffle", "permutation", "normal", "uniform",
     "exponential", "poisson", "beta", "gamma", "standard_normal",
     "seed", "bytes"})


def _dotted(node: ast.expr) -> Tuple[str, ...]:
    """Flatten ``a.b.c`` into ``("a", "b", "c")`` (empty if not a path)."""
    parts = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return tuple(reversed(parts))
    return ()


def _has_seed_argument(call: ast.Call) -> bool:
    if call.args and not (len(call.args) == 1
                          and isinstance(call.args[0], ast.Constant)
                          and call.args[0].value is None):
        return True
    return any(kw.arg in ("seed", "x") for kw in call.keywords)


@register
class AVI004Determinism(Rule):
    """Flag unseeded entropy and wall-clock reads in deterministic code."""

    rule_id = "AVI004"
    name = "determinism"
    severity = Severity.ERROR
    version = 2

    def check(self, ctx: FileContext) -> Iterable[Finding]:
        if not ctx.in_subpackage(*_SCOPED_SUBPACKAGES):
            return
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Call):
                yield from self._check_call(ctx, node)

    def _check_call(self, ctx: FileContext,
                    call: ast.Call) -> Iterator[Finding]:
        path = _dotted(call.func)
        message = self._classify(path, call)
        if message is not None:
            reason, suggestion = message
            yield self.finding(ctx, call, reason, suggestion=suggestion)

    def _classify(self, path: Tuple[str, ...],
                  call: ast.Call) -> Optional[Tuple[str, str]]:
        if path == ("time", "time"):
            return ("time.time() in deterministic solver/sweep code: "
                    "absolute wall-clock state is unreproducible",
                    "use time.perf_counter()/time.monotonic() for "
                    "intervals, or pass timestamps in explicitly")
        if len(path) == 2 and path[0] == "random":
            if path[1] == "Random":
                if _has_seed_argument(call):
                    return None
                return ("random.Random() without an explicit seed in "
                        "deterministic solver/sweep code",
                        "pass a seed: random.Random(seed)")
            if path[1] in ("SystemRandom", "getstate", "setstate"):
                return None
            return (f"process-global random.{path[1]}() in deterministic "
                    f"solver/sweep code breaks seed reproducibility",
                    "use a seeded random.Random(seed) instance")
        if path[-2:] == ("random", "default_rng") and len(path) >= 3:
            if _has_seed_argument(call):
                return None
            return ("np.random.default_rng() without an explicit seed in "
                    "deterministic solver/sweep code",
                    "pass a seed: np.random.default_rng(seed)")
        if (len(path) >= 3 and path[-2] == "random"
                and path[-1] in _NP_LEGACY):
            return (f"legacy global-state np.random.{path[-1]}() in "
                    f"deterministic solver/sweep code",
                    "use a seeded np.random.default_rng(seed) Generator")
        return None
