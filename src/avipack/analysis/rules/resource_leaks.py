"""AVI012 — acquired handles must survive their error paths.

The result store memory-maps shards and keeps blob-pool file handles
open for lazy reads (PR 8); the service opens per-job stores on every
``results`` op.  A handle acquired into a local and closed only on the
straight-line path leaks on the *error* path — and a long-lived server
process turns that trickle into fd exhaustion, which then fails
unrelated accepts and shard publishes far from the leak site.

For every ``handle = open(...)`` / ``os.fdopen`` / ``mmap.mmap`` /
``numpy.memmap`` assigned to a local name, one of the following must
hold:

* the acquisition happens in a ``with`` header (not an ``Assign``, so
  it never reaches this check);
* ownership *escapes* — the handle is returned/yielded, stored on an
  object or in a container, rebound, or passed bare into another
  callable (constructors and helpers take over the obligation; the
  rule never guesses across that boundary);
* a ``handle.close()`` sits in a ``finally`` or an ``except`` body —
  the two places an error path can reach;
* or the close is the *immediately next* statement, leaving no room
  for an exception between acquire and release.

Anything else is reported: either the handle is never closed at all,
or every close can be skipped by an exception in between.
"""

from __future__ import annotations

import ast
from typing import Iterable, List, Optional, Tuple

from ..context import FileContext
from ..findings import Finding, Severity
from ..flow import name_escapes
from . import Rule, register

__all__ = ["AVI012ResourceLeaks"]

_FUNCTION_NODES = (ast.FunctionDef, ast.AsyncFunctionDef)

_SUGGESTION = ("use a with-statement, or close the handle in a "
               "finally/except block")


def _call_parts(call: ast.Call) -> Tuple[str, ...]:
    parts: List[str] = []
    node: ast.expr = call.func
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
    return tuple(reversed(parts))


def _acquires_handle(call: ast.Call) -> Optional[str]:
    """Short description when ``call`` acquires an OS-level handle."""
    parts = _call_parts(call)
    if parts == ("open",):
        return "file handle from open()"
    if parts == ("os", "fdopen"):
        return "file handle from os.fdopen()"
    if parts == ("mmap", "mmap"):
        return "memory mapping from mmap.mmap()"
    if len(parts) == 2 and parts[1] == "memmap":
        return f"memory mapping from {parts[0]}.memmap()"
    return None


def _passed_to_call(func: ast.AST, name: str) -> bool:
    """Is ``name`` handed bare into any callable (ownership transfer)?"""
    for node in ast.walk(func):
        if not isinstance(node, ast.Call):
            continue
        for arg in list(node.args) + [kw.value for kw in node.keywords]:
            if isinstance(arg, ast.Name) and arg.id == name:
                return True
    return False


@register
class AVI012ResourceLeaks(Rule):
    """Flag handles that leak on error paths."""

    rule_id = "AVI012"
    name = "resource-leak"
    severity = Severity.ERROR
    version = 1

    def check(self, ctx: FileContext) -> Iterable[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, _FUNCTION_NODES):
                continue
            yield from self._check_function(ctx, node)

    def _check_function(self, ctx: FileContext,
                        func: ast.AST) -> Iterable[Finding]:
        for stmt in ast.walk(func):
            if not (isinstance(stmt, ast.Assign) and len(stmt.targets) == 1
                    and isinstance(stmt.targets[0], ast.Name)
                    and isinstance(stmt.value, ast.Call)):
                continue
            what = _acquires_handle(stmt.value)
            if what is None:
                continue
            name = stmt.targets[0].id
            if name_escapes(func, name) or _passed_to_call(func, name):
                continue
            closes = self._closes(ctx, func, name)
            if not closes:
                yield self.finding(
                    ctx, stmt.value,
                    f"{what} assigned to {name!r} is never closed in "
                    f"this function and never escapes it",
                    suggestion=_SUGGESTION)
            elif not any(protected for _, protected in closes) \
                    and not self._closes_immediately(ctx, stmt, name):
                yield self.finding(
                    ctx, stmt.value,
                    f"{what} assigned to {name!r} is closed only on the "
                    f"straight-line path: an exception in between "
                    f"leaks the handle",
                    suggestion=_SUGGESTION)

    def _closes(self, ctx: FileContext, func: ast.AST,
                name: str) -> List[Tuple[ast.Call, bool]]:
        """(close call, is_on_an_error_path) pairs for ``name``."""
        out: List[Tuple[ast.Call, bool]] = []
        for node in ast.walk(func):
            if not (isinstance(node, ast.Call)
                    and _call_parts(node) == (name, "close")):
                continue
            protected = False
            child: ast.AST = node
            for ancestor in ctx.ancestors(node):
                if isinstance(ancestor, _FUNCTION_NODES):
                    break
                if isinstance(ancestor, ast.ExceptHandler):
                    protected = True
                    break
                if isinstance(ancestor, ast.Try) \
                        and self._within(ancestor.finalbody, child):
                    protected = True
                    break
                child = ancestor
            out.append((node, protected))
        return out

    @staticmethod
    def _within(body: List[ast.stmt], node: ast.AST) -> bool:
        return any(stmt is node for stmt in body)

    @staticmethod
    def _closes_immediately(ctx: FileContext, acquire: ast.Assign,
                            name: str) -> bool:
        """Is ``name.close()`` the statement right after the acquire?"""
        parent = ctx.parent(acquire)
        body = getattr(parent, "body", None)
        for field_name in ("body", "orelse", "finalbody"):
            body = getattr(parent, field_name, None) or []
            for index, stmt in enumerate(body):
                if stmt is acquire and index + 1 < len(body):
                    nxt = body[index + 1]
                    if isinstance(nxt, ast.Expr) \
                            and isinstance(nxt.value, ast.Call) \
                            and _call_parts(nxt.value) == (name, "close"):
                        return True
        return False
