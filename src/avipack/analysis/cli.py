"""Command-line entry point: ``python -m avipack.analysis``.

Examples::

    python -m avipack.analysis src
    python -m avipack.analysis --format json src/avipack/sweep
    python -m avipack.analysis --baseline analysis-baseline.json src
    python -m avipack.analysis --write-baseline src   # grandfather all

Exit codes: 0 clean, 1 active findings or parse errors, 2 bad usage.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from typing import Optional, Sequence

from ..errors import AvipackError
from .baseline import Baseline
from .cache import AnalysisCache
from .engine import AnalysisEngine
from .rules import all_rules, rule_range, rules_signature
from .sarif import to_sarif

__all__ = ["main"]

#: Baseline picked up automatically when present in the working directory.
DEFAULT_BASELINE = "analysis-baseline.json"

#: Default on-disk result cache (gitignored).
DEFAULT_CACHE = ".avilint-cache.json"


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m avipack.analysis",
        description=("avipack domain-aware static analysis "
                     f"({rule_range()})"))
    parser.add_argument("paths", nargs="*", default=["src"],
                        help="files/directories to analyze (default: src)")
    parser.add_argument("--format", choices=("text", "json", "sarif"),
                        default="text", help="output format")
    parser.add_argument("--jobs", type=int, default=1, metavar="N",
                        help="worker processes for summarize/check "
                             "phases (0 = one per CPU; default: 1)")
    parser.add_argument("--baseline", metavar="PATH", default=None,
                        help=f"baseline file of grandfathered findings "
                             f"(default: {DEFAULT_BASELINE} if it exists)")
    parser.add_argument("--no-baseline", action="store_true",
                        help="ignore any baseline file")
    parser.add_argument("--write-baseline", action="store_true",
                        help="write current findings to the baseline "
                             "file and exit 0")
    parser.add_argument("--cache", metavar="PATH", default=DEFAULT_CACHE,
                        help=f"result cache file (default: {DEFAULT_CACHE})")
    parser.add_argument("--no-cache", action="store_true",
                        help="disable the result cache")
    parser.add_argument("--list-rules", action="store_true",
                        help="list registered rules and exit")
    return parser


def _resolve_baseline(args: argparse.Namespace) -> Optional[Baseline]:
    if args.no_baseline or args.write_baseline:
        return None
    if args.baseline is not None:
        return Baseline.load(args.baseline)
    if os.path.exists(DEFAULT_BASELINE):
        return Baseline.load(DEFAULT_BASELINE)
    return None


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = _build_parser()
    args = parser.parse_args(argv)

    if args.list_rules:
        for rule in all_rules():
            print(f"{rule.rule_id}  {rule.name}  "
                  f"[{rule.severity.value}, v{rule.version}]")
        return 0

    cache: Optional[AnalysisCache] = None
    if not args.no_cache:
        cache = AnalysisCache.load(args.cache, rules_signature())

    try:
        baseline = _resolve_baseline(args)
        engine = AnalysisEngine(cache=cache, baseline=baseline,
                                jobs=args.jobs)
        result = engine.analyze_paths(args.paths)
    except AvipackError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    if cache is not None:
        try:
            cache.save(args.cache)
        except OSError as exc:  # a read-only checkout must not fail the run
            print(f"warning: could not write cache {args.cache}: {exc}",
                  file=sys.stderr)

    if args.write_baseline:
        target = args.baseline or DEFAULT_BASELINE
        Baseline(tuple(result.findings)).save(target)
        print(f"wrote {len(result.findings)} finding(s) to {target}")
        return 0

    if args.format == "json":
        print(json.dumps(result.to_payload(), indent=1, sort_keys=True))
    elif args.format == "sarif":
        print(json.dumps(to_sarif(result, engine.rules), indent=1,
                         sort_keys=True))
    else:
        print(result.render_text())
    return 0 if result.clean else 1


def _entry() -> None:  # pragma: no cover - thin shim for __main__
    raise SystemExit(main())

