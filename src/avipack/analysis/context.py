"""Per-file analysis context shared by every rule.

Parsing a file once (source, line table, AST, parent links, enclosing-
symbol map) and handing the result to all rules keeps the engine
O(files), not O(files x rules), and gives rules a uniform way to locate
nodes, resolve enclosing scopes and emit findings.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, Iterator, Optional, Tuple

from ..errors import InputError

__all__ = ["FileContext"]

_SCOPE_NODES = (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)


@dataclass
class FileContext:
    """Everything a rule needs to know about one source file."""

    rel_path: str
    source: str
    tree: ast.Module
    lines: Tuple[str, ...] = ()
    package_parts: Tuple[str, ...] = ()
    _parents: Dict[int, ast.AST] = field(default_factory=dict, repr=False)
    _symbols: Dict[int, str] = field(default_factory=dict, repr=False)
    #: Attached by the engine when running project-wide: the
    #: :class:`~avipack.analysis.project.ProjectGraph` and this file's
    #: :class:`~avipack.analysis.project.ModuleSummary`.  ``None`` when
    #: a rule is driven standalone (rules fall back to a single-file
    #: graph via :func:`~avipack.analysis.project.graph_of`).
    project: Optional[object] = field(default=None, repr=False)
    summary: Optional[object] = field(default=None, repr=False)

    @classmethod
    def parse(cls, rel_path: str, source: str) -> "FileContext":
        """Build a context from raw source (raises InputError on syntax)."""
        try:
            tree = ast.parse(source, filename=rel_path)
        except SyntaxError as exc:
            raise InputError(
                f"cannot parse {rel_path}: {exc.msg} (line {exc.lineno})"
            ) from exc
        ctx = cls(rel_path=rel_path, source=source, tree=tree,
                  lines=tuple(source.splitlines()),
                  package_parts=_package_parts(rel_path))
        ctx._link()
        return ctx

    # -- structure -----------------------------------------------------------

    def _link(self) -> None:
        """Record parent pointers and enclosing symbol qualnames."""
        def visit(node: ast.AST, symbol: str) -> None:
            for child in ast.iter_child_nodes(node):
                self._parents[id(child)] = node
                child_symbol = symbol
                if isinstance(child, _SCOPE_NODES):
                    child_symbol = (f"{symbol}.{child.name}" if symbol
                                    else child.name)
                self._symbols[id(child)] = child_symbol
                visit(child, child_symbol)

        self._symbols[id(self.tree)] = ""
        visit(self.tree, "")

    def parent(self, node: ast.AST) -> Optional[ast.AST]:
        """Syntactic parent of ``node`` (None for the module)."""
        return self._parents.get(id(node))

    def ancestors(self, node: ast.AST) -> Iterator[ast.AST]:
        """Walk from ``node``'s parent up to the module root."""
        current = self.parent(node)
        while current is not None:
            yield current
            current = self.parent(current)

    def symbol(self, node: ast.AST) -> str:
        """Dotted name of the scope containing ``node`` ('' at module)."""
        return self._symbols.get(id(node), "")

    # -- classification ------------------------------------------------------

    @property
    def in_package(self) -> bool:
        """True when the file belongs to the ``avipack`` package."""
        return self.package_parts[:1] == ("avipack",)

    def in_subpackage(self, *names: str) -> bool:
        """True when the file sits under ``avipack.<one of names>``."""
        return (self.in_package and len(self.package_parts) > 1
                and self.package_parts[1] in names)


def _package_parts(rel_path: str) -> Tuple[str, ...]:
    """Dotted-module parts of ``rel_path`` rooted at ``avipack``.

    ``src/avipack/sweep/runner.py`` -> ``("avipack", "sweep", "runner")``;
    files outside the package return an empty tuple.
    """
    parts = rel_path.replace("\\", "/").split("/")
    if "avipack" not in parts:
        return ()
    parts = parts[parts.index("avipack"):]
    if parts[-1].endswith(".py"):
        parts[-1] = parts[-1][:-3]
    if parts[-1] == "__init__":
        parts = parts[:-1]
    return tuple(parts)
