"""Intra-function ordering and dataflow primitives.

The flow-sensitive rules (AVI009/AVI010/AVI012) need answers to
questions a plain AST walk cannot give: *does the fsync happen before
the replace on every path?*, *is the lock released even when the body
raises?*, *is the handle used after it was closed?*  This module
answers them with **bounded path enumeration**: a function body is
lowered into the set of event sequences its control flow can produce,
and the ordering predicates are evaluated per path.

Control flow is modelled conservatively:

* ``if`` explores both branches;
* loops run zero and exactly one iteration (event *ordering* inside a
  loop body is iteration-invariant for the patterns we check);
* ``try`` produces the normal path plus one path per handler —
  handlers are entered with an *empty* body prefix (the exception may
  fire before any body statement completed), which under-approximates
  occurrences but never invents an ordering that cannot happen;
* ``finally`` is appended to every path through the statement;
* ``return`` / ``raise`` / ``break`` / ``continue`` terminate a path.

Enumeration is capped (default 512 paths).  On overflow the caller
receives ``None`` and is expected to stay silent — a missed finding is
acceptable, a false positive in the CI gate is not.

Events are caller-defined opaque objects produced by an ``events_of``
extractor invoked on every simple statement and on the header
expressions of compound statements (``if`` tests, ``with`` items,
loop iterables).  The predicates below then classify them.
"""

from __future__ import annotations

import ast
from typing import Any, Callable, Iterable, List, Optional, Sequence, Tuple

__all__ = [
    "enumerate_paths",
    "event_after",
    "must_precede",
    "name_escapes",
]

#: Default cap on enumerated paths; beyond it analysis goes silent.
MAX_PATHS = 512

Path = Tuple[Any, ...]
_EventsOf = Callable[[ast.AST], Iterable[Any]]


class _Overflow(Exception):
    """Raised internally when the path product exceeds the cap."""


def _cross(prefixes: List[Tuple[Path, bool]],
           suffixes: List[Tuple[Path, bool]],
           cap: int) -> List[Tuple[Path, bool]]:
    """Sequence ``suffixes`` after every *live* prefix."""
    out: List[Tuple[Path, bool]] = []
    for prefix, dead in prefixes:
        if dead:
            out.append((prefix, True))
            continue
        for suffix, sdead in suffixes:
            out.append((prefix + suffix, sdead))
            if len(out) > cap:
                raise _Overflow
    return out


def _paths_of_block(stmts: Sequence[ast.stmt], events_of: _EventsOf,
                    cap: int) -> List[Tuple[Path, bool]]:
    paths: List[Tuple[Path, bool]] = [((), False)]
    for stmt in stmts:
        paths = _cross(paths, _paths_of_stmt(stmt, events_of, cap), cap)
    return paths


def _header_events(nodes: Iterable[Optional[ast.AST]],
                   events_of: _EventsOf) -> Path:
    events: List[Any] = []
    for node in nodes:
        if node is not None:
            events.extend(events_of(node))
    return tuple(events)


def _paths_of_stmt(stmt: ast.stmt, events_of: _EventsOf,
                   cap: int) -> List[Tuple[Path, bool]]:
    if isinstance(stmt, ast.If):
        head = _header_events([stmt.test], events_of)
        branches = []
        for body in (stmt.body, stmt.orelse):
            for path, dead in _paths_of_block(body, events_of, cap):
                branches.append((head + path, dead))
        return branches
    if isinstance(stmt, (ast.For, ast.AsyncFor)):
        head = _header_events([stmt.iter], events_of)
        once = _paths_of_block(list(stmt.body) + list(stmt.orelse),
                               events_of, cap)
        skip = _paths_of_block(stmt.orelse, events_of, cap)
        out = [(head + p, d) for p, d in skip]
        out.extend((head + p, _break_absorbed(d)) for p, d in once)
        return out
    if isinstance(stmt, ast.While):
        head = _header_events([stmt.test], events_of)
        once = _paths_of_block(list(stmt.body) + list(stmt.orelse),
                               events_of, cap)
        skip = _paths_of_block(stmt.orelse, events_of, cap)
        out = [(head + p, d) for p, d in skip]
        out.extend((head + p, _break_absorbed(d)) for p, d in once)
        return out
    if isinstance(stmt, (ast.With, ast.AsyncWith)):
        head = _header_events(
            [item.context_expr for item in stmt.items], events_of)
        return [(head + p, d)
                for p, d in _paths_of_block(stmt.body, events_of, cap)]
    if isinstance(stmt, ast.Try):
        final = _paths_of_block(stmt.finalbody, events_of, cap)
        normal = _cross(
            _paths_of_block(list(stmt.body) + list(stmt.orelse),
                            events_of, cap),
            final, cap)
        out = list(normal)
        for handler in stmt.handlers:
            # Exception may fire before any body statement completed:
            # enter the handler with an empty body prefix.
            handled = _cross(
                _paths_of_block(handler.body, events_of, cap), final, cap)
            out.extend(handled)
            if len(out) > cap:
                raise _Overflow
        return out
    if isinstance(stmt, (ast.Return, ast.Raise)):
        events = _header_events(
            [stmt.value if isinstance(stmt, ast.Return) else stmt.exc],
            events_of)
        return [(tuple(events), True)]
    if isinstance(stmt, (ast.Break, ast.Continue)):
        return [((), True)]
    if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef,
                         ast.ClassDef)):
        return [((), False)]  # nested definitions are separate scopes
    return [(tuple(events_of(stmt)), False)]


def _break_absorbed(dead: bool) -> bool:
    # A break/continue ends the loop iteration, not the function; but
    # we cannot distinguish it from return here without more state.
    # Treating it as path-terminating is conservative for ordering
    # checks (shorter paths have fewer events to mis-order).
    return dead


def enumerate_paths(stmts: Sequence[ast.stmt], events_of: _EventsOf,
                    max_paths: int = MAX_PATHS) -> Optional[Tuple[Path, ...]]:
    """All bounded event sequences through ``stmts``.

    Returns ``None`` when the path product exceeds ``max_paths`` —
    callers must treat that as "unknown" and stay silent.
    """
    try:
        paths = _paths_of_block(stmts, events_of, max_paths)
    except _Overflow:
        return None
    return tuple(path for path, _ in paths)


def must_precede(paths: Iterable[Path],
                 is_earlier: Callable[[Any], bool],
                 is_later: Callable[[Any], bool]) -> Optional[Any]:
    """Check "A precedes B on every path where B occurs".

    Returns the first violating B event, or ``None`` when the
    ordering holds everywhere.
    """
    for path in paths:
        seen_earlier = False
        for event in path:
            if is_earlier(event):
                seen_earlier = True
            elif is_later(event) and not seen_earlier:
                return event
    return None


def event_after(paths: Iterable[Path],
                is_marker: Callable[[Any], bool],
                is_use: Callable[[Any], bool],
                is_reset: Optional[Callable[[Any], bool]] = None,
                ) -> Optional[Any]:
    """First "use after marker" event on any path, else ``None``.

    ``is_reset`` events (a rebind of the closed name, say) clear the
    marker again.
    """
    for path in paths:
        marked = False
        for event in path:
            if is_reset is not None and is_reset(event):
                marked = False
                continue
            if is_use(event) and marked:
                return event
            if is_marker(event):
                marked = True
    return None


# ---------------------------------------------------------------------------
# Escape analysis
# ---------------------------------------------------------------------------

def name_escapes(func: ast.AST, name: str,
                 ignore_calls: Tuple[str, ...] = ()) -> bool:
    """Does local ``name`` escape the function?

    Escape means ownership (and thus the release obligation) transfers
    elsewhere: the value is returned or yielded, stored into an
    attribute/subscript/container, rebound to another name, or passed
    bare into a call — except calls whose dotted head is listed in
    ``ignore_calls`` (release primitives like ``fcntl.flock`` must not
    count as escapes).  Attribute access (``name.fileno()``) is a use,
    not an escape.
    """
    for node in ast.walk(func):
        if isinstance(node, (ast.Return, ast.Yield, ast.YieldFrom)):
            if node.value is not None and _mentions_bare(node.value, name):
                return True
        elif isinstance(node, ast.Assign):
            if _mentions_bare(node.value, name):
                return True
        elif isinstance(node, ast.Call):
            head = _call_head(node)
            if head in ignore_calls:
                continue
            for arg in list(node.args) + [kw.value for kw in node.keywords]:
                if isinstance(arg, ast.Name) and arg.id == name:
                    return True
        elif isinstance(node, (ast.List, ast.Tuple, ast.Set, ast.Dict)):
            for child in ast.iter_child_nodes(node):
                if isinstance(child, ast.Name) and child.id == name:
                    return True
    return False


def _mentions_bare(node: ast.expr, name: str) -> bool:
    if isinstance(node, ast.Name):
        return node.id == name
    if isinstance(node, (ast.Tuple, ast.List)):
        return any(_mentions_bare(e, name) for e in node.elts)
    return False


def _call_head(call: ast.Call) -> str:
    parts: List[str] = []
    node: ast.expr = call.func
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
    return ".".join(reversed(parts))
