"""Project-wide symbol, import and call graph for the analyzer.

Per-file AST rules (AVI001-AVI007) see one file at a time; the failure
classes added since PR 5 — a blocking call buried three frames below an
``async def``, a perf counter registered in one module and incremented
in another — only exist *between* files.  This module supplies the
cross-module view:

* :func:`summarize` lowers one parsed file into a picklable
  :class:`ModuleSummary`: the module's imports (resolved to absolute
  dotted names, including relative imports), its module-level string
  constants, the attribute types its classes assign in ``__init__``,
  and one :class:`FunctionSummary` per function/method — direct
  blocking operations plus every call site resolved (conservatively)
  to a ``"module:Qual.name"`` reference.
* :class:`ProjectGraph` assembles the summaries into an import graph
  (dependency fingerprints for the analysis cache) and a conservative
  call graph (transitive *blocking* classification with a witness
  chain for diagnostics).

Summaries deliberately contain no AST nodes: they serialise to JSON
for the on-disk analysis cache and pickle cheaply into pool workers.

Resolution is conservative by construction — a call is only resolved
when its target is structurally evident (a direct name binding, a
``self.method``, a ``self.attr.method`` whose attribute type is
assigned from a constructor in ``__init__``, a local variable
constructed in the same function, or a ``Class.method`` access).
Anything else is dropped, so the graph under-approximates reachability
and never invents an edge into code the file cannot see.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Set, Tuple

from ..fingerprint import stable_fingerprint
from .context import FileContext

__all__ = [
    "BlockingOp",
    "CallSite",
    "FunctionSummary",
    "ModuleSummary",
    "ProjectGraph",
    "graph_of",
    "summarize",
]

_SUMMARY_VERSION = 1

#: Fully-qualified callables that block the calling thread (event-loop
#: poison when reached from an ``async def`` without an executor hop).
_BLOCKING_CALLS: Dict[str, str] = {
    "time.sleep": "time.sleep() suspends the whole thread",
    "os.fsync": "os.fsync() waits on durable disk I/O",
    "os.replace": "os.replace() performs synchronous file I/O",
    "fcntl.flock": "fcntl.flock() performs a blocking syscall",
    "fcntl.lockf": "fcntl.lockf() performs a blocking syscall",
    "subprocess.run": "subprocess.run() waits on a child process",
    "subprocess.call": "subprocess.call() waits on a child process",
    "subprocess.check_call": "subprocess.check_call() waits on a child",
    "subprocess.check_output": "subprocess.check_output() waits on a child",
    "subprocess.Popen": "subprocess.Popen() spawns a process synchronously",
}

#: Methods on a ``socket.socket`` object that block.
_BLOCKING_SOCKET_METHODS = ("connect", "accept", "recv", "recvfrom",
                            "send", "sendall", "sendfile", "makefile")

#: The perf registry module whose KERNELS / COUNTERS tuples are the
#: source of truth for AVI011.
PERF_MODULE = "avipack.perf"


@dataclass(frozen=True)
class BlockingOp:
    """One direct blocking operation inside a function body."""

    line: int
    column: int
    description: str

    def to_dict(self) -> Dict[str, object]:
        return {"line": self.line, "column": self.column,
                "description": self.description}

    @classmethod
    def from_dict(cls, payload: Mapping[str, object]) -> "BlockingOp":
        return cls(line=int(payload["line"]),  # type: ignore[arg-type]
                   column=int(payload["column"]),  # type: ignore[arg-type]
                   description=str(payload["description"]))


@dataclass(frozen=True)
class CallSite:
    """One resolved call site: ``ref`` is a ``"module:Qual.name"``."""

    line: int
    column: int
    ref: str
    #: Source rendering used in diagnostics (``self.store.save``).
    display: str

    def to_dict(self) -> Dict[str, object]:
        return {"line": self.line, "column": self.column,
                "ref": self.ref, "display": self.display}

    @classmethod
    def from_dict(cls, payload: Mapping[str, object]) -> "CallSite":
        return cls(line=int(payload["line"]),  # type: ignore[arg-type]
                   column=int(payload["column"]),  # type: ignore[arg-type]
                   ref=str(payload["ref"]),
                   display=str(payload["display"]))


@dataclass(frozen=True)
class FunctionSummary:
    """What the graph needs to know about one function or method."""

    qualname: str
    line: int
    column: int
    is_async: bool
    blocking: Tuple[BlockingOp, ...] = ()
    calls: Tuple[CallSite, ...] = ()

    def to_dict(self) -> Dict[str, object]:
        return {
            "qualname": self.qualname,
            "line": self.line,
            "column": self.column,
            "is_async": self.is_async,
            "blocking": [op.to_dict() for op in self.blocking],
            "calls": [call.to_dict() for call in self.calls],
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, object]) -> "FunctionSummary":
        return cls(
            qualname=str(payload["qualname"]),
            line=int(payload["line"]),  # type: ignore[arg-type]
            column=int(payload["column"]),  # type: ignore[arg-type]
            is_async=bool(payload["is_async"]),
            blocking=tuple(BlockingOp.from_dict(op)
                           for op in payload["blocking"]),  # type: ignore
            calls=tuple(CallSite.from_dict(c)
                        for c in payload["calls"]),  # type: ignore
        )


@dataclass(frozen=True)
class CounterEvent:
    """One perf-registry interaction (record/timed/increment/read)."""

    kind: str  # "record" | "increment" | "read"
    name: str  # counter/kernel name ("" when unresolvable)
    line: int
    column: int

    def to_dict(self) -> Dict[str, object]:
        return {"kind": self.kind, "name": self.name,
                "line": self.line, "column": self.column}

    @classmethod
    def from_dict(cls, payload: Mapping[str, object]) -> "CounterEvent":
        return cls(kind=str(payload["kind"]), name=str(payload["name"]),
                   line=int(payload["line"]),  # type: ignore[arg-type]
                   column=int(payload["column"]))  # type: ignore[arg-type]


@dataclass
class ModuleSummary:
    """Everything the project graph keeps about one analyzed file."""

    rel_path: str
    #: Dotted module name (``avipack.sweep.runner``); "" outside the
    #: package (such files join the graph but export no symbols).
    module: str = ""
    #: Absolute dotted names of every imported module.
    imports: Tuple[str, ...] = ()
    #: Local name -> absolute target ("pkg.mod" or "pkg.mod:Symbol").
    bindings: Dict[str, str] = field(default_factory=dict)
    #: Module-level ``NAME = "literal"`` string constants.
    constants: Dict[str, str] = field(default_factory=dict)
    #: Class names defined at module level.
    classes: Tuple[str, ...] = ()
    #: ``"Class.attr" -> "module:Ctor"`` for ``self.attr = Ctor(...)``.
    attr_types: Dict[str, str] = field(default_factory=dict)
    #: Function/method summaries keyed by qualname.
    functions: Dict[str, FunctionSummary] = field(default_factory=dict)
    #: perf registry interactions observed in this module.
    counter_events: Tuple[CounterEvent, ...] = ()
    #: Contents of the KERNELS / COUNTERS registry tuples (only
    #: populated when this module *is* :mod:`avipack.perf`).
    kernel_registry: Tuple[str, ...] = ()
    counter_registry: Tuple[str, ...] = ()
    #: Line numbers of the registry tuples (finding anchors).
    kernel_registry_line: int = 0
    counter_registry_line: int = 0

    def to_dict(self) -> Dict[str, object]:
        return {
            "version": _SUMMARY_VERSION,
            "rel_path": self.rel_path,
            "module": self.module,
            "imports": list(self.imports),
            "bindings": dict(self.bindings),
            "constants": dict(self.constants),
            "classes": list(self.classes),
            "attr_types": dict(self.attr_types),
            "functions": {name: fn.to_dict()
                          for name, fn in sorted(self.functions.items())},
            "counter_events": [e.to_dict() for e in self.counter_events],
            "kernel_registry": list(self.kernel_registry),
            "counter_registry": list(self.counter_registry),
            "kernel_registry_line": self.kernel_registry_line,
            "counter_registry_line": self.counter_registry_line,
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, object]
                  ) -> Optional["ModuleSummary"]:
        if payload.get("version") != _SUMMARY_VERSION:
            return None
        return cls(
            rel_path=str(payload["rel_path"]),
            module=str(payload["module"]),
            imports=tuple(payload["imports"]),  # type: ignore[arg-type]
            bindings=dict(payload["bindings"]),  # type: ignore[arg-type]
            constants=dict(payload["constants"]),  # type: ignore[arg-type]
            classes=tuple(payload["classes"]),  # type: ignore[arg-type]
            attr_types=dict(payload["attr_types"]),  # type: ignore
            functions={
                str(name): FunctionSummary.from_dict(fn)
                for name, fn in payload["functions"].items()  # type: ignore
            },
            counter_events=tuple(
                CounterEvent.from_dict(e)
                for e in payload["counter_events"]),  # type: ignore
            kernel_registry=tuple(
                payload["kernel_registry"]),  # type: ignore[arg-type]
            counter_registry=tuple(
                payload["counter_registry"]),  # type: ignore[arg-type]
            kernel_registry_line=int(
                payload["kernel_registry_line"]),  # type: ignore[arg-type]
            counter_registry_line=int(
                payload["counter_registry_line"]),  # type: ignore[arg-type]
        )


# ---------------------------------------------------------------------------
# Extraction
# ---------------------------------------------------------------------------

def _module_name(ctx: FileContext) -> str:
    return ".".join(ctx.package_parts)


def _dotted(node: ast.expr) -> Optional[str]:
    """``a.b.c`` as a string for pure Name/Attribute chains."""
    parts: List[str] = []
    current = node
    while isinstance(current, ast.Attribute):
        parts.append(current.attr)
        current = current.value
    if not isinstance(current, ast.Name):
        return None
    parts.append(current.id)
    return ".".join(reversed(parts))


def _resolve_relative(package_parts: Tuple[str, ...], level: int,
                      module: Optional[str]) -> Optional[str]:
    """Absolute dotted module for a ``from ...x import y`` statement."""
    if level == 0:
        return module
    # package_parts includes the module itself; the package is one up
    # (two up for __init__-less leaf modules, which package_parts
    # already dropped the ``__init__`` suffix for).
    base = list(package_parts[:-1]) if package_parts else []
    if level > 1:
        if level - 1 > len(base):
            return None
        base = base[:len(base) - (level - 1)]
    if module:
        base.extend(module.split("."))
    return ".".join(base) if base else None


class _Extractor(ast.NodeVisitor):
    """Single-pass extraction of a :class:`ModuleSummary`."""

    def __init__(self, ctx: FileContext) -> None:
        self.ctx = ctx
        self.module = _module_name(ctx)
        self.summary = ModuleSummary(rel_path=ctx.rel_path,
                                     module=self.module)
        self._imports: Set[str] = set()
        self._class_stack: List[str] = []
        self._func_stack: List[dict] = []
        self._counter_events: List[CounterEvent] = []

    # -- helpers -------------------------------------------------------------

    def _bind(self, name: str, target: str) -> None:
        self.summary.bindings[name] = target

    def _resolve_name(self, name: str) -> Optional[str]:
        """Absolute ref for a local name (binding or module symbol)."""
        bound = self.summary.bindings.get(name)
        if bound is not None:
            return bound
        if name in self.summary.classes \
                or name in self.summary.functions \
                or name in self._module_level_names:
            return f"{self.module}:{name}" if self.module else None
        return None

    @property
    def _module_level_names(self) -> Set[str]:
        return self._toplevel_names

    # -- entry ---------------------------------------------------------------

    def extract(self) -> ModuleSummary:
        tree = self.ctx.tree
        self._toplevel_names: Set[str] = {
            node.name for node in tree.body
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                                 ast.ClassDef))}
        self.summary.classes = tuple(
            node.name for node in tree.body
            if isinstance(node, ast.ClassDef))
        for node in tree.body:
            self._visit_toplevel(node)
        self.summary.imports = tuple(sorted(self._imports))
        self.summary.counter_events = tuple(self._counter_events)
        return self.summary

    def _visit_toplevel(self, node: ast.stmt) -> None:
        if isinstance(node, (ast.Import, ast.ImportFrom)):
            self._visit_import(node)
        elif isinstance(node, ast.Assign):
            self._visit_module_assign(node)
        elif isinstance(node, ast.ClassDef):
            self._visit_class(node)
        elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            self._visit_function(node, class_name=None)
        elif isinstance(node, (ast.If, ast.Try)):
            # Guarded imports (try/except ImportError, TYPE_CHECKING).
            for child in ast.iter_child_nodes(node):
                if isinstance(child, (ast.Import, ast.ImportFrom)):
                    self._visit_import(child)
                elif isinstance(child, ast.Assign):
                    self._visit_module_assign(child)

    # -- imports and constants ----------------------------------------------

    def _visit_import(self, node: ast.stmt) -> None:
        if isinstance(node, ast.Import):
            for alias in node.names:
                self._imports.add(alias.name)
                local = alias.asname or alias.name.split(".")[0]
                target = alias.name if alias.asname else \
                    alias.name.split(".")[0]
                self._bind(local, target)
        elif isinstance(node, ast.ImportFrom):
            base = _resolve_relative(self.ctx.package_parts, node.level,
                                     node.module)
            if base is None:
                return
            self._imports.add(base)
            for alias in node.names:
                if alias.name == "*":
                    continue
                local = alias.asname or alias.name
                self._bind(local, f"{base}:{alias.name}")

    def _visit_module_assign(self, node: ast.Assign) -> None:
        if len(node.targets) != 1 \
                or not isinstance(node.targets[0], ast.Name):
            return
        name = node.targets[0].id
        value = node.value
        if isinstance(value, ast.Constant) and isinstance(value.value, str):
            self.summary.constants[name] = value.value
        if self.module == PERF_MODULE and name in ("KERNELS", "COUNTERS") \
                and isinstance(value, (ast.Tuple, ast.List)):
            entries = tuple(e.value for e in value.elts
                            if isinstance(e, ast.Constant)
                            and isinstance(e.value, str))
            if name == "KERNELS":
                self.summary.kernel_registry = entries
                self.summary.kernel_registry_line = node.lineno
            else:
                self.summary.counter_registry = entries
                self.summary.counter_registry_line = node.lineno

    # -- classes and functions ----------------------------------------------

    def _visit_class(self, node: ast.ClassDef) -> None:
        self._class_stack.append(node.name)
        for child in node.body:
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                self._visit_function(child, class_name=node.name)
        self._class_stack.pop()

    def _visit_function(self, node, class_name: Optional[str]) -> None:
        qualname = f"{class_name}.{node.name}" if class_name else node.name
        local_types: Dict[str, str] = {}
        blocking: List[BlockingOp] = []
        calls: List[CallSite] = []
        # First pass: local variable construction types (whole body,
        # so a later call can use an earlier assignment).
        for stmt in ast.walk(node):
            if isinstance(stmt, ast.Assign) and len(stmt.targets) == 1 \
                    and isinstance(stmt.targets[0], ast.Name) \
                    and isinstance(stmt.value, ast.Call):
                ctor = self._constructed_type(stmt.value)
                if ctor is not None:
                    local_types[stmt.targets[0].id] = ctor
            if isinstance(stmt, ast.Assign) and node.name == "__init__" \
                    and class_name is not None \
                    and len(stmt.targets) == 1:
                target = stmt.targets[0]
                if isinstance(target, ast.Attribute) \
                        and isinstance(target.value, ast.Name) \
                        and target.value.id == "self" \
                        and isinstance(stmt.value, ast.Call):
                    ctor = self._constructed_type(stmt.value)
                    if ctor is not None:
                        self.summary.attr_types[
                            f"{class_name}.{target.attr}"] = ctor
        # Second pass: classify every call in this function's own body
        # (nested defs have their own summaries and are skipped).
        for call in self._own_calls(node):
            self._classify_call(call, class_name, local_types,
                                blocking, calls)
        self.summary.functions[qualname] = FunctionSummary(
            qualname=qualname, line=node.lineno, column=node.col_offset,
            is_async=isinstance(node, ast.AsyncFunctionDef),
            blocking=tuple(blocking), calls=tuple(calls))
        # Nested defs (rare) are summarized as separate entries.
        for child in node.body:
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                self._visit_function(child, class_name=None)

    def _own_calls(self, func) -> List[ast.Call]:
        """Calls in ``func``'s body, excluding nested function bodies."""
        calls: List[ast.Call] = []

        def walk(node: ast.AST, top: bool) -> None:
            for child in ast.iter_child_nodes(node):
                if isinstance(child, (ast.FunctionDef,
                                      ast.AsyncFunctionDef, ast.Lambda)):
                    continue
                if isinstance(child, ast.Call):
                    calls.append(child)
                walk(child, False)

        walk(func, True)
        return calls

    def _constructed_type(self, call: ast.Call) -> Optional[str]:
        """``"module:Class"`` when ``call`` constructs a known type."""
        func = call.func
        dotted = _dotted(func)
        if dotted is not None:
            head, _, rest = dotted.partition(".")
            bound = self.summary.bindings.get(head)
            if bound is not None and ":" in bound and not rest:
                module, _, symbol = bound.partition(":")
                return f"{module}:{symbol}"
            if bound is not None and ":" not in bound and rest:
                full = f"{bound}.{rest}"
                if full == "socket.socket":
                    return "socket:socket"
            if not rest and dotted in self.summary.classes:
                return f"{self.module}:{dotted}" if self.module else None
        return None

    def _classify_call(self, call: ast.Call,
                       class_name: Optional[str],
                       local_types: Dict[str, str],
                       blocking: List[BlockingOp],
                       calls: List[CallSite]) -> None:
        func = call.func
        line, col = call.lineno, call.col_offset
        # perf registry interactions.
        self._classify_counter_call(call)
        # Builtin open().
        if isinstance(func, ast.Name) and func.id == "open":
            blocking.append(BlockingOp(
                line, col, "open() performs synchronous file I/O"))
            return
        dotted = _dotted(func)
        if dotted is not None:
            resolved = self._resolve_dotted_call(dotted)
            if resolved in _BLOCKING_CALLS:
                blocking.append(BlockingOp(line, col,
                                           _BLOCKING_CALLS[resolved]))
                return
            ref = self._project_ref(dotted, class_name, local_types)
            if ref is not None:
                calls.append(CallSite(line, col, ref, dotted))
                return
        # socket method calls on locally-typed sockets.
        if isinstance(func, ast.Attribute) \
                and isinstance(func.value, ast.Name):
            var_type = local_types.get(func.value.id)
            if var_type == "socket:socket" \
                    and func.attr in _BLOCKING_SOCKET_METHODS:
                blocking.append(BlockingOp(
                    line, col,
                    f"socket.{func.attr}() performs blocking network "
                    f"I/O"))

    def _resolve_dotted_call(self, dotted: str) -> str:
        """Normalise an aliased dotted call head (``socket_mod.x``)."""
        head, _, rest = dotted.partition(".")
        bound = self.summary.bindings.get(head)
        if bound is not None and ":" not in bound and rest:
            return f"{bound}.{rest}"
        if bound is not None and ":" in bound:
            # ``from time import sleep`` -> sleep(); ``from .. import
            # perf as _perf`` -> _perf.increment (symbol is a module).
            module, _, symbol = bound.partition(":")
            return (f"{module}.{symbol}.{rest}" if rest
                    else f"{module}.{symbol}")
        return dotted

    def _project_ref(self, dotted: str, class_name: Optional[str],
                     local_types: Dict[str, str]) -> Optional[str]:
        """Resolve a call to a ``"module:Qual.name"`` project ref."""
        parts = dotted.split(".")
        # f() — plain name.
        if len(parts) == 1:
            resolved = self._resolve_name(parts[0])
            if resolved is not None and ":" in resolved:
                return resolved
            return None
        # self.method()
        if parts[0] == "self" and class_name is not None:
            if len(parts) == 2:
                return (f"{self.module}:{class_name}.{parts[1]}"
                        if self.module else None)
            # self.attr.method()
            if len(parts) == 3:
                attr_type = self.summary.attr_types.get(
                    f"{class_name}.{parts[1]}")
                if attr_type is not None and attr_type != "socket:socket":
                    module, _, cls = attr_type.partition(":")
                    return f"{module}:{cls}.{parts[2]}"
            return None
        # var.method() for constructor-typed locals.
        if len(parts) == 2 and parts[0] in local_types:
            typed = local_types[parts[0]]
            if typed != "socket:socket":
                module, _, cls = typed.partition(":")
                return f"{module}:{cls}.{parts[1]}"
            return None
        # Class.method() / module.func() via bindings.
        bound = self.summary.bindings.get(parts[0])
        if bound is not None and ":" in bound and len(parts) == 2:
            module, _, symbol = bound.partition(":")
            return f"{module}:{symbol}.{parts[1]}"
        if bound is not None and ":" not in bound:
            # module.attr(...) -> "module:attr" (project modules only;
            # externals were handled by the blocking table).
            return f"{bound}:{'.'.join(parts[1:])}"
        if parts[0] in self.summary.classes and len(parts) == 2 \
                and self.module:
            return f"{self.module}:{parts[0]}.{parts[1]}"
        return None

    # -- perf registry interactions ------------------------------------------

    def _classify_counter_call(self, call: ast.Call) -> None:
        dotted = _dotted(call.func)
        if dotted is None:
            return
        resolved = self._resolve_dotted_call(dotted)
        tail = resolved.split(".")[-1]
        is_perf = (resolved.startswith((f"{PERF_MODULE}.", "perf.",
                                        "_perf."))
                   or (self.module == PERF_MODULE and "." not in resolved))
        if not is_perf:
            return
        if tail in ("record", "timed"):
            kind = "record"
        elif tail == "increment":
            kind = "increment"
        elif tail in ("counter", "stats"):
            kind = "read"
        else:
            return
        name = self._literal_or_constant(call.args[0]) if call.args else None
        for keyword in call.keywords:
            if keyword.arg == "kernel":
                name = self._literal_or_constant(keyword.value)
        self._counter_events.append(CounterEvent(
            kind=kind, name=name or "", line=call.lineno,
            column=call.col_offset))

    def _literal_or_constant(self, node: ast.expr) -> Optional[str]:
        if isinstance(node, ast.Constant) and isinstance(node.value, str):
            return node.value
        if isinstance(node, ast.Name):
            value = self.summary.constants.get(node.id)
            if value is not None:
                return value
            bound = self.summary.bindings.get(node.id)
            if bound is not None and ":" in bound:
                # Imported constant: leave a ref the graph resolves.
                return f"@{bound}"
        return None


def summarize(ctx: FileContext) -> ModuleSummary:
    """Extract the project-graph summary of one parsed file."""
    return _Extractor(ctx).extract()


def graph_of(ctx: FileContext) -> Tuple["ProjectGraph", ModuleSummary]:
    """The project graph and this file's summary, from any context.

    The engine attaches both to the context before dispatching rules;
    a rule invoked standalone (tests, ad-hoc tooling) degrades to a
    single-file graph built from the file's own summary, so
    graph-aware rules never need a special code path.
    """
    project = getattr(ctx, "project", None)
    summary = getattr(ctx, "summary", None)
    if summary is None:
        summary = summarize(ctx)
    if project is None:
        project = ProjectGraph(
            [summary], {ctx.rel_path: stable_fingerprint(ctx.source)})
    return project, summary


# ---------------------------------------------------------------------------
# Graph
# ---------------------------------------------------------------------------

class ProjectGraph:
    """Import + call graph over a set of module summaries."""

    def __init__(self, summaries: Sequence[ModuleSummary],
                 content_fps: Optional[Mapping[str, str]] = None) -> None:
        #: rel_path -> summary
        self.files: Dict[str, ModuleSummary] = {
            s.rel_path: s for s in summaries}
        #: dotted module -> summary (package files only)
        self.modules: Dict[str, ModuleSummary] = {
            s.module: s for s in summaries if s.module}
        #: "module:qualname" -> (summary, FunctionSummary)
        self.functions: Dict[str, Tuple[ModuleSummary, FunctionSummary]] = {}
        for s in summaries:
            if not s.module:
                continue
            for qualname, fn in s.functions.items():
                self.functions[f"{s.module}:{qualname}"] = (s, fn)
        self._content_fps = dict(content_fps or {})
        self._import_edges: Dict[str, Tuple[str, ...]] = {}
        for s in summaries:
            if not s.module:
                continue
            targets = []
            for imported in s.imports:
                resolved = self._resolve_module(imported)
                if resolved is not None and resolved != s.module:
                    targets.append(resolved)
            for bound in s.bindings.values():
                # ``from pkg import submodule`` records the import as
                # ``pkg`` with a ``submodule -> "pkg:submodule"``
                # binding; the real dependency is the submodule.
                if ":" not in bound:
                    continue
                candidate = bound.replace(":", ".")
                if candidate in self.modules and candidate != s.module:
                    targets.append(candidate)
            self._import_edges[s.module] = tuple(sorted(set(targets)))
        self._closure_cache: Dict[str, Tuple[str, ...]] = {}
        self._blocking_cache: Dict[str, Optional[Tuple[str, ...]]] = {}

    def _resolve_module(self, dotted: str) -> Optional[str]:
        """Map an imported dotted name onto a project module.

        ``import avipack.sweep`` may really mean the package
        ``__init__``; longest known prefix wins so ``from ..sweep.runner
        import X`` resolves to ``avipack.sweep.runner``.
        """
        parts = dotted.split(".")
        while parts:
            candidate = ".".join(parts)
            if candidate in self.modules:
                return candidate
            parts.pop()
        return None

    # -- import graph --------------------------------------------------------

    def imports_of(self, module: str) -> Tuple[str, ...]:
        """Project-internal modules ``module`` imports directly."""
        return self._import_edges.get(module, ())

    def import_closure(self, module: str) -> Tuple[str, ...]:
        """Transitive project-internal import closure (excl. self)."""
        cached = self._closure_cache.get(module)
        if cached is not None:
            return cached
        seen: Set[str] = set()
        stack = list(self._import_edges.get(module, ()))
        while stack:
            current = stack.pop()
            if current in seen or current == module:
                continue
            seen.add(current)
            stack.extend(self._import_edges.get(current, ()))
        closure = tuple(sorted(seen))
        self._closure_cache[module] = closure
        return closure

    def dependency_fingerprint(self, rel_path: str) -> str:
        """Content-hash of everything ``rel_path`` transitively imports.

        The second half of the analysis-cache key: a file re-analyzes
        whenever anything in its import closure changed, even though
        its own bytes did not.
        """
        summary = self.files.get(rel_path)
        if summary is None or not summary.module:
            return stable_fingerprint(())
        closure = self.import_closure(summary.module)
        pairs = tuple(
            (module, self._content_fps.get(
                self.modules[module].rel_path, ""))
            for module in closure if module in self.modules)
        return stable_fingerprint(pairs)

    @property
    def n_import_edges(self) -> int:
        return sum(len(edges) for edges in self._import_edges.values())

    @property
    def n_call_edges(self) -> int:
        return sum(len(fn.calls)
                   for _, fn in self.functions.values())

    # -- call graph ----------------------------------------------------------

    def function(self, ref: str) -> Optional[FunctionSummary]:
        entry = self.functions.get(ref)
        return entry[1] if entry is not None else None

    def resolve_method(self, ref: str) -> Optional[str]:
        """Validate a ``module:Qual.name`` ref against the symbol table.

        ``module:attr`` refs whose module re-exports the symbol are
        not chased (conservative miss).
        """
        return ref if ref in self.functions else None

    def blocking_chain(self, ref: str) -> Optional[Tuple[str, ...]]:
        """Witness chain from ``ref`` to a direct blocking op, if any.

        Traverses *synchronous* project calls only: an async callee
        suspends rather than blocks at the call site (it is judged on
        its own body), and callables passed into an executor are never
        call sites in the first place.  Returns ``("mod:fn", ...,
        "<description>")`` or ``None`` when nothing blocking is
        reachable.
        """
        return self._blocking(ref, frozenset())

    def _blocking(self, ref: str,
                  visiting: frozenset) -> Optional[Tuple[str, ...]]:
        if ref in self._blocking_cache:
            return self._blocking_cache[ref]
        if ref in visiting:  # recursion cycle: assume non-blocking
            return None
        entry = self.functions.get(ref)
        if entry is None:
            return None
        _, fn = entry
        if fn.blocking:
            chain = (ref, fn.blocking[0].description)
            self._blocking_cache[ref] = chain
            return chain
        visiting = visiting | {ref}
        for call in fn.calls:
            target = self.resolve_method(call.ref)
            if target is None:
                continue
            callee = self.functions[target][1]
            if callee.is_async:
                continue
            sub = self._blocking(target, visiting)
            if sub is not None:
                chain = (ref,) + sub
                self._blocking_cache[ref] = chain
                return chain
        self._blocking_cache[ref] = None
        return None

    # -- perf registry view --------------------------------------------------

    def resolve_counter_name(self, summary: ModuleSummary,
                             name: str) -> str:
        """Resolve an ``@module:CONST`` counter ref to its value."""
        if not name.startswith("@"):
            return name
        module, _, symbol = name[1:].partition(":")
        target = self.modules.get(module)
        if target is not None:
            return target.constants.get(symbol, "")
        return ""
