"""SARIF 2.1.0 emitter for analysis results.

SARIF (Static Analysis Results Interchange Format) is what code-hosting
CI understands natively: uploading a run via
``github/codeql-action/upload-sarif`` turns every finding into an
inline annotation on the pull request diff, at the offending line,
with the rule's help text attached — instead of a wall of job-log
text someone has to cross-reference by hand.

The encoding is deliberately minimal but schema-valid:

* one ``run`` with the full rule table in ``tool.driver.rules`` (id,
  name, short description from the rule class docstring, default
  level), so viewers can render rule metadata even for rules that
  produced no findings this run;
* one ``result`` per active finding — ``ruleIndex`` into the driver
  table, severity mapped onto SARIF levels (``info`` becomes
  ``note``), the suggestion folded into the message, and a
  ``physicalLocation`` with 1-based line/column;
* parse errors become ``tool.driver`` notifications so a SARIF-only
  consumer still sees that the run was degraded.

Baselined and suppressed findings are *not* emitted: the SARIF
document mirrors exactly what gates CI.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from .. import __version__
from .engine import AnalysisResult
from .findings import Severity
from .rules import Rule

__all__ = ["to_sarif"]

SARIF_VERSION = "2.1.0"
SARIF_SCHEMA = ("https://raw.githubusercontent.com/oasis-tcs/"
                "sarif-spec/master/Schemata/sarif-schema-2.1.0.json")

_LEVELS = {
    Severity.ERROR: "error",
    Severity.WARNING: "warning",
    Severity.INFO: "note",
}


def _rule_entry(rule: Rule) -> Dict[str, object]:
    doc = (type(rule).__doc__ or rule.name or rule.rule_id).strip()
    short = doc.splitlines()[0].rstrip(".")
    return {
        "id": rule.rule_id,
        "name": rule.name or rule.rule_id,
        "shortDescription": {"text": short},
        "defaultConfiguration": {"level": _LEVELS[rule.severity]},
    }


def to_sarif(result: AnalysisResult,
             rules: Sequence[Rule]) -> Dict[str, object]:
    """Encode one analysis run as a SARIF 2.1.0 document (a dict)."""
    rule_index = {rule.rule_id: i for i, rule in enumerate(rules)}
    results: List[Dict[str, object]] = []
    for finding in result.findings:
        message = finding.message
        if finding.suggestion:
            message = f"{message} ({finding.suggestion})"
        entry: Dict[str, object] = {
            "ruleId": finding.rule_id,
            "level": _LEVELS[finding.severity],
            "message": {"text": message},
            "locations": [{
                "physicalLocation": {
                    "artifactLocation": {
                        "uri": finding.path,
                        "uriBaseId": "%SRCROOT%",
                    },
                    "region": {
                        "startLine": max(finding.line, 1),
                        "startColumn": finding.column + 1,
                    },
                },
            }],
        }
        index = rule_index.get(finding.rule_id)
        if index is not None:
            entry["ruleIndex"] = index
        results.append(entry)
    notifications = [{
        "level": "error",
        "message": {"text": error},
    } for error in result.errors]
    run: Dict[str, object] = {
        "tool": {
            "driver": {
                "name": "avilint",
                "informationUri": "https://example.invalid/avipack",
                "version": __version__,
                "rules": [_rule_entry(rule) for rule in rules],
            },
        },
        "columnKind": "unicodeCodePoints",
        "results": results,
    }
    if notifications:
        run["invocations"] = [{
            "executionSuccessful": False,
            "toolExecutionNotifications": notifications,
        }]
    else:
        run["invocations"] = [{"executionSuccessful": True}]
    return {
        "$schema": SARIF_SCHEMA,
        "version": SARIF_VERSION,
        "runs": [run],
    }
