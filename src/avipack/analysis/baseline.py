"""Baseline file: grandfathered findings that do not gate CI.

When a new rule lands, pre-existing violations that are not worth fixing
immediately are recorded in a checked-in JSON baseline
(``analysis-baseline.json`` at the repo root).  A finding matching a
baseline entry is reported separately and does not fail the run; a new
violation — even an identical one in a *different* function — does.

Matching is by :meth:`Finding.baseline_key`
(``rule_id, path, symbol, message``), deliberately excluding line
numbers so unrelated edits above a grandfathered finding do not break
CI.  Matching is multiset-style: two identical findings need two
baseline entries, so deleting one of two grandfathered violations
cannot hide a regression of the other.
"""

from __future__ import annotations

import json
import os
from collections import Counter
from typing import Counter as CounterType
from typing import Dict, Iterable, List, Tuple

from ..errors import InputError
from .findings import Finding

__all__ = ["Baseline"]

_BASELINE_VERSION = 1
_KeyType = Tuple[str, str, str, str]


class Baseline:
    """Set of grandfathered findings, matched by stable key."""

    def __init__(self, findings: Iterable[Finding] = ()) -> None:
        self._budget: CounterType[_KeyType] = Counter(
            finding.baseline_key() for finding in findings)
        self._records = tuple(findings)

    def __len__(self) -> int:
        return sum(self._budget.values())

    def partition(self, findings: Iterable[Finding]
                  ) -> Tuple[List[Finding], List[Finding]]:
        """Split ``findings`` into (active, baselined) lists."""
        remaining = Counter(self._budget)
        active: List[Finding] = []
        baselined: List[Finding] = []
        for finding in findings:
            key = finding.baseline_key()
            if remaining[key] > 0:
                remaining[key] -= 1
                baselined.append(finding)
            else:
                active.append(finding)
        return active, baselined

    # -- persistence ---------------------------------------------------------

    def to_payload(self) -> Dict[str, object]:
        return {
            "version": _BASELINE_VERSION,
            "findings": [finding.to_dict() for finding in sorted(
                self._records,
                key=lambda f: (f.path, f.rule_id, f.line, f.message))],
        }

    def save(self, path: str) -> None:
        tmp = f"{path}.tmp.{os.getpid()}"
        with open(tmp, "w", encoding="utf-8") as stream:
            json.dump(self.to_payload(), stream, indent=1, sort_keys=True)
            stream.write("\n")
            stream.flush()
            os.fsync(stream.fileno())
        os.replace(tmp, path)

    @classmethod
    def load(cls, path: str) -> "Baseline":
        """Read a baseline file (strict: a damaged baseline is an error).

        Unlike the result cache, a baseline silently treated as empty
        would *fail* CI with noise — or worse, silently pass a run that
        should gate — so damage raises
        :class:`~avipack.errors.InputError` instead of degrading.
        """
        if not os.path.exists(path):
            raise InputError(f"baseline file not found: {path}")
        try:
            with open(path, encoding="utf-8") as stream:
                payload = json.load(stream)
        except (OSError, ValueError) as exc:
            raise InputError(f"cannot read baseline {path}: {exc}") from exc
        if (not isinstance(payload, dict)
                or payload.get("version") != _BASELINE_VERSION
                or not isinstance(payload.get("findings"), list)):
            raise InputError(f"malformed baseline file: {path}")
        return cls(tuple(Finding.from_dict(record)
                         for record in payload["findings"]))
