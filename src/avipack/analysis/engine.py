"""Analysis engine: file discovery, rule dispatch, result assembly.

The engine is deliberately small: discover ``.py`` files, parse each one
once into a :class:`~avipack.analysis.context.FileContext`, run every
registered rule (or a cached result for unchanged content), then filter
raw findings through inline suppressions and the baseline.  Everything
stateful (cache, baseline) is injected, so tests drive the engine
directly on fixture trees.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from ..errors import InputError
from .baseline import Baseline
from .cache import AnalysisCache
from .context import FileContext
from .findings import Finding
from .rules import Rule, all_rules, rules_signature
from .suppress import line_suppressions, suppresses

__all__ = ["AnalysisEngine", "AnalysisResult"]

_RESULT_VERSION = 1


@dataclass
class AnalysisResult:
    """Outcome of one analysis run."""

    findings: List[Finding] = field(default_factory=list)
    baselined: List[Finding] = field(default_factory=list)
    suppressed: List[Finding] = field(default_factory=list)
    errors: List[str] = field(default_factory=list)
    files_analyzed: int = 0
    cache_hits: int = 0

    @property
    def clean(self) -> bool:
        """True when nothing gates: no active findings, no parse errors."""
        return not self.findings and not self.errors

    def to_payload(self) -> Dict[str, object]:
        """JSON-compatible encoding (``--format json`` output)."""
        return {
            "version": _RESULT_VERSION,
            "rules_signature": rules_signature(),
            "files_analyzed": self.files_analyzed,
            "cache_hits": self.cache_hits,
            "clean": self.clean,
            "errors": list(self.errors),
            "findings": [finding.to_dict() for finding in self.findings],
            "baselined": [finding.to_dict() for finding in self.baselined],
            "suppressed": [finding.to_dict() for finding in self.suppressed],
        }

    @classmethod
    def from_payload(cls, payload: Dict[str, object]) -> "AnalysisResult":
        """Rebuild a result from :meth:`to_payload` output (round-trip)."""
        if not isinstance(payload, dict) \
                or payload.get("version") != _RESULT_VERSION:
            raise InputError("malformed analysis result payload")
        return cls(
            findings=[Finding.from_dict(r) for r in payload["findings"]],
            baselined=[Finding.from_dict(r) for r in payload["baselined"]],
            suppressed=[Finding.from_dict(r) for r in payload["suppressed"]],
            errors=[str(e) for e in payload.get("errors", [])],
            files_analyzed=int(payload.get("files_analyzed", 0)),
            cache_hits=int(payload.get("cache_hits", 0)),
        )

    def render_text(self) -> str:
        """Human-readable report (``--format text`` output)."""
        lines: List[str] = []
        for finding in self.findings:
            lines.append(finding.render())
        for error in self.errors:
            lines.append(f"error: {error}")
        if self.baselined:
            lines.append(f"-- {len(self.baselined)} baselined finding(s) "
                         f"not shown (see the baseline file)")
        if self.suppressed:
            lines.append(f"-- {len(self.suppressed)} finding(s) suppressed "
                         f"inline (# avilint: disable=...)")
        lines.append(
            f"analyzed {self.files_analyzed} file(s) "
            f"({self.cache_hits} cached): "
            f"{len(self.findings)} active, {len(self.baselined)} baselined, "
            f"{len(self.suppressed)} suppressed")
        return "\n".join(lines)


class AnalysisEngine:
    """Run the registered rule set over a file tree."""

    def __init__(self, rules: Optional[Sequence[Rule]] = None,
                 cache: Optional[AnalysisCache] = None,
                 baseline: Optional[Baseline] = None) -> None:
        self.rules: Tuple[Rule, ...] = (tuple(rules) if rules is not None
                                        else all_rules())
        self.cache = cache
        self.baseline = baseline

    # -- discovery -----------------------------------------------------------

    @staticmethod
    def discover(paths: Iterable[str]) -> List[str]:
        """Expand files/directories into a sorted list of ``.py`` files."""
        files: List[str] = []
        for path in paths:
            if os.path.isfile(path):
                if path.endswith(".py"):
                    files.append(path)
            elif os.path.isdir(path):
                for root, dirs, names in os.walk(path):
                    dirs[:] = sorted(d for d in dirs
                                     if d != "__pycache__"
                                     and not d.endswith(".egg-info"))
                    for name in sorted(names):
                        if name.endswith(".py"):
                            files.append(os.path.join(root, name))
            else:
                raise InputError(f"no such file or directory: {path}")
        return sorted(dict.fromkeys(_normalise(f) for f in files))

    # -- execution -----------------------------------------------------------

    def analyze_paths(self, paths: Iterable[str]) -> AnalysisResult:
        """Analyze every ``.py`` file under ``paths``."""
        return self.analyze_files(self.discover(paths))

    def analyze_files(self, files: Sequence[str]) -> AnalysisResult:
        result = AnalysisResult()
        raw: List[Finding] = []
        for rel_path in files:
            try:
                with open(rel_path, encoding="utf-8") as stream:
                    source = stream.read()
            except OSError as exc:
                result.errors.append(f"{rel_path}: {exc}")
                continue
            result.files_analyzed += 1
            file_findings = self._analyze_source(rel_path, source, result)
            if file_findings is None:
                continue
            active, suppressed = self._apply_suppressions(
                source, file_findings)
            raw.extend(active)
            result.suppressed.extend(suppressed)
        if self.baseline is not None:
            result.findings, result.baselined = self.baseline.partition(raw)
        else:
            result.findings = raw
        result.findings.sort(key=_finding_order)
        result.baselined.sort(key=_finding_order)
        result.suppressed.sort(key=_finding_order)
        return result

    def _analyze_source(self, rel_path: str, source: str,
                        result: AnalysisResult
                        ) -> Optional[Tuple[Finding, ...]]:
        """Raw rule output for one file (cache-aware); None on parse error."""
        if self.cache is not None:
            cached = self.cache.get(rel_path, source)
            if cached is not None:
                result.cache_hits += 1
                return cached
        try:
            ctx = FileContext.parse(rel_path, source)
        except InputError as exc:
            result.errors.append(str(exc))
            return None
        findings: List[Finding] = []
        for rule in self.rules:
            findings.extend(rule.check(ctx))
        packed = tuple(sorted(findings, key=_finding_order))
        if self.cache is not None:
            self.cache.put(rel_path, source, packed)
        return packed

    @staticmethod
    def _apply_suppressions(source: str, findings: Iterable[Finding]
                            ) -> Tuple[List[Finding], List[Finding]]:
        table = line_suppressions(source.splitlines())
        active: List[Finding] = []
        suppressed: List[Finding] = []
        for finding in findings:
            if table and suppresses(table, finding.line, finding.rule_id):
                suppressed.append(finding)
            else:
                active.append(finding)
        return active, suppressed


def _finding_order(finding: Finding) -> Tuple[str, int, int, str]:
    return (finding.path, finding.line, finding.column, finding.rule_id)


def _normalise(path: str) -> str:
    """Repo-relative forward-slash path when possible (baseline stability)."""
    rel = os.path.relpath(path)
    if rel.startswith(".."):
        rel = path
    return rel.replace(os.sep, "/")
