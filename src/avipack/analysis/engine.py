"""Analysis engine: project graph, rule dispatch, result assembly.

Since PR 9 the engine runs in two phases over the whole tree:

1. **Summarize** — every file is parsed once and lowered into a
   picklable :class:`~avipack.analysis.project.ModuleSummary` (imports,
   call sites, blocking ops, perf events).  Summaries are cached on
   the file's content hash, so a warm run re-parses only edited files.
   The summaries assemble into a :class:`~avipack.analysis.project.
   ProjectGraph`: import closure, conservative call graph, dependency
   fingerprints.
2. **Check** — file-scope rules run per file with the graph attached
   to the context; results are cached on ``(content_fp, dep_fp)`` so a
   file re-checks exactly when it or something it imports changed.
   Project-scope rules (registry-wide invariants like AVI011) run once
   over the graph, uncached.  Raw findings then flow through inline
   suppressions and the baseline as before.

Both phases fan out over a process pool when ``jobs > 1``; workers
re-parse from source (AST parent maps don't pickle) and ship findings
back as plain dicts.  Serial and parallel runs produce byte-identical
results — the parity test in ``tests/test_analysis_engine.py`` holds
the engine to that.

The engine reports itself to :mod:`avipack.perf`: wall time on the
``analysis.engine`` kernel and ``analysis.*`` counters for files,
cache hits and graph edges.
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from .. import perf as _perf
from ..errors import InputError
from ..fingerprint import stable_fingerprint
from .baseline import Baseline
from .cache import AnalysisCache
from .context import FileContext
from .findings import Finding
from .project import ModuleSummary, ProjectGraph, summarize
from .rules import Rule, all_rules, get_rule, rules_signature
from .suppress import line_suppressions, suppresses

__all__ = ["AnalysisEngine", "AnalysisResult"]

_RESULT_VERSION = 2


@dataclass
class AnalysisResult:
    """Outcome of one analysis run."""

    findings: List[Finding] = field(default_factory=list)
    baselined: List[Finding] = field(default_factory=list)
    suppressed: List[Finding] = field(default_factory=list)
    errors: List[str] = field(default_factory=list)
    files_analyzed: int = 0
    cache_hits: int = 0
    import_edges: int = 0
    call_edges: int = 0

    @property
    def clean(self) -> bool:
        """True when nothing gates: no active findings, no parse errors."""
        return not self.findings and not self.errors

    def to_payload(self) -> Dict[str, object]:
        """JSON-compatible encoding (``--format json`` output)."""
        return {
            "version": _RESULT_VERSION,
            "rules_signature": rules_signature(),
            "files_analyzed": self.files_analyzed,
            "cache_hits": self.cache_hits,
            "import_edges": self.import_edges,
            "call_edges": self.call_edges,
            "clean": self.clean,
            "errors": list(self.errors),
            "findings": [finding.to_dict() for finding in self.findings],
            "baselined": [finding.to_dict() for finding in self.baselined],
            "suppressed": [finding.to_dict() for finding in self.suppressed],
        }

    @classmethod
    def from_payload(cls, payload: Dict[str, object]) -> "AnalysisResult":
        """Rebuild a result from :meth:`to_payload` output (round-trip)."""
        if not isinstance(payload, dict) \
                or payload.get("version") != _RESULT_VERSION:
            raise InputError("malformed analysis result payload")
        return cls(
            findings=[Finding.from_dict(r) for r in payload["findings"]],
            baselined=[Finding.from_dict(r) for r in payload["baselined"]],
            suppressed=[Finding.from_dict(r) for r in payload["suppressed"]],
            errors=[str(e) for e in payload.get("errors", [])],
            files_analyzed=int(payload.get("files_analyzed", 0)),
            cache_hits=int(payload.get("cache_hits", 0)),
            import_edges=int(payload.get("import_edges", 0)),
            call_edges=int(payload.get("call_edges", 0)),
        )

    def render_text(self) -> str:
        """Human-readable report (``--format text`` output)."""
        lines: List[str] = []
        for finding in self.findings:
            lines.append(finding.render())
        for error in self.errors:
            lines.append(f"error: {error}")
        if self.baselined:
            lines.append(f"-- {len(self.baselined)} baselined finding(s) "
                         f"not shown (see the baseline file)")
        if self.suppressed:
            lines.append(f"-- {len(self.suppressed)} finding(s) suppressed "
                         f"inline (# avilint: disable=...)")
        lines.append(
            f"analyzed {self.files_analyzed} file(s) "
            f"({self.cache_hits} cached, {self.import_edges} import / "
            f"{self.call_edges} call edges): "
            f"{len(self.findings)} active, {len(self.baselined)} baselined, "
            f"{len(self.suppressed)} suppressed")
        return "\n".join(lines)


# ---------------------------------------------------------------------------
# Pool workers (top-level for pickling; state arrives via initializer)
# ---------------------------------------------------------------------------

_WORKER_GRAPH: Optional[ProjectGraph] = None
_WORKER_RULE_IDS: Tuple[str, ...] = ()


def _summarize_worker(task: Tuple[str, str]) -> Tuple[str, str, object]:
    """Parse + summarize one file: ('ok', path, dict) / ('error', ...)."""
    rel_path, source = task
    try:
        ctx = FileContext.parse(rel_path, source)
    except InputError as exc:
        return ("error", rel_path, str(exc))
    return ("ok", rel_path, summarize(ctx).to_dict())


def _init_check_worker(graph: ProjectGraph,
                       rule_ids: Tuple[str, ...]) -> None:
    global _WORKER_GRAPH, _WORKER_RULE_IDS
    _WORKER_GRAPH = graph
    _WORKER_RULE_IDS = rule_ids


def _check_worker(task: Tuple[str, str]) -> Tuple[str, str, object]:
    """Run file-scope rules on one file inside a pool worker."""
    rel_path, source = task
    assert _WORKER_GRAPH is not None
    rules = tuple(get_rule(rule_id) for rule_id in _WORKER_RULE_IDS)
    try:
        findings = _check_one(rel_path, source, rules, _WORKER_GRAPH)
    except InputError as exc:
        return ("error", rel_path, str(exc))
    return ("ok", rel_path, [finding.to_dict() for finding in findings])


def _check_one(rel_path: str, source: str, rules: Sequence[Rule],
               graph: ProjectGraph) -> Tuple[Finding, ...]:
    """Parse one file, attach the graph, run the file-scope rules."""
    ctx = FileContext.parse(rel_path, source)
    ctx.project = graph
    ctx.summary = graph.files.get(rel_path)
    findings: List[Finding] = []
    for rule in rules:
        findings.extend(rule.check(ctx))
    return tuple(sorted(findings, key=_finding_order))


class AnalysisEngine:
    """Run the registered rule set over a file tree."""

    def __init__(self, rules: Optional[Sequence[Rule]] = None,
                 cache: Optional[AnalysisCache] = None,
                 baseline: Optional[Baseline] = None,
                 jobs: int = 1) -> None:
        self.rules: Tuple[Rule, ...] = (tuple(rules) if rules is not None
                                        else all_rules())
        self.cache = cache
        self.baseline = baseline
        if jobs < 0:
            raise InputError(f"jobs must be >= 0, got {jobs}")
        self.jobs = jobs if jobs else (os.cpu_count() or 1)

    # -- discovery -----------------------------------------------------------

    @staticmethod
    def discover(paths: Iterable[str]) -> List[str]:
        """Expand files/directories into a sorted list of ``.py`` files."""
        files: List[str] = []
        for path in paths:
            if os.path.isfile(path):
                if path.endswith(".py"):
                    files.append(path)
            elif os.path.isdir(path):
                for root, dirs, names in os.walk(path):
                    dirs[:] = sorted(d for d in dirs
                                     if d != "__pycache__"
                                     and not d.endswith(".egg-info"))
                    for name in sorted(names):
                        if name.endswith(".py"):
                            files.append(os.path.join(root, name))
            else:
                raise InputError(f"no such file or directory: {path}")
        return sorted(dict.fromkeys(_normalise(f) for f in files))

    # -- execution -----------------------------------------------------------

    def analyze_paths(self, paths: Iterable[str]) -> AnalysisResult:
        """Analyze every ``.py`` file under ``paths``."""
        return self.analyze_files(self.discover(paths))

    def analyze_files(self, files: Sequence[str]) -> AnalysisResult:
        with _perf.timed("analysis.engine"):
            result = self._analyze_files(files)
        _perf.increment("analysis.files", result.files_analyzed)
        _perf.increment("analysis.cache_hits", result.cache_hits)
        _perf.increment("analysis.import_edges", result.import_edges)
        _perf.increment("analysis.call_edges", result.call_edges)
        return result

    def _analyze_files(self, files: Sequence[str]) -> AnalysisResult:
        result = AnalysisResult()
        sources: Dict[str, str] = {}
        for rel_path in files:
            try:
                with open(rel_path, encoding="utf-8") as stream:
                    sources[rel_path] = stream.read()
            except OSError as exc:
                result.errors.append(f"{rel_path}: {exc}")
        result.files_analyzed = len(sources)
        content_fps = {rel_path: stable_fingerprint(source)
                       for rel_path, source in sources.items()}

        # Phase 1: module summaries (cached on content, else parsed).
        summaries = self._summarize_phase(sources, content_fps, result)
        graph = ProjectGraph(list(summaries.values()), content_fps)
        result.import_edges = graph.n_import_edges
        result.call_edges = graph.n_call_edges

        # Phase 2: file-scope findings (cached on content + deps).
        dep_fps = {rel_path: graph.dependency_fingerprint(rel_path)
                   for rel_path in summaries}
        raw_by_file, to_check = self._collect_cached(
            summaries, content_fps, dep_fps, result)
        checked = self._check_phase(
            {rel_path: sources[rel_path] for rel_path in to_check},
            graph, result)
        raw_by_file.update(checked)
        if self.cache is not None:
            for rel_path in checked:
                self.cache.put(rel_path, content_fps[rel_path],
                               dep_fps[rel_path], summaries[rel_path],
                               checked[rel_path])

        # Phase 3: project-scope rules over the whole graph (uncached).
        project_raw = self._project_phase(graph)

        # Suppressions, baseline, ordering.
        raw: List[Finding] = []
        for rel_path in sorted(raw_by_file):
            file_raw = list(raw_by_file[rel_path])
            file_raw.extend(project_raw.pop(rel_path, ()))
            active, suppressed = self._apply_suppressions(
                sources[rel_path], file_raw)
            raw.extend(active)
            result.suppressed.extend(suppressed)
        for rel_path in sorted(project_raw):  # findings outside the tree
            raw.extend(project_raw[rel_path])
        if self.baseline is not None:
            result.findings, result.baselined = self.baseline.partition(raw)
        else:
            result.findings = raw
        result.findings.sort(key=_finding_order)
        result.baselined.sort(key=_finding_order)
        result.suppressed.sort(key=_finding_order)
        result.errors.sort()
        return result

    # -- phase helpers -------------------------------------------------------

    def _summarize_phase(self, sources: Dict[str, str],
                         content_fps: Dict[str, str],
                         result: AnalysisResult
                         ) -> Dict[str, ModuleSummary]:
        summaries: Dict[str, ModuleSummary] = {}
        to_parse: List[str] = []
        for rel_path in sorted(sources):
            cached = (self.cache.get_summary(rel_path,
                                             content_fps[rel_path])
                      if self.cache is not None else None)
            if cached is not None:
                summaries[rel_path] = cached
            else:
                to_parse.append(rel_path)
        tasks = [(rel_path, sources[rel_path]) for rel_path in to_parse]
        if self._parallel(len(tasks)):
            with ProcessPoolExecutor(max_workers=self.jobs) as pool:
                outcomes = list(pool.map(_summarize_worker, tasks,
                                         chunksize=4))
        else:
            outcomes = [_summarize_worker(task) for task in tasks]
        for status, rel_path, payload in outcomes:
            if status == "error":
                result.errors.append(str(payload))
                continue
            summary = ModuleSummary.from_dict(payload)  # type: ignore
            if summary is not None:
                summaries[rel_path] = summary
        return summaries

    def _collect_cached(self, summaries: Dict[str, ModuleSummary],
                        content_fps: Dict[str, str],
                        dep_fps: Dict[str, str], result: AnalysisResult
                        ) -> Tuple[Dict[str, Tuple[Finding, ...]],
                                   List[str]]:
        raw_by_file: Dict[str, Tuple[Finding, ...]] = {}
        to_check: List[str] = []
        for rel_path in sorted(summaries):
            cached = (self.cache.get_findings(
                rel_path, content_fps[rel_path], dep_fps[rel_path])
                if self.cache is not None else None)
            if cached is not None:
                raw_by_file[rel_path] = cached
                result.cache_hits += 1
            else:
                to_check.append(rel_path)
        return raw_by_file, to_check

    def _check_phase(self, sources: Dict[str, str], graph: ProjectGraph,
                     result: AnalysisResult
                     ) -> Dict[str, Tuple[Finding, ...]]:
        file_rules = tuple(rule for rule in self.rules
                           if rule.scope == "file")
        tasks = [(rel_path, sources[rel_path])
                 for rel_path in sorted(sources)]
        checked: Dict[str, Tuple[Finding, ...]] = {}
        if self._parallel(len(tasks)) and self._rules_portable():
            rule_ids = tuple(rule.rule_id for rule in file_rules)
            with ProcessPoolExecutor(
                    max_workers=self.jobs,
                    initializer=_init_check_worker,
                    initargs=(graph, rule_ids)) as pool:
                outcomes = list(pool.map(_check_worker, tasks,
                                         chunksize=4))
            for status, rel_path, payload in outcomes:
                if status == "error":
                    result.errors.append(str(payload))
                    continue
                checked[rel_path] = tuple(
                    Finding.from_dict(record)
                    for record in payload)  # type: ignore[union-attr]
        else:
            for rel_path, source in tasks:
                try:
                    checked[rel_path] = _check_one(
                        rel_path, source, file_rules, graph)
                except InputError as exc:
                    result.errors.append(str(exc))
        return checked

    def _project_phase(self, graph: ProjectGraph
                       ) -> Dict[str, List[Finding]]:
        by_file: Dict[str, List[Finding]] = {}
        for rule in self.rules:
            if rule.scope != "project":
                continue
            for finding in rule.check_project(graph):
                by_file.setdefault(finding.path, []).append(finding)
        return by_file

    def _parallel(self, n_tasks: int) -> bool:
        return self.jobs > 1 and n_tasks > 1

    def _rules_portable(self) -> bool:
        """True when every rule is the registered singleton, so a pool
        worker can reconstruct the exact rule set from ids alone."""
        try:
            return all(get_rule(rule.rule_id) is rule
                       for rule in self.rules)
        except InputError:
            return False

    # -- filtering -----------------------------------------------------------

    @staticmethod
    def _apply_suppressions(source: str, findings: Iterable[Finding]
                            ) -> Tuple[List[Finding], List[Finding]]:
        table = line_suppressions(source.splitlines())
        active: List[Finding] = []
        suppressed: List[Finding] = []
        for finding in findings:
            if table and suppresses(table, finding.line, finding.rule_id):
                suppressed.append(finding)
            else:
                active.append(finding)
        return active, suppressed


def _finding_order(finding: Finding) -> Tuple[str, int, int, str]:
    return (finding.path, finding.line, finding.column, finding.rule_id)


def _normalise(path: str) -> str:
    """Repo-relative forward-slash path when possible (baseline stability)."""
    rel = os.path.relpath(path)
    if rel.startswith(".."):
        rel = path
    return rel.replace(os.sep, "/")
