"""Per-file result cache for the analyzer.

File-scope rules are pure functions of (file content, import-closure
content, rule set), so cached findings carry **two** fingerprints:

* ``content_fp`` — hash of the file's own source;
* ``dep_fp`` — hash of the (module, content-hash) pairs of everything
  the file transitively imports inside the project, computed from the
  import graph (:meth:`~avipack.analysis.project.ProjectGraph.
  dependency_fingerprint`).

Editing a module therefore invalidates the module *and every file that
can see it through imports* — a blocking helper added three modules
away re-fires AVI008 at the async caller — while untouched, unaffected
files keep their cached findings.

Each entry also stores the file's :class:`~avipack.analysis.project.
ModuleSummary`, keyed on ``content_fp`` alone: summaries describe one
file in isolation, so a warm run rebuilds the whole project graph
without re-parsing a single unchanged file, then uses the graph to
decide which files' *findings* are stale.

The cache stores *raw* rule output (before suppression and baseline
filtering): suppression directives live in the source, so the content
fingerprint covers them, while the baseline file changes independently
and is always applied after the cache.  A cache written by a different
rule set (new rule, bumped ``version``) is discarded wholesale via the
rules signature.  Project-scope rules are never cached.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..errors import InputError
from ..fingerprint import stable_fingerprint
from .findings import Finding
from .project import ModuleSummary

__all__ = ["AnalysisCache"]

_CACHE_VERSION = 2


@dataclass
class _Entry:
    content_fp: str
    dep_fp: str
    summary: Optional[ModuleSummary]
    findings: Tuple[Finding, ...]


class AnalysisCache:
    """Content+dependency-addressed per-file analysis cache."""

    def __init__(self, rules_signature: str) -> None:
        self.rules_signature = rules_signature
        self._entries: Dict[str, _Entry] = {}
        self.hits = 0
        self.misses = 0

    # -- lookup --------------------------------------------------------------

    @staticmethod
    def key_for(source: str) -> str:
        """Content hash a lookup is keyed on."""
        return stable_fingerprint(source)

    def get_summary(self, rel_path: str,
                    content_fp: str) -> Optional[ModuleSummary]:
        """Cached module summary for this exact content, else ``None``."""
        entry = self._entries.get(rel_path)
        if entry is None or entry.content_fp != content_fp:
            return None
        return entry.summary

    def get_findings(self, rel_path: str, content_fp: str,
                     dep_fp: str) -> Optional[Tuple[Finding, ...]]:
        """Cached raw findings when neither the file nor anything it
        imports changed, else ``None``."""
        entry = self._entries.get(rel_path)
        if entry is None or entry.content_fp != content_fp \
                or entry.dep_fp != dep_fp:
            self.misses += 1
            return None
        self.hits += 1
        return entry.findings

    def put(self, rel_path: str, content_fp: str, dep_fp: str,
            summary: Optional[ModuleSummary],
            findings: Tuple[Finding, ...]) -> None:
        """Store the full record for the current state of ``rel_path``."""
        self._entries[rel_path] = _Entry(content_fp, dep_fp, summary,
                                         findings)

    # -- compatibility shims (tests and older callers) ----------------------

    def get(self, rel_path: str,
            source: str) -> Optional[Tuple[Finding, ...]]:
        """Content-only lookup (ignores dependencies; legacy shape)."""
        entry = self._entries.get(rel_path)
        if entry is None or entry.content_fp != self.key_for(source):
            self.misses += 1
            return None
        self.hits += 1
        return entry.findings

    # -- persistence ---------------------------------------------------------

    def to_payload(self) -> Dict[str, object]:
        """JSON-compatible encoding of the whole cache."""
        return {
            "version": _CACHE_VERSION,
            "rules_signature": self.rules_signature,
            "entries": {
                rel_path: {
                    "content_fp": entry.content_fp,
                    "dep_fp": entry.dep_fp,
                    "summary": (entry.summary.to_dict()
                                if entry.summary is not None else None),
                    "findings": [finding.to_dict()
                                 for finding in entry.findings],
                }
                for rel_path, entry in sorted(self._entries.items())
            },
        }

    @classmethod
    def from_payload(cls, payload: object,
                     rules_signature: str) -> "AnalysisCache":
        """Rebuild a cache, discarding it on any mismatch or damage."""
        cache = cls(rules_signature)
        if not isinstance(payload, dict):
            return cache
        if payload.get("version") != _CACHE_VERSION:
            return cache
        if payload.get("rules_signature") != rules_signature:
            return cache
        entries = payload.get("entries")
        if not isinstance(entries, dict):
            return cache
        try:
            for rel_path, entry in entries.items():
                findings = tuple(Finding.from_dict(record)
                                 for record in entry["findings"])
                summary = (ModuleSummary.from_dict(entry["summary"])
                           if entry.get("summary") is not None else None)
                cache._entries[rel_path] = _Entry(
                    str(entry["content_fp"]), str(entry["dep_fp"]),
                    summary, findings)
        except (InputError, KeyError, TypeError):
            return cls(rules_signature)  # damaged file: start cold
        return cache

    def save(self, path: str) -> None:
        """Write the cache to ``path`` as JSON (atomic + durable)."""
        tmp = f"{path}.tmp.{os.getpid()}"
        with open(tmp, "w", encoding="utf-8") as stream:
            json.dump(self.to_payload(), stream, indent=1, sort_keys=True)
            stream.write("\n")
            stream.flush()
            os.fsync(stream.fileno())
        os.replace(tmp, path)

    @classmethod
    def load(cls, path: str, rules_signature: str) -> "AnalysisCache":
        """Read a cache file; any problem yields an empty cache."""
        if not os.path.exists(path):
            return cls(rules_signature)
        try:
            with open(path, encoding="utf-8") as stream:
                payload = json.load(stream)
        except (OSError, ValueError):
            return cls(rules_signature)
        return cls.from_payload(payload, rules_signature)

    # -- introspection -------------------------------------------------------

    def __len__(self) -> int:
        return len(self._entries)

    @property
    def entries(self) -> List[str]:
        """Paths currently cached (test/debug helper)."""
        return sorted(self._entries)
