"""Per-file result cache for the analyzer.

Rules are pure functions of (file content, rule set), so results are
memoised on ``stable_fingerprint(source)`` — the same content-hash
machinery the solver cache uses (:mod:`avipack.fingerprint`).  The cache
stores *raw* rule output (before suppression and baseline filtering):
suppression directives live in the source, so the fingerprint covers
them, while the baseline file can change independently and is therefore
always applied after the cache.

A cache file written by a different rule set (new rule, bumped
``version``) is discarded wholesale via the rules signature, so stale
results can never leak through a rule change.
"""

from __future__ import annotations

import json
import os
from typing import Dict, List, Optional, Tuple

from ..errors import InputError
from ..fingerprint import stable_fingerprint
from .findings import Finding

__all__ = ["AnalysisCache"]

_CACHE_VERSION = 1


class AnalysisCache:
    """Content-addressed per-file finding cache."""

    def __init__(self, rules_signature: str) -> None:
        self.rules_signature = rules_signature
        self._entries: Dict[str, Tuple[str, Tuple[Finding, ...]]] = {}
        self.hits = 0
        self.misses = 0

    # -- lookup --------------------------------------------------------------

    @staticmethod
    def key_for(source: str) -> str:
        """Content hash a lookup is keyed on."""
        return stable_fingerprint(source)

    def get(self, rel_path: str,
            source: str) -> Optional[Tuple[Finding, ...]]:
        """Cached raw findings for this exact content, else ``None``."""
        entry = self._entries.get(rel_path)
        if entry is None or entry[0] != self.key_for(source):
            self.misses += 1
            return None
        self.hits += 1
        return entry[1]

    def put(self, rel_path: str, source: str,
            findings: Tuple[Finding, ...]) -> None:
        """Store raw findings for the current content of ``rel_path``."""
        self._entries[rel_path] = (self.key_for(source), findings)

    # -- persistence ---------------------------------------------------------

    def to_payload(self) -> Dict[str, object]:
        """JSON-compatible encoding of the whole cache."""
        return {
            "version": _CACHE_VERSION,
            "rules_signature": self.rules_signature,
            "entries": {
                rel_path: {
                    "fingerprint": fingerprint,
                    "findings": [finding.to_dict() for finding in findings],
                }
                for rel_path, (fingerprint, findings)
                in sorted(self._entries.items())
            },
        }

    @classmethod
    def from_payload(cls, payload: object,
                     rules_signature: str) -> "AnalysisCache":
        """Rebuild a cache, discarding it on any mismatch or damage."""
        cache = cls(rules_signature)
        if not isinstance(payload, dict):
            return cache
        if payload.get("version") != _CACHE_VERSION:
            return cache
        if payload.get("rules_signature") != rules_signature:
            return cache
        entries = payload.get("entries")
        if not isinstance(entries, dict):
            return cache
        try:
            for rel_path, entry in entries.items():
                findings = tuple(Finding.from_dict(record)
                                 for record in entry["findings"])
                cache._entries[rel_path] = (str(entry["fingerprint"]),
                                            findings)
        except (InputError, KeyError, TypeError):
            return cls(rules_signature)  # damaged file: start cold
        return cache

    def save(self, path: str) -> None:
        """Write the cache to ``path`` as JSON (atomic publication)."""
        tmp = f"{path}.tmp.{os.getpid()}"
        with open(tmp, "w", encoding="utf-8") as stream:
            json.dump(self.to_payload(), stream, indent=1, sort_keys=True)
            stream.write("\n")
        os.replace(tmp, path)

    @classmethod
    def load(cls, path: str, rules_signature: str) -> "AnalysisCache":
        """Read a cache file; any problem yields an empty cache."""
        if not os.path.exists(path):
            return cls(rules_signature)
        try:
            with open(path, encoding="utf-8") as stream:
                payload = json.load(stream)
        except (OSError, ValueError):
            return cls(rules_signature)
        return cls.from_payload(payload, rules_signature)

    # -- introspection -------------------------------------------------------

    def __len__(self) -> int:
        return len(self._entries)

    @property
    def entries(self) -> List[str]:
        """Paths currently cached (test/debug helper)."""
        return sorted(self._entries)
