"""Finding records produced by the static-analysis rules.

A :class:`Finding` is a structured lint result: rule id, severity,
location, human message and (optionally) a machine-applicable
suggestion.  Findings are plain frozen dataclasses so they serialise
losslessly to JSON (``--format json``, the on-disk result cache and the
checked-in baseline all share the same encoding) and compare by value,
which the baseline matcher and the analyzer's own tests rely on.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Any, Dict, Mapping, Tuple

from ..errors import InputError

__all__ = ["Finding", "Severity"]


class Severity(enum.Enum):
    """How seriously a finding should be taken.

    Every active (non-suppressed, non-baselined) finding gates the CI
    job regardless of severity; the distinction is informational.
    """

    ERROR = "error"
    WARNING = "warning"
    INFO = "info"


@dataclass(frozen=True)
class Finding:
    """One static-analysis result.

    Attributes
    ----------
    rule_id:
        Stable rule identifier, e.g. ``"AVI002"``.
    severity:
        :class:`Severity` of the finding.
    path:
        File the finding is in, as a forward-slash relative path.
    line / column:
        1-based line and 0-based column of the offending node.
    message:
        Human-readable description of the problem.
    suggestion:
        Optional short hint on how to fix it.
    symbol:
        Enclosing function/class qualname (used, together with the
        message, to match baseline entries stably across line-number
        churn).
    """

    rule_id: str
    severity: Severity
    path: str
    line: int
    column: int
    message: str
    suggestion: str = ""
    symbol: str = ""

    def baseline_key(self) -> Tuple[str, str, str, str]:
        """Line-number-independent identity used by the baseline file."""
        return (self.rule_id, self.path, self.symbol, self.message)

    def to_dict(self) -> Dict[str, Any]:
        """JSON-compatible encoding (inverse of :meth:`from_dict`)."""
        return {
            "rule_id": self.rule_id,
            "severity": self.severity.value,
            "path": self.path,
            "line": self.line,
            "column": self.column,
            "message": self.message,
            "suggestion": self.suggestion,
            "symbol": self.symbol,
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "Finding":
        """Rebuild a finding from :meth:`to_dict` output."""
        try:
            return cls(
                rule_id=str(payload["rule_id"]),
                severity=Severity(payload["severity"]),
                path=str(payload["path"]),
                line=int(payload["line"]),
                column=int(payload["column"]),
                message=str(payload["message"]),
                suggestion=str(payload.get("suggestion", "")),
                symbol=str(payload.get("symbol", "")),
            )
        except (KeyError, ValueError, TypeError) as exc:
            raise InputError(f"malformed finding record: {exc}") from exc

    def render(self) -> str:
        """One-line ``path:line:col: RULE [severity] message`` form."""
        text = (f"{self.path}:{self.line}:{self.column}: "
                f"{self.rule_id} [{self.severity.value}] {self.message}")
        if self.suggestion:
            text += f"  ({self.suggestion})"
        return text
