"""Domain-aware static analysis for the avipack codebase.

``avipack.analysis`` is an AST-based lint framework carrying the paper's
design-procedure philosophy (catch specification violations before
hardware — here: before a 240-candidate sweep runs) into the codebase
itself.  Five domain rules encode failure classes met in earlier PRs:

========  ===================================================================
AVI001    unit-suffix consistency (names vs documented physical units)
AVI002    error-taxonomy enforcement (avipack.errors types, picklable
          custom exceptions)
AVI003    worker-boundary pickle safety (no lambdas/local defs into pools)
AVI004    determinism (no unseeded entropy or wall-clock logic in
          solver/sweep/resilience code)
AVI005    solver-mutation safety (no topology mutation after solve)
========  ===================================================================

Run it with ``python -m avipack.analysis [--format text|json] [paths]``.
Findings are suppressed inline with ``# avilint: disable=RULE`` or
grandfathered in a checked-in baseline (``analysis-baseline.json``).
Results are cached per file on a content hash
(:func:`avipack.fingerprint.stable_fingerprint`), so unchanged files are
free on re-runs.
"""

from .baseline import Baseline
from .cache import AnalysisCache
from .context import FileContext
from .engine import AnalysisEngine, AnalysisResult
from .findings import Finding, Severity
from .rules import Rule, all_rules, get_rule, register, rules_signature

__all__ = [
    "AnalysisCache",
    "AnalysisEngine",
    "AnalysisResult",
    "Baseline",
    "FileContext",
    "Finding",
    "Rule",
    "Severity",
    "all_rules",
    "get_rule",
    "register",
    "rules_signature",
]
