"""Domain-aware static analysis for the avipack codebase.

``avipack.analysis`` is an AST-based lint framework carrying the paper's
design-procedure philosophy (catch specification violations before
hardware — here: before a 240-candidate sweep runs) into the codebase
itself.  The rules encode failure classes met in earlier PRs:

========  ===================================================================
AVI001    unit-suffix consistency (names vs documented physical units)
AVI002    error-taxonomy enforcement (avipack.errors types, picklable
          custom exceptions)
AVI003    worker-boundary pickle safety (no lambdas/local defs into pools)
AVI004    determinism (no unseeded entropy or wall-clock logic in
          solver/sweep/resilience code)
AVI005    solver-mutation safety (no topology mutation after solve)
AVI006    durable-write discipline (state files written via tmp + replace)
AVI007    perf-kernel naming (timed sections use registered kernels)
AVI008    no blocking calls reachable from async code (call-graph based)
AVI009    atomic-persist ordering (write -> flush -> fsync -> replace
          on every path)
AVI010    lock discipline (acquire implies release; no use after close)
AVI011    perf-counter hygiene (registry and call sites agree both ways)
AVI012    resource-handle leaks (files/mmaps closed on error paths)
========  ===================================================================

Since PR 9 the engine is **project-wide and flow-sensitive**: every file
is summarized into a picklable module summary, the summaries form an
import + conservative call graph (:mod:`avipack.analysis.project`), and
rules may consult either bounded path enumeration within a function
(:mod:`avipack.analysis.flow`) or reachability across modules.  Use
``rule_range()`` rather than hard-coding the id span.

Run it with ``python -m avipack.analysis [--format text|json|sarif]
[--jobs N] [paths]``.  Findings are suppressed inline with ``# avilint:
disable=RULE`` or grandfathered in a checked-in baseline
(``analysis-baseline.json``).  Results are cached per file on a content
hash plus a dependency fingerprint of the file's import closure, so a
warm run re-checks only edited files and their dependents.
"""

from .baseline import Baseline
from .cache import AnalysisCache
from .context import FileContext
from .engine import AnalysisEngine, AnalysisResult
from .findings import Finding, Severity
from .rules import (
    Rule,
    all_rules,
    get_rule,
    register,
    rule_range,
    rules_signature,
)

__all__ = [
    "AnalysisCache",
    "AnalysisEngine",
    "AnalysisResult",
    "Baseline",
    "FileContext",
    "Finding",
    "Rule",
    "Severity",
    "all_rules",
    "get_rule",
    "register",
    "rule_range",
    "rules_signature",
]
