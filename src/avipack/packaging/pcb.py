"""Printed-circuit-board model: layup, effective properties, detail grids.

The level-2 representation of the design flow: the PCB is a plate with
anisotropic effective conductivity derived from its copper layup, carrying
components either as smeared dissipative surfaces (preliminary design) or
as discrete footprint sources on a finite-volume grid (detailed design).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Tuple

from ..errors import InputError
from ..materials.library import pcb_effective_conductivity
from ..mechanical.plate import PlateSpec
from ..thermal.conduction import (
    BoundaryCondition,
    CartesianGrid,
    ConductionSolver,
)
from .component import Component


@dataclass
class Pcb:
    """A populated PCB.

    Parameters
    ----------
    length, width, thickness:
        Board dimensions [m].
    n_copper_layers:
        Number of copper layers in the stack.
    copper_coverage:
        Mean fractional copper coverage per layer (0–1).
    copper_layer_thickness:
        Per-layer copper thickness [m] (35 µm = 1 oz).
    components:
        Placed components (positions must lie on the board).
    """

    length: float
    width: float
    thickness: float = 1.6e-3
    n_copper_layers: int = 4
    copper_coverage: float = 0.5
    copper_layer_thickness: float = 35e-6
    components: List[Component] = field(default_factory=list)

    def __post_init__(self) -> None:
        if min(self.length, self.width, self.thickness) <= 0.0:
            raise InputError("board dimensions must be positive")
        if self.n_copper_layers < 0:
            raise InputError("copper layer count must be non-negative")
        if not 0.0 <= self.copper_coverage <= 1.0:
            raise InputError("copper coverage must be in [0, 1]")
        for component in self.components:
            self._check_position(component)

    def _check_position(self, component: Component) -> None:
        x, y = component.position
        if not (0.0 <= x <= self.length and 0.0 <= y <= self.width):
            raise InputError(
                f"component {component.name!r} at ({x}, {y}) falls off the "
                f"{self.length} x {self.width} m board")

    # -- population -------------------------------------------------------------

    def place(self, component: Component) -> None:
        """Add a component; validates its position."""
        self._check_position(component)
        self.components.append(component)

    @property
    def total_power(self) -> float:
        """Total dissipation [W]."""
        return sum(component.power for component in self.components)

    @property
    def component_mass(self) -> float:
        """Total mounted-component mass [kg]."""
        return sum(component.package.mass for component in self.components)

    @property
    def area(self) -> float:
        """Board area [m²]."""
        return self.length * self.width

    # -- effective properties ------------------------------------------------------

    def effective_conductivity(self) -> Tuple[float, float]:
        """(in-plane, through-thickness) conductivity [W/(m·K)]."""
        return pcb_effective_conductivity(
            self.copper_coverage, self.n_copper_layers,
            self.copper_layer_thickness, self.thickness)

    def mean_heat_flux(self) -> float:
        """Board-average dissipation flux [W/m²] (the level-2 smear)."""
        return self.total_power / self.area

    # -- model builders ----------------------------------------------------------------

    def as_plate(self, support: Tuple[str, str] = ("SS", "SS"),
                 stiffener_rigidity: float = 0.0) -> PlateSpec:
        """Structural plate idealisation for the mechanical solvers.

        Uses standard FR-4 laminate structural properties; components are
        smeared as added mass.
        """
        return PlateSpec(
            length=self.length,
            width=self.width,
            thickness=self.thickness,
            youngs_modulus=22e9,
            poisson_ratio=0.28,
            density=1850.0,
            support=support,
            component_mass=self.component_mass,
            stiffener_rigidity=stiffener_rigidity,
        )

    def detail_grid(self, nx: int = 34, ny: int = 26,
                    nz: int = 1) -> CartesianGrid:
        """Level-3 finite-volume grid with discrete footprint sources.

        Anisotropic effective conductivity; each component's power is
        injected over its footprint cells.
        """
        if min(nx, ny, nz) < 1:
            raise InputError("grid resolution must be >= 1 in each axis")
        k_inplane, k_through = self.effective_conductivity()
        grid = CartesianGrid((nx, ny, nz),
                             (self.length, self.width, self.thickness),
                             conductivity=k_inplane,
                             density=1850.0, specific_heat=1100.0)
        grid.kz[:, :, :] = k_through
        for component in self.components:
            if component.power == 0.0:
                continue
            half_x = component.package.footprint[0] / 2.0
            half_y = component.package.footprint[1] / 2.0
            x, y = component.position
            region = grid.region_slices(
                (max(x - half_x, 0.0), min(x + half_x, self.length)),
                (max(y - half_y, 0.0), min(y + half_y, self.width)),
                (0.0, self.thickness))
            grid.add_power(region, component.power)
        return grid

    def solve_detail(self, h_top: float, h_bottom: float,
                     ambient: float, nx: int = 34, ny: int = 26
                     ) -> "PcbDetailResult":
        """Solve the level-3 board model with film cooling on both faces.

        Returns board temperature field plus per-component junction
        temperatures (local board temperature + R_jb rise).
        """
        if h_top <= 0.0 or h_bottom <= 0.0:
            raise InputError("film coefficients must be positive")
        if ambient <= 0.0:
            raise InputError("ambient must be positive kelvin")
        grid = self.detail_grid(nx, ny)
        solver = ConductionSolver(grid)
        solver.set_boundary("z_max",
                            BoundaryCondition("convection", h_top, ambient))
        solver.set_boundary("z_min",
                            BoundaryCondition("convection", h_bottom,
                                              ambient))
        solution = solver.solve_steady()
        junctions = {}
        for component in self.components:
            ix = min(int(component.position[0] / self.length * nx), nx - 1)
            iy = min(int(component.position[1] / self.width * ny), ny - 1)
            board_t = float(solution.temperatures[ix, iy, -1])
            junctions[component.name] = \
                component.junction_temperature_from_board(board_t)
        return PcbDetailResult(solution.temperatures, junctions,
                               solution.max_temperature)


@dataclass(frozen=True)
class PcbDetailResult:
    """Level-3 board solution: field + junction temperatures."""

    board_field: "object"
    junction_temperatures: dict
    max_board_temperature: float

    def hottest_component(self) -> Tuple[str, float]:
        """(name, T_j) of the worst component."""
        if not self.junction_temperatures:
            raise InputError("board has no dissipating components")
        name = max(self.junction_temperatures,
                   key=self.junction_temperatures.get)
        return name, self.junction_temperatures[name]


def optimize_copper_coverage(board: Pcb, boundary_temperature: float,
                             junction_limit: float,
                             h_film: float = 15.0,
                             nx: int = 20, ny: int = 14) -> float:
    """Smallest copper coverage that keeps every junction legal.

    The level-2 design move the paper names ("optimization of the
    mechanical design (copper layers, specific drains ...)"): bisect the
    per-layer copper coverage between the board's current value and full
    copper until the worst junction of the detailed solve meets
    ``junction_limit``.

    Returns the required coverage fraction.  Raises
    :class:`~avipack.errors.InputError` when even full copper cannot
    close the violation (the advisor should escalate the cooling
    architecture instead).
    """
    if not board.components:
        raise InputError("board has no components to protect")
    if junction_limit <= boundary_temperature:
        raise InputError("junction limit must exceed the boundary")

    def worst_junction(coverage: float) -> float:
        trial = Pcb(length=board.length, width=board.width,
                    thickness=board.thickness,
                    n_copper_layers=board.n_copper_layers,
                    copper_coverage=coverage,
                    copper_layer_thickness=board.copper_layer_thickness,
                    components=list(board.components))
        result = trial.solve_detail(h_film, h_film,
                                    boundary_temperature, nx, ny)
        return max(result.junction_temperatures.values())

    lo = board.copper_coverage
    hi = 1.0
    if worst_junction(lo) <= junction_limit:
        return lo
    if worst_junction(hi) > junction_limit:
        raise InputError(
            "even full copper coverage cannot meet the junction limit; "
            "escalate the cooling architecture")
    for _ in range(25):
        mid = 0.5 * (lo + hi)
        if worst_junction(mid) > junction_limit:
            lo = mid
        else:
            hi = mid
    return hi


def dummy_resistive_pcb(length: float, width: float, total_power: float,
                        n_resistors: int = 6) -> Pcb:
    """The COSEE test vehicle: a dummy PCB with resistive heaters.

    "In order to test the thermal performance ... we used dummy PCB with
    resistive components" — power is split equally across ``n_resistors``
    power resistors placed on a regular grid.
    """
    from .component import get_package

    if total_power < 0.0:
        raise InputError("total power must be non-negative")
    if n_resistors < 1:
        raise InputError("need at least one resistor")
    board = Pcb(length=length, width=width)
    columns = max(1, int(round(n_resistors ** 0.5)))
    rows = (n_resistors + columns - 1) // columns
    package = get_package("to_220")
    index = 0
    for row in range(rows):
        for col in range(columns):
            if index >= n_resistors:
                break
            x = (col + 1) / (columns + 1) * length
            y = (row + 1) / (rows + 1) * width
            board.place(Component(
                name=f"R{index + 1}",
                package=package,
                power=total_power / n_resistors,
                position=(x, y)))
            index += 1
    return board
