"""Plug-in module / LRU model.

A module is a populated PCB inside an envelope with a declared cooling
technique — the unit the rack-level (level-1) model manipulates, and the
unit whose dissipation trend the paper tracks: "from 10 W/module, it will
reach 20/30 W/module in the near future and 60 W/module in the next
developments ... in the same time, the module sizes are reduced or at the
best remain unchanged".
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from ..errors import InputError
from ..units import celsius_to_kelvin
from .cooling import (
    CoolingEvaluation,
    CoolingTechnique,
    ModuleEnvelope,
    evaluate_cooling,
)
from .pcb import Pcb


@dataclass
class Module:
    """One plug-in module.

    Parameters
    ----------
    name:
        Module reference.
    pcb:
        The populated board (its total power is the module dissipation
        unless ``power_override`` is set).
    envelope:
        Geometric/cooling envelope.
    technique:
        Declared cooling technique.
    power_override:
        Optional dissipation [W] for level-1 studies without a detailed
        board.
    """

    name: str
    pcb: Optional[Pcb] = None
    envelope: ModuleEnvelope = field(default_factory=ModuleEnvelope)
    technique: CoolingTechnique = CoolingTechnique.DIRECT_AIR_FLOW
    power_override: Optional[float] = None

    def __post_init__(self) -> None:
        if not self.name:
            raise InputError("module name must be non-empty")
        if self.power_override is not None and self.power_override < 0.0:
            raise InputError("power override must be non-negative")
        if self.pcb is None and self.power_override is None:
            raise InputError(
                f"module {self.name!r} needs a PCB or a power override")

    @property
    def power(self) -> float:
        """Module dissipation [W]."""
        if self.power_override is not None:
            return self.power_override
        return self.pcb.total_power

    @property
    def mean_flux_w_cm2(self) -> float:
        """Mean board heat flux [W/cm²]."""
        return self.power / self.envelope.board_area * 1.0e-4

    def evaluate(self, ambient: float = celsius_to_kelvin(40.0),
                 coolant_inlet: float = celsius_to_kelvin(40.0)
                 ) -> CoolingEvaluation:
        """Level-1 evaluation under the declared technique."""
        return evaluate_cooling(self.technique, self.power, self.envelope,
                                ambient, coolant_inlet)

    def peak_flux_w_cm2(self) -> float:
        """Worst component footprint flux [W/cm²] (0 for bare modules)."""
        if self.pcb is None or not self.pcb.components:
            return 0.0
        return max(component.heat_flux_w_cm2
                   for component in self.pcb.components)


def module_generation(generation: str) -> Module:
    """Representative modules of the paper's dissipation trend.

    ``generation`` ∈ {"current", "near_future", "next"} → 10 / 30 / 60 W
    in the same envelope (§III: sizes "remain unchanged").
    """
    powers = {"current": 10.0, "near_future": 30.0, "next": 60.0}
    if generation not in powers:
        raise InputError(f"unknown generation {generation!r}; known: "
                         f"{sorted(powers)}")
    return Module(name=f"module_{generation}",
                  power_override=powers[generation],
                  technique=CoolingTechnique.DIRECT_AIR_FLOW)
