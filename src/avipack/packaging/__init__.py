"""Equipment models: components, PCBs, modules, racks and the COSEE SEB."""

from .component import (
    PACKAGE_FAMILIES,
    Component,
    PackageFamily,
    get_package,
    make_component,
)
from .cooling import (
    CoolingEvaluation,
    CoolingTechnique,
    ModuleEnvelope,
    compare_techniques,
    evaluate_cooling,
    max_power_for_limit,
)
from .formfactors import ATR_WIDTHS, AtrCase, generation_power_density
from .ife import IfeSystem, compare_cooling_strategies
from .module import Module, module_generation
from .pcb import (
    Pcb,
    PcbDetailResult,
    dummy_resistive_pcb,
    optimize_copper_coverage,
)
from .rack import Rack, SlotResult, computer_rack
from .seb import (
    SeatElectronicsBox,
    SeatStructure,
    SebConfiguration,
    SebSolution,
    aluminum_seat_structure,
    carbon_composite_seat_structure,
)
from .wedgelock import WedgeLock, torque_study

__all__ = [
    "Component",
    "ATR_WIDTHS",
    "AtrCase",
    "IfeSystem",
    "WedgeLock",
    "generation_power_density",
    "compare_cooling_strategies",
    "torque_study",
    "CoolingEvaluation",
    "CoolingTechnique",
    "Module",
    "ModuleEnvelope",
    "PACKAGE_FAMILIES",
    "PackageFamily",
    "Pcb",
    "PcbDetailResult",
    "Rack",
    "SeatElectronicsBox",
    "SeatStructure",
    "SebConfiguration",
    "SebSolution",
    "SlotResult",
    "aluminum_seat_structure",
    "carbon_composite_seat_structure",
    "compare_techniques",
    "computer_rack",
    "dummy_resistive_pcb",
    "evaluate_cooling",
    "get_package",
    "make_component",
    "max_power_for_limit",
    "module_generation",
    "optimize_copper_coverage",
]
