"""Electronic component models for thermal and reliability analysis.

A component, for packaging purposes, is a heat source with a junction-to-
case and junction-to-board resistance, a footprint, a mass and a package
family.  The package database carries the representative values a level-3
model needs when no vendor data exists — the "Thales internal models
database" role in the paper's design flow.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

from ..errors import InputError
from ..units import celsius_to_kelvin


@dataclass(frozen=True)
class PackageFamily:
    """Thermal characteristics of a package family.

    Resistances in K/W, dimensions in m, mass in kg.
    """

    name: str
    r_junction_case: float
    r_junction_board: float
    footprint: Tuple[float, float]
    height: float
    mass: float
    max_junction: float = celsius_to_kelvin(125.0)

    def __post_init__(self) -> None:
        if self.r_junction_case <= 0.0 or self.r_junction_board <= 0.0:
            raise InputError(f"{self.name}: resistances must be positive")
        if min(self.footprint) <= 0.0 or self.height <= 0.0:
            raise InputError(f"{self.name}: dimensions must be positive")
        if self.mass <= 0.0:
            raise InputError(f"{self.name}: mass must be positive")

    @property
    def footprint_area(self) -> float:
        """Board area occupied [m²]."""
        return self.footprint[0] * self.footprint[1]


#: Representative package database (JEDEC-class values).
PACKAGE_FAMILIES: Dict[str, PackageFamily] = {
    "bga_35mm": PackageFamily("bga_35mm", r_junction_case=0.4,
                              r_junction_board=6.0,
                              footprint=(35e-3, 35e-3), height=3.2e-3,
                              mass=8.0e-3),
    "bga_23mm": PackageFamily("bga_23mm", r_junction_case=0.8,
                              r_junction_board=9.0,
                              footprint=(23e-3, 23e-3), height=2.5e-3,
                              mass=4.0e-3),
    "qfp_20mm": PackageFamily("qfp_20mm", r_junction_case=4.0,
                              r_junction_board=18.0,
                              footprint=(20e-3, 20e-3), height=2.7e-3,
                              mass=2.5e-3),
    "soic_8": PackageFamily("soic_8", r_junction_case=25.0,
                            r_junction_board=50.0,
                            footprint=(5e-3, 4e-3), height=1.5e-3,
                            mass=0.1e-3),
    "to_220": PackageFamily("to_220", r_junction_case=1.5,
                            r_junction_board=3.0,
                            footprint=(10e-3, 15e-3), height=4.5e-3,
                            mass=2.0e-3),
    "dpak": PackageFamily("dpak", r_junction_case=2.0,
                          r_junction_board=3.5,
                          footprint=(10e-3, 9e-3), height=2.3e-3,
                          mass=1.5e-3),
    "resistor_2512": PackageFamily("resistor_2512", r_junction_case=15.0,
                                   r_junction_board=25.0,
                                   footprint=(6.4e-3, 3.2e-3),
                                   height=0.6e-3, mass=0.05e-3,
                                   max_junction=celsius_to_kelvin(155.0)),
}


def get_package(name: str) -> PackageFamily:
    """Look a package family up by name."""
    try:
        return PACKAGE_FAMILIES[name]
    except KeyError:
        raise InputError(f"unknown package {name!r}; known: "
                         f"{sorted(PACKAGE_FAMILIES)}") from None


@dataclass(frozen=True)
class Component:
    """A placed, dissipating component.

    ``position`` is the footprint-centre location on the board [m].
    """

    name: str
    package: PackageFamily
    power: float
    position: Tuple[float, float] = (0.0, 0.0)

    def __post_init__(self) -> None:
        if self.power < 0.0:
            raise InputError(f"{self.name}: power must be non-negative")

    @property
    def heat_flux(self) -> float:
        """Footprint heat flux [W/m²]."""
        return self.power / self.package.footprint_area

    @property
    def heat_flux_w_cm2(self) -> float:
        """Footprint heat flux in the paper's units [W/cm²]."""
        return self.heat_flux * 1.0e-4

    def junction_temperature(self, case_temperature: float) -> float:
        """T_j from the case temperature via R_jc [K]."""
        if case_temperature <= 0.0:
            raise InputError("case temperature must be positive kelvin")
        return case_temperature + self.power * self.package.r_junction_case

    def junction_temperature_from_board(self, board_temperature: float
                                        ) -> float:
        """T_j from the local board temperature via R_jb [K].

        The dominant path for board-cooled (conduction-cooled) packages.
        """
        if board_temperature <= 0.0:
            raise InputError("board temperature must be positive kelvin")
        return board_temperature + self.power * self.package.r_junction_board

    def junction_margin(self, junction_temperature: float) -> float:
        """Margin to the package junction limit [K] (negative = violated)."""
        return self.package.max_junction - junction_temperature


def make_component(name: str, package_name: str, power: float,
                   position: Tuple[float, float] = (0.0, 0.0)) -> Component:
    """Convenience factory resolving the package family by name."""
    return Component(name=name, package=get_package(package_name),
                     power=power, position=position)
