"""Equipment rack (level-1) model.

The level-1 simulation of Fig. 4: "the simulation just takes care of the
rack external constraints; dissipative PCBs are simulated with volumetric
sources".  A rack here is a row of modules sharing an ARINC 600 air
supply: the plenum air heats up module by module, and each module sees its
local inlet temperature — the effect that makes the last slot the hottest
and drives slot allocation during preliminary design.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

from ..environments.arinc600 import (
    STANDARD_INLET_TEMPERATURE,
    CardChannel,
    allocated_mass_flow,
)
from ..errors import InputError
from ..materials.fluids import air_properties
from ..thermal.convection import duct_velocity, forced_convection_duct
from ..units import celsius_to_kelvin
from .module import Module


@dataclass(frozen=True)
class SlotResult:
    """Level-1 outcome for one slot."""

    module_name: str
    inlet_temperature: float
    outlet_temperature: float
    board_temperature: float

    @property
    def board_rise_over_rack_inlet(self) -> float:
        """Board temperature above the rack supply [K]."""
        return self.board_temperature - STANDARD_INLET_TEMPERATURE


@dataclass
class Rack:
    """A forced-air rack of modules sharing one air supply.

    ``series_fraction`` models the plenum layout: 0 = perfectly parallel
    feed (every slot sees the supply temperature), 1 = fully serial (each
    slot ingests the previous slot's exhaust).  Real ARINC racks sit in
    between.
    """

    name: str
    modules: List[Module] = field(default_factory=list)
    channel: CardChannel = field(default_factory=CardChannel)
    supply_temperature: float = STANDARD_INLET_TEMPERATURE
    series_fraction: float = 0.3

    def __post_init__(self) -> None:
        if not self.name:
            raise InputError("rack name must be non-empty")
        if self.supply_temperature <= 0.0:
            raise InputError("supply temperature must be positive kelvin")
        if not 0.0 <= self.series_fraction <= 1.0:
            raise InputError("series fraction must be in [0, 1]")

    def add_module(self, module: Module) -> None:
        """Insert a module in the next slot."""
        self.modules.append(module)

    @property
    def total_power(self) -> float:
        """Rack dissipation [W]."""
        return sum(module.power for module in self.modules)

    def total_mass_flow(self) -> float:
        """ARINC 600 allocation for the whole rack [kg/s]."""
        return allocated_mass_flow(self.total_power)

    def solve(self) -> List[SlotResult]:
        """Level-1 solve: per-slot inlet, outlet and board temperature.

        Each module receives a mass-flow share proportional to its power
        (the ARINC per-module allocation); its inlet blends the rack
        supply with the running exhaust per ``series_fraction``.
        """
        if not self.modules:
            raise InputError(f"rack {self.name!r} has no modules")
        results: List[SlotResult] = []
        running_exhaust = self.supply_temperature
        for module in self.modules:
            if module.power <= 0.0:
                results.append(SlotResult(module.name, running_exhaust,
                                          running_exhaust, running_exhaust))
                continue
            inlet = ((1.0 - self.series_fraction) * self.supply_temperature
                     + self.series_fraction * running_exhaust)
            mass_flow = allocated_mass_flow(module.power)
            fluid = air_properties(inlet)
            velocity = duct_velocity(mass_flow, fluid,
                                     self.channel.flow_area)
            h = forced_convection_duct(fluid, velocity,
                                       self.channel.hydraulic_diameter)
            outlet = inlet + module.power / (mass_flow
                                             * fluid.specific_heat)
            mean_air = 0.5 * (inlet + outlet)
            board = mean_air + module.power / (h * self.channel.wetted_area)
            results.append(SlotResult(module.name, inlet, outlet, board))
            running_exhaust = outlet
        return results

    def worst_slot(self) -> SlotResult:
        """The hottest board in the rack."""
        return max(self.solve(), key=lambda slot: slot.board_temperature)

    def feasible(self, board_limit: float = celsius_to_kelvin(85.0)
                 ) -> bool:
        """True when every board stays below ``board_limit``."""
        return all(slot.board_temperature <= board_limit
                   for slot in self.solve())


def computer_rack(n_modules: int, power_per_module: float,
                  name: str = "computer_rack") -> Rack:
    """A Fig. 6-style computer rack of identical forced-air modules."""
    if n_modules < 1:
        raise InputError("need at least one module")
    rack = Rack(name=name)
    for index in range(n_modules):
        rack.add_module(Module(name=f"{name}_m{index + 1}",
                               power_override=power_per_module))
    return rack
