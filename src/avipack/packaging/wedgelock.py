"""Wedge-lock and card-guide thermal interfaces.

Level 2 of the design flow "allows the optimization of the mechanical
design (copper layers, specific drains, **thermal wedge lock** ...)".
A wedge lock turns screw torque into a clamping pressure along the card
edge; the resulting metal-to-metal contact conductance (Mikić model,
:func:`avipack.tim.interface.contact_resistance_mikic`) is what couples
a conduction-cooled card to its cold wall.

The module models the torque → axial force → normal pressure → contact
conductance chain and the classic trades: segment count, torque level,
and surface finish.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Tuple

from ..errors import InputError
from ..tim.interface import contact_resistance_mikic


@dataclass(frozen=True)
class WedgeLock:
    """A multi-segment wedge lock clamping one card edge.

    Parameters
    ----------
    length:
        Clamped edge length [m].
    contact_width:
        Rail contact width [m].
    n_segments:
        Number of wedge segments (3–5 typical).
    screw_torque:
        Actuation torque [N·m] (0.6–1.5 N·m typical).
    screw_diameter:
        Actuation screw diameter [m].
    wedge_angle_deg:
        Wedge ramp angle from the card plane [deg] (45° classic).
    surface_roughness:
        RMS roughness of the mating surfaces [m].
    surface_conductivity:
        Harmonic-mean conductivity of card rail / cold wall [W/(m·K)].
    surface_hardness:
        Micro-hardness of the softer surface [Pa].
    """

    length: float = 0.15
    contact_width: float = 5.0e-3
    n_segments: int = 4
    screw_torque: float = 1.1
    screw_diameter: float = 4.0e-3
    wedge_angle_deg: float = 45.0
    surface_roughness: float = 1.2e-6
    surface_conductivity: float = 150.0
    surface_hardness: float = 1.0e9

    def __post_init__(self) -> None:
        for name in ("length", "contact_width", "screw_torque",
                     "screw_diameter", "surface_roughness",
                     "surface_conductivity", "surface_hardness"):
            if getattr(self, name) <= 0.0:
                raise InputError(f"{name} must be positive")
        if self.n_segments < 1:
            raise InputError("need at least one wedge segment")
        if not 10.0 <= self.wedge_angle_deg <= 80.0:
            raise InputError("wedge angle must be in 10-80 degrees")

    # -- force chain --------------------------------------------------------------

    @property
    def axial_force(self) -> float:
        """Screw axial force from torque: F = T / (K·d) with K ≈ 0.2."""
        return self.screw_torque / (0.2 * self.screw_diameter)

    @property
    def normal_force(self) -> float:
        """Total normal clamping force on the rail [N].

        The wedge multiplies the axial force by 1/tan(θ) (friction
        losses folded into the torque coefficient).
        """
        return self.axial_force / math.tan(
            math.radians(self.wedge_angle_deg))

    @property
    def contact_area(self) -> float:
        """Nominal rail contact area [m²]."""
        return self.length * self.contact_width

    @property
    def contact_pressure(self) -> float:
        """Mean contact pressure on the rail [Pa]."""
        return self.normal_force / self.contact_area

    # -- thermal ------------------------------------------------------------------

    def specific_contact_resistance(self) -> float:
        """Area-specific contact resistance of the clamped joint
        [K·m²/W] via the Mikić plastic model."""
        pressure = min(self.contact_pressure,
                       0.9 * self.surface_hardness)
        return contact_resistance_mikic(
            roughness=self.surface_roughness,
            asperity_slope=0.1,
            k_harmonic=self.surface_conductivity,
            pressure=pressure,
            hardness=self.surface_hardness)

    def conductance(self) -> float:
        """Edge conductance of the wedge lock [W/K].

        The number that feeds
        :class:`~avipack.packaging.cooling.ModuleEnvelope.edge_conductance`
        for the conduction-cooled technique.
        """
        return self.contact_area / self.specific_contact_resistance()

    def resistance(self) -> float:
        """Edge resistance [K/W]."""
        return 1.0 / self.conductance()


def torque_study(lock: WedgeLock,
                 torques: Tuple[float, ...] = (0.5, 0.8, 1.1, 1.5)
                 ) -> Tuple[Tuple[float, float], ...]:
    """Edge conductance vs screw torque — the assembly-procedure trade.

    Returns ``((torque, conductance_w_per_k), ...)``; under-torqued
    wedge locks are a classic field failure ("card runs hot after
    maintenance").
    """
    from dataclasses import replace

    if not torques:
        raise InputError("need at least one torque point")
    results = []
    for torque in torques:
        if torque <= 0.0:
            raise InputError("torques must be positive")
        variant = replace(lock, screw_torque=torque)
        results.append((torque, variant.conductance()))
    return tuple(results)
