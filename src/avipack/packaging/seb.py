"""The COSEE seat electronics box (SEB) demonstrator model.

Reproduces the experiment behind Fig. 10 of the paper: a seat electronics
box (the IFE computer under a passenger seat) containing a dummy resistive
PCB, cooled either

* **by natural convection alone** (baseline: box surfaces to cabin air,
  no link to the seat), or
* **by the two-phase chain**: heat pipes drain the PCB to the box edge
  (through grease TIM saddles), two loop heat pipes carry the heat to the
  seat mechanical structure, and the structure — two aluminium rods (or
  the carbon-composite variant) — rejects it to the cabin by natural
  convection and radiation.

Every element is a physical model from the library: the HP/LHP devices of
:mod:`avipack.twophase`, the TIM saddles of :mod:`avipack.tim`, the
natural-convection/radiation correlations of :mod:`avipack.thermal`, and
the whole chain is assembled into a nonlinear
:class:`~avipack.thermal.network.ThermalNetwork`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Tuple

from ..errors import InputError, OperatingLimitError
from ..materials.fluids import air_properties
from ..materials.library import CARBON_COMPOSITE, get_material
from ..thermal.convection import (
    natural_convection_horizontal_cylinder,
    natural_convection_vertical_plate,
)
from ..thermal.network import NetworkSolution, ThermalNetwork
from ..thermal.radiation import linearized_radiation_coefficient
from ..tim.catalog import get_tim
from ..twophase.heatpipe import standard_copper_water_heatpipe
from ..twophase.loopheatpipe import LoopHeatPipe, cosee_ammonia_lhp
from ..units import celsius_to_kelvin


@dataclass(frozen=True)
class SeatStructure:
    """The seat mechanical structure used as the LHP heat sink.

    Two tubes under the seat pan; the LHP condenser lines are clamped
    along them, so the heat enters distributed and spreads over a fin
    half-length before leaving by natural convection + radiation.

    Parameters
    ----------
    conductivity:
        Structure material conductivity [W/(m·K)] — aluminium 167, carbon
        composite ≈ 5 in-plane.
    rod_diameter, wall_thickness:
        Tube geometry [m].
    total_area:
        Total wetted area of the structure [m²].
    fin_half_length:
        Conduction distance from a condenser clamp to the midpoint between
        clamps [m]; sets the fin efficiency penalty for poor conductors.
    emissivity:
        Surface emissivity.
    """

    conductivity: float = 167.0
    rod_diameter: float = 0.030
    wall_thickness: float = 2.0e-3
    total_area: float = 0.18
    fin_half_length: float = 0.11
    emissivity: float = 0.85

    def __post_init__(self) -> None:
        for name in ("conductivity", "rod_diameter", "wall_thickness",
                     "total_area", "fin_half_length"):
            if getattr(self, name) <= 0.0:
                raise InputError(f"{name} must be positive")
        if self.wall_thickness >= self.rod_diameter / 2.0:
            raise InputError("wall thickness exceeds tube radius")
        if not 0.0 < self.emissivity <= 1.0:
            raise InputError("emissivity must be in (0, 1]")

    def fin_efficiency(self, film_coefficient: float) -> float:
        """Fin efficiency of the rod between condenser clamps [-]."""
        if film_coefficient <= 0.0:
            raise InputError("film coefficient must be positive")
        perimeter = math.pi * self.rod_diameter
        inner = self.rod_diameter - 2.0 * self.wall_thickness
        cross_section = math.pi / 4.0 * (self.rod_diameter ** 2 - inner ** 2)
        m = math.sqrt(film_coefficient * perimeter
                      / (self.conductivity * cross_section))
        ml = m * self.fin_half_length
        return math.tanh(ml) / ml if ml > 1e-9 else 1.0

    def sink_conductance(self, t_structure: float, t_ambient: float,
                         pressure: float = 101_325.0) -> float:
        """Structure-to-cabin conductance [W/K] at given temperatures.

        Natural convection from horizontal cylinders plus gray-body
        radiation, weighted by the fin efficiency.
        """
        film = 0.5 * (t_structure + t_ambient)
        fluid = air_properties(max(film, 250.0), pressure)
        delta_t = max(abs(t_structure - t_ambient), 0.1)
        h_nc = natural_convection_horizontal_cylinder(fluid, delta_t,
                                                      self.rod_diameter)
        h_r = linearized_radiation_coefficient(self.emissivity,
                                               max(t_structure, 1.0),
                                               max(t_ambient, 1.0))
        h_total = h_nc + h_r
        eta = self.fin_efficiency(h_total)
        return max(eta * h_total * self.total_area, 1e-6)


def aluminum_seat_structure() -> SeatStructure:
    """The baseline aluminium seat structure of the COSEE tests."""
    return SeatStructure(conductivity=get_material("aluminum_6061")
                         .conductivity)


def carbon_composite_seat_structure() -> SeatStructure:
    """The carbon-composite variant ("rather poor thermal conductivity")."""
    return SeatStructure(conductivity=CARBON_COMPOSITE.conductivity_xy,
                         emissivity=CARBON_COMPOSITE.emissivity)


@dataclass(frozen=True)
class SebConfiguration:
    """One Fig. 10 test configuration.

    ``cooling`` ∈ {"natural", "hp_lhp"}; ``tilt_deg`` tilts the whole
    seat (22° in the paper's third curve); ``structure`` selects the seat
    material variant.
    """

    cooling: str = "natural"
    tilt_deg: float = 0.0
    structure: SeatStructure = field(
        default_factory=aluminum_seat_structure)
    ambient: float = celsius_to_kelvin(20.0)
    cabin_pressure: float = 101_325.0

    def __post_init__(self) -> None:
        if self.cooling not in ("natural", "hp_lhp"):
            raise InputError("cooling must be 'natural' or 'hp_lhp'")
        if not -90.0 <= self.tilt_deg <= 90.0:
            raise InputError("tilt must be within +/-90 degrees")
        if self.ambient <= 0.0 or self.cabin_pressure <= 0.0:
            raise InputError("ambient and pressure must be positive")


@dataclass(frozen=True)
class SebSolution:
    """Solved SEB thermal state."""

    power: float
    pcb_temperature: float
    ambient: float
    lhp_heat: float
    box_heat: float
    network: NetworkSolution

    @property
    def delta_t_pcb_air(self) -> float:
        """The Fig. 10 ordinate: T_pcb − T_air [K]."""
        return self.pcb_temperature - self.ambient


@dataclass
class SeatElectronicsBox:
    """The COSEE SEB demonstrator.

    Geometry defaults match an IFE seat electronic box (≈ 0.30 × 0.20 ×
    0.08 m) with four copper/water heat pipes draining the dummy PCB to
    one box edge and two ammonia LHPs from that edge to the structure.
    """

    box_length: float = 0.30
    box_width: float = 0.20
    box_height: float = 0.08
    box_emissivity: float = 0.85
    internal_conductance: float = 1.2
    n_heatpipes: int = 4
    n_lhps: int = 2
    hp_saddle_area: float = 4.0e-4
    lhp_saddle_area: float = 9.0e-4
    tim_name: str = "standard_grease"

    def __post_init__(self) -> None:
        for name in ("box_length", "box_width", "box_height",
                     "internal_conductance", "hp_saddle_area",
                     "lhp_saddle_area"):
            if getattr(self, name) <= 0.0:
                raise InputError(f"{name} must be positive")
        if self.n_heatpipes < 1 or self.n_lhps < 1:
            raise InputError("need at least one HP and one LHP")
        if not 0.0 < self.box_emissivity <= 1.0:
            raise InputError("emissivity must be in (0, 1]")

    @property
    def external_area(self) -> float:
        """Total external box surface [m²]."""
        return 2.0 * (self.box_length * self.box_width
                      + self.box_length * self.box_height
                      + self.box_width * self.box_height)

    # -- resistance chain pieces ---------------------------------------------------

    def _hp_chain_resistance(self, power: float) -> float:
        """PCB → box-edge resistance through the heat-pipe drain [K/W]."""
        tim = get_tim(self.tim_name)
        saddle = tim.assemble(self.hp_saddle_area)
        pipe = standard_copper_water_heatpipe(length=0.18)
        # Evaluate pipe resistance near its expected vapour temperature.
        t_vapor = celsius_to_kelvin(60.0)
        per_pipe = (pipe.thermal_resistance(t_vapor)
                    + 2.0 * saddle.resistance)
        q_per_pipe = power / self.n_heatpipes
        q_max, limit = pipe.max_heat_transport(t_vapor)
        if q_per_pipe > q_max:
            raise OperatingLimitError(
                f"SEB heat pipes overloaded: {q_per_pipe:.1f} W/pipe "
                f"exceeds the {limit} limit {q_max:.1f} W",
                limit_name=limit, limit_value=q_max * self.n_heatpipes)
        # PCB spreading into the evaporator saddles.
        r_spreading = 0.12
        return r_spreading + per_pipe / self.n_heatpipes

    def _lhp_bank(self, tilt_deg: float) -> LoopHeatPipe:
        """The LHP units installed on this box."""
        return cosee_ammonia_lhp(loop_span=0.6)

    def _box_conductance(self, config: SebConfiguration):
        """Nonlinear box-to-cabin conductance callable (NC + radiation)."""
        area = self.external_area
        height = self.box_height
        emissivity = self.box_emissivity
        pressure = config.cabin_pressure
        # Buried under a seat: only a fraction of the area convects freely.
        effective_area = 0.65 * area

        def conductance(t_wall: float, t_ambient: float) -> float:
            film = 0.5 * (t_wall + t_ambient)
            fluid = air_properties(max(film, 250.0), pressure)
            delta_t = max(abs(t_wall - t_ambient), 0.1)
            h_nc = natural_convection_vertical_plate(fluid, delta_t, height)
            h_r = linearized_radiation_coefficient(
                emissivity, max(t_wall, 1.0), max(t_ambient, 1.0))
            return max((h_nc + h_r) * effective_area, 1e-6)

        return conductance

    # -- network assembly ----------------------------------------------------------

    def build_network(self, power: float,
                      config: SebConfiguration) -> ThermalNetwork:
        """Assemble the SEB thermal network for one operating point."""
        if power < 0.0:
            raise InputError("power must be non-negative")
        net = ThermalNetwork()
        net.add_node("pcb", heat_load=power, capacitance=600.0)
        net.add_node("wall", capacitance=2500.0)
        net.add_node("ambient", fixed_temperature=config.ambient)
        net.add_conductance("pcb", "wall", self.internal_conductance,
                            label="internal")
        net.add_conductance("wall", "ambient",
                            self._box_conductance(config), label="box_nc")

        if config.cooling == "hp_lhp":
            net.add_node("edge", capacitance=400.0)
            net.add_node("structure", capacitance=3000.0)
            r_hp = self._hp_chain_resistance(max(power, 1.0))
            net.add_resistance("pcb", "edge", r_hp, label="hp_drain")
            lhp = self._lhp_bank(config.tilt_deg)
            tim = get_tim(self.tim_name)
            saddle = tim.assemble(self.lhp_saddle_area)
            q_hint = max(power * 0.6 / self.n_lhps, 1.0)
            lhp_g = lhp.network_conductance(q_hint, config.tilt_deg)
            saddle_g = 1.0 / (2.0 * saddle.resistance)

            def chain(t_hot: float, t_cold: float,
                      _lhp_g=lhp_g, _saddle_g=saddle_g) -> float:
                g_lhp = _lhp_g(t_hot, t_cold)
                g_series = 1.0 / (1.0 / g_lhp + 1.0 / _saddle_g)
                return self.n_lhps * g_series

            net.add_conductance("edge", "structure", chain, label="lhp_bank")

            structure = config.structure

            def sink(t_structure: float, t_ambient: float) -> float:
                return structure.sink_conductance(t_structure, t_ambient,
                                                  config.cabin_pressure)

            net.add_conductance("structure", "ambient", sink,
                                label="structure_nc")
        return net

    # -- solving ----------------------------------------------------------------------

    def solve(self, power: float, config: SebConfiguration) -> SebSolution:
        """Steady operating point at ``power`` [W]."""
        net = self.build_network(power, config)
        solution = net.solve(initial_guess=config.ambient + 30.0)
        flows = solution.heat_flows
        lhp_heat = flows.get("lhp_bank", 0.0)
        box_heat = flows.get("box_nc", 0.0)
        return SebSolution(
            power=power,
            pcb_temperature=solution.temperature("pcb"),
            ambient=config.ambient,
            lhp_heat=lhp_heat,
            box_heat=box_heat,
            network=solution,
        )

    def power_sweep(self, powers, config: SebConfiguration
                    ) -> Tuple[Tuple[float, float], ...]:
        """(power, ΔT_pcb-air) pairs — one Fig. 10 curve."""
        curve = []
        for power in powers:
            if power < 0.0:
                raise InputError("powers must be non-negative")
            curve.append((float(power),
                          self.solve(float(power), config).delta_t_pcb_air))
        return tuple(curve)

    def max_power_for_delta_t(self, delta_t_limit: float,
                              config: SebConfiguration,
                              power_ceiling: float = 400.0) -> float:
        """Largest power with ΔT(PCB−air) ≤ ``delta_t_limit`` [W].

        The paper's capability metric: "from 40 W up to 100 W with a
        constant PCB temperature (about 60 °C difference)".
        """
        if delta_t_limit <= 0.0:
            raise InputError("delta-T limit must be positive")

        def delta(power: float) -> float:
            try:
                return self.solve(power, config).delta_t_pcb_air
            except OperatingLimitError:
                # A dried-out device cannot hold any delta-T: infeasible.
                return float("inf")

        lo, hi = 1.0, power_ceiling
        if delta(lo) > delta_t_limit:
            return 0.0
        if delta(hi) <= delta_t_limit:
            return hi
        for _ in range(50):
            mid = 0.5 * (lo + hi)
            if delta(mid) <= delta_t_limit:
                lo = mid
            else:
                hi = mid
        return 0.5 * (lo + hi)
