"""In-flight entertainment (IFE) system model — the Fig. 7 architecture.

The COSEE project exists because of fleet arithmetic: an IFE system puts
one seat electronics box under *every* seat.  "The use of fans will be
required with the following drawbacks: extra cost, energy consumption
when multiplied by the seat number, reliability and maintenance concern
(filters, failures...)."  This module does that multiplication:

* an :class:`IfeSystem` of N seats, each with an SEB of a given power
  and cooling strategy (fan-cooled vs the passive HP/LHP chain);
* fleet-level power, failure rate, expected maintenance events per year
  and the cost deltas — the business case behind the passive solution.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from ..errors import InputError

#: Typical per-fan figures for a seat-box tube-axial fan.
FAN_FAILURE_RATE_FIT = 8000.0
FAN_POWER_W = 2.5
FAN_UNIT_COST = 18.0
FILTER_SERVICE_INTERVAL_H = 4000.0

#: Passive chain adders per SEB (HPs + LHPs + saddles).
PASSIVE_HARDWARE_COST = 95.0
PASSIVE_FAILURE_RATE_FIT = 150.0  # solder/clamp related, no moving parts


@dataclass(frozen=True)
class IfeSystem:
    """An aircraft IFE installation.

    Parameters
    ----------
    n_seats:
        Number of passenger seats (one SEB each).
    seb_power:
        Electronics dissipation per SEB [W].
    seb_base_failure_rate_fit:
        Electronics failure rate per SEB, cooling excluded [FIT].
    cooling:
        ``"fan"`` or ``"passive"`` (the COSEE HP/LHP chain).
    fans_per_seb:
        Fans per box when fan-cooled.
    flight_hours_per_year:
        Aircraft utilisation [h/year].
    """

    n_seats: int
    seb_power: float = 40.0
    seb_base_failure_rate_fit: float = 4000.0
    cooling: str = "fan"
    fans_per_seb: int = 1
    flight_hours_per_year: float = 3500.0

    def __post_init__(self) -> None:
        if self.n_seats < 1:
            raise InputError("need at least one seat")
        if self.seb_power <= 0.0:
            raise InputError("SEB power must be positive")
        if self.seb_base_failure_rate_fit <= 0.0:
            raise InputError("base failure rate must be positive")
        if self.cooling not in ("fan", "passive"):
            raise InputError("cooling must be 'fan' or 'passive'")
        if self.fans_per_seb < 1:
            raise InputError("fan count must be >= 1")
        if self.flight_hours_per_year <= 0.0:
            raise InputError("utilisation must be positive")

    # -- per-box figures ----------------------------------------------------------

    @property
    def seb_failure_rate_fit(self) -> float:
        """Per-SEB failure rate including the cooling solution [FIT]."""
        if self.cooling == "fan":
            return (self.seb_base_failure_rate_fit
                    + self.fans_per_seb * FAN_FAILURE_RATE_FIT)
        return self.seb_base_failure_rate_fit + PASSIVE_FAILURE_RATE_FIT

    @property
    def seb_mtbf_hours(self) -> float:
        """Per-SEB MTBF [h]."""
        return 1.0e9 / self.seb_failure_rate_fit

    @property
    def seb_total_power(self) -> float:
        """Per-SEB electrical draw including fans [W]."""
        if self.cooling == "fan":
            return self.seb_power + self.fans_per_seb * FAN_POWER_W
        return self.seb_power

    # -- fleet figures --------------------------------------------------------------

    @property
    def system_power(self) -> float:
        """Whole-cabin IFE power draw [W]."""
        return self.n_seats * self.seb_total_power

    @property
    def cooling_overhead_power(self) -> float:
        """Power spent on cooling alone [W] (fans; 0 for passive)."""
        if self.cooling == "fan":
            return self.n_seats * self.fans_per_seb * FAN_POWER_W
        return 0.0

    @property
    def system_failure_rate_fit(self) -> float:
        """Series failure rate of all boxes [FIT]."""
        return self.n_seats * self.seb_failure_rate_fit

    def expected_failures_per_year(self) -> float:
        """Expected SEB failures per aircraft-year."""
        return (self.system_failure_rate_fit * 1e-9
                * self.flight_hours_per_year)

    def maintenance_events_per_year(self) -> float:
        """Failures plus scheduled filter services per year."""
        events = self.expected_failures_per_year()
        if self.cooling == "fan":
            events += (self.n_seats * self.flight_hours_per_year
                       / FILTER_SERVICE_INTERVAL_H)
        return events

    def cooling_hardware_cost(self) -> float:
        """Cabin-level cooling hardware cost [currency units]."""
        if self.cooling == "fan":
            return self.n_seats * self.fans_per_seb * FAN_UNIT_COST
        return self.n_seats * PASSIVE_HARDWARE_COST


def compare_cooling_strategies(n_seats: int = 300,
                               seb_power: float = 40.0
                               ) -> Dict[str, Dict[str, float]]:
    """Fleet comparison of fan vs passive SEB cooling.

    Returns per-strategy dictionaries of the figures the paper's
    motivation cites: power overhead, failures/year, maintenance
    events/year and hardware cost.
    """
    result: Dict[str, Dict[str, float]] = {}
    for cooling in ("fan", "passive"):
        system = IfeSystem(n_seats=n_seats, seb_power=seb_power,
                           cooling=cooling)
        result[cooling] = {
            "system_power_w": system.system_power,
            "cooling_overhead_w": system.cooling_overhead_power,
            "seb_mtbf_h": system.seb_mtbf_hours,
            "failures_per_year": system.expected_failures_per_year(),
            "maintenance_per_year": system.maintenance_events_per_year(),
            "hardware_cost": system.cooling_hardware_cost(),
        }
    return result
