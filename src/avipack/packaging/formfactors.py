"""Standard avionics case form factors (ARINC 404A "ATR" series).

The racks of Fig. 6 are built from standardised boxes: the Air Transport
Rack sizes define the width ladder (1/4 ATR … 1 ATR) at fixed height and
two standard depths.  Encoding them lets equipment models start from a
real case instead of ad-hoc dimensions, and exposes the paper's
miniaturisation squeeze as a first-class quantity (W/litre per
generation).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

from ..errors import InputError
from .cooling import ModuleEnvelope

#: ATR case heights and depths [m] (ARINC 404A).
ATR_HEIGHT = 0.194
ATR_DEPTH_SHORT = 0.318
ATR_DEPTH_LONG = 0.497

#: Width ladder [m] per ATR fraction.
ATR_WIDTHS: Dict[str, float] = {
    "1/4_atr": 0.057,
    "3/8_atr": 0.091,
    "1/2_atr": 0.124,
    "3/4_atr": 0.194,
    "1_atr": 0.257,
}


@dataclass(frozen=True)
class AtrCase:
    """One ATR-format equipment case.

    ``size`` is a key of :data:`ATR_WIDTHS`; ``long_case`` selects the
    497 mm depth instead of 318 mm.
    """

    size: str
    long_case: bool = False

    def __post_init__(self) -> None:
        if self.size not in ATR_WIDTHS:
            raise InputError(f"unknown ATR size {self.size!r}; known: "
                             f"{sorted(ATR_WIDTHS)}")

    @property
    def width(self) -> float:
        """Case width [m]."""
        return ATR_WIDTHS[self.size]

    @property
    def height(self) -> float:
        """Case height [m]."""
        return ATR_HEIGHT

    @property
    def depth(self) -> float:
        """Case depth [m]."""
        return ATR_DEPTH_LONG if self.long_case else ATR_DEPTH_SHORT

    @property
    def volume_litres(self) -> float:
        """Internal volume [litres]."""
        return self.width * self.height * self.depth * 1000.0

    @property
    def external_area(self) -> float:
        """External surface area [m²]."""
        w, h, d = self.width, self.height, self.depth
        return 2.0 * (w * h + w * d + h * d)

    def power_density(self, power: float) -> float:
        """Volumetric power density [W/litre].

        The §III squeeze metric: "the module sizes are reduced or at the
        best remain unchanged" while power triples.
        """
        if power < 0.0:
            raise InputError("power must be non-negative")
        return power / self.volume_litres

    def card_count(self, pitch: float = 0.02) -> int:
        """How many cards fit at a given pitch [m]."""
        if pitch <= 0.0:
            raise InputError("pitch must be positive")
        return max(int(self.width / pitch), 1)

    def module_envelope(self, channel_gap: float = 5.0e-3
                        ) -> ModuleEnvelope:
        """A :class:`ModuleEnvelope` for one card of this case."""
        return ModuleEnvelope(
            board_length=self.height * 0.95,
            board_width=self.depth * 0.9,
            shell_area=self.external_area,
            channel_gap=channel_gap,
        )


def generation_power_density(size: str = "1/2_atr"
                             ) -> Tuple[Tuple[str, float], ...]:
    """Power density per module generation in a fixed case.

    Returns ``((generation, W_per_litre), ...)`` for the paper's
    10 → 30 → 60 W trend: the same box, three times the density twice
    over.
    """
    case = AtrCase(size)
    cards = case.card_count()
    return tuple(
        (generation, case.power_density(cards * power))
        for generation, power in (("current", 10.0),
                                  ("near_future", 30.0),
                                  ("next", 60.0)))
