"""Cooling techniques of Fig. 5 and their first-order performance.

"The main principles ... implemented to cool down the components on a PC
board in the aerospace domain": direct transfer to the fluid (radiation,
free convection, forced air) or conduction to an exchanger (conduction
cooled, air/liquid flow through, air flow around).  Each technique is
modelled as the resistance chain it really is, so the level-1 feasibility
comparison (board ΔT at a given power) can be generated for any module.
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass
from typing import Dict

from ..environments.arinc600 import allocated_mass_flow
from ..errors import InputError
from ..materials.fluids import air_properties, water_properties
from ..thermal.convection import (
    duct_velocity,
    forced_convection_duct,
    forced_convection_flat_plate,
    natural_convection_vertical_plate,
)
from ..thermal.radiation import linearized_radiation_coefficient
from ..units import celsius_to_kelvin


class CoolingTechnique(enum.Enum):
    """The cooling principles of Fig. 5."""

    FREE_CONVECTION = "free_convection"
    DIRECT_AIR_FLOW = "direct_air_flow"
    CONDUCTION_COOLED = "conduction_cooled"
    AIR_FLOW_THROUGH = "air_flow_through"
    LIQUID_FLOW_THROUGH = "liquid_flow_through"
    AIR_FLOW_AROUND = "air_flow_around"


@dataclass(frozen=True)
class ModuleEnvelope:
    """Geometric envelope of a module/card for cooling evaluation.

    ``board_length`` × ``board_width`` is the dissipating face;
    ``edge_conductance`` the clamped-edge (wedge-lock) conductance per
    edge [W/K]; ``shell_area`` the external wetted area of a sealed shell.
    """

    board_length: float = 0.19
    board_width: float = 0.17
    board_thermal_thickness: float = 2.0e-3
    board_conductivity: float = 120.0
    edge_conductance: float = 5.0
    shell_area: float = 0.10
    shell_emissivity: float = 0.85
    channel_gap: float = 5.0e-3

    def __post_init__(self) -> None:
        for name in ("board_length", "board_width",
                     "board_thermal_thickness", "board_conductivity",
                     "edge_conductance", "shell_area", "channel_gap"):
            if getattr(self, name) <= 0.0:
                raise InputError(f"{name} must be positive")
        if not 0.0 < self.shell_emissivity <= 1.0:
            raise InputError("emissivity must be in (0, 1]")

    @property
    def board_area(self) -> float:
        """Dissipating face area [m²]."""
        return self.board_length * self.board_width


@dataclass(frozen=True)
class CoolingEvaluation:
    """Outcome of a level-1 cooling feasibility evaluation."""

    technique: CoolingTechnique
    board_temperature: float
    ambient_temperature: float
    film_coefficient: float
    feasible_85c: bool

    @property
    def rise(self) -> float:
        """Board rise over ambient [K]."""
        return self.board_temperature - self.ambient_temperature


def _free_convection_balance(envelope: ModuleEnvelope, power: float,
                             ambient: float, area: float,
                             height: float) -> float:
    """Solve T_s for q = (h_nc(T_s)+h_r(T_s))·A·(T_s − T_amb)."""
    t_surface = ambient + 20.0
    for _ in range(60):
        fluid = air_properties(0.5 * (t_surface + ambient))
        h_nc = natural_convection_vertical_plate(
            fluid, max(t_surface - ambient, 0.1), height)
        h_r = linearized_radiation_coefficient(
            envelope.shell_emissivity, t_surface, ambient)
        t_new = ambient + power / ((h_nc + h_r) * area)
        if abs(t_new - t_surface) < 1e-4:
            return t_new
        t_surface = 0.5 * (t_surface + t_new)
    return t_surface


def evaluate_cooling(technique: CoolingTechnique, power: float,
                     envelope: ModuleEnvelope = ModuleEnvelope(),
                     ambient: float = celsius_to_kelvin(40.0),
                     coolant_inlet: float = celsius_to_kelvin(40.0)
                     ) -> CoolingEvaluation:
    """Board temperature of a module under a given technique at ``power``.

    The feasibility flag compares against the paper's 85 °C ambient rule
    for component environments.
    """
    if power <= 0.0:
        raise InputError("power must be positive")
    if ambient <= 0.0 or coolant_inlet <= 0.0:
        raise InputError("temperatures must be positive kelvin")

    mass_flow = allocated_mass_flow(power)
    fluid = air_properties(coolant_inlet)

    if technique is CoolingTechnique.FREE_CONVECTION:
        shell_t = _free_convection_balance(
            envelope, power, ambient, envelope.shell_area,
            envelope.board_length)
        # Sealed passive box: internal gap + mounts between board and
        # shell add a significant series resistance.
        r_internal = 0.8
        board_t = shell_t + power * r_internal
        h = power / (envelope.shell_area * max(shell_t - ambient, 1e-9))

    elif technique is CoolingTechnique.DIRECT_AIR_FLOW:
        flow_area = envelope.board_width * envelope.channel_gap
        velocity = duct_velocity(mass_flow, fluid, flow_area)
        d_h = (4.0 * flow_area
               / (2.0 * (envelope.board_width + envelope.channel_gap)))
        h = forced_convection_duct(fluid, velocity, d_h)
        outlet = coolant_inlet + power / (mass_flow * fluid.specific_heat)
        # Air washes both board faces in a card channel.
        board_t = 0.5 * (coolant_inlet + outlet) \
            + power / (h * 2.0 * envelope.board_area)

    elif technique is CoolingTechnique.CONDUCTION_COOLED:
        # Uniformly heated plate cooled at two clamped edges: the mean
        # board rise over the edge is Q·L/(12·k·t·W); the centre peak is
        # Q·L/(8·k·t·W).  Use the centre (worst case) plus the wedge locks
        # and the cold-wall film (liquid-cooled cold wall assumed ideal).
        cross = envelope.board_thermal_thickness * envelope.board_width
        r_spread = envelope.board_length / (8.0 * envelope.board_conductivity
                                            * cross)
        r_edges = 1.0 / (2.0 * envelope.edge_conductance)
        board_t = coolant_inlet + power * (r_spread + r_edges)
        h = 1.0 / ((r_spread + r_edges) * envelope.board_area)

    elif technique is CoolingTechnique.AIR_FLOW_THROUGH:
        # Internal finned exchanger in the module shell: effectiveness-NTU
        # with a compact-core conductance plus board-to-shell conduction.
        ua = 18.0 * envelope.board_area / 0.003  # finned core, ~18 W/m2K eq
        ua = min(ua, 60.0)
        ntu = ua / (mass_flow * fluid.specific_heat)
        effectiveness = 1.0 - math.exp(-ntu)
        shell_t = coolant_inlet + power / (
            effectiveness * mass_flow * fluid.specific_heat)
        r_board_shell = 0.25  # drains + shell conduction
        board_t = shell_t + power * r_board_shell
        h = ua / envelope.board_area

    elif technique is CoolingTechnique.LIQUID_FLOW_THROUGH:
        liquid = water_properties(coolant_inlet)
        liquid_flow = 0.01  # kg/s, typical cold-plate loop per module
        velocity = liquid_flow / (liquid.density * 2.0e-5)
        h = forced_convection_duct(liquid, velocity, 3.0e-3)
        outlet = coolant_inlet + power / (liquid_flow
                                          * liquid.specific_heat)
        cold_plate_area = envelope.board_area * 0.6
        plate_t = 0.5 * (coolant_inlet + outlet) \
            + power / (h * cold_plate_area)
        board_t = plate_t + power * 0.15  # board-to-plate drain
        h = min(h, 1e5)

    elif technique is CoolingTechnique.AIR_FLOW_AROUND:
        # Sealed shell washed externally by the allocated air.
        velocity = duct_velocity(mass_flow, fluid,
                                 envelope.channel_gap
                                 * envelope.board_width * 2.0)
        h = forced_convection_flat_plate(fluid, max(velocity, 0.5),
                                         envelope.board_length)
        shell_t = coolant_inlet + power / (h * envelope.shell_area)
        board_t = shell_t + power * 0.3  # internal air gap + mounts
    else:  # pragma: no cover - exhaustive enum
        raise InputError(f"unhandled technique {technique}")

    return CoolingEvaluation(
        technique=technique,
        board_temperature=board_t,
        ambient_temperature=ambient,
        film_coefficient=h,
        feasible_85c=board_t <= celsius_to_kelvin(85.0),
    )


def compare_techniques(power: float,
                       envelope: ModuleEnvelope = ModuleEnvelope(),
                       ambient: float = celsius_to_kelvin(40.0)
                       ) -> Dict[CoolingTechnique, CoolingEvaluation]:
    """Evaluate every technique at ``power`` — the Fig. 5 trade table."""
    return {technique: evaluate_cooling(technique, power, envelope, ambient)
            for technique in CoolingTechnique}


def max_power_for_limit(technique: CoolingTechnique,
                        board_limit: float = celsius_to_kelvin(85.0),
                        envelope: ModuleEnvelope = ModuleEnvelope(),
                        ambient: float = celsius_to_kelvin(40.0)) -> float:
    """Largest power a technique holds below ``board_limit`` [W].

    Bisection over power; the capability number behind the paper's
    "free convection is limited to a few tens of watts" style statements.
    """
    if board_limit <= ambient:
        raise InputError("board limit must exceed ambient")

    def temperature(power: float) -> float:
        return evaluate_cooling(technique, power, envelope,
                                ambient).board_temperature

    lo, hi = 1.0, 2.0
    while temperature(hi) < board_limit and hi < 1e5:
        hi *= 2.0
    if temperature(lo) > board_limit:
        return 0.0
    for _ in range(60):
        mid = 0.5 * (lo + hi)
        if temperature(mid) < board_limit:
            lo = mid
        else:
            hi = mid
    return 0.5 * (lo + hi)
