"""Journal compaction: fold a verified prefix into one checkpoint.

A campaign journal grows by one fsync'd line per dispatched candidate
and per outcome, forever.  Compaction rewrites the file as a single
``checkpoint`` record — the plan, the latest outcome per fingerprint,
the in-flight markers and the sequence cursor, checksummed under the
exact same CRC-32 + SHA-256 line discipline as every live append
(:func:`avipack.durability.journal.encode_record`) — so replay of the
compacted journal reconstructs byte-identical state, in a file that is
typically orders of magnitude smaller.

Crash safety is the whole point of the design:

* the checkpoint is written to a ``<journal>.compact.<pid>.tmp``
  sibling, flushed and ``fsync``'d, and only then swapped in with
  ``os.replace`` — until that one atomic rename the old journal is
  untouched, so SIGKILL at *any* phase leaves either the old or the
  new journal, both of which replay to the same state;
* the journal's advisory ``flock`` is held for the whole pass, so a
  live writer cannot interleave appends with the swap (and compaction
  refuses journals another process is writing);
* the checkpoint reuses the *last folded sequence number*, so a resume
  appended after compaction carries exactly the sequence numbers it
  would have carried on the uncompacted journal — seeded fault
  injection (scoped per sequence number) stays reproducible across
  compaction.

Damaged lines found during the fold are quarantined to the usual
``.quarantine`` sidecar by replay and dropped from the compacted file;
they were never part of the verified state.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Any, Callable, Dict, Optional

from .. import perf as _perf
from ..durability.journal import (
    _encode_payload,
    _lock_exclusive,
    encode_record,
    replay_journal,
)
from ..errors import JournalError

__all__ = ["JournalCompaction", "compact_journal"]


@dataclass(frozen=True)
class JournalCompaction:
    """What one journal compaction pass folded and reclaimed."""

    path: str
    #: Intact records folded into the checkpoint.
    n_folded: int
    #: Damaged lines quarantined (and dropped) during the fold.
    n_quarantined: int
    bytes_before: int
    bytes_after: int

    @property
    def bytes_reclaimed(self) -> int:
        return max(0, self.bytes_before - self.bytes_after)


def _sweep_stale_tmp(path: str) -> None:
    """Remove tmp files a SIGKILL'd earlier compaction left behind."""
    directory = os.path.dirname(path) or "."
    prefix = os.path.basename(path) + ".compact."
    for entry in os.listdir(directory):
        if entry.startswith(prefix):
            try:
                os.unlink(os.path.join(directory, entry))
            except OSError:  # pragma: no cover - racing cleanup is fine
                pass


def compact_journal(path: str,
                    quarantine_path: Optional[str] = None,
                    phase_hook: Optional[Callable[[str], None]] = None
                    ) -> JournalCompaction:
    """Fold the journal at ``path`` into one checkpoint record, in place.

    Holds the journal's advisory lock for the whole pass (raises
    :class:`~avipack.errors.DurabilityError` if a writer holds it) and
    publishes via tmp + ``fsync`` + ``os.replace`` — the old journal
    stays valid until the atomic swap.  Raises
    :class:`~avipack.errors.JournalError` when no intact plan or
    checkpoint record survives to anchor the candidate set (such a
    journal cannot support a resume, compacted or not).

    ``phase_hook`` is the chaos-test seam: it is called with
    ``"replay"``, ``"encode"``, ``"write"``, ``"fsync"``, ``"replace"``
    and ``"done"`` as each phase *begins*, so a test can SIGKILL the
    process at every phase boundary and assert recovery.
    """
    hook = phase_hook or (lambda phase: None)
    _sweep_stale_tmp(path)
    if not os.path.exists(path):
        raise JournalError(f"journal not found: {path}")
    stream = open(path, "ab")
    _lock_exclusive(stream, path)
    try:
        hook("replay")
        replay = replay_journal(path, quarantine_path)
        if replay.candidates is None:
            raise JournalError(
                f"cannot compact {path}: no intact plan or checkpoint "
                "record survives to anchor the candidate set")
        bytes_before = os.path.getsize(path)
        hook("encode")
        fields: Dict[str, Any] = {
            "candidates": _encode_payload(tuple(replay.candidates)),
            "space_fingerprint": replay.space_fingerprint,
            "outcomes": {fp: _encode_payload(outcome)
                         for fp, outcome
                         in sorted(replay.outcomes.items())},
            "dispatched": {fp: int(index)
                           for fp, index
                           in sorted(replay.dispatched.items())},
            "n_folded": replay.n_records,
        }
        # Reuse the last folded record's sequence number: replay of the
        # compacted journal then reports the same next_seq as the
        # uncompacted one, so post-compaction appends are numbered
        # identically (seeded fault injection scopes per seq).
        data = encode_record("checkpoint",
                             max(replay.next_seq - 1, 0), fields)
        hook("write")
        tmp = f"{path}.compact.{os.getpid()}.tmp"
        with open(tmp, "wb") as out:
            out.write(data)
            out.flush()
            hook("fsync")
            os.fsync(out.fileno())
        hook("replace")
        os.replace(tmp, path)
        hook("done")
    finally:
        stream.close()
    _perf.increment("retention.journal_compactions")
    compaction = JournalCompaction(
        path=path, n_folded=replay.n_records,
        n_quarantined=replay.n_quarantined,
        bytes_before=bytes_before, bytes_after=len(data))
    if compaction.bytes_reclaimed:
        _perf.increment("retention.bytes_reclaimed",
                        compaction.bytes_reclaimed)
    return compaction
