"""Crash-safe space governance for journals, result stores and jobs.

Durability (:mod:`avipack.durability`), the columnar result store
(:mod:`avipack.results`) and the job service (:mod:`avipack.service`)
all write append-only, checksummed state — and none of them ever
reclaimed a byte.  This package bounds that growth without weakening a
single crash-safety guarantee:

* :func:`compact_journal` folds a journal's verified prefix into one
  checksummed ``checkpoint`` record (plus whatever live tail follows),
  atomically, under the journal's advisory lock — resume ranks
  byte-identically to the uncompacted journal;
* :func:`compact_store` rewrites result-store shards dropping
  superseded rows and orphaned blobs, publish-new-then-delete-old, so
  ``ranking_signature`` is preserved across a SIGKILL at any point;
* :class:`DiskBudget` + :class:`RetentionPolicy` drive the service's
  governor: high/low watermarks with hysteresis, and eviction bounds
  (``keep_last_n`` / ``max_age_s`` / ``max_bytes``) over finished
  jobs.

Observability: ``retention.journal_compactions``,
``retention.store_compactions``, ``retention.bytes_reclaimed``,
``retention.evictions``, ``retention.passes`` and
``retention.disk_low_refusals`` counters in :mod:`avipack.perf`.
CLI: ``python -m avipack compact``.
"""

from .budget import DiskBudget, RetentionPolicy, directory_bytes
from .checkpoint import JournalCompaction, compact_journal
from .storecompact import StoreCompaction, compact_store

__all__ = [
    "DiskBudget",
    "JournalCompaction",
    "RetentionPolicy",
    "StoreCompaction",
    "compact_journal",
    "compact_store",
    "directory_bytes",
]
