"""Result-store compaction: drop superseded rows and orphaned blobs.

A resumed or re-ingested campaign appends corrected rows for
fingerprints the store already holds; queries hide the stale ones
behind :meth:`~avipack.results.store.ResultStore.live_mask`, but their
bytes — rows *and* their pickled blobs — stay on disk forever.
:func:`compact_store` rewrites exactly the shards that contain dead
rows, copying each live row (and its blob bytes, verbatim) into fresh
shards, then deletes the originals.

Crash-safety ordering, designed so SIGKILL anywhere preserves the
ranking contract byte-for-byte:

1. new shards are published first, under numbers *after* every
   existing shard, via the store's own atomic blobs-then-rows path
   (:func:`avipack.results.store.publish_shard`);
2. only after every replacement shard is durable are the old shard
   files deleted — rows file first (the commit point: once it is gone
   the shard no longer exists to readers), then its blob pool.

A crash between 1 and 2 leaves duplicate rows for some fingerprints —
old copy in the original shard, identical new copy in a higher-numbered
shard — which is exactly the state a resumed campaign produces anyway:
``live_mask`` keeps the latest copy, and since the duplicate rows are
byte-identical (same ``index`` tie-break column, same metrics),
``ranking_signature`` is unchanged.  Re-running compaction finishes the
job.  A crash between a shard's blobs and rows publication leaves an
orphan ``.blobs`` file readers never look at; compaction sweeps such
orphans too.

Quarantined files are left untouched (evidence for the operator), and a
shard whose blob pool was quarantined is *not* rewritten — its rows are
still queryable, and rewriting them would silently discard the one
remaining chance of re-pairing them with recovered blobs.

Writers are excluded for the whole pass via the store's advisory
``.writer.lock``.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Callable, List, Optional, Tuple

import numpy as np

from .. import perf as _perf
from ..errors import ResultStoreError
from ..results.schema import ROW_DTYPE
from ..results.store import (
    _LOCK_NAME,
    _SHARD_PATTERN,
    _lock_writer,
    DEFAULT_SHARD_ROWS,
    ResultStore,
    next_shard_number,
    publish_shard,
)

__all__ = ["StoreCompaction", "compact_store"]


@dataclass(frozen=True)
class StoreCompaction:
    """What one result-store compaction pass rewrote and reclaimed."""

    directory: str
    #: Old shards rewritten (they contained superseded rows).
    shards_rewritten: int
    #: Replacement shards published.
    shards_published: int
    #: Superseded rows dropped.
    rows_dropped: int
    #: Orphan ``.blobs`` files (no ``.rows`` partner) swept.
    orphan_blobs_removed: int
    bytes_before: int
    bytes_after: int

    @property
    def bytes_reclaimed(self) -> int:
        return max(0, self.bytes_before - self.bytes_after)

    @property
    def changed(self) -> bool:
        return bool(self.shards_rewritten or self.orphan_blobs_removed)


def _file_size(path: str) -> int:
    try:
        return os.path.getsize(path)
    except OSError:
        return 0


def _orphan_blobs(directory: str) -> List[str]:
    """``shard-*.blobs`` files whose ``.rows`` partner is gone."""
    orphans = []
    for entry in sorted(os.listdir(directory)):
        match = _SHARD_PATTERN.match(entry)
        if match and match.group(2) == "blobs":
            rows_name = f"shard-{match.group(1)}.rows"
            if not os.path.exists(os.path.join(directory, rows_name)):
                orphans.append(entry)
    return orphans


def compact_store(directory: str,
                  shard_rows: int = DEFAULT_SHARD_ROWS,
                  phase_hook: Optional[Callable[[str], None]] = None
                  ) -> StoreCompaction:
    """Rewrite shards holding superseded rows; sweep orphan blob pools.

    Takes the store's writer lock for the whole pass (raises
    :class:`~avipack.errors.ResultStoreError` on contention or a
    missing directory); ``ranking_signature`` over the store is
    byte-identical before and after.  ``phase_hook`` is the chaos-test
    seam, called with ``"open"``, ``"plan"``, ``"publish"`` (once per
    replacement shard), ``"delete"`` and ``"done"`` as each phase
    begins.
    """
    hook = phase_hook or (lambda phase: None)
    if not os.path.isdir(directory):
        raise ResultStoreError(
            f"result store directory not found: {directory}")
    lock_stream = open(os.path.join(directory, _LOCK_NAME), "ab")
    _lock_writer(lock_stream, directory)
    try:
        hook("open")
        orphans = _orphan_blobs(directory)
        store = ResultStore.open(directory)
        live = store.live_mask()
        hook("plan")
        rewrite: List[Tuple[object, np.ndarray]] = []
        for shard in store.shards():
            mask = live[shard.row_base:shard.row_base + shard.n_rows]
            if shard.blobs_available and not mask.all():
                rewrite.append((shard, mask))
        bytes_before = sum(
            _file_size(os.path.join(directory, name))
            for name in orphans)
        rows_dropped = 0
        survivors: List[Tuple[object, int]] = []
        for shard, mask in rewrite:
            bytes_before += _file_size(shard.path)
            bytes_before += _file_size(shard.blob_path)
            rows_dropped += int((~mask).sum())
            survivors.extend(
                (shard, local) for local in np.flatnonzero(mask))
        bytes_after = 0
        shards_published = 0
        number = next_shard_number(directory)
        for start in range(0, len(survivors), shard_rows):
            chunk = survivors[start:start + shard_rows]
            rows = np.zeros(len(chunk), dtype=ROW_DTYPE)
            blobs = bytearray()
            for position, (shard, local) in enumerate(chunk):
                record = shard.rows[local].copy()
                blob = shard.read_blob(int(record["blob_offset"]),
                                       int(record["blob_length"]))
                record["blob_offset"] = len(blobs)
                blobs += blob
                rows[position] = record
            hook("publish")
            publish_shard(directory, number, rows, bytes(blobs))
            base = os.path.join(directory, f"shard-{number:06d}")
            bytes_after += _file_size(base + ".rows")
            bytes_after += _file_size(base + ".blobs")
            shards_published += 1
            number += 1
        hook("delete")
        # Every replacement shard is durable; now retire the originals
        # — rows file first (the commit point for readers), then the
        # blob pool it indexed.
        for shard, _ in rewrite:
            os.unlink(shard.path)
            os.unlink(shard.blob_path)
        for name in orphans:
            os.unlink(os.path.join(directory, name))
        hook("done")
    finally:
        lock_stream.close()
    compaction = StoreCompaction(
        directory=directory, shards_rewritten=len(rewrite),
        shards_published=shards_published, rows_dropped=rows_dropped,
        orphan_blobs_removed=len(orphans),
        bytes_before=bytes_before, bytes_after=bytes_after)
    if compaction.changed:
        _perf.increment("retention.store_compactions")
    if compaction.bytes_reclaimed:
        _perf.increment("retention.bytes_reclaimed",
                        compaction.bytes_reclaimed)
    return compaction
