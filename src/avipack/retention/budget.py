"""Disk-budget primitives: usage probes, watermarks, retention policy.

The service-side governor (:mod:`avipack.service.server`) composes
three small, separately testable pieces from here:

* :func:`directory_bytes` — how much the journal/store tree actually
  occupies (a plain ``os.walk`` sum; races with concurrent deletion
  are tolerated, a vanished file counts as zero);
* :class:`DiskBudget` — a hysteresis latch over high/low watermarks:
  usage at or above ``high_bytes`` enters the degraded ``disk_low``
  state, and only dropping back to ``low_bytes`` or below leaves it,
  so admission does not flap when usage hovers at the threshold;
* :class:`RetentionPolicy` — which *finished* jobs an eviction pass
  may delete: keep the newest ``keep_last_n``, drop jobs older than
  ``max_age_s``, and drop oldest-first beyond ``max_bytes``.  ``None``
  disables a clause; an all-``None`` policy evicts nothing.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Optional

from ..errors import InputError

__all__ = ["DiskBudget", "RetentionPolicy", "directory_bytes"]


def directory_bytes(path: str) -> int:
    """Total bytes of every regular file under ``path`` (0 if absent).

    Tolerates concurrent deletion: a file that vanishes between
    listing and ``stat`` simply contributes nothing.
    """
    total = 0
    for root, _dirs, files in os.walk(path):
        for name in files:
            try:
                total += os.path.getsize(os.path.join(root, name))
            except OSError:
                continue
    return total


@dataclass(frozen=True)
class RetentionPolicy:
    """Bounds on what finished-job state a retention pass may keep.

    Clauses compose as an intersection of what survives: a job is
    evicted when *any* enabled clause condemns it.  ``None`` disables
    a clause; the default policy keeps everything (compaction still
    runs — it loses no information).
    """

    #: Keep at most this many finished jobs (newest first).
    keep_last_n: Optional[int] = None
    #: Evict finished jobs older than this many seconds.
    max_age_s: Optional[float] = None
    #: Evict oldest finished jobs until their total footprint fits.
    max_bytes: Optional[int] = None

    def __post_init__(self) -> None:
        if self.keep_last_n is not None and self.keep_last_n < 0:
            raise InputError("keep_last_n must be >= 0")
        if self.max_age_s is not None and self.max_age_s < 0:
            raise InputError("max_age_s must be >= 0")
        if self.max_bytes is not None and self.max_bytes < 0:
            raise InputError("max_bytes must be >= 0")

    @property
    def bounded(self) -> bool:
        """True when any eviction clause is enabled."""
        return (self.keep_last_n is not None
                or self.max_age_s is not None
                or self.max_bytes is not None)


class DiskBudget:
    """Hysteresis latch over a high/low disk-usage watermark pair.

    ``observe(usage)`` latches ``disk_low`` when usage reaches
    ``high_bytes`` and releases it only once usage falls to
    ``low_bytes`` — the gap is the hysteresis band that keeps
    admission from flapping while retention is catching up.
    """

    def __init__(self, high_bytes: int, low_bytes: int) -> None:
        if high_bytes <= 0:
            raise InputError("high_bytes must be > 0")
        if not 0 <= low_bytes <= high_bytes:
            raise InputError(
                f"low_bytes must be in [0, high_bytes]; got "
                f"low={low_bytes} high={high_bytes}")
        self.high_bytes = high_bytes
        self.low_bytes = low_bytes
        #: Latched degraded state: refuse new submissions while True.
        self.disk_low = False
        #: Last usage figure observed (for status reporting).
        self.last_usage = 0

    def observe(self, usage: int) -> bool:
        """Feed one usage sample; returns the (possibly new) state."""
        self.last_usage = usage
        if usage >= self.high_bytes:
            self.disk_low = True
        elif usage <= self.low_bytes:
            self.disk_low = False
        return self.disk_low
