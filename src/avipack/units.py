"""Unit conversion helpers and physical constants.

The library works in SI units internally (kelvin, watt, metre, kilogram,
second, pascal).  The avionics literature, however, quotes temperatures in
degrees Celsius, heat fluxes in W/cm², interface resistances in K·mm²/W and
air-cooling flow rates in kg/h per kW of dissipation (the ARINC 600
convention).  These helpers perform the conversions explicitly so that no
magic factors appear inside the solvers.
"""

from __future__ import annotations

import math

from .errors import InputError

# ---------------------------------------------------------------------------
# Physical constants (CODATA 2018 where applicable)
# ---------------------------------------------------------------------------

#: Stefan-Boltzmann constant [W/(m²·K⁴)].
STEFAN_BOLTZMANN = 5.670374419e-8

#: Standard gravitational acceleration [m/s²].
G0 = 9.80665

#: Universal gas constant [J/(mol·K)].
R_UNIVERSAL = 8.314462618

#: Boltzmann constant [eV/K] — used by Arrhenius reliability models.
BOLTZMANN_EV = 8.617333262e-5

#: Absolute zero offset between Celsius and Kelvin scales.
ZERO_CELSIUS = 273.15

#: Standard atmospheric pressure [Pa].
ATM = 101_325.0


# ---------------------------------------------------------------------------
# Temperature
# ---------------------------------------------------------------------------

def celsius_to_kelvin(temp_c: float) -> float:
    """Convert a temperature from degrees Celsius to kelvin.

    Raises :class:`~avipack.errors.InputError` if the result would be below
    absolute zero.
    """
    temp_k = temp_c + ZERO_CELSIUS
    if temp_k < 0.0:
        raise InputError(f"temperature {temp_c} degC is below absolute zero")
    return temp_k


def kelvin_to_celsius(temp_k: float) -> float:
    """Convert a temperature from kelvin to degrees Celsius."""
    if temp_k < 0.0:
        raise InputError(f"temperature {temp_k} K is below absolute zero")
    return temp_k - ZERO_CELSIUS


# ---------------------------------------------------------------------------
# Heat flux and thermal resistance
# ---------------------------------------------------------------------------

def w_per_cm2_to_si(flux_w_cm2: float) -> float:
    """Convert a heat flux from W/cm² to W/m²."""
    return flux_w_cm2 * 1.0e4


def si_to_w_per_cm2(flux_w_m2: float) -> float:
    """Convert a heat flux from W/m² to W/cm²."""
    return flux_w_m2 * 1.0e-4


def kmm2_per_w_to_si(resistance_kmm2_w: float) -> float:
    """Convert an area-specific thermal resistance from K·mm²/W to K·m²/W.

    The K·mm²/W unit is the standard way thermal-interface-material data
    sheets (and the NANOPACK project) quote interface resistance.
    """
    return resistance_kmm2_w * 1.0e-6


def si_to_kmm2_per_w(resistance_km2_w: float) -> float:
    """Convert an area-specific thermal resistance from K·m²/W to K·mm²/W."""
    return resistance_km2_w * 1.0e6


# ---------------------------------------------------------------------------
# ARINC 600 style mass-flow specifications
# ---------------------------------------------------------------------------

def arinc_flow_to_kg_per_s(flow_kg_h_per_kw: float, power_w: float) -> float:
    """Convert an ARINC 600 cooling-air allocation to an absolute mass flow.

    Parameters
    ----------
    flow_kg_h_per_kw:
        Specific mass flow in kg/h per kW of dissipated power (the ARINC 600
        standard allocation is 220 kg/h/kW).
    power_w:
        Equipment dissipation in watts.

    Returns
    -------
    float
        Mass flow in kg/s.
    """
    if power_w < 0.0:
        raise InputError("power must be non-negative")
    if flow_kg_h_per_kw < 0.0:
        raise InputError("flow allocation must be non-negative")
    return flow_kg_h_per_kw * (power_w / 1000.0) / 3600.0


def kg_per_s_to_arinc_flow(mass_flow_kg_s: float, power_w: float) -> float:
    """Express an absolute mass flow as kg/h per kW of dissipation."""
    if power_w <= 0.0:
        raise InputError("power must be positive to normalise a flow")
    return mass_flow_kg_s * 3600.0 / (power_w / 1000.0)


# ---------------------------------------------------------------------------
# Acceleration, frequency, misc
# ---------------------------------------------------------------------------

def g_to_m_s2(accel_g: float) -> float:
    """Convert an acceleration from g units to m/s²."""
    return accel_g * G0


def m_s2_to_g(accel_m_s2: float) -> float:
    """Convert an acceleration from m/s² to g units."""
    return accel_m_s2 / G0


def rpm_to_hz(rpm: float) -> float:
    """Convert a rotation speed from revolutions per minute to hertz."""
    return rpm / 60.0


def db_per_octave_slope(value_a: float, freq_a: float, freq_b: float,
                        slope_db_oct: float) -> float:
    """Extrapolate a PSD value along a dB/octave slope.

    Vibration specifications such as DO-160 define acceleration spectral
    densities by a flat plateau plus rising/falling slopes expressed in
    dB per octave.  Given the PSD ``value_a`` at frequency ``freq_a``, this
    returns the PSD at ``freq_b`` along a ``slope_db_oct`` slope.
    """
    if value_a < 0.0:
        raise InputError("PSD value must be non-negative")
    if freq_a <= 0.0 or freq_b <= 0.0:
        raise InputError("frequencies must be positive")
    octaves = math.log2(freq_b / freq_a)
    return value_a * 10.0 ** (slope_db_oct * octaves / 10.0)


def mil_to_m(mils: float) -> float:
    """Convert a length from mils (thousandths of an inch) to metres."""
    return mils * 25.4e-6


def inch_to_m(inches: float) -> float:
    """Convert a length from inches to metres."""
    return inches * 25.4e-3


def hours_to_seconds(hours: float) -> float:
    """Convert a duration from hours to seconds."""
    return hours * 3600.0


def seconds_to_hours(seconds: float) -> float:
    """Convert a duration from seconds to hours."""
    return seconds / 3600.0
