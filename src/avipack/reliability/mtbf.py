"""Reliability prediction: part failure rates and MTBF roll-up.

Level-3 thermal simulation exists, per the paper, because "the
[junction] temperature will be used as an input data for the safety and
reliability calculations — typical MTBF for aerospace applications is
about 40,000 h".  This module implements the MIL-HDBK-217F-style parts
count/parts stress flow:

* per-part base failure rates scaled by an Arrhenius temperature
  acceleration factor π_T, a quality factor π_Q and an environment
  factor π_E;
* a series-system roll-up to equipment failure rate and MTBF;
* derating checks against the 125 °C junction / 85 °C ambient rules
  quoted in the paper.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Sequence, Tuple

from ..errors import InputError
from ..units import BOLTZMANN_EV, celsius_to_kelvin

#: Environment factors π_E (MIL-HDBK-217F style).
ENVIRONMENT_FACTORS: Dict[str, float] = {
    "ground_benign": 0.5,
    "ground_fixed": 2.0,
    "airborne_inhabited_cargo": 4.0,
    "airborne_inhabited_fighter": 5.0,
    "airborne_uninhabited_cargo": 5.0,
    "airborne_uninhabited_fighter": 8.0,
    "space_flight": 0.5,
    "missile_launch": 12.0,
}

#: Quality factors π_Q.
QUALITY_FACTORS: Dict[str, float] = {
    "space": 0.25,
    "full_mil": 1.0,
    "industrial": 2.0,
    "commercial_cots": 5.0,  # the paper's "low-cost plastic/COTS" concern
}

#: Reference junction temperature for base failure rates [K].
REFERENCE_JUNCTION = celsius_to_kelvin(40.0)

#: Paper's derating ceilings.
MAX_JUNCTION = celsius_to_kelvin(125.0)
MAX_AMBIENT = celsius_to_kelvin(85.0)


@dataclass(frozen=True)
class PartReliability:
    """Reliability model of one electronic part.

    Parameters
    ----------
    name:
        Reference designator or type.
    base_failure_rate_fit:
        Base failure rate at :data:`REFERENCE_JUNCTION` [FIT = 1e-9/h].
    activation_energy_ev:
        Arrhenius activation energy [eV] (0.3–0.7 typical for silicon
        mechanisms; 0.4 default).
    quality:
        Key into :data:`QUALITY_FACTORS`.
    """

    name: str
    base_failure_rate_fit: float
    activation_energy_ev: float = 0.4
    quality: str = "industrial"

    def __post_init__(self) -> None:
        if self.base_failure_rate_fit <= 0.0:
            raise InputError(f"{self.name}: base failure rate must be "
                             "positive")
        if self.activation_energy_ev <= 0.0:
            raise InputError(f"{self.name}: activation energy must be "
                             "positive")
        if self.quality not in QUALITY_FACTORS:
            raise InputError(f"{self.name}: unknown quality "
                             f"{self.quality!r}; known: "
                             f"{sorted(QUALITY_FACTORS)}")

    def temperature_factor(self, junction_temperature: float) -> float:
        """Arrhenius acceleration π_T relative to the reference junction.

        π_T = exp[(Ea/k)·(1/T_ref − 1/T_j)].
        """
        if junction_temperature <= 0.0:
            raise InputError("junction temperature must be positive kelvin")
        return math.exp(self.activation_energy_ev / BOLTZMANN_EV
                        * (1.0 / REFERENCE_JUNCTION
                           - 1.0 / junction_temperature))

    def failure_rate_fit(self, junction_temperature: float,
                         environment: str) -> float:
        """Predicted failure rate [FIT] at temperature and environment."""
        if environment not in ENVIRONMENT_FACTORS:
            raise InputError(f"unknown environment {environment!r}; known: "
                             f"{sorted(ENVIRONMENT_FACTORS)}")
        return (self.base_failure_rate_fit
                * self.temperature_factor(junction_temperature)
                * QUALITY_FACTORS[self.quality]
                * ENVIRONMENT_FACTORS[environment])


@dataclass(frozen=True)
class ReliabilityPrediction:
    """Equipment-level reliability roll-up result."""

    total_failure_rate_fit: float
    mtbf_hours: float
    per_part_fit: Dict[str, float]
    derating_violations: Tuple[str, ...]

    @property
    def compliant_40k(self) -> bool:
        """True if the paper's typical 40 000 h aerospace MTBF is met and
        no derating rule is violated."""
        return self.mtbf_hours >= 40_000.0 and not self.derating_violations


def predict_mtbf(parts: Sequence[PartReliability],
                 junction_temperatures: Dict[str, float],
                 environment: str = "airborne_inhabited_cargo",
                 ambient_temperature: float = celsius_to_kelvin(55.0)
                 ) -> ReliabilityPrediction:
    """Series-system MTBF from per-part junction temperatures.

    ``junction_temperatures`` maps part name → T_j [K] (the level-3
    simulation output).  Parts missing from the map raise
    :class:`InputError` — a junction temperature is mandatory input to the
    reliability calculation, exactly as the design flow prescribes.
    """
    if not parts:
        raise InputError("need at least one part")
    if ambient_temperature <= 0.0:
        raise InputError("ambient temperature must be positive kelvin")
    per_part: Dict[str, float] = {}
    violations = []
    if ambient_temperature > MAX_AMBIENT:
        violations.append(
            f"ambient {ambient_temperature - 273.15:.0f} degC exceeds the "
            f"85 degC rule")
    for part in parts:
        if part.name not in junction_temperatures:
            raise InputError(
                f"no junction temperature supplied for part {part.name!r}")
        t_j = junction_temperatures[part.name]
        if t_j > MAX_JUNCTION:
            violations.append(
                f"{part.name}: junction {t_j - 273.15:.0f} degC exceeds "
                "the 125 degC rule")
        per_part[part.name] = part.failure_rate_fit(t_j, environment)
    total_fit = sum(per_part.values())
    mtbf_hours = 1.0e9 / total_fit
    return ReliabilityPrediction(
        total_failure_rate_fit=total_fit,
        mtbf_hours=mtbf_hours,
        per_part_fit=per_part,
        derating_violations=tuple(violations),
    )


def mtbf_improvement_factor(parts: Sequence[PartReliability],
                            junction_before: Dict[str, float],
                            junction_after: Dict[str, float],
                            environment: str = "airborne_inhabited_cargo"
                            ) -> float:
    """MTBF ratio after/before a cooling improvement.

    Quantifies the reliability payoff of, e.g., retrofitting LHPs: a
    32 °C junction drop roughly halves every Arrhenius failure rate.
    """
    before = predict_mtbf(parts, junction_before, environment)
    after = predict_mtbf(parts, junction_after, environment)
    return after.mtbf_hours / before.mtbf_hours


def fan_reliability_penalty(equipment_failure_rate_fit: float,
                            n_fans: int,
                            fan_failure_rate_fit: float = 8000.0) -> float:
    """MTBF ratio of a fan-cooled equipment to its passive equivalent.

    Fans dominate electronics failure budgets (the paper's motivation for
    *passive* SEB cooling: "reliability and maintenance concern").  A
    typical tube-axial fan contributes several thousand FIT.
    """
    if equipment_failure_rate_fit <= 0.0:
        raise InputError("equipment failure rate must be positive")
    if n_fans < 0:
        raise InputError("fan count must be non-negative")
    if fan_failure_rate_fit <= 0.0:
        raise InputError("fan failure rate must be positive")
    with_fans = equipment_failure_rate_fit + n_fans * fan_failure_rate_fit
    return equipment_failure_rate_fit / with_fans
