"""Mission-profile reliability: duty-cycle-weighted failure rates.

Avionics equipment does not live at one operating point: a flight mixes
ground soak, taxi, climb, cruise and descent, each with its own ambient,
cooling state and vibration environment.  The MIL-HDBK-217 practice is
to weight the per-phase failure rates by time fraction; this module
implements that roll-up on top of :mod:`avipack.reliability.mtbf`, plus
the classic trade study of *dispatch with failed cooling* (e.g. an LHP
or fan out) that a safety case needs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Sequence, Tuple

from ..errors import InputError
from .mtbf import PartReliability, ReliabilityPrediction, predict_mtbf


@dataclass(frozen=True)
class MissionPhase:
    """One phase of the mission profile.

    Parameters
    ----------
    name:
        Phase identifier ("cruise", "ground_soak", ...).
    time_fraction:
        Fraction of total mission time spent in this phase (0–1; the
        profile must sum to 1).
    junction_temperatures:
        Part name → T_j [K] in this phase (from the thermal model solved
        at the phase's ambient/cooling state).
    environment:
        MIL-HDBK-217 environment key for this phase.
    """

    name: str
    time_fraction: float
    junction_temperatures: Dict[str, float]
    environment: str = "airborne_inhabited_cargo"

    def __post_init__(self) -> None:
        if not self.name:
            raise InputError("phase name must be non-empty")
        if not 0.0 < self.time_fraction <= 1.0:
            raise InputError(
                f"{self.name}: time fraction must be in (0, 1]")
        if not self.junction_temperatures:
            raise InputError(
                f"{self.name}: junction temperatures are required")


@dataclass(frozen=True)
class MissionPrediction:
    """Mission-weighted reliability outcome."""

    mtbf_hours: float
    total_failure_rate_fit: float
    per_phase: Dict[str, ReliabilityPrediction]
    worst_phase: str

    @property
    def compliant_40k(self) -> bool:
        """The paper's 40 000 h target, on the mission-weighted figure."""
        return self.mtbf_hours >= 40_000.0


def predict_mission_mtbf(parts: Sequence[PartReliability],
                         phases: Sequence[MissionPhase]
                         ) -> MissionPrediction:
    """Duty-cycle-weighted MTBF over a mission profile.

    λ_mission = Σ_phases f_i · λ_i;  MTBF = 1e9 / λ_mission [h].

    Raises :class:`InputError` when the time fractions do not sum to 1
    (within 1 %) — a profile that forgets a phase silently corrupts the
    prediction.
    """
    if not phases:
        raise InputError("need at least one mission phase")
    total_fraction = sum(phase.time_fraction for phase in phases)
    if abs(total_fraction - 1.0) > 0.01:
        raise InputError(
            f"phase time fractions sum to {total_fraction:.3f}, not 1")
    names = [phase.name for phase in phases]
    if len(set(names)) != len(names):
        raise InputError("phase names must be unique")

    per_phase: Dict[str, ReliabilityPrediction] = {}
    weighted_rate = 0.0
    for phase in phases:
        prediction = predict_mtbf(parts, phase.junction_temperatures,
                                  environment=phase.environment)
        per_phase[phase.name] = prediction
        weighted_rate += phase.time_fraction \
            * prediction.total_failure_rate_fit
    worst = max(per_phase, key=lambda name:
                per_phase[name].total_failure_rate_fit)
    return MissionPrediction(
        mtbf_hours=1.0e9 / weighted_rate,
        total_failure_rate_fit=weighted_rate,
        per_phase=per_phase,
        worst_phase=worst,
    )


def degraded_cooling_penalty(parts: Sequence[PartReliability],
                             nominal_junctions: Dict[str, float],
                             degraded_junctions: Dict[str, float],
                             degraded_exposure: float = 0.05,
                             environment: str = "airborne_inhabited_cargo"
                             ) -> Tuple[float, float]:
    """Reliability cost of dispatching with degraded cooling.

    Compares the nominal MTBF with a mission that spends
    ``degraded_exposure`` of its time at the degraded junction
    temperatures (one LHP failed, fan out, blocked filter...).  Returns
    ``(nominal_mtbf_hours, degraded_mission_mtbf_hours)``.
    """
    if not 0.0 < degraded_exposure < 1.0:
        raise InputError("degraded exposure must be in (0, 1)")
    nominal = predict_mtbf(parts, nominal_junctions,
                           environment=environment)
    mission = predict_mission_mtbf(parts, [
        MissionPhase("nominal", 1.0 - degraded_exposure,
                     nominal_junctions, environment),
        MissionPhase("degraded", degraded_exposure, degraded_junctions,
                     environment),
    ])
    return nominal.mtbf_hours, mission.mtbf_hours


def standard_flight_profile(junctions_ground: Dict[str, float],
                            junctions_climb: Dict[str, float],
                            junctions_cruise: Dict[str, float]
                            ) -> Tuple[MissionPhase, ...]:
    """A representative short-haul profile: 15 % ground / 15 % climb+
    descent / 70 % cruise."""
    return (
        MissionPhase("ground", 0.15, junctions_ground,
                     environment="ground_fixed"),
        MissionPhase("climb_descent", 0.15, junctions_climb),
        MissionPhase("cruise", 0.70, junctions_cruise),
    )
