"""Reliability prediction from junction temperatures (level-3 output)."""

from .mission import (
    MissionPhase,
    MissionPrediction,
    degraded_cooling_penalty,
    predict_mission_mtbf,
    standard_flight_profile,
)
from .mtbf import (
    ENVIRONMENT_FACTORS,
    MAX_AMBIENT,
    MAX_JUNCTION,
    QUALITY_FACTORS,
    REFERENCE_JUNCTION,
    PartReliability,
    ReliabilityPrediction,
    fan_reliability_penalty,
    mtbf_improvement_factor,
    predict_mtbf,
)

__all__ = [
    "ENVIRONMENT_FACTORS",
    "MissionPhase",
    "MissionPrediction",
    "degraded_cooling_penalty",
    "predict_mission_mtbf",
    "standard_flight_profile",
    "MAX_AMBIENT",
    "MAX_JUNCTION",
    "PartReliability",
    "QUALITY_FACTORS",
    "REFERENCE_JUNCTION",
    "ReliabilityPrediction",
    "fan_reliability_penalty",
    "mtbf_improvement_factor",
    "predict_mtbf",
]
