"""Exception hierarchy for :mod:`avipack`.

All errors raised by the library derive from :class:`AvipackError` so that
callers can catch the whole family with a single ``except`` clause.  The
subclasses mirror the major failure categories encountered in a packaging
design flow: bad user input, a solver that failed to converge, a physical
model driven outside its validity envelope, and a design that violates its
specification.
"""

from __future__ import annotations


class AvipackError(Exception):
    """Base class for every exception raised by the library."""


class InputError(AvipackError, ValueError):
    """An argument is malformed, out of range, or inconsistent.

    Raised eagerly by constructors and solver entry points so that bad
    input is reported at the call site rather than deep inside a solver.
    """


class ConvergenceError(AvipackError, RuntimeError):
    """An iterative solver exhausted its iteration budget.

    Attributes
    ----------
    iterations:
        Number of iterations performed before giving up.
    residual:
        Last residual norm observed (``float('nan')`` if unknown).
    """

    def __init__(self, message: str, iterations: int = 0,
                 residual: float = float("nan")) -> None:
        super().__init__(message)
        self.iterations = iterations
        self.residual = residual


class ModelRangeError(AvipackError, ValueError):
    """A correlation or property model was evaluated outside its validity.

    Examples: a fluid property requested above the critical temperature, a
    Nusselt correlation outside its Reynolds range, a wick model with a
    non-physical porosity.
    """


class OperatingLimitError(AvipackError, RuntimeError):
    """A two-phase device was asked to operate beyond a physical limit.

    Raised, e.g., when a heat pipe is loaded above its capillary limit or a
    loop heat pipe beyond the wick's maximum pumping pressure.  The
    ``limit_name`` attribute identifies the limiting mechanism.
    """

    def __init__(self, message: str, limit_name: str = "",
                 limit_value: float = float("nan")) -> None:
        super().__init__(message)
        self.limit_name = limit_name
        self.limit_value = limit_value


class SpecificationError(AvipackError):
    """A design violates its specification (used by the core design flow).

    Carries the list of violated requirement identifiers so qualification
    reports can enumerate failures.
    """

    def __init__(self, message: str, violations: tuple = ()) -> None:
        super().__init__(message)
        self.violations = tuple(violations)


class MaterialNotFoundError(AvipackError, KeyError):
    """A material or fluid name is absent from the library database."""
