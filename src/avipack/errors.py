"""Exception hierarchy for :mod:`avipack`.

All errors raised by the library derive from :class:`AvipackError` so that
callers can catch the whole family with a single ``except`` clause.  The
subclasses mirror the major failure categories encountered in a packaging
design flow: bad user input, a solver that failed to converge, a physical
model driven outside its validity envelope, and a design that violates its
specification.

Exceptions that carry extra constructor arguments define ``__reduce__``
so they survive pickling intact: sweep worker processes raise them, and
the parent re-materialises them with every diagnostic attribute (not
just the message, which is all the default ``Exception`` reduction
preserves).
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, Optional, Tuple


class AvipackError(Exception):
    """Base class for every exception raised by the library."""


class InputError(AvipackError, ValueError):
    """An argument is malformed, out of range, or inconsistent.

    Raised eagerly by constructors and solver entry points so that bad
    input is reported at the call site rather than deep inside a solver.
    """


class ConvergenceError(AvipackError, RuntimeError):
    """An iterative solver exhausted its iteration budget.

    Attributes
    ----------
    iterations:
        Number of iterations performed before giving up.
    residual:
        Last residual norm observed (``float('nan')`` if unknown).
    last_iterate:
        Optional snapshot of the solver state at the moment it gave up
        (for the network solver: node name → temperature [K]).  Retry
        policies use it to warm-start the next, better-damped attempt.
    """

    def __init__(self, message: str, iterations: int = 0,
                 residual: float = float("nan"),
                 last_iterate: Optional[Dict[str, float]] = None) -> None:
        super().__init__(message)
        self.iterations = iterations
        self.residual = residual
        self.last_iterate = last_iterate

    def __reduce__(self) -> Tuple[Any, ...]:
        return (self.__class__, (self.args[0] if self.args else "",
                                 self.iterations, self.residual,
                                 self.last_iterate))


class ModelRangeError(AvipackError, ValueError):
    """A correlation or property model was evaluated outside its validity.

    Examples: a fluid property requested above the critical temperature, a
    Nusselt correlation outside its Reynolds range, a wick model with a
    non-physical porosity.
    """


class OperatingLimitError(AvipackError, RuntimeError):
    """A two-phase device was asked to operate beyond a physical limit.

    Raised, e.g., when a heat pipe is loaded above its capillary limit or a
    loop heat pipe beyond the wick's maximum pumping pressure.  The
    ``limit_name`` attribute identifies the limiting mechanism.
    """

    def __init__(self, message: str, limit_name: str = "",
                 limit_value: float = float("nan")) -> None:
        super().__init__(message)
        self.limit_name = limit_name
        self.limit_value = limit_value

    def __reduce__(self) -> Tuple[Any, ...]:
        return (self.__class__, (self.args[0] if self.args else "",
                                 self.limit_name, self.limit_value))


class SpecificationError(AvipackError):
    """A design violates its specification (used by the core design flow).

    Carries the list of violated requirement identifiers so qualification
    reports can enumerate failures.
    """

    def __init__(self, message: str,
                 violations: Iterable[object] = ()) -> None:
        super().__init__(message)
        self.violations = tuple(violations)

    def __reduce__(self) -> Tuple[Any, ...]:
        return (self.__class__, (self.args[0] if self.args else "",
                                 self.violations))


class MaterialNotFoundError(AvipackError, KeyError):
    """A material or fluid name is absent from the library database."""


class WatchdogTimeout(AvipackError, TimeoutError):
    """A supervised evaluation exceeded its watchdog time budget.

    Raised directly by the fault injector's simulated hangs, and used as
    the failure classification when :class:`avipack.sweep.SweepRunner`'s
    per-candidate watchdog abandons a worker that stopped responding.
    """


class WorkerCrashError(AvipackError, RuntimeError):
    """A sweep worker process died (or was made to die) mid-evaluation.

    In a real parallel sweep the pool surfaces this as
    ``BrokenProcessPool``; the runner retries the unfinished candidates
    serially, where an injected crash raises this exception instead of
    killing the (only) interpreter, keeping serial and parallel failure
    classifications identical.
    """


class CacheCorruptionError(AvipackError, RuntimeError):
    """A solver-cache entry could not be read back.

    :class:`avipack.sweep.SolverCache` treats it — and any other error
    raised while loading a stored entry — as a cache miss: the entry is
    evicted, counted in the ``corrupt`` statistic, and recomputed.
    """


class DurabilityError(AvipackError, RuntimeError):
    """A durability-layer invariant cannot be upheld.

    Base of :class:`JournalError`; raised directly for cross-process
    hazards such as advisory-lock contention on a journal file — two
    processes appending to the same journal would interleave records,
    which no checksum can repair, so the second writer is refused up
    front instead.
    """


class ServiceError(AvipackError, RuntimeError):
    """A sweep-service request failed with a structured reason.

    Carries the machine-readable ``code`` the server attached to the
    rejection (``"queue_full"``, ``"quota_exceeded"``, ``"draining"``,
    ``"replay_gap"``, ...) so clients can branch on the reason without
    parsing the human-readable message.
    """

    def __init__(self, message: str, code: str = "error") -> None:
        super().__init__(message)
        self.code = code

    def __reduce__(self) -> Tuple[Any, ...]:
        return (self.__class__, (self.args[0] if self.args else "",
                                 self.code))


class ResultStoreError(DurabilityError):
    """A columnar result store cannot be written or served.

    Individual damaged *shards* never raise — they are renamed to a
    ``.quarantine`` sidecar at open and their rows recomputed or
    re-ingested from the journal (see :mod:`avipack.results.store`).
    This error is reserved for the cases the store cannot work around:
    writer-lock contention, a missing blob pool behind a lazy fetch, or
    a blob whose checksum no longer matches its row.

    ``reason`` classifies the damage for the quarantine sidecars and
    the per-reason ``results.quarantined_*`` counters: ``"header"``
    (unparseable header, wrong magic, stale schema, dtype or row-count
    disagreement), ``"checksum"`` (CRC-32 or SHA-256 mismatch over the
    payload), ``"truncation"`` (payload shorter or longer than the
    header promises, or unreadable bytes), or the default ``"error"``
    for non-shard failures.
    """

    def __init__(self, message: str, reason: str = "error") -> None:
        super().__init__(message)
        self.reason = reason

    def __reduce__(self) -> Tuple[Any, ...]:
        return (self.__class__, (self.args[0] if self.args else "",
                                 self.reason))


class JournalError(DurabilityError):
    """A sweep write-ahead journal cannot support a resume.

    Individual damaged records never raise — they are quarantined to the
    ``.quarantine`` sidecar and their candidates recomputed (see
    :mod:`avipack.durability.journal`).  This error is reserved for the
    cases where resuming is *impossible*: the journal file is missing or
    unreadable, or no intact plan record survives to name the candidate
    set.
    """
