"""Structured finite-volume heat-conduction solver.

This is the "FloTHERM-like" substrate used at levels 2 and 3 of the design
flow: a Cartesian grid over a board or module with per-cell (possibly
orthotropic) conductivity, volumetric heat sources for dissipating regions
and mixed boundary conditions (fixed temperature, convection film, fixed
flux, adiabatic) on the six faces.

Steady problems assemble the standard 7-point (3-D) finite-volume stencil
with harmonic-mean face conductivities and solve the sparse linear system
directly.  Transient problems use unconditionally stable backward-Euler
stepping on the same operator.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, Optional, Tuple

import numpy as np
from scipy.sparse import coo_matrix, csr_matrix, identity
from scipy.sparse.linalg import factorized, spsolve

from .. import perf
from ..errors import InputError
from ..fingerprint import stable_fingerprint

#: The six faces of the domain, by outward axis direction.
FACES = ("x_min", "x_max", "y_min", "y_max", "z_min", "z_max")


@dataclass(frozen=True)
class BoundaryCondition:
    """Boundary condition on one domain face.

    ``kind`` is one of

    * ``"adiabatic"`` — zero flux (the default on every face);
    * ``"temperature"`` — fixed surface temperature ``value`` [K];
    * ``"convection"`` — film coefficient ``value`` [W/(m²·K)] to an
      ambient at ``ambient`` [K];
    * ``"flux"`` — imposed inward heat flux ``value`` [W/m²].
    """

    kind: str
    value: float = 0.0
    ambient: float = 293.15

    def __post_init__(self) -> None:
        if self.kind not in ("adiabatic", "temperature", "convection", "flux"):
            raise InputError(f"unknown boundary kind {self.kind!r}")
        if self.kind == "temperature" and self.value <= 0.0:
            raise InputError("fixed temperature must be positive kelvin")
        if self.kind == "convection":
            if self.value <= 0.0:
                raise InputError("film coefficient must be positive")
            if self.ambient <= 0.0:
                raise InputError("ambient temperature must be positive")


ADIABATIC = BoundaryCondition("adiabatic")


class CartesianGrid:
    """Uniform Cartesian grid with per-cell material fields.

    Parameters
    ----------
    shape:
        Cell counts ``(nx, ny, nz)``; use 1 along collapsed axes for 1-D
        or 2-D problems.
    size:
        Physical extents ``(lx, ly, lz)`` in metres.
    conductivity:
        Default isotropic conductivity [W/(m·K)] filled into all cells.
    density, specific_heat:
        Defaults for transient problems.
    """

    def __init__(self, shape: Tuple[int, int, int],
                 size: Tuple[float, float, float],
                 conductivity: float = 1.0,
                 density: float = 1000.0,
                 specific_heat: float = 1000.0) -> None:
        if len(shape) != 3 or len(size) != 3:
            raise InputError("shape and size must be 3-tuples")
        if any(int(n) < 1 for n in shape):
            raise InputError("cell counts must be >= 1")
        if any(s <= 0.0 for s in size):
            raise InputError("extents must be positive")
        if conductivity <= 0.0 or density <= 0.0 or specific_heat <= 0.0:
            raise InputError("material defaults must be positive")
        self.shape = tuple(int(n) for n in shape)
        self.size = tuple(float(s) for s in size)
        self.spacing = tuple(
            s / n for s, n in zip(self.size, self.shape, strict=True))
        full = self.shape
        self.kx = np.full(full, float(conductivity))
        self.ky = np.full(full, float(conductivity))
        self.kz = np.full(full, float(conductivity))
        self.source = np.zeros(full)  # volumetric source [W/m³]
        self.rho_cp = np.full(full, float(density) * float(specific_heat))

    # -- geometry helpers ----------------------------------------------------

    @property
    def n_cells(self) -> int:
        """Total number of cells."""
        nx, ny, nz = self.shape
        return nx * ny * nz

    @property
    def cell_volume(self) -> float:
        """Volume of one cell [m³]."""
        dx, dy, dz = self.spacing
        return dx * dy * dz

    def cell_centers(self, axis: int) -> np.ndarray:
        """Cell-centre coordinates along ``axis`` (0=x, 1=y, 2=z) [m]."""
        if axis not in (0, 1, 2):
            raise InputError("axis must be 0, 1 or 2")
        n = self.shape[axis]
        d = self.spacing[axis]
        return (np.arange(n) + 0.5) * d

    def region_slices(self, x_range: Tuple[float, float],
                      y_range: Tuple[float, float],
                      z_range: Tuple[float, float]) -> Tuple[slice, slice, slice]:
        """Cell-index slices covering a physical box (inclusive of partially
        covered cells whose centres fall inside the box)."""
        slices = []
        for axis, (lo, hi) in enumerate((x_range, y_range, z_range)):
            if lo > hi:
                raise InputError("range lower bound exceeds upper bound")
            centers = self.cell_centers(axis)
            inside = np.where((centers >= lo) & (centers <= hi))[0]
            if inside.size == 0:
                raise InputError(
                    f"region does not cover any cell centre on axis {axis}")
            slices.append(slice(int(inside[0]), int(inside[-1]) + 1))
        return tuple(slices)

    # -- field editing ---------------------------------------------------------

    def set_material(self, region: Tuple[slice, slice, slice],
                     conductivity: float,
                     density: Optional[float] = None,
                     specific_heat: Optional[float] = None,
                     conductivity_z: Optional[float] = None) -> None:
        """Assign material properties in a region of cells.

        ``conductivity_z`` allows orthotropic boards (in-plane value in
        ``conductivity``, through-thickness value in ``conductivity_z``).

        Every argument is validated *before* any field is written, so a
        rejected call never leaves the grid partially mutated; an
        explicit ``conductivity_z`` is honoured even when it equals a
        falsy-looking value (only ``None`` means "use the isotropic
        value", and non-positive values are rejected).
        """
        if conductivity <= 0.0:
            raise InputError("conductivity must be positive")
        if conductivity_z is not None and conductivity_z <= 0.0:
            raise InputError("conductivity_z must be positive")
        rho_cp = None
        if density is not None or specific_heat is not None:
            rho = density if density is not None else 1000.0
            cp = specific_heat if specific_heat is not None else 1000.0
            if rho <= 0.0 or cp <= 0.0:
                raise InputError("density and cp must be positive")
            rho_cp = rho * cp
        self.kx[region] = conductivity
        self.ky[region] = conductivity
        self.kz[region] = (conductivity_z if conductivity_z is not None
                           else conductivity)
        if rho_cp is not None:
            self.rho_cp[region] = rho_cp

    def add_power(self, region: Tuple[slice, slice, slice],
                  power: float) -> None:
        """Distribute ``power`` [W] uniformly over the region's cells."""
        if power < 0.0:
            raise InputError("power must be non-negative")
        count = int(np.prod([s.stop - s.start for s in region]))
        if count == 0:
            raise InputError("region covers no cells")
        self.source[region] += power / (count * self.cell_volume)

    def total_power(self) -> float:
        """Total volumetric source power over the grid [W]."""
        return float(self.source.sum() * self.cell_volume)

    def fingerprint(self) -> str:
        """Stable content fingerprint of the grid's full state.

        Covers the geometry and every material/source field byte-for-
        byte, so two grids built through different call sequences but
        holding identical fields hash identically.  Used by the sweep
        cache to memoise solves across process boundaries.
        """
        return stable_fingerprint(
            "cartesian_grid", self.shape, self.size,
            self.kx, self.ky, self.kz, self.source, self.rho_cp)


@dataclass(frozen=True)
class ConductionSolution:
    """Steady conduction result.

    ``temperatures`` has the grid's cell shape.  Convenience accessors
    return hot-spot data used by the design flow.
    """

    grid: CartesianGrid
    temperatures: np.ndarray

    @property
    def max_temperature(self) -> float:
        """Peak cell temperature [K]."""
        return float(self.temperatures.max())

    @property
    def min_temperature(self) -> float:
        """Lowest cell temperature [K]."""
        return float(self.temperatures.min())

    def hotspot_index(self) -> Tuple[int, int, int]:
        """Cell index of the peak temperature."""
        flat = int(np.argmax(self.temperatures))
        return tuple(int(i) for i in np.unravel_index(flat,
                                                      self.temperatures.shape))

    def mean_temperature(self) -> float:
        """Volume-average temperature [K]."""
        return float(self.temperatures.mean())


class ConductionSolver:
    """Finite-volume solver bound to a grid and boundary conditions."""

    def __init__(self, grid: CartesianGrid,
                 boundaries: Optional[Dict[str, BoundaryCondition]] = None
                 ) -> None:
        self.grid = grid
        self.boundaries: Dict[str, BoundaryCondition] = {
            face: ADIABATIC for face in FACES}
        for face, bc in (boundaries or {}).items():
            self.set_boundary(face, bc)

    def set_boundary(self, face: str, condition: BoundaryCondition) -> None:
        """Assign ``condition`` to a face (one of :data:`FACES`)."""
        if face not in FACES:
            raise InputError(f"unknown face {face!r}; expected one of {FACES}")
        self.boundaries[face] = condition

    # -- assembly ---------------------------------------------------------------

    def _assemble(self) -> Tuple[csr_matrix, np.ndarray]:
        """Assemble A·T = b for steady conduction (A is SPD-like M-matrix).

        Fully vectorised: interior-face conductances are computed as
        array slices per axis and scattered into COO triplets; boundary
        faces likewise operate on whole index planes.
        """
        grid = self.grid
        nx, ny, nz = grid.shape
        dx, dy, dz = grid.spacing
        n = grid.n_cells
        volume = grid.cell_volume

        index = np.arange(n).reshape(nx, ny, nz)
        rows_list = []
        cols_list = []
        vals_list = []
        rhs = (grid.source * volume).ravel().astype(float)

        k_fields = {0: grid.kx, 1: grid.ky, 2: grid.kz}
        spacings = {0: dx, 1: dy, 2: dz}
        face_areas = {0: dy * dz, 1: dx * dz, 2: dx * dy}

        def scatter(rows, cols, vals):
            rows_list.append(rows.ravel())
            cols_list.append(cols.ravel())
            vals_list.append(vals.ravel())

        # Interior faces: harmonic-mean conductance between neighbours.
        for axis in range(3):
            if grid.shape[axis] < 2:
                continue
            k_field = k_fields[axis]
            d = spacings[axis]
            area = face_areas[axis]
            lo = [slice(None)] * 3
            hi = [slice(None)] * 3
            lo[axis] = slice(None, -1)
            hi[axis] = slice(1, None)
            k1 = k_field[tuple(lo)]
            k2 = k_field[tuple(hi)]
            g = (2.0 * k1 * k2 / (k1 + k2)) * area / d
            a = index[tuple(lo)]
            b = index[tuple(hi)]
            scatter(a, a, g)
            scatter(b, b, g)
            scatter(a, b, -g)
            scatter(b, a, -g)

        # Boundary faces, one whole plane at a time.
        for face in FACES:
            bc = self.boundaries[face]
            if bc.kind == "adiabatic":
                continue
            axis = {"x": 0, "y": 1, "z": 2}[face[0]]
            layer = 0 if face.endswith("min") else grid.shape[axis] - 1
            d = spacings[axis]
            area = face_areas[axis]
            plane = [slice(None)] * 3
            plane[axis] = layer
            cells = index[tuple(plane)].ravel()
            if bc.kind == "flux":
                np.add.at(rhs, cells, bc.value * area)
                continue
            k_plane = k_fields[axis][tuple(plane)].ravel()
            g_half = k_plane * area / (d / 2.0)
            if bc.kind == "temperature":
                g = g_half
                np.add.at(rhs, cells, g * bc.value)
            else:  # convection
                g_film = bc.value * area
                g = g_half * g_film / (g_half + g_film)
                np.add.at(rhs, cells, g * bc.ambient)
            scatter(cells, cells, g)

        matrix = coo_matrix(
            (np.concatenate(vals_list),
             (np.concatenate(rows_list), np.concatenate(cols_list))),
            shape=(n, n)).tocsr()
        return matrix, rhs

    def _check_well_posed(self) -> None:
        if all(self.boundaries[f].kind in ("adiabatic", "flux")
               for f in FACES):
            raise InputError(
                "problem is singular: at least one face needs a temperature "
                "or convection boundary condition")

    def fingerprint(self) -> str:
        """Stable content fingerprint of the bound problem.

        Combines the grid state with the boundary-condition set — the
        key the sweep cache memoises :meth:`solve_steady` under.
        """
        return stable_fingerprint(
            "conduction_solver", self.grid.fingerprint(),
            tuple((face, self.boundaries[face]) for face in FACES))

    # -- solving ------------------------------------------------------------------

    def solve_steady(self, cache=None) -> ConductionSolution:
        """Solve the steady conduction problem.

        ``cache`` (optional, ``get_or_compute(key, compute)``) memoises
        the solution under :meth:`fingerprint`, so sweeps that rebuild
        an identical board model factorise the operator once per
        process.
        """
        if cache is not None:
            return cache.get_or_compute(self.fingerprint(),
                                        self.solve_steady)
        self._check_well_posed()
        start = time.perf_counter()
        matrix, rhs = self._assemble()
        temps = spsolve(matrix, rhs)
        perf.record("conduction.steady", assemblies=1, factorizations=1,
                    solves=1, wall_s=time.perf_counter() - start)
        return ConductionSolution(self.grid,
                                  np.asarray(temps).reshape(self.grid.shape))

    def solve_transient(self, initial_temperature: float, duration: float,
                        time_step: float,
                        max_steps: int = 200_000
                        ) -> "TransientConductionResult":
        """Backward-Euler transient solve from a uniform initial field.

        Returns the sampled temperature history.  Unconditionally stable;
        accuracy is first order in ``time_step``.

        ``max_steps`` guards against a mistyped ``time_step`` turning
        the solve into an unbounded loop (each step stores a full field,
        so runaway step counts also exhaust memory): a request needing
        more steps is rejected eagerly with :class:`InputError` instead
        of hanging the campaign.
        """
        if duration <= 0.0 or time_step <= 0.0:
            raise InputError("duration and time step must be positive")
        if initial_temperature <= 0.0:
            raise InputError("initial temperature must be positive kelvin")
        if max_steps < 1:
            raise InputError("max_steps must be >= 1")
        n_steps = max(1, int(round(duration / time_step)))
        if n_steps > max_steps:
            raise InputError(
                f"transient solve needs {n_steps} steps for duration "
                f"{duration:g} s at time_step {time_step:g} s, exceeding "
                f"max_steps={max_steps}; increase time_step or raise "
                "max_steps explicitly")
        self._check_well_posed()
        start = time.perf_counter()
        matrix, rhs = self._assemble()
        capacity = (self.grid.rho_cp * self.grid.cell_volume).ravel()
        system = identity(self.grid.n_cells, format="csr").multiply(
            capacity[:, None] / time_step) + matrix
        system = csr_matrix(system)
        # The operator is constant across the whole march (backward
        # Euler with fixed material fields and step size): factorize
        # once and back-substitute every step instead of refactorizing
        # O(n_steps) times inside spsolve.
        solve = factorized(system.tocsc())
        perf.record("conduction.transient", assemblies=1, factorizations=1)
        temps = np.full(self.grid.n_cells, float(initial_temperature))
        times = [0.0]
        history = [temps.reshape(self.grid.shape).copy()]
        for step in range(1, n_steps + 1):
            b = rhs + capacity / time_step * temps
            temps = np.asarray(solve(b))
            times.append(step * time_step)
            history.append(temps.reshape(self.grid.shape).copy())
        perf.record("conduction.transient", solves=1, iterations=n_steps,
                    factorization_reuses=n_steps - 1,
                    wall_s=time.perf_counter() - start)
        return TransientConductionResult(np.asarray(times),
                                         np.asarray(history), self.grid)


@dataclass(frozen=True)
class TransientConductionResult:
    """Sampled transient temperature history.

    ``times`` has shape (n_samples,), ``fields`` has shape
    (n_samples, nx, ny, nz).
    """

    times: np.ndarray
    fields: np.ndarray
    grid: CartesianGrid

    def max_temperature_history(self) -> np.ndarray:
        """Peak temperature at every sample [K]."""
        return self.fields.reshape(self.fields.shape[0], -1).max(axis=1)

    def final_field(self) -> np.ndarray:
        """The last temperature field."""
        return self.fields[-1]

    def time_to_reach(self, temperature: float) -> float:
        """First time the peak temperature reaches ``temperature`` [s].

        Returns ``inf`` if it is never reached within the simulated span.
        """
        peaks = self.max_temperature_history()
        hits = np.where(peaks >= temperature)[0]
        if hits.size == 0:
            return float("inf")
        return float(self.times[hits[0]])
