"""Convective heat-transfer correlations.

The correlations here replace the CFD step of a tool like FloTHERM with
validated engineering relations.  They cover the situations in the paper:

* **natural convection** around cabin equipment (the SEB with fans removed),
  on vertical/horizontal plates and from the seat-structure rods;
* **forced convection** in avionics racks supplied by ARINC 600 air
  (channel flow between boards, flow over components);
* helpers producing temperature-dependent conductance callables for
  :class:`avipack.thermal.network.ThermalNetwork`.

All functions take a :class:`~avipack.materials.fluids.FluidState` for the
film-temperature fluid properties and return a mean film coefficient
``h`` in W/(m²·K) or a Nusselt number.
"""

from __future__ import annotations

import math
from typing import Callable

from ..errors import InputError, ModelRangeError
from ..materials.fluids import FluidState, air_properties
from ..units import G0


def _check_positive(**values: float) -> None:
    for name, value in values.items():
        if value <= 0.0:
            raise InputError(f"{name} must be positive, got {value}")


# ---------------------------------------------------------------------------
# Dimensionless groups
# ---------------------------------------------------------------------------

def reynolds_number(fluid: FluidState, velocity: float,
                    length: float) -> float:
    """Reynolds number Re = ρ·V·L / µ."""
    _check_positive(velocity=velocity, length=length)
    return fluid.density * velocity * length / fluid.viscosity


def rayleigh_number(fluid: FluidState, delta_t: float, length: float) -> float:
    """Rayleigh number Ra = g·β·ΔT·L³ / (ν·α) for natural convection.

    ``delta_t`` is taken in absolute value; a zero ΔT returns 0.
    """
    _check_positive(length=length)
    nu = fluid.kinematic_viscosity
    alpha = fluid.thermal_diffusivity
    return G0 * fluid.expansion_coeff * abs(delta_t) * length ** 3 / (nu * alpha)


# ---------------------------------------------------------------------------
# Natural convection
# ---------------------------------------------------------------------------

def natural_convection_vertical_plate(fluid: FluidState, delta_t: float,
                                      height: float) -> float:
    """Mean film coefficient on a vertical plate (Churchill & Chu 1975).

    Valid for any Rayleigh number; returns h in W/(m²·K).  ``delta_t`` is
    the surface-to-ambient temperature difference and ``height`` the plate
    height.
    """
    ra = rayleigh_number(fluid, delta_t, height)
    pr = fluid.prandtl
    if ra <= 0.0:
        return 0.0
    term = (1.0 + (0.492 / pr) ** (9.0 / 16.0)) ** (8.0 / 27.0)
    nu = (0.825 + 0.387 * ra ** (1.0 / 6.0) / term) ** 2
    return nu * fluid.conductivity / height


def natural_convection_horizontal_plate_up(fluid: FluidState, delta_t: float,
                                           length: float,
                                           width: float) -> float:
    """Hot horizontal plate facing up (McAdams), h in W/(m²·K).

    ``length`` and ``width`` define the characteristic length
    L = A / P (area over perimeter).
    """
    _check_positive(length=length, width=width)
    l_char = (length * width) / (2.0 * (length + width))
    ra = rayleigh_number(fluid, delta_t, l_char)
    if ra <= 0.0:
        return 0.0
    if ra < 1e7:
        nu = 0.54 * ra ** 0.25
    else:
        nu = 0.15 * ra ** (1.0 / 3.0)
    return nu * fluid.conductivity / l_char


def natural_convection_horizontal_plate_down(fluid: FluidState,
                                             delta_t: float, length: float,
                                             width: float) -> float:
    """Hot horizontal plate facing down (McAdams), h in W/(m²·K)."""
    _check_positive(length=length, width=width)
    l_char = (length * width) / (2.0 * (length + width))
    ra = rayleigh_number(fluid, delta_t, l_char)
    if ra <= 0.0:
        return 0.0
    nu = 0.27 * ra ** 0.25
    return nu * fluid.conductivity / l_char


def natural_convection_horizontal_cylinder(fluid: FluidState, delta_t: float,
                                           diameter: float) -> float:
    """Horizontal cylinder (Churchill & Chu 1975), h in W/(m²·K).

    Used for the seat-structure rods that act as the LHP heat sink.
    """
    ra = rayleigh_number(fluid, delta_t, diameter)
    pr = fluid.prandtl
    if ra <= 0.0:
        return 0.0
    term = (1.0 + (0.559 / pr) ** (9.0 / 16.0)) ** (8.0 / 27.0)
    nu = (0.60 + 0.387 * ra ** (1.0 / 6.0) / term) ** 2
    return nu * fluid.conductivity / diameter


def natural_convection_enclosure(fluid: FluidState, delta_t: float,
                                 gap: float, height: float) -> float:
    """Vertical rectangular enclosure (MacGregor & Emery), h in W/(m²·K).

    Models the buried/enclosed zones around cabin equipment: two vertical
    walls ``gap`` apart and ``height`` tall.  Falls back to pure conduction
    (Nu = 1) at low Rayleigh number.
    """
    _check_positive(gap=gap, height=height)
    ra = rayleigh_number(fluid, delta_t, gap)
    aspect = height / gap
    if aspect < 1.0:
        raise ModelRangeError("enclosure correlation needs height >= gap")
    if ra < 1e3:
        nu = 1.0
    else:
        nu = max(1.0, 0.42 * ra ** 0.25 * fluid.prandtl ** 0.012
                 * aspect ** -0.3)
    return nu * fluid.conductivity / gap


# ---------------------------------------------------------------------------
# Forced convection
# ---------------------------------------------------------------------------

def forced_convection_flat_plate(fluid: FluidState, velocity: float,
                                 length: float) -> float:
    """Mean h over a flat plate with mixed laminar/turbulent boundary layer.

    Uses Nu = 0.664·Re^0.5·Pr^(1/3) in laminar flow and the mixed
    correlation Nu = (0.037·Re^0.8 − 871)·Pr^(1/3) past the transition at
    Re = 5·10⁵ (Incropera).  Returns h in W/(m²·K).
    """
    re = reynolds_number(fluid, velocity, length)
    pr = fluid.prandtl
    if re < 5e5:
        nu = 0.664 * math.sqrt(re) * pr ** (1.0 / 3.0)
    else:
        nu = (0.037 * re ** 0.8 - 871.0) * pr ** (1.0 / 3.0)
    return nu * fluid.conductivity / length


def forced_convection_duct(fluid: FluidState, velocity: float,
                           hydraulic_diameter: float,
                           heating: bool = True) -> float:
    """Fully developed duct flow, laminar or Dittus–Boelter turbulent.

    The card-to-card channel of an air-cooled rack is modelled as a duct of
    hydraulic diameter ``D_h = 4·A/P``.  Laminar flow (Re < 2300) uses the
    constant-Nu solution for parallel plates (Nu = 7.54); turbulent flow
    uses Nu = 0.023·Re^0.8·Pr^n with n = 0.4 when heating the fluid.
    Returns h in W/(m²·K).
    """
    re = reynolds_number(fluid, velocity, hydraulic_diameter)
    pr = fluid.prandtl
    if re < 2300.0:
        nu = 7.54
    else:
        exponent = 0.4 if heating else 0.3
        nu = 0.023 * re ** 0.8 * pr ** exponent
    return nu * fluid.conductivity / hydraulic_diameter


def duct_velocity(mass_flow: float, fluid: FluidState,
                  flow_area: float) -> float:
    """Bulk velocity from mass flow: V = ṁ / (ρ·A) [m/s]."""
    _check_positive(mass_flow=mass_flow, flow_area=flow_area)
    return mass_flow / (fluid.density * flow_area)


def air_outlet_temperature(inlet_temperature: float, power: float,
                           mass_flow: float,
                           specific_heat: float = 1006.0) -> float:
    """Coolant outlet temperature from an energy balance.

    T_out = T_in + Q / (ṁ·cp).  Used to size ARINC 600 flow allocations.
    """
    _check_positive(mass_flow=mass_flow, specific_heat=specific_heat)
    if power < 0.0:
        raise InputError("power must be non-negative")
    return inlet_temperature + power / (mass_flow * specific_heat)


def fin_efficiency(height: float, thickness: float, conductivity: float,
                   h_coefficient: float) -> float:
    """Efficiency of a straight rectangular fin with adiabatic tip.

    η = tanh(m·Lc) / (m·Lc) with m = sqrt(2h/(k·t)) and the corrected
    length Lc = L + t/2.
    """
    _check_positive(height=height, thickness=thickness,
                    conductivity=conductivity, h_coefficient=h_coefficient)
    m = math.sqrt(2.0 * h_coefficient / (conductivity * thickness))
    l_corr = height + thickness / 2.0
    ml = m * l_corr
    return math.tanh(ml) / ml if ml > 0.0 else 1.0


def heat_sink_conductance(base_area: float, n_fins: int, fin_height: float,
                          fin_thickness: float, fin_length: float,
                          conductivity: float, h_coefficient: float) -> float:
    """Total conductance of a plate-fin heat sink [W/K].

    Sums the exposed base area and the fin area weighted by fin efficiency.
    """
    _check_positive(base_area=base_area, fin_height=fin_height,
                    fin_thickness=fin_thickness, fin_length=fin_length,
                    conductivity=conductivity, h_coefficient=h_coefficient)
    if n_fins < 0:
        raise InputError("fin count must be non-negative")
    eta = fin_efficiency(fin_height, fin_thickness, conductivity,
                         h_coefficient)
    fin_area = n_fins * 2.0 * fin_height * fin_length
    base_exposed = max(base_area - n_fins * fin_thickness * fin_length, 0.0)
    return h_coefficient * (base_exposed + eta * fin_area)


# ---------------------------------------------------------------------------
# Network-ready conductance callables
# ---------------------------------------------------------------------------

def natural_convection_conductance(area: float, height: float,
                                   orientation: str = "vertical",
                                   width: float = 0.1,
                                   pressure: float = 101_325.0
                                   ) -> Callable[[float, float], float]:
    """Build a ``g(t_surface, t_ambient)`` callable for a network link.

    The callable re-evaluates air properties at the film temperature and
    the appropriate natural-convection correlation at every solver
    iteration, giving the network its nonlinearity.

    Parameters
    ----------
    area:
        Wetted surface area [m²].
    height:
        Characteristic length (plate height or cylinder diameter) [m].
    orientation:
        ``"vertical"``, ``"horizontal_up"``, ``"horizontal_down"`` or
        ``"cylinder"``.
    width:
        Plate width for the horizontal correlations [m].
    pressure:
        Ambient pressure [Pa] (cabin altitude derating).
    """
    _check_positive(area=area, height=height)
    correlations = {
        "vertical": lambda f, dt: natural_convection_vertical_plate(
            f, dt, height),
        "horizontal_up": lambda f, dt: natural_convection_horizontal_plate_up(
            f, dt, height, width),
        "horizontal_down":
            lambda f, dt: natural_convection_horizontal_plate_down(
                f, dt, height, width),
        "cylinder": lambda f, dt: natural_convection_horizontal_cylinder(
            f, dt, height),
    }
    if orientation not in correlations:
        raise InputError(f"unknown orientation {orientation!r}; expected one "
                         f"of {sorted(correlations)}")
    correlation = correlations[orientation]

    def conductance(t_surface: float, t_ambient: float) -> float:
        film = 0.5 * (t_surface + t_ambient)
        fluid = air_properties(max(film, 200.0), pressure)
        delta_t = max(abs(t_surface - t_ambient), 0.1)
        h = correlation(fluid, delta_t)
        return max(h * area, 1e-6)

    return conductance


def forced_convection_conductance(area: float, velocity: float,
                                  length: float, duct: bool = False,
                                  pressure: float = 101_325.0
                                  ) -> Callable[[float, float], float]:
    """Build a ``g(t_surface, t_fluid)`` callable for forced convection.

    ``duct=True`` selects the internal-flow correlation with ``length`` as
    the hydraulic diameter; otherwise external flat-plate flow with
    ``length`` as the flow length.
    """
    _check_positive(area=area, velocity=velocity, length=length)

    def conductance(t_surface: float, t_fluid: float) -> float:
        film = 0.5 * (t_surface + t_fluid)
        fluid = air_properties(max(film, 200.0), pressure)
        if duct:
            h = forced_convection_duct(fluid, velocity, length)
        else:
            h = forced_convection_flat_plate(fluid, velocity, length)
        return max(h * area, 1e-6)

    return conductance
