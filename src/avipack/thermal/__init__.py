"""Thermal analysis substrate: networks, conduction, convection, radiation.

This package replaces the commercial finite-volume tool (FloTHERM) used in
the paper with from-scratch solvers of the same abstraction level:

* :mod:`~avipack.thermal.network` — lumped resistance networks (the
  paper's "resistive network model" of Fig. 4);
* :mod:`~avipack.thermal.conduction` — structured finite-volume
  conduction for board/module detail models;
* :mod:`~avipack.thermal.convection` — film-coefficient correlations;
* :mod:`~avipack.thermal.radiation` — view factors and gray-body exchange;
* :mod:`~avipack.thermal.transient` — time integration for thermal shock
  and climatic cycling.
"""

from .batch import (
    BatchOutcome,
    group_by_structure,
    solve_batched,
    structural_fingerprint,
)
from .conduction import (
    ADIABATIC,
    FACES,
    BoundaryCondition,
    CartesianGrid,
    ConductionSolution,
    ConductionSolver,
    TransientConductionResult,
)
from .convection import (
    air_outlet_temperature,
    duct_velocity,
    fin_efficiency,
    forced_convection_conductance,
    forced_convection_duct,
    forced_convection_flat_plate,
    heat_sink_conductance,
    natural_convection_conductance,
    natural_convection_enclosure,
    natural_convection_horizontal_cylinder,
    natural_convection_horizontal_plate_down,
    natural_convection_horizontal_plate_up,
    natural_convection_vertical_plate,
    rayleigh_number,
    reynolds_number,
)
from .enclosure import BOX_FACES, BoxEnclosure
from .network import (
    NetworkSolution,
    ThermalNetwork,
    parallel_resistance,
    series_resistance,
    slab_resistance,
    spreading_resistance,
)
from .radiation import (
    enclosure_exchange_factor,
    linearized_radiation_coefficient,
    radiation_conductance,
    solve_radiosity,
    view_factor_parallel_plates,
    view_factor_perpendicular_plates,
)
from .transient import (
    TransientNetworkResult,
    TransientNetworkSolver,
    cyclic_profile,
    ramp_profile,
)

__all__ = [
    "ADIABATIC",
    "BOX_FACES",
    "BatchOutcome",
    "BoxEnclosure",
    "BoundaryCondition",
    "CartesianGrid",
    "ConductionSolution",
    "ConductionSolver",
    "FACES",
    "NetworkSolution",
    "ThermalNetwork",
    "TransientConductionResult",
    "TransientNetworkResult",
    "TransientNetworkSolver",
    "air_outlet_temperature",
    "cyclic_profile",
    "duct_velocity",
    "enclosure_exchange_factor",
    "fin_efficiency",
    "forced_convection_conductance",
    "forced_convection_duct",
    "forced_convection_flat_plate",
    "group_by_structure",
    "heat_sink_conductance",
    "linearized_radiation_coefficient",
    "natural_convection_conductance",
    "natural_convection_enclosure",
    "natural_convection_horizontal_cylinder",
    "natural_convection_horizontal_plate_down",
    "natural_convection_horizontal_plate_up",
    "natural_convection_vertical_plate",
    "parallel_resistance",
    "radiation_conductance",
    "ramp_profile",
    "rayleigh_number",
    "reynolds_number",
    "series_resistance",
    "slab_resistance",
    "solve_batched",
    "solve_radiosity",
    "spreading_resistance",
    "structural_fingerprint",
    "view_factor_parallel_plates",
    "view_factor_perpendicular_plates",
]
