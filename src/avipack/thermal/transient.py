"""Transient solver for lumped thermal networks.

Integrates ``C_i dT_i/dt = Σ_j G_ij (T_j − T_i) + Q_i`` for the free nodes
of a :class:`~avipack.thermal.network.ThermalNetwork` whose nodes were
given capacitances.  Supports

* time-varying boundary temperatures (ramp profiles for thermal-shock and
  climatic testing per DO-160),
* time-varying heat loads (power duty cycles),
* semi-implicit backward-Euler stepping: conductances are evaluated at the
  start-of-step temperatures, then the linear system is solved implicitly,
  which is unconditionally stable for the stiff networks that arise when
  interface resistances are small.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Optional

import numpy as np
from scipy.sparse import lil_matrix
from scipy.sparse.linalg import spsolve

from ..errors import InputError
from .network import ThermalNetwork

#: A time-dependent scalar: constant or callable ``f(time_s) -> value``.
Schedule = Callable[[float], float]


@dataclass(frozen=True)
class TransientNetworkResult:
    """Temperature history of every node.

    ``times`` has shape (n_samples,); ``temperatures[name]`` is the
    matching per-node history array.
    """

    times: np.ndarray
    temperatures: Dict[str, np.ndarray]

    def node(self, name: str) -> np.ndarray:
        """History of node ``name`` [K]."""
        try:
            return self.temperatures[name]
        except KeyError:
            raise InputError(f"no node named {name!r}") from None

    def final(self, name: str) -> float:
        """Final temperature of ``name`` [K]."""
        return float(self.node(name)[-1])

    def peak(self, name: str) -> float:
        """Peak temperature of ``name`` over the run [K]."""
        return float(self.node(name).max())

    def trough(self, name: str) -> float:
        """Minimum temperature of ``name`` over the run [K]."""
        return float(self.node(name).min())

    def max_rate(self, name: str) -> float:
        """Largest |dT/dt| of ``name`` [K/s]."""
        history = self.node(name)
        if history.size < 2:
            return 0.0
        rates = np.diff(history) / np.diff(self.times)
        return float(np.abs(rates).max())


class TransientNetworkSolver:
    """Time integrator bound to a thermal network.

    Parameters
    ----------
    network:
        The network to integrate.  Free nodes must have positive
        capacitances; fixed-temperature nodes may follow schedules.
    boundary_schedules:
        Optional mapping node name → ``f(t) -> K`` overriding the node's
        fixed temperature over time (e.g. a thermal-shock chamber ramp).
    load_schedules:
        Optional mapping node name → ``f(t) -> W`` overriding the node's
        constant heat load over time (power duty cycles).
    """

    def __init__(self, network: ThermalNetwork,
                 boundary_schedules: Optional[Dict[str, Schedule]] = None,
                 load_schedules: Optional[Dict[str, Schedule]] = None) -> None:
        self.network = network
        self.boundary_schedules = dict(boundary_schedules or {})
        self.load_schedules = dict(load_schedules or {})
        names = network.node_names
        for name in self.boundary_schedules:
            if name not in names:
                raise InputError(f"schedule for unknown node {name!r}")
            if network.node_fixed_temperature(name) is None:
                raise InputError(
                    f"boundary schedule on non-boundary node {name!r}")
        for name in self.load_schedules:
            if name not in names:
                raise InputError(f"load schedule for unknown node {name!r}")
        for name in names:
            if (network.node_fixed_temperature(name) is None
                    and network.node_capacitance(name) <= 0.0):
                raise InputError(
                    f"free node {name!r} needs a positive capacitance "
                    "for transient analysis")

    def integrate(self, duration: float, time_step: float,
                  initial_temperature: float = 293.15
                  ) -> TransientNetworkResult:
        """Integrate for ``duration`` seconds with fixed ``time_step``.

        Free nodes start at ``initial_temperature``; boundary nodes start
        at their fixed value (or schedule value at t=0).
        """
        if duration <= 0.0 or time_step <= 0.0:
            raise InputError("duration and time step must be positive")
        if time_step > duration:
            raise InputError("time step exceeds duration")
        net = self.network
        names = list(net.node_names)
        index = {name: i for i, name in enumerate(names)}
        free = [name for name in names
                if net.node_fixed_temperature(name) is None]
        free_idx = {name: j for j, name in enumerate(free)}
        n_free = len(free)
        capacity = np.array([net.node_capacitance(name) for name in free])

        temps = np.full(len(names), float(initial_temperature))
        for name in names:
            fixed = net.node_fixed_temperature(name)
            if fixed is not None:
                temps[index[name]] = self._boundary_value(name, 0.0, fixed)

        n_steps = max(1, int(round(duration / time_step)))
        times = [0.0]
        history = [temps.copy()]

        for step in range(1, n_steps + 1):
            t_now = step * time_step
            # Update boundary temperatures for this step.
            for name in names:
                fixed = net.node_fixed_temperature(name)
                if fixed is not None:
                    temps[index[name]] = self._boundary_value(
                        name, t_now, fixed)
            if n_free:
                temps = self._implicit_step(temps, names, index, free,
                                            free_idx, capacity, time_step,
                                            t_now)
            times.append(t_now)
            history.append(temps.copy())

        history_arr = np.asarray(history)
        per_node = {name: history_arr[:, index[name]] for name in names}
        return TransientNetworkResult(np.asarray(times), per_node)

    # -- internals ------------------------------------------------------------

    def _boundary_value(self, name: str, time: float, fallback: float
                        ) -> float:
        schedule = self.boundary_schedules.get(name)
        if schedule is None:
            return fallback
        value = float(schedule(time))
        if value <= 0.0:
            raise InputError(
                f"boundary schedule for {name!r} returned {value} K")
        return value

    def _load_value(self, name: str, time: float) -> float:
        schedule = self.load_schedules.get(name)
        if schedule is not None:
            return float(schedule(time))
        return self.network.node_heat_load(name)

    def _implicit_step(self, temps, names, index, free, free_idx, capacity,
                       dt, t_now):
        """One backward-Euler step with start-of-step conductances."""
        n_free = len(free)
        matrix = lil_matrix((n_free, n_free))
        rhs = np.zeros(n_free)
        for j, name in enumerate(free):
            matrix[j, j] += capacity[j] / dt
            rhs[j] += capacity[j] / dt * temps[index[name]]
            rhs[j] += self._load_value(name, t_now)
        for node_a, node_b, conductance, _label in self.network.iter_links():
            ia, ib = index[node_a], index[node_b]
            if callable(conductance):
                g = max(float(conductance(temps[ia], temps[ib])), 1e-12)
            else:
                g = float(conductance)
            a_free = node_a in free_idx
            b_free = node_b in free_idx
            if a_free:
                ja = free_idx[node_a]
                matrix[ja, ja] += g
                if b_free:
                    matrix[ja, free_idx[node_b]] -= g
                else:
                    rhs[ja] += g * temps[ib]
            if b_free:
                jb = free_idx[node_b]
                matrix[jb, jb] += g
                if a_free:
                    matrix[jb, free_idx[node_a]] -= g
                else:
                    rhs[jb] += g * temps[ia]
        solution = np.atleast_1d(spsolve(matrix.tocsr(), rhs))
        new_temps = temps.copy()
        for name in free:
            new_temps[index[name]] = solution[free_idx[name]]
        return new_temps


def ramp_profile(start_value: float, end_value: float, ramp_rate: float,
                 hold_time: float = 0.0, start_time: float = 0.0) -> Schedule:
    """Build a linear ramp schedule f(t) from one value to another.

    The value holds at ``start_value`` until ``start_time``, ramps at
    ``ramp_rate`` (absolute units per second, sign inferred), then holds at
    ``end_value``.  ``hold_time`` is accepted for symmetry with cycle
    builders but does not alter the profile (the value holds indefinitely).
    """
    if ramp_rate <= 0.0:
        raise InputError("ramp rate must be positive")
    span = end_value - start_value
    ramp_duration = abs(span) / ramp_rate

    def profile(time: float) -> float:
        if time <= start_time:
            return start_value
        progress = min((time - start_time) / ramp_duration, 1.0) \
            if ramp_duration > 0.0 else 1.0
        return start_value + span * progress

    return profile


def cyclic_profile(low_value: float, high_value: float, ramp_rate: float,
                   dwell_time: float) -> Schedule:
    """Build a thermal-cycling schedule: dwell low → ramp up → dwell high →
    ramp down → repeat.

    Matches the DO-160 / MIL-STD thermal-shock pattern (−45 °C / +55 °C at
    5 °C/min in the paper's qualification campaign, when expressed in
    kelvin).
    """
    if ramp_rate <= 0.0 or dwell_time < 0.0:
        raise InputError("ramp rate must be positive, dwell non-negative")
    if high_value <= low_value:
        raise InputError("high value must exceed low value")
    ramp_duration = (high_value - low_value) / ramp_rate
    period = 2.0 * (dwell_time + ramp_duration)

    def profile(time: float) -> float:
        phase = time % period
        if phase < dwell_time:
            return low_value
        phase -= dwell_time
        if phase < ramp_duration:
            return low_value + ramp_rate * phase
        phase -= ramp_duration
        if phase < dwell_time:
            return high_value
        phase -= dwell_time
        return high_value - ramp_rate * phase

    return profile
