"""Transient solver for lumped thermal networks.

Integrates ``C_i dT_i/dt = Σ_j G_ij (T_j − T_i) + Q_i`` for the free nodes
of a :class:`~avipack.thermal.network.ThermalNetwork` whose nodes were
given capacitances.  Supports

* time-varying boundary temperatures (ramp profiles for thermal-shock and
  climatic testing per DO-160),
* time-varying heat loads (power duty cycles),
* semi-implicit backward-Euler stepping: conductances are evaluated at the
  start-of-step temperatures, then the linear system is solved implicitly,
  which is unconditionally stable for the stiff networks that arise when
  interface resistances are small.

The stepper runs on the network's compiled structure
(:class:`~avipack.thermal.network._CompiledNetwork`): link endpoints are
integer index arrays, the constant-conductance operator is assembled
once, and — when every conductance is constant — one LU factorization of
``diag(C/Δt) + K`` is reused across *all* steps (and across repeated
:meth:`TransientNetworkSolver.integrate` calls with the same step size),
because schedules only ever move the right-hand side.  Only a callable
conductance forces a per-step refactorization.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable, Dict, Optional

import numpy as np
from scipy.sparse.linalg import factorized

from .. import perf
from ..errors import InputError
from .network import ThermalNetwork

#: A time-dependent scalar: constant or callable ``f(time_s) -> value``.
Schedule = Callable[[float], float]


@dataclass(frozen=True)
class TransientNetworkResult:
    """Temperature history of every node.

    ``times`` has shape (n_samples,); ``temperatures[name]`` is the
    matching per-node history array.
    """

    times: np.ndarray
    temperatures: Dict[str, np.ndarray]

    def node(self, name: str) -> np.ndarray:
        """History of node ``name`` [K]."""
        try:
            return self.temperatures[name]
        except KeyError:
            raise InputError(f"no node named {name!r}") from None

    def final(self, name: str) -> float:
        """Final temperature of ``name`` [K]."""
        return float(self.node(name)[-1])

    def peak(self, name: str) -> float:
        """Peak temperature of ``name`` over the run [K]."""
        return float(self.node(name).max())

    def trough(self, name: str) -> float:
        """Minimum temperature of ``name`` over the run [K]."""
        return float(self.node(name).min())

    def max_rate(self, name: str) -> float:
        """Largest |dT/dt| of ``name`` [K/s]."""
        history = self.node(name)
        if history.size < 2:
            return 0.0
        rates = np.diff(history) / np.diff(self.times)
        return float(np.abs(rates).max())


class TransientNetworkSolver:
    """Time integrator bound to a thermal network.

    Parameters
    ----------
    network:
        The network to integrate.  Free nodes must have positive
        capacitances; fixed-temperature nodes may follow schedules.
    boundary_schedules:
        Optional mapping node name → ``f(t) -> K`` overriding the node's
        fixed temperature over time (e.g. a thermal-shock chamber ramp).
    load_schedules:
        Optional mapping node name → ``f(t) -> W`` overriding the node's
        constant heat load over time (power duty cycles).
    """

    def __init__(self, network: ThermalNetwork,
                 boundary_schedules: Optional[Dict[str, Schedule]] = None,
                 load_schedules: Optional[Dict[str, Schedule]] = None) -> None:
        self.network = network
        self.boundary_schedules = dict(boundary_schedules or {})
        self.load_schedules = dict(load_schedules or {})
        names = network.node_names
        for name in self.boundary_schedules:
            if name not in names:
                raise InputError(f"schedule for unknown node {name!r}")
            if network.node_fixed_temperature(name) is None:
                raise InputError(
                    f"boundary schedule on non-boundary node {name!r}")
        for name in self.load_schedules:
            if name not in names:
                raise InputError(f"load schedule for unknown node {name!r}")
        for name in names:
            if (network.node_fixed_temperature(name) is None
                    and network.node_capacitance(name) <= 0.0):
                raise InputError(
                    f"free node {name!r} needs a positive capacitance "
                    "for transient analysis")
        #: Cached backward-Euler LU: ``(compiled_structure, dt, solve)``.
        #: Valid while the network's compiled structure is unchanged and
        #: the step size matches — i.e. for every step of every
        #: constant-conductance integrate() call at that ``dt``.
        self._lu_cache = None

    def __getstate__(self):
        # The LU cache holds SciPy factorization objects that do not
        # pickle; it is derived state, rebuilt on the next step.
        state = self.__dict__.copy()
        state["_lu_cache"] = None
        return state

    def integrate(self, duration: float, time_step: float,
                  initial_temperature: float = 293.15,
                  max_steps: int = 200_000
                  ) -> TransientNetworkResult:
        """Integrate for ``duration`` seconds with fixed ``time_step``.

        Free nodes start at ``initial_temperature``; boundary nodes start
        at their fixed value (or schedule value at t=0).

        ``max_steps`` guards against a mistyped ``time_step`` turning
        the integration into an unbounded loop (each step stores a full
        temperature vector, so runaway step counts also exhaust
        memory): a request needing more steps is rejected eagerly with
        :class:`InputError` instead of hanging the campaign.
        """
        if duration <= 0.0 or time_step <= 0.0:
            raise InputError("duration and time step must be positive")
        if time_step > duration:
            raise InputError("time step exceeds duration")
        if max_steps < 1:
            raise InputError("max_steps must be >= 1")
        n_steps = max(1, int(round(duration / time_step)))
        if n_steps > max_steps:
            raise InputError(
                f"transient solve needs {n_steps} steps for duration "
                f"{duration:g} s at time_step {time_step:g} s, exceeding "
                f"max_steps={max_steps}; increase time_step or raise "
                "max_steps explicitly")
        start = time.perf_counter()
        net = self.network
        comp = net._compiled("network.transient")
        names = comp.names
        index = comp.index

        temps = np.full(len(names), float(initial_temperature))
        for name in names:
            fixed = net.node_fixed_temperature(name)
            if fixed is not None:
                temps[index[name]] = self._boundary_value(name, 0.0, fixed)

        # Scheduled loads resolved to free-system rows once.
        load_rows = {}
        for name, schedule in self.load_schedules.items():
            row = comp.free_of[index[name]]
            if row >= 0:
                load_rows[int(row)] = schedule

        # Boundary nodes with schedules; unscheduled boundaries keep the
        # value set above for the whole run.
        scheduled_boundaries = []
        for name in names:
            fixed = net.node_fixed_temperature(name)
            if fixed is not None and name in self.boundary_schedules:
                scheduled_boundaries.append((index[name], name, fixed))

        times = [0.0]
        history = [temps.copy()]
        counters = {"assemblies": 0, "factorizations": 0,
                    "factorization_reuses": 0}

        for step in range(1, n_steps + 1):
            t_now = step * time_step
            for idx, name, fixed in scheduled_boundaries:
                temps[idx] = self._boundary_value(name, t_now, fixed)
            if comp.n_free:
                temps = self._implicit_step(comp, temps, load_rows,
                                            time_step, t_now, counters)
            times.append(t_now)
            history.append(temps.copy())

        history_arr = np.asarray(history)
        per_node = {name: history_arr[:, index[name]] for name in names}
        perf.record("network.transient", solves=1, iterations=n_steps,
                    wall_s=time.perf_counter() - start, **counters)
        return TransientNetworkResult(np.asarray(times), per_node)

    # -- internals ------------------------------------------------------------

    def _boundary_value(self, name: str, time: float, fallback: float
                        ) -> float:
        schedule = self.boundary_schedules.get(name)
        if schedule is None:
            return fallback
        value = float(schedule(time))
        if value <= 0.0:
            raise InputError(
                f"boundary schedule for {name!r} returned {value} K")
        return value

    def _load_value(self, name: str, time: float) -> float:
        schedule = self.load_schedules.get(name)
        if schedule is not None:
            return float(schedule(time))
        return self.network.node_heat_load(name)

    def _operator_solver(self, comp, capacity_dt: np.ndarray, dt: float,
                         temps: np.ndarray, counters: Dict[str, int]):
        """Factorized ``diag(C/Δt) + K`` for this step, reused when constant.

        Constant-conductance networks factorize once per ``(structure,
        Δt)`` — schedules only change the right-hand side, so every
        subsequent step (and every later ``integrate`` call at the same
        step size) reuses the handle.  Callable conductances change the
        operator each step and force a fresh assembly + factorization.
        """
        if comp.nonlinear:
            g_var = comp.eval_callables(temps, strict=False)
            matrix = comp.operator(g_var, diagonal=capacity_dt)
            counters["assemblies"] += 1
            counters["factorizations"] += 1
            return factorized(matrix.tocsc()), g_var
        cached = self._lu_cache
        if cached is not None and cached[0] is comp and cached[1] == dt:
            counters["factorization_reuses"] += 1
            return cached[2], None
        matrix = comp.operator(diagonal=capacity_dt)
        solve = factorized(matrix.tocsc())
        self._lu_cache = (comp, dt, solve)
        counters["assemblies"] += 1
        counters["factorizations"] += 1
        return solve, None

    def _implicit_step(self, comp, temps, load_rows, dt, t_now, counters):
        """One backward-Euler step with start-of-step conductances."""
        capacity_dt = comp.capacitances / dt
        solve, g_var = self._operator_solver(comp, capacity_dt, dt, temps,
                                             counters)
        rhs = capacity_dt * temps[comp.free] + comp.heat_loads \
            + comp.coupling_rhs(temps, g_var)
        for row, schedule in load_rows.items():
            rhs[row] += float(schedule(t_now)) - comp.heat_loads[row]
        solution = np.atleast_1d(solve(rhs))
        new_temps = temps.copy()
        new_temps[comp.free] = solution
        return new_temps


def ramp_profile(start_value: float, end_value: float, ramp_rate: float,
                 hold_time: float = 0.0, start_time: float = 0.0) -> Schedule:
    """Build a linear ramp schedule f(t) from one value to another.

    The value holds at ``start_value`` until ``start_time``, ramps at
    ``ramp_rate`` (absolute units per second, sign inferred), then holds at
    ``end_value``.  ``hold_time`` is accepted for symmetry with cycle
    builders but does not alter the profile (the value holds indefinitely).
    """
    if ramp_rate <= 0.0:
        raise InputError("ramp rate must be positive")
    span = end_value - start_value
    ramp_duration = abs(span) / ramp_rate

    def profile(time: float) -> float:
        if time <= start_time:
            return start_value
        progress = min((time - start_time) / ramp_duration, 1.0) \
            if ramp_duration > 0.0 else 1.0
        return start_value + span * progress

    return profile


def cyclic_profile(low_value: float, high_value: float, ramp_rate: float,
                   dwell_time: float) -> Schedule:
    """Build a thermal-cycling schedule: dwell low → ramp up → dwell high →
    ramp down → repeat.

    Matches the DO-160 / MIL-STD thermal-shock pattern (−45 °C / +55 °C at
    5 °C/min in the paper's qualification campaign, when expressed in
    kelvin).
    """
    if ramp_rate <= 0.0 or dwell_time < 0.0:
        raise InputError("ramp rate must be positive, dwell non-negative")
    if high_value <= low_value:
        raise InputError("high value must exceed low value")
    ramp_duration = (high_value - low_value) / ramp_rate
    period = 2.0 * (dwell_time + ramp_duration)

    def profile(time: float) -> float:
        phase = time % period
        if phase < dwell_time:
            return low_value
        phase -= dwell_time
        if phase < ramp_duration:
            return low_value + ramp_rate * phase
        phase -= ramp_duration
        if phase < dwell_time:
            return high_value
        phase -= dwell_time
        return high_value - ramp_rate * phase

    return profile
