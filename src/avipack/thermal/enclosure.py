"""Six-surface box radiation enclosure builder.

Sealed conduction-cooled modules and the passively cooled SEB move a
non-trivial fraction of their internal heat by radiation between the
board and the box walls.  This module builds the view-factor matrix of a
rectangular box interior from the analytic parallel/perpendicular plate
factors (closing each row by reciprocity and summation), and solves the
gray-body exchange with the radiosity solver — giving lumped radiation
conductances that a thermal network can consume.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

import numpy as np

from ..errors import InputError
from .radiation import solve_radiosity, view_factor_parallel_plates

#: Surface ordering: the six interior faces of the box.
BOX_FACES = ("x_min", "x_max", "y_min", "y_max", "z_min", "z_max")


@dataclass(frozen=True)
class BoxEnclosure:
    """The interior of a rectangular box as a radiation enclosure.

    ``dimensions`` = (lx, ly, lz) [m]; ``emissivities`` maps faces to
    surface emissivity (missing faces default to ``default_emissivity``).
    """

    dimensions: Tuple[float, float, float]
    emissivities: Dict[str, float] = None
    default_emissivity: float = 0.85

    def __post_init__(self) -> None:
        if len(self.dimensions) != 3 or any(
                d <= 0.0 for d in self.dimensions):
            raise InputError("dimensions must be three positive lengths")
        if not 0.0 < self.default_emissivity <= 1.0:
            raise InputError("default emissivity must be in (0, 1]")
        for face, eps in (self.emissivities or {}).items():
            if face not in BOX_FACES:
                raise InputError(f"unknown face {face!r}")
            if not 0.0 < eps <= 1.0:
                raise InputError(f"{face}: emissivity must be in (0, 1]")

    def face_area(self, face: str) -> float:
        """Area of one interior face [m²]."""
        lx, ly, lz = self.dimensions
        areas = {"x_min": ly * lz, "x_max": ly * lz,
                 "y_min": lx * lz, "y_max": lx * lz,
                 "z_min": lx * ly, "z_max": lx * ly}
        try:
            return areas[face]
        except KeyError:
            raise InputError(f"unknown face {face!r}") from None

    def emissivity(self, face: str) -> float:
        """Emissivity of one face."""
        return (self.emissivities or {}).get(face,
                                             self.default_emissivity)

    # -- view factors --------------------------------------------------------------

    def view_factor_matrix(self) -> np.ndarray:
        """The 6×6 interior view-factor matrix F[i, j].

        Opposite faces use the parallel-plate analytic factor; the four
        perpendicular neighbours share the remainder equally (exact for
        a cube by symmetry, and within a few percent for moderate aspect
        ratios — each row sums to 1 and reciprocity holds by
        construction because opposite faces have equal areas).
        """
        lx, ly, lz = self.dimensions
        gap = {"x": lx, "y": ly, "z": lz}
        spans = {"x": (ly, lz), "y": (lx, lz), "z": (lx, ly)}
        n = len(BOX_FACES)
        f = np.zeros((n, n))
        index = {face: i for i, face in enumerate(BOX_FACES)}
        for axis in ("x", "y", "z"):
            a, b = spans[axis]
            f_opposite = view_factor_parallel_plates(a, b, gap[axis])
            lo, hi = index[f"{axis}_min"], index[f"{axis}_max"]
            f[lo, hi] = f_opposite
            f[hi, lo] = f_opposite
        # Distribute the remainder over the four perpendicular faces in
        # proportion to their areas (energy closure per row).
        for i, face in enumerate(BOX_FACES):
            axis = face[0]
            others = [j for j, other in enumerate(BOX_FACES)
                      if other[0] != axis]
            remainder = 1.0 - f[i].sum()
            weights = np.array([self.face_area(BOX_FACES[j])
                                for j in others])
            weights = weights / weights.sum()
            for j, weight in zip(others, weights, strict=True):
                f[i, j] = remainder * weight
        # Enforce reciprocity AND row closure simultaneously with a
        # Sinkhorn-style iteration on the exchange matrix A_i F_ij:
        # symmetry gives reciprocity, row sums equal to the areas give
        # sum_j F_ij = 1.  A handful of sweeps converges to machine
        # precision for box aspect ratios.
        areas = np.array([self.face_area(face) for face in BOX_FACES])
        af = areas[:, None] * f
        for _ in range(200):
            af = 0.5 * (af + af.T)
            af *= (areas / af.sum(axis=1))[:, None]
            asymmetry = np.abs(af - af.T).max()
            if asymmetry < 1e-14 * areas.max():
                break
        af = 0.5 * (af + af.T)
        f = af / areas[:, None]
        return f

    # -- exchange -------------------------------------------------------------------

    def net_radiation(self, temperatures: Dict[str, float]) -> Dict[str,
                                                                    float]:
        """Net radiative flow from each face [W] (positive = emitting).

        ``temperatures`` maps every face to its temperature [K].
        """
        missing = [face for face in BOX_FACES
                   if face not in temperatures]
        if missing:
            raise InputError(
                f"temperatures missing for faces: {', '.join(missing)}")
        areas = [self.face_area(face) for face in BOX_FACES]
        eps = [self.emissivity(face) for face in BOX_FACES]
        temps = [temperatures[face] for face in BOX_FACES]
        flows = solve_radiosity(areas, eps, self.view_factor_matrix(),
                                temps)
        return {face: float(q)
                for face, q in zip(BOX_FACES, flows, strict=True)}

    def pair_conductance(self, face_a: str, face_b: str,
                         t_a: float, t_b: float) -> float:
        """Linearised radiation conductance between two faces [W/K].

        Solves the full enclosure with the remaining faces floated at
        the mean temperature, then reports Q_a / (T_a − T_b) — a
        network-ready lumped conductance for the dominant exchange pair.
        """
        if face_a not in BOX_FACES or face_b not in BOX_FACES:
            raise InputError("unknown face name")
        if face_a == face_b:
            raise InputError("faces must differ")
        if abs(t_a - t_b) < 1e-9:
            raise InputError("need a temperature difference")
        mean = 0.5 * (t_a + t_b)
        temps = {face: mean for face in BOX_FACES}
        temps[face_a] = t_a
        temps[face_b] = t_b
        flows = self.net_radiation(temps)
        return abs(flows[face_a] / (t_a - t_b))
