"""Thermal resistance network solver.

This is the workhorse behind the paper's three-level simulation pyramid
(Fig. 4, "resistive network model"): equipment, PCB and component models
all reduce to a network of temperature nodes connected by thermal
conductances, with heat sources at dissipating nodes and fixed temperatures
at ambient/sink nodes.

The solver supports

* constant conductances (conduction paths, interface resistances),
* **temperature-dependent** conductances supplied as callables
  ``g(t_hot, t_cold) -> W/K`` (natural convection, radiation), resolved by
  damped fixed-point iteration,
* exact linear solves via SciPy sparse LU when the network is linear.

Energy conservation at every node is the defining equation:

.. math:: \\sum_j G_{ij} (T_j - T_i) + Q_i = 0

for every free node *i*.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple, Union

import numpy as np
from scipy.sparse import lil_matrix
from scipy.sparse.linalg import spsolve

from ..errors import ConvergenceError, InputError
from ..fingerprint import stable_fingerprint
from ..resilience.faults import fire as _fire_fault

#: Conductance type: constant [W/K] or callable ``g(t_a, t_b) -> W/K``.
Conductance = Union[float, Callable[[float, float], float]]


@dataclass
class _Node:
    name: str
    heat_load: float = 0.0
    fixed_temperature: Optional[float] = None
    capacitance: float = 0.0


@dataclass
class _Link:
    node_a: str
    node_b: str
    conductance: Conductance
    label: str = ""


@dataclass(frozen=True)
class NetworkSolution:
    """Result of a steady-state network solve.

    Attributes
    ----------
    temperatures:
        Mapping node name → temperature [K].
    heat_flows:
        Mapping link label (or ``"a->b"``) → heat flow [W], positive from
        ``node_a`` to ``node_b``.
    iterations:
        Fixed-point iterations used (1 for a purely linear network).
    residual:
        Final energy-balance residual norm [W].
    """

    temperatures: Dict[str, float]
    heat_flows: Dict[str, float]
    iterations: int
    residual: float

    def temperature(self, node: str) -> float:
        """Temperature of ``node`` [K]."""
        try:
            return self.temperatures[node]
        except KeyError:
            raise InputError(f"no node named {node!r} in solution") from None

    def delta(self, hot: str, cold: str) -> float:
        """Temperature difference ``T(hot) - T(cold)`` [K]."""
        return self.temperature(hot) - self.temperature(cold)


class ThermalNetwork:
    """A lumped thermal network of nodes, links, sources and sinks.

    Examples
    --------
    >>> net = ThermalNetwork()
    >>> net.add_node("chip", heat_load=10.0)
    >>> net.add_node("ambient", fixed_temperature=300.0)
    >>> net.add_resistance("chip", "ambient", resistance=2.0)
    >>> sol = net.solve()
    >>> round(sol.temperature("chip"), 3)
    320.0
    """

    def __init__(self) -> None:
        self._nodes: Dict[str, _Node] = {}
        self._links: List[_Link] = []

    # -- construction -------------------------------------------------------

    def add_node(self, name: str, heat_load: float = 0.0,
                 fixed_temperature: Optional[float] = None,
                 capacitance: float = 0.0) -> None:
        """Add a temperature node.

        Parameters
        ----------
        name:
            Unique node identifier.
        heat_load:
            Heat injected at the node [W] (dissipating components).
        fixed_temperature:
            If given, the node is a boundary (sink) held at this value [K].
        capacitance:
            Lumped thermal capacitance [J/K], used only by the transient
            solver in :mod:`avipack.thermal.transient`.
        """
        if not name:
            raise InputError("node name must be non-empty")
        if name in self._nodes:
            raise InputError(f"node {name!r} already exists")
        if fixed_temperature is not None and fixed_temperature <= 0.0:
            raise InputError("fixed temperature must be positive kelvin")
        if capacitance < 0.0:
            raise InputError("capacitance must be non-negative")
        self._nodes[name] = _Node(name, heat_load, fixed_temperature,
                                  capacitance)

    def add_heat_load(self, name: str, heat_load: float) -> None:
        """Add (accumulate) a heat load on an existing node [W]."""
        node = self._require(name)
        if node.fixed_temperature is not None and heat_load != 0.0:
            raise InputError(f"cannot load fixed-temperature node {name!r}")
        node.heat_load += heat_load

    def add_conductance(self, node_a: str, node_b: str,
                        conductance: Conductance, label: str = "") -> None:
        """Connect two nodes with a thermal conductance [W/K].

        ``conductance`` may be a positive constant or a callable
        ``g(t_a, t_b)`` returning W/K for temperature-dependent paths.
        """
        self._require(node_a)
        self._require(node_b)
        if node_a == node_b:
            raise InputError("cannot link a node to itself")
        if not callable(conductance) and conductance <= 0.0:
            raise InputError("conductance must be positive")
        self._links.append(_Link(node_a, node_b, conductance, label))

    def add_resistance(self, node_a: str, node_b: str, resistance: float,
                       label: str = "") -> None:
        """Connect two nodes with a thermal resistance [K/W]."""
        if resistance <= 0.0:
            raise InputError("resistance must be positive")
        self.add_conductance(node_a, node_b, 1.0 / resistance, label)

    # -- introspection -------------------------------------------------------

    @property
    def node_names(self) -> Tuple[str, ...]:
        """All node names in insertion order."""
        return tuple(self._nodes)

    @property
    def link_count(self) -> int:
        """Number of links in the network."""
        return len(self._links)

    def total_heat_load(self) -> float:
        """Sum of heat injected at free nodes [W]."""
        return sum(n.heat_load for n in self._nodes.values()
                   if n.fixed_temperature is None)

    def node_capacitance(self, name: str) -> float:
        """Lumped capacitance of ``name`` [J/K]."""
        return self._require(name).capacitance

    def node_heat_load(self, name: str) -> float:
        """Heat load on ``name`` [W]."""
        return self._require(name).heat_load

    def node_fixed_temperature(self, name: str) -> Optional[float]:
        """Fixed temperature of ``name``, or None for a free node."""
        return self._require(name).fixed_temperature

    def iter_links(self):
        """Yield ``(node_a, node_b, conductance, label)`` tuples."""
        for link in self._links:
            yield link.node_a, link.node_b, link.conductance, link.label

    def fingerprint(self) -> str:
        """Stable content fingerprint of the network's definition.

        Two networks with the same nodes (loads, sinks, capacitances)
        and the same links in the same order fingerprint identically in
        every process — the key the sweep cache memoises
        :meth:`solve` under.

        Callable conductances are fingerprinted *by code location*
        (module + qualname), not by captured state: closures over
        mutable values defeat memoisation and should not be cached.
        """
        return stable_fingerprint(
            "thermal_network",
            tuple((node.name, node.heat_load, node.fixed_temperature,
                   node.capacitance) for node in self._nodes.values()),
            tuple((link.node_a, link.node_b, link.conductance, link.label)
                  for link in self._links))

    def _require(self, name: str) -> _Node:
        try:
            return self._nodes[name]
        except KeyError:
            raise InputError(f"unknown node {name!r}") from None

    def _has_nonlinear_links(self) -> bool:
        return any(callable(link.conductance) for link in self._links)

    def _check_connectivity(self) -> None:
        """Every free node must reach a fixed-temperature node.

        A floating island has no defined temperature (singular system);
        report it by name instead of failing inside the linear solver.
        """
        adjacency: Dict[str, list] = {name: [] for name in self._nodes}
        for link in self._links:
            adjacency[link.node_a].append(link.node_b)
            adjacency[link.node_b].append(link.node_a)
        reached = set()
        frontier = [name for name, node in self._nodes.items()
                    if node.fixed_temperature is not None]
        while frontier:
            name = frontier.pop()
            if name in reached:
                continue
            reached.add(name)
            frontier.extend(adjacency[name])
        floating = sorted(set(self._nodes) - reached)
        if floating:
            raise InputError(
                "nodes not connected to any fixed-temperature node: "
                + ", ".join(floating))

    # -- solving -------------------------------------------------------------

    def solve(self, initial_guess: float = 320.0, max_iterations: int = 200,
              tolerance: float = 1e-8, relaxation: float = 0.7,
              cache=None,
              initial_temperatures: Optional[Dict[str, float]] = None
              ) -> NetworkSolution:
        """Solve the steady-state energy balance.

        Linear networks are solved exactly in one sparse factorisation.
        Networks with callable conductances iterate: each pass linearises
        the conductances at the current temperatures, solves, and relaxes
        the update by ``relaxation``.

        Parameters
        ----------
        initial_guess:
            Starting temperature for free nodes [K] when iterating.
        max_iterations:
            Fixed-point iteration budget.
        tolerance:
            Convergence threshold on the max temperature update [K].
        relaxation:
            Under-relaxation factor in (0, 1].
        cache:
            Optional memo store (``get_or_compute(key, compute)``): the
            solution is keyed on :meth:`fingerprint` plus the solver
            settings, so identical networks reached from different
            sweep candidates solve once per process.
        initial_temperatures:
            Optional per-node warm start (node name → K) overriding
            ``initial_guess``; names absent from the network are
            ignored, so a last iterate from a similar network can seed
            the solve.  Retry policies use the ``last_iterate``
            attribute of a raised :class:`ConvergenceError` here.

        Raises
        ------
        InputError
            If the network has no fixed-temperature node (the problem is
            singular) or no nodes at all.
        ConvergenceError
            If fixed-point iteration fails to converge.  The exception
            carries the iteration count, the last update norm, and the
            last iterate for warm-started retries.
        """
        _fire_fault("thermal.network.solve")
        if cache is not None:
            key = stable_fingerprint(
                "network_solve", self.fingerprint(), initial_guess,
                max_iterations, tolerance, relaxation,
                tuple(sorted(initial_temperatures.items()))
                if initial_temperatures else None)
            return cache.get_or_compute(
                key, lambda: self.solve(
                    initial_guess, max_iterations, tolerance, relaxation,
                    initial_temperatures=initial_temperatures))
        if not self._nodes:
            raise InputError("network has no nodes")
        if all(n.fixed_temperature is None for n in self._nodes.values()):
            raise InputError(
                "network needs at least one fixed-temperature node")
        if not 0.0 < relaxation <= 1.0:
            raise InputError("relaxation must be in (0, 1]")
        self._check_connectivity()

        names = list(self._nodes)
        index = {name: i for i, name in enumerate(names)}
        free = [i for i, name in enumerate(names)
                if self._nodes[name].fixed_temperature is None]
        free_index = {i: j for j, i in enumerate(free)}

        temps = np.full(len(names), float(initial_guess))
        if initial_temperatures:
            for name, value in initial_temperatures.items():
                if name in index:
                    temps[index[name]] = float(value)
        for i, name in enumerate(names):
            fixed = self._nodes[name].fixed_temperature
            if fixed is not None:
                temps[i] = fixed

        nonlinear = self._has_nonlinear_links()
        iterations = 0
        for iteration in range(1, max_iterations + 1):
            iterations = iteration
            new_free = self._linear_solve(names, index, free, free_index,
                                          temps)
            delta = np.max(np.abs(new_free - temps[free])) if free else 0.0
            if nonlinear:
                temps[free] += relaxation * (new_free - temps[free])
            else:
                temps[free] = new_free
            if delta < tolerance or not nonlinear:
                break
        else:
            raise ConvergenceError(
                f"network solve did not converge in {max_iterations} "
                f"iterations (last update {delta:.3e} K)",
                iterations=max_iterations, residual=float(delta),
                last_iterate={name: float(temps[index[name]])
                              for name in names})

        solution_temps = {name: float(temps[index[name]]) for name in names}
        flows = self._heat_flows(solution_temps)
        residual = self._residual(solution_temps)
        return NetworkSolution(solution_temps, flows, iterations, residual)

    def _linear_solve(self, names, index, free, free_index, temps):
        """One linearised solve for the free-node temperatures."""
        n_free = len(free)
        if n_free == 0:
            return np.empty(0)
        matrix = lil_matrix((n_free, n_free))
        rhs = np.zeros(n_free)
        for i in free:
            rhs[free_index[i]] = self._nodes[names[i]].heat_load
        for link in self._links:
            ia, ib = index[link.node_a], index[link.node_b]
            g = self._evaluate(link, temps[ia], temps[ib])
            a_free, b_free = ia in free_index, ib in free_index
            if a_free:
                ja = free_index[ia]
                matrix[ja, ja] += g
                if b_free:
                    matrix[ja, free_index[ib]] -= g
                else:
                    rhs[ja] += g * temps[ib]
            if b_free:
                jb = free_index[ib]
                matrix[jb, jb] += g
                if a_free:
                    matrix[jb, free_index[ia]] -= g
                else:
                    rhs[jb] += g * temps[ia]
        solution = spsolve(matrix.tocsr(), rhs)
        return np.atleast_1d(solution)

    @staticmethod
    def _evaluate(link: _Link, t_a: float, t_b: float) -> float:
        if callable(link.conductance):
            g = float(link.conductance(t_a, t_b))
            if g < 0.0:
                raise InputError(
                    f"conductance callable for {link.node_a}-{link.node_b} "
                    f"returned negative value {g}")
            return max(g, 1e-12)
        return float(link.conductance)

    def _heat_flows(self, temps: Dict[str, float]) -> Dict[str, float]:
        flows: Dict[str, float] = {}
        for i, link in enumerate(self._links):
            t_a, t_b = temps[link.node_a], temps[link.node_b]
            g = self._evaluate(link, t_a, t_b)
            key = link.label or f"{link.node_a}->{link.node_b}"
            if key in flows:
                key = f"{key}#{i}"
            flows[key] = g * (t_a - t_b)
        return flows

    def _residual(self, temps: Dict[str, float]) -> float:
        """Max energy-balance residual over free nodes [W]."""
        balance = {name: node.heat_load
                   for name, node in self._nodes.items()
                   if node.fixed_temperature is None}
        for link in self._links:
            t_a, t_b = temps[link.node_a], temps[link.node_b]
            g = self._evaluate(link, t_a, t_b)
            q = g * (t_a - t_b)
            if link.node_a in balance:
                balance[link.node_a] -= q
            if link.node_b in balance:
                balance[link.node_b] += q
        if not balance:
            return 0.0
        return float(max(abs(v) for v in balance.values()))


def series_resistance(*resistances: float) -> float:
    """Total resistance of resistances in series [K/W]."""
    if not resistances:
        raise InputError("need at least one resistance")
    if any(r <= 0.0 for r in resistances):
        raise InputError("resistances must be positive")
    return float(sum(resistances))


def parallel_resistance(*resistances: float) -> float:
    """Total resistance of resistances in parallel [K/W]."""
    if not resistances:
        raise InputError("need at least one resistance")
    if any(r <= 0.0 for r in resistances):
        raise InputError("resistances must be positive")
    return 1.0 / sum(1.0 / r for r in resistances)


def slab_resistance(thickness: float, conductivity: float,
                    area: float) -> float:
    """Conduction resistance of a plane slab, R = L / (k·A) [K/W]."""
    if thickness <= 0.0 or conductivity <= 0.0 or area <= 0.0:
        raise InputError("thickness, conductivity and area must be positive")
    return thickness / (conductivity * area)


def spreading_resistance(source_radius: float, plate_radius: float,
                         plate_thickness: float, conductivity: float,
                         h_sink: float = 1e4) -> float:
    """Spreading resistance of a circular source on a finite circular plate.

    Implements the closed-form of Song, Lee & Au (1994) widely used for
    hot-spot analysis: a heat source of radius ``source_radius`` centred on
    a plate of radius ``plate_radius`` and thickness ``plate_thickness``
    with film coefficient ``h_sink`` on the far face.

    Returns only the *spreading* part of the resistance (the 1-D slab and
    film resistances should be added separately).
    """
    if not 0.0 < source_radius <= plate_radius:
        raise InputError("need 0 < source_radius <= plate_radius")
    if plate_thickness <= 0.0 or conductivity <= 0.0 or h_sink <= 0.0:
        raise InputError("thickness, conductivity, h must be positive")
    eps = source_radius / plate_radius
    tau = plate_thickness / plate_radius
    bi = h_sink * plate_radius / conductivity
    lam = np.pi + 1.0 / (np.sqrt(np.pi) * eps)
    phi = (np.tanh(lam * tau) + lam / bi) / (1.0 + lam / bi * np.tanh(lam * tau))
    psi_max = eps * tau / np.sqrt(np.pi) + (1.0 - eps) * phi / np.sqrt(np.pi)
    return float(psi_max / (conductivity * source_radius * np.sqrt(np.pi)))
