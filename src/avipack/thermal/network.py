"""Thermal resistance network solver.

This is the workhorse behind the paper's three-level simulation pyramid
(Fig. 4, "resistive network model"): equipment, PCB and component models
all reduce to a network of temperature nodes connected by thermal
conductances, with heat sources at dissipating nodes and fixed temperatures
at ambient/sink nodes.

The solver supports

* constant conductances (conduction paths, interface resistances),
* **temperature-dependent** conductances supplied as callables
  ``g(t_hot, t_cold) -> W/K`` (natural convection, radiation), resolved by
  damped fixed-point iteration,
* exact linear solves via SciPy sparse LU when the network is linear.

Energy conservation at every node is the defining equation:

.. math:: \\sum_j G_{ij} (T_j - T_i) + Q_i = 0

for every free node *i*.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple, Union

import numpy as np
from scipy.sparse import csc_matrix
from scipy.sparse.linalg import factorized, spsolve

try:  # Direct SuperLU entry point, bypassing spsolve's per-call checks.
    from scipy.sparse.linalg._dsolve import _superlu
except ImportError:  # pragma: no cover - depends on SciPy layout
    _superlu = None

#: spsolve's default options (natural COLAMD column permutation).
_GSSV_OPTIONS = {"ColPerm": None}

from .. import perf
from ..errors import ConvergenceError, InputError
from ..fingerprint import stable_fingerprint
from ..resilience.faults import fire as _fire_fault

#: Conductance type: constant [W/K] or callable ``g(t_a, t_b) -> W/K``.
Conductance = Union[float, Callable[[float, float], float]]


@dataclass
class _Node:
    name: str
    heat_load: float = 0.0
    fixed_temperature: Optional[float] = None
    capacitance: float = 0.0


@dataclass
class _Link:
    node_a: str
    node_b: str
    conductance: Conductance
    label: str = ""


class _CompiledNetwork:
    """A :class:`ThermalNetwork` lowered to integer index arrays.

    Compilation happens once per network *structure*: link endpoints
    become index arrays, the constant-conductance part of the operator
    is assembled once as a reusable CSR via a vectorized COO scatter
    (no ``lil_matrix``, no per-link Python loop), and only callable
    links are re-evaluated per fixed-point iteration or time step.
    Purely linear networks additionally cache an LU factorization
    (:func:`scipy.sparse.linalg.factorized`) so repeated solves — sweep
    candidates, escalation retries, transient steps — refactorize
    nothing.

    The owning network invalidates its compiled instance on any
    structural mutation (``add_node``/``add_conductance``/
    ``add_heat_load``), so a compiled structure always mirrors the
    current definition.
    """

    def __init__(self, network: "ThermalNetwork") -> None:
        nodes = list(network._nodes.values())
        links = network._links
        self.names: List[str] = [node.name for node in nodes]
        self.index: Dict[str, int] = {name: i
                                      for i, name in enumerate(self.names)}
        n = len(nodes)

        fixed = np.array([node.fixed_temperature is not None
                          for node in nodes], dtype=bool)
        self.fixed_mask = fixed
        self.fixed_values = np.array(
            [node.fixed_temperature if node.fixed_temperature is not None
             else 0.0 for node in nodes], dtype=float)
        self.free = np.flatnonzero(~fixed)
        self.n_free = int(self.free.size)
        #: Global node index -> free-system row, or -1 for fixed nodes.
        self.free_of = np.full(n, -1, dtype=np.intp)
        self.free_of[self.free] = np.arange(self.n_free)
        self.heat_loads = np.array(
            [node.heat_load for node in nodes], dtype=float)[self.free]
        self.capacitances = np.array(
            [node.capacitance for node in nodes], dtype=float)[self.free]

        # -- links lowered to endpoint index arrays ------------------------
        self.ia = np.array([self.index[link.node_a] for link in links],
                           dtype=np.intp)
        self.ib = np.array([self.index[link.node_b] for link in links],
                           dtype=np.intp)
        const_mask = np.array([not callable(link.conductance)
                               for link in links], dtype=bool)
        self.const_sel = np.flatnonzero(const_mask)
        self.var_sel = np.flatnonzero(~const_mask)
        self.g_const = np.array(
            [float(links[int(k)].conductance) for k in self.const_sel],
            dtype=float)
        self.callables = [links[int(k)].conductance for k in self.var_sel]
        self.callable_ends = [(links[int(k)].node_a, links[int(k)].node_b)
                              for k in self.var_sel]
        self.var_ia = self.ia[self.var_sel]
        self.var_ib = self.ib[self.var_sel]
        self.nonlinear = bool(self.var_sel.size)

        # -- scatter patterns (positions fixed, values per evaluation) -----
        (self.c_rows, self.c_cols, self.c_link, self.c_sign,
         self.c_rhs_rows, self.c_rhs_link, self.c_rhs_other) = \
            self._pattern(self.const_sel)
        (self.v_rows, self.v_cols, self.v_link, self.v_sign,
         self.v_rhs_rows, self.v_rhs_link, self.v_rhs_other) = \
            self._pattern(self.var_sel)

        # Merged CSR sparsity template: constant + callable link
        # contributions plus every free diagonal slot (the transient
        # operator adds C/Δt there).  The structure — indices/indptr —
        # is built exactly once; per-evaluation work only rewrites the
        # ``data`` array.
        n_free = self.n_free
        diag = np.arange(n_free, dtype=np.intp)
        all_rows = np.concatenate([self.c_rows, self.v_rows, diag])
        all_cols = np.concatenate([self.c_cols, self.v_cols, diag])
        linear = all_rows * max(n_free, 1) + all_cols
        unique, inverse = np.unique(linear, return_inverse=True)
        # int32 index arrays: exactly what the SuperLU front end takes,
        # so no per-solve astype copies.
        indptr = np.zeros(n_free + 1, dtype=np.intc)
        if n_free:
            np.cumsum(np.bincount(unique // n_free, minlength=n_free),
                      out=indptr[1:])
        indices = (unique % max(n_free, 1)).astype(np.intc)
        n_c = self.c_rows.size
        n_v = self.v_rows.size
        #: Data-slot positions of constant-link, callable-link and
        #: diagonal entries (the batched solver scatters per-candidate
        #: conductance stacks through the same slots).
        self.c_pos = inverse[:n_c]
        self.v_pos = inverse[n_c:n_c + n_v]
        self.diag_pos = inverse[n_c + n_v:]
        #: Constant-conductance part of the operator data, assembled once.
        self.const_data = np.zeros(unique.size)
        np.add.at(self.const_data, inverse[:n_c],
                  self.g_const[self.c_link] * self.c_sign)
        # The operator is symmetric in structure *and* values (a graph
        # Laplacian plus diagonal terms), so the row-major template is
        # simultaneously a valid CSC layout — which is the format the
        # SuperLU front end consumes without a per-iteration conversion.
        self._matrix = csc_matrix(
            (self.const_data.copy(), indices, indptr),
            shape=(n_free, n_free), copy=False)
        #: Cached LU handle for purely linear solves (built lazily).
        self._lu = None

        # Steady-state RHS: during a steady solve the fixed-node
        # temperatures never change, so the constant-link coupling into
        # fixed nodes folds into the heat loads at compile time and the
        # callable part only needs its fixed-side temperatures.
        base = np.zeros(n_free)
        np.add.at(base, self.c_rhs_rows,
                  self.g_const[self.c_rhs_link]
                  * self.fixed_values[self.c_rhs_other])
        self.steady_rhs_base = self.heat_loads + base
        self.v_rhs_fixed = self.fixed_values[self.v_rhs_other]

        #: Free nodes unreachable from any fixed node (set once; the
        #: steady solver rejects them, the transient solver — whose
        #: capacitive diagonal regularizes the system — does not care).
        self.floating = self._floating_nodes(network)

        # Flow keys, reproducing the historical duplicate-label rule.
        keys: List[str] = []
        seen: set = set()
        for i, link in enumerate(links):
            key = link.label or f"{link.node_a}->{link.node_b}"
            if key in seen:
                key = f"{key}#{i}"
            seen.add(key)
            keys.append(key)
        self.flow_keys = tuple(keys)

    @staticmethod
    def _floating_nodes(network: "ThermalNetwork") -> Tuple[str, ...]:
        adjacency: Dict[str, list] = {name: [] for name in network._nodes}
        for link in network._links:
            adjacency[link.node_a].append(link.node_b)
            adjacency[link.node_b].append(link.node_a)
        reached = set()
        frontier = [name for name, node in network._nodes.items()
                    if node.fixed_temperature is not None]
        while frontier:
            name = frontier.pop()
            if name in reached:
                continue
            reached.add(name)
            frontier.extend(adjacency[name])
        return tuple(sorted(set(network._nodes) - reached))

    def _pattern(self, sel: np.ndarray):
        """COO scatter pattern for the link subset ``sel``.

        Returns matrix triplets ``(rows, cols, link_pos, sign)`` — the
        per-evaluation values are ``g[link_pos] * sign`` — plus the
        right-hand-side coupling pattern ``(rhs_rows, rhs_link,
        rhs_other)`` for links joining a free node to a fixed node
        (contribution ``g[rhs_link] * temps[rhs_other]``).
        """
        ja = self.free_of[self.ia[sel]]
        jb = self.free_of[self.ib[sel]]
        pos = np.arange(sel.size)
        a_free = ja >= 0
        b_free = jb >= 0
        both = a_free & b_free
        rows = np.concatenate([ja[a_free], jb[b_free],
                               ja[both], jb[both]])
        cols = np.concatenate([ja[a_free], jb[b_free],
                               jb[both], ja[both]])
        link = np.concatenate([pos[a_free], pos[b_free],
                               pos[both], pos[both]])
        sign = np.concatenate([np.ones(int(a_free.sum())),
                               np.ones(int(b_free.sum())),
                               -np.ones(int(both.sum())),
                               -np.ones(int(both.sum()))])
        a_only = a_free & ~b_free
        b_only = b_free & ~a_free
        rhs_rows = np.concatenate([ja[a_only], jb[b_only]])
        rhs_link = np.concatenate([pos[a_only], pos[b_only]])
        rhs_other = np.concatenate([self.ib[sel][a_only],
                                    self.ia[sel][b_only]])
        return (rows, cols, link, sign, rhs_rows, rhs_link, rhs_other)

    # -- evaluation ----------------------------------------------------------

    def eval_callables(self, temps: np.ndarray, strict: bool) -> np.ndarray:
        """Evaluate every callable conductance at ``temps``.

        ``strict`` reproduces the steady-solver contract (negative
        return values raise :class:`InputError`); the transient stepper
        historically clamps silently instead.
        """
        g = np.array([float(fn(a, b)) for fn, a, b
                      in zip(self.callables, temps[self.var_ia].tolist(),
                             temps[self.var_ib].tolist(), strict=True)])
        if strict and g.size and g.min() < 0.0:
            k = int(np.argmax(g < 0.0))
            node_a, node_b = self.callable_ends[k]
            raise InputError(
                f"conductance callable for {node_a}-{node_b} "
                f"returned negative value {g[k]}")
        return np.maximum(g, 1e-12)

    def operator(self, g_var: Optional[np.ndarray] = None,
                 diagonal: Optional[np.ndarray] = None) -> csc_matrix:
        """The free-node operator matrix for the current evaluation.

        Rewrites the template's ``data`` in place: constant part copied
        from the one-shot assembly, callable-link values scattered on
        top, and an optional extra ``diagonal`` (the transient
        ``C/Δt`` term) added to the pre-located diagonal slots.  No
        sparse structure is rebuilt.  The returned matrix is the shared
        template — callers must copy (e.g. ``tocsc()``) before caching.
        """
        data = self._matrix.data
        data[:] = self.const_data
        if g_var is not None and self.v_pos.size:
            np.add.at(data, self.v_pos, g_var[self.v_link] * self.v_sign)
        if diagonal is not None:
            data[self.diag_pos] += diagonal
        return self._matrix

    def coupling_rhs(self, temps: np.ndarray,
                     g_var: Optional[np.ndarray] = None) -> np.ndarray:
        """Free-node RHS contribution from links into fixed nodes."""
        rhs = np.zeros(self.n_free)
        np.add.at(rhs, self.c_rhs_rows,
                  self.g_const[self.c_rhs_link] * temps[self.c_rhs_other])
        if g_var is not None and self.v_rhs_rows.size:
            np.add.at(rhs, self.v_rhs_rows,
                      g_var[self.v_rhs_link] * temps[self.v_rhs_other])
        return rhs

    def linear_solve(self, temps: np.ndarray) -> Tuple[np.ndarray, bool]:
        """One linearised solve for the free-node temperatures.

        Returns ``(free_temps, reused)`` where ``reused`` is True when
        the answer came from a cached LU factorization (purely linear
        networks after the first solve); otherwise the call assembled
        and factorized once.
        """
        if self.n_free == 0:
            return np.empty(0), False
        if self.nonlinear:
            g_var = self.eval_callables(temps, strict=True)
            matrix = self.operator(g_var)
            rhs = self.steady_rhs_base
            if self.v_rhs_rows.size:
                rhs = rhs + np.bincount(
                    self.v_rhs_rows,
                    weights=g_var[self.v_rhs_link] * self.v_rhs_fixed,
                    minlength=self.n_free)
            if _superlu is not None:
                x, info = _superlu.gssv(
                    self.n_free, len(matrix.data), matrix.data,
                    matrix.indices, matrix.indptr, rhs, 1,
                    options=_GSSV_OPTIONS)
                if info == 0:
                    return x.ravel(), False
            return np.atleast_1d(spsolve(matrix, rhs)), False
        rhs = self.steady_rhs_base
        if self._lu is None:
            self._lu = factorized(self.operator().tocsc())
            return np.atleast_1d(self._lu(rhs)), False
        return np.atleast_1d(self._lu(rhs)), True

    def link_conductances(self, temps: np.ndarray,
                          strict: bool = True) -> np.ndarray:
        """Per-link conductances at ``temps``, in link order."""
        g = np.empty(self.ia.size)
        g[self.const_sel] = self.g_const
        if self.nonlinear:
            g[self.var_sel] = self.eval_callables(temps, strict)
        return g

    def heat_flows(self, temps: np.ndarray) -> Dict[str, float]:
        """Per-link heat flows [W], keyed like the historical solver."""
        q = self.link_conductances(temps) * (temps[self.ia] - temps[self.ib])
        return dict(zip(self.flow_keys, map(float, q), strict=True))

    def residual(self, temps: np.ndarray) -> float:
        """Max energy-balance residual over free nodes [W]."""
        q = self.link_conductances(temps) * (temps[self.ia] - temps[self.ib])
        return self._residual_of(q)

    def _residual_of(self, q: np.ndarray) -> float:
        if self.n_free == 0:
            return 0.0
        balance = self.heat_loads.copy()
        ja = self.free_of[self.ia]
        jb = self.free_of[self.ib]
        a_free = ja >= 0
        b_free = jb >= 0
        np.subtract.at(balance, ja[a_free], q[a_free])
        np.add.at(balance, jb[b_free], q[b_free])
        return float(np.max(np.abs(balance)))

    def solution_outputs(self, temps: np.ndarray
                         ) -> Tuple[Dict[str, float], float]:
        """Heat flows and residual from one conductance evaluation."""
        q = self.link_conductances(temps) * (temps[self.ia] - temps[self.ib])
        flows = dict(zip(self.flow_keys, map(float, q), strict=True))
        return flows, self._residual_of(q)


@dataclass(frozen=True)
class NetworkSolution:
    """Result of a steady-state network solve.

    Attributes
    ----------
    temperatures:
        Mapping node name → temperature [K].
    heat_flows:
        Mapping link label (or ``"a->b"``) → heat flow [W], positive from
        ``node_a`` to ``node_b``.
    iterations:
        Fixed-point iterations used (1 for a purely linear network).
    residual:
        Final energy-balance residual norm [W].
    """

    temperatures: Dict[str, float]
    heat_flows: Dict[str, float]
    iterations: int
    residual: float

    def temperature(self, node: str) -> float:
        """Temperature of ``node`` [K]."""
        try:
            return self.temperatures[node]
        except KeyError:
            raise InputError(f"no node named {node!r} in solution") from None

    def delta(self, hot: str, cold: str) -> float:
        """Temperature difference ``T(hot) - T(cold)`` [K]."""
        return self.temperature(hot) - self.temperature(cold)


class ThermalNetwork:
    """A lumped thermal network of nodes, links, sources and sinks.

    Examples
    --------
    >>> net = ThermalNetwork()
    >>> net.add_node("chip", heat_load=10.0)
    >>> net.add_node("ambient", fixed_temperature=300.0)
    >>> net.add_resistance("chip", "ambient", resistance=2.0)
    >>> sol = net.solve()
    >>> round(sol.temperature("chip"), 3)
    320.0
    """

    def __init__(self) -> None:
        self._nodes: Dict[str, _Node] = {}
        self._links: List[_Link] = []
        #: Lazily built :class:`_CompiledNetwork`; ``None`` marks stale.
        self._compiled_cache: Optional[_CompiledNetwork] = None

    def _invalidate(self) -> None:
        """Drop the compiled structure after a definition change."""
        self._compiled_cache = None

    def _compiled(self, kernel: str = "network.steady") -> _CompiledNetwork:
        """The compiled structure, (re)built if the definition changed."""
        if self._compiled_cache is None:
            self._compiled_cache = _CompiledNetwork(self)
            perf.record(kernel, compilations=1)
        return self._compiled_cache

    def __getstate__(self):
        # The compiled structure holds SciPy LU objects that neither
        # pickle nor deepcopy; it is derived state, so drop it and let
        # the destination process recompile on first solve.
        state = self.__dict__.copy()
        state["_compiled_cache"] = None
        return state

    # -- construction -------------------------------------------------------

    def add_node(self, name: str, heat_load: float = 0.0,
                 fixed_temperature: Optional[float] = None,
                 capacitance: float = 0.0) -> None:
        """Add a temperature node.

        Parameters
        ----------
        name:
            Unique node identifier.
        heat_load:
            Heat injected at the node [W] (dissipating components).
        fixed_temperature:
            If given, the node is a boundary (sink) held at this value [K].
        capacitance:
            Lumped thermal capacitance [J/K], used only by the transient
            solver in :mod:`avipack.thermal.transient`.
        """
        if not name:
            raise InputError("node name must be non-empty")
        if name in self._nodes:
            raise InputError(f"node {name!r} already exists")
        if fixed_temperature is not None and fixed_temperature <= 0.0:
            raise InputError("fixed temperature must be positive kelvin")
        if capacitance < 0.0:
            raise InputError("capacitance must be non-negative")
        self._nodes[name] = _Node(name, heat_load, fixed_temperature,
                                  capacitance)
        self._invalidate()

    def add_heat_load(self, name: str, heat_load: float) -> None:
        """Add (accumulate) a heat load on an existing node [W]."""
        node = self._require(name)
        if node.fixed_temperature is not None and heat_load != 0.0:
            raise InputError(f"cannot load fixed-temperature node {name!r}")
        node.heat_load += heat_load
        self._invalidate()

    def add_conductance(self, node_a: str, node_b: str,
                        conductance: Conductance, label: str = "") -> None:
        """Connect two nodes with a thermal conductance [W/K].

        ``conductance`` may be a positive constant or a callable
        ``g(t_a, t_b)`` returning W/K for temperature-dependent paths.
        """
        self._require(node_a)
        self._require(node_b)
        if node_a == node_b:
            raise InputError("cannot link a node to itself")
        if not callable(conductance) and conductance <= 0.0:
            raise InputError("conductance must be positive")
        self._links.append(_Link(node_a, node_b, conductance, label))
        self._invalidate()

    def add_resistance(self, node_a: str, node_b: str, resistance: float,
                       label: str = "") -> None:
        """Connect two nodes with a thermal resistance [K/W]."""
        if resistance <= 0.0:
            raise InputError("resistance must be positive")
        self.add_conductance(node_a, node_b, 1.0 / resistance, label)

    # -- introspection -------------------------------------------------------

    @property
    def node_names(self) -> Tuple[str, ...]:
        """All node names in insertion order."""
        return tuple(self._nodes)

    @property
    def link_count(self) -> int:
        """Number of links in the network."""
        return len(self._links)

    def total_heat_load(self) -> float:
        """Sum of heat injected at free nodes [W]."""
        return sum(n.heat_load for n in self._nodes.values()
                   if n.fixed_temperature is None)

    def node_capacitance(self, name: str) -> float:
        """Lumped capacitance of ``name`` [J/K]."""
        return self._require(name).capacitance

    def node_heat_load(self, name: str) -> float:
        """Heat load on ``name`` [W]."""
        return self._require(name).heat_load

    def node_fixed_temperature(self, name: str) -> Optional[float]:
        """Fixed temperature of ``name``, or None for a free node."""
        return self._require(name).fixed_temperature

    def iter_links(self):
        """Yield ``(node_a, node_b, conductance, label)`` tuples."""
        for link in self._links:
            yield link.node_a, link.node_b, link.conductance, link.label

    def fingerprint(self) -> str:
        """Stable content fingerprint of the network's definition.

        Two networks with the same nodes (loads, sinks, capacitances)
        and the same links in the same order fingerprint identically in
        every process — the key the sweep cache memoises
        :meth:`solve` under.

        Callable conductances are fingerprinted *by code location*
        (module + qualname), not by captured state: closures over
        mutable values defeat memoisation and should not be cached.
        """
        return stable_fingerprint(
            "thermal_network",
            tuple((node.name, node.heat_load, node.fixed_temperature,
                   node.capacitance) for node in self._nodes.values()),
            tuple((link.node_a, link.node_b, link.conductance, link.label)
                  for link in self._links))

    def _require(self, name: str) -> _Node:
        try:
            return self._nodes[name]
        except KeyError:
            raise InputError(f"unknown node {name!r}") from None

    def _has_nonlinear_links(self) -> bool:
        return any(callable(link.conductance) for link in self._links)

    def _check_connectivity(self) -> None:
        """Every free node must reach a fixed-temperature node.

        A floating island has no defined temperature (singular system);
        report it by name instead of failing inside the linear solver.
        """
        adjacency: Dict[str, list] = {name: [] for name in self._nodes}
        for link in self._links:
            adjacency[link.node_a].append(link.node_b)
            adjacency[link.node_b].append(link.node_a)
        reached = set()
        frontier = [name for name, node in self._nodes.items()
                    if node.fixed_temperature is not None]
        while frontier:
            name = frontier.pop()
            if name in reached:
                continue
            reached.add(name)
            frontier.extend(adjacency[name])
        floating = sorted(set(self._nodes) - reached)
        if floating:
            raise InputError(
                "nodes not connected to any fixed-temperature node: "
                + ", ".join(floating))

    # -- solving -------------------------------------------------------------

    def solve(self, initial_guess: float = 320.0, max_iterations: int = 200,
              tolerance: float = 1e-8, relaxation: float = 0.7,
              cache=None,
              initial_temperatures: Optional[Dict[str, float]] = None
              ) -> NetworkSolution:
        """Solve the steady-state energy balance.

        Linear networks are solved exactly in one sparse factorisation.
        Networks with callable conductances iterate: each pass linearises
        the conductances at the current temperatures, solves, and relaxes
        the update by ``relaxation``.

        Parameters
        ----------
        initial_guess:
            Starting temperature for free nodes [K] when iterating.
        max_iterations:
            Fixed-point iteration budget.
        tolerance:
            Convergence threshold on the max temperature update [K].
        relaxation:
            Under-relaxation factor in (0, 1].
        cache:
            Optional memo store (``get_or_compute(key, compute)``): the
            solution is keyed on :meth:`fingerprint` plus the solver
            settings, so identical networks reached from different
            sweep candidates solve once per process.
        initial_temperatures:
            Optional per-node warm start (node name → K) overriding
            ``initial_guess``; names absent from the network are
            ignored, so a last iterate from a similar network can seed
            the solve.  Retry policies use the ``last_iterate``
            attribute of a raised :class:`ConvergenceError` here.

        Raises
        ------
        InputError
            If the network has no fixed-temperature node (the problem is
            singular) or no nodes at all.
        ConvergenceError
            If fixed-point iteration fails to converge.  The exception
            carries the iteration count, the last update norm, and the
            last iterate for warm-started retries.
        """
        _fire_fault("thermal.network.solve")
        if cache is not None:
            key = stable_fingerprint(
                "network_solve", self.fingerprint(), initial_guess,
                max_iterations, tolerance, relaxation,
                tuple(sorted(initial_temperatures.items()))
                if initial_temperatures else None)
            return cache.get_or_compute(
                key, lambda: self.solve(
                    initial_guess, max_iterations, tolerance, relaxation,
                    initial_temperatures=initial_temperatures))
        if not self._nodes:
            raise InputError("network has no nodes")
        if all(n.fixed_temperature is None for n in self._nodes.values()):
            raise InputError(
                "network needs at least one fixed-temperature node")
        if not 0.0 < relaxation <= 1.0:
            raise InputError("relaxation must be in (0, 1]")

        start = time.perf_counter()
        comp = self._compiled("network.steady")
        if comp.floating:
            raise InputError(
                "nodes not connected to any fixed-temperature node: "
                + ", ".join(comp.floating))
        free = comp.free

        temps = np.full(len(comp.names), float(initial_guess))
        if initial_temperatures:
            for name, value in initial_temperatures.items():
                if name in comp.index:
                    temps[comp.index[name]] = float(value)
        temps[comp.fixed_mask] = comp.fixed_values[comp.fixed_mask]

        nonlinear = comp.nonlinear
        iterations = 0
        reuses = 0
        for iteration in range(1, max_iterations + 1):
            iterations = iteration
            new_free, reused = comp.linear_solve(temps)
            reuses += reused
            if free.size:
                current = temps[free]
                step = new_free - current
                delta = float(np.abs(step).max())
                temps[free] = (current + relaxation * step if nonlinear
                               else new_free)
            else:
                delta = 0.0
            if delta < tolerance or not nonlinear:
                break
        else:
            perf.record("network.steady", solves=1, iterations=iterations,
                        assemblies=iterations - reuses,
                        factorizations=iterations - reuses,
                        factorization_reuses=reuses,
                        wall_s=time.perf_counter() - start)
            raise ConvergenceError(
                f"network solve did not converge in {max_iterations} "
                f"iterations (last update {delta:.3e} K)",
                iterations=max_iterations, residual=float(delta),
                last_iterate={name: float(temps[comp.index[name]])
                              for name in comp.names})

        solution_temps = {name: float(temps[i])
                          for i, name in enumerate(comp.names)}
        flows, residual = comp.solution_outputs(temps)
        worked = iterations - reuses if free.size else 0
        perf.record("network.steady", solves=1, iterations=iterations,
                    assemblies=worked, factorizations=worked,
                    factorization_reuses=reuses,
                    wall_s=time.perf_counter() - start)
        return NetworkSolution(solution_temps, flows, iterations, residual)

    @staticmethod
    def _evaluate(link: _Link, t_a: float, t_b: float) -> float:
        if callable(link.conductance):
            g = float(link.conductance(t_a, t_b))
            if g < 0.0:
                raise InputError(
                    f"conductance callable for {link.node_a}-{link.node_b} "
                    f"returned negative value {g}")
            return max(g, 1e-12)
        return float(link.conductance)

    def _heat_flows(self, temps: Dict[str, float]) -> Dict[str, float]:
        """Per-link heat flows at the given node temperatures [W]."""
        comp = self._compiled()
        array = np.array([temps[name] for name in comp.names])
        return comp.heat_flows(array)

    def _residual(self, temps: Dict[str, float]) -> float:
        """Max energy-balance residual over free nodes [W]."""
        comp = self._compiled()
        array = np.array([temps[name] for name in comp.names])
        return comp.residual(array)


def series_resistance(*resistances: float) -> float:
    """Total resistance of resistances in series [K/W]."""
    if not resistances:
        raise InputError("need at least one resistance")
    if any(r <= 0.0 for r in resistances):
        raise InputError("resistances must be positive")
    return float(sum(resistances))


def parallel_resistance(*resistances: float) -> float:
    """Total resistance of resistances in parallel [K/W]."""
    if not resistances:
        raise InputError("need at least one resistance")
    if any(r <= 0.0 for r in resistances):
        raise InputError("resistances must be positive")
    return 1.0 / sum(1.0 / r for r in resistances)


def slab_resistance(thickness: float, conductivity: float,
                    area: float) -> float:
    """Conduction resistance of a plane slab, R = L / (k·A) [K/W]."""
    if thickness <= 0.0 or conductivity <= 0.0 or area <= 0.0:
        raise InputError("thickness, conductivity and area must be positive")
    return thickness / (conductivity * area)


def spreading_resistance(source_radius: float, plate_radius: float,
                         plate_thickness: float, conductivity: float,
                         h_sink: float = 1e4) -> float:
    """Spreading resistance of a circular source on a finite circular plate.

    Implements the closed-form of Song, Lee & Au (1994) widely used for
    hot-spot analysis: a heat source of radius ``source_radius`` centred on
    a plate of radius ``plate_radius`` and thickness ``plate_thickness``
    with film coefficient ``h_sink`` on the far face.

    Returns only the *spreading* part of the resistance (the 1-D slab and
    film resistances should be added separately).
    """
    if not 0.0 < source_radius <= plate_radius:
        raise InputError("need 0 < source_radius <= plate_radius")
    if plate_thickness <= 0.0 or conductivity <= 0.0 or h_sink <= 0.0:
        raise InputError("thickness, conductivity, h must be positive")
    eps = source_radius / plate_radius
    tau = plate_thickness / plate_radius
    bi = h_sink * plate_radius / conductivity
    lam = np.pi + 1.0 / (np.sqrt(np.pi) * eps)
    phi = (np.tanh(lam * tau) + lam / bi) / (1.0 + lam / bi * np.tanh(lam * tau))
    psi_max = eps * tau / np.sqrt(np.pi) + (1.0 - eps) * phi / np.sqrt(np.pi)
    return float(psi_max / (conductivity * source_radius * np.sqrt(np.pi)))
