"""Thermal radiation: view factors and gray-body exchange.

Radiation matters for passively cooled cabin equipment (the COSEE seat
electronics box sheds a significant fraction of its heat by radiation to
the cabin) and for sealed conduction-cooled modules.  This module provides

* analytic view factors for the configurations that appear in equipment
  models (parallel plates, perpendicular plates, small body in enclosure),
* a gray-body exchange network solved exactly via the radiosity method,
* linearised radiation conductances for use in thermal networks.
"""

from __future__ import annotations

import math
from typing import Callable, Sequence

import numpy as np

from ..errors import InputError
from ..units import STEFAN_BOLTZMANN


# ---------------------------------------------------------------------------
# View factors
# ---------------------------------------------------------------------------

def view_factor_parallel_plates(width: float, height: float,
                                distance: float) -> float:
    """View factor between identical, aligned parallel rectangles.

    Classical analytic result (Incropera Table 13.2) for two directly
    opposed rectangles of dimensions ``width`` × ``height`` separated by
    ``distance``.
    """
    if min(width, height, distance) <= 0.0:
        raise InputError("width, height and distance must be positive")
    x = width / distance
    y = height / distance
    x2, y2 = 1.0 + x * x, 1.0 + y * y
    term1 = math.log(math.sqrt(x2 * y2 / (x2 + y2 - 1.0)))
    term2 = x * math.sqrt(y2) * math.atan(x / math.sqrt(y2))
    term3 = y * math.sqrt(x2) * math.atan(y / math.sqrt(x2))
    term4 = -x * math.atan(x) - y * math.atan(y)
    return 2.0 / (math.pi * x * y) * (term1 + term2 + term3 + term4)


def view_factor_perpendicular_plates(width: float, height_1: float,
                                     height_2: float) -> float:
    """View factor between perpendicular rectangles sharing an edge.

    Surface 1 has dimensions ``width`` × ``height_1`` (horizontal), surface
    2 is ``width`` × ``height_2`` (vertical), sharing the ``width`` edge.
    """
    if min(width, height_1, height_2) <= 0.0:
        raise InputError("dimensions must be positive")
    h = height_2 / width
    w = height_1 / width
    h2, w2 = h * h, w * w
    a = (1.0 + w2) * (1.0 + h2) / (1.0 + w2 + h2)
    b = (w2 * (1.0 + w2 + h2) / ((1.0 + w2) * (w2 + h2))) ** w2
    c = (h2 * (1.0 + h2 + w2) / ((1.0 + h2) * (h2 + w2))) ** h2
    term = (w * math.atan(1.0 / w) + h * math.atan(1.0 / h)
            - math.sqrt(h2 + w2) * math.atan(1.0 / math.sqrt(h2 + w2))
            + 0.25 * math.log(a * b * c))
    return term / (math.pi * w)


def view_factor_enclosed_body(area_body: float, area_enclosure: float) -> float:
    """View factor from a convex body to its enclosure (always 1.0).

    Provided for symmetry with :func:`enclosure_exchange_factor`; validates
    that the body fits in the enclosure.
    """
    if area_body <= 0.0 or area_enclosure <= 0.0:
        raise InputError("areas must be positive")
    if area_body > area_enclosure:
        raise InputError("body area cannot exceed enclosure area")
    return 1.0


def enclosure_exchange_factor(emissivity_body: float,
                              emissivity_enclosure: float,
                              area_body: float,
                              area_enclosure: float) -> float:
    """Gray-body exchange factor for a convex body inside an enclosure.

    F = 1 / (1/ε₁ + (A₁/A₂)(1/ε₂ − 1)); the net exchange is
    ``Q = F·A₁·σ·(T₁⁴ − T₂⁴)``.  This is the standard two-surface
    enclosure result used for boxes in a cabin.
    """
    for name, eps in (("body", emissivity_body),
                      ("enclosure", emissivity_enclosure)):
        if not 0.0 < eps <= 1.0:
            raise InputError(f"{name} emissivity must be in (0, 1]")
    view_factor_enclosed_body(area_body, area_enclosure)
    denominator = (1.0 / emissivity_body
                   + (area_body / area_enclosure)
                   * (1.0 / emissivity_enclosure - 1.0))
    return 1.0 / denominator


# ---------------------------------------------------------------------------
# Radiosity network
# ---------------------------------------------------------------------------

def solve_radiosity(areas: Sequence[float], emissivities: Sequence[float],
                    view_factors: np.ndarray,
                    temperatures: Sequence[float]) -> np.ndarray:
    """Net radiative heat flow from each surface of a gray enclosure [W].

    Solves the radiosity system ``J_i = ε_i·σ·T_i⁴ + (1−ε_i)·Σ_j F_ij·J_j``
    and returns ``Q_i = A_i (J_i − Σ_j F_ij J_j)`` — positive when surface
    *i* is a net emitter.

    Parameters
    ----------
    areas, emissivities, temperatures:
        Per-surface area [m²], emissivity (0–1] and temperature [K].
    view_factors:
        Matrix ``F[i, j]``; each row must sum to 1 (closed enclosure) and
        satisfy reciprocity ``A_i F_ij = A_j F_ji`` within tolerance.
    """
    areas = np.asarray(areas, dtype=float)
    eps = np.asarray(emissivities, dtype=float)
    temps = np.asarray(temperatures, dtype=float)
    f = np.asarray(view_factors, dtype=float)
    n = areas.size
    if not (eps.size == temps.size == n and f.shape == (n, n)):
        raise InputError("inconsistent array sizes")
    if np.any(areas <= 0.0):
        raise InputError("areas must be positive")
    if np.any((eps <= 0.0) | (eps > 1.0)):
        raise InputError("emissivities must be in (0, 1]")
    if np.any(temps <= 0.0):
        raise InputError("temperatures must be positive kelvin")
    row_sums = f.sum(axis=1)
    if np.any(np.abs(row_sums - 1.0) > 1e-6):
        raise InputError("view-factor rows must sum to 1 (closed enclosure)")
    reciprocity = areas[:, None] * f - (areas[:, None] * f).T
    if np.max(np.abs(reciprocity)) > 1e-6 * np.max(areas):
        raise InputError("view factors violate reciprocity A_i F_ij = A_j F_ji")

    emissive_power = STEFAN_BOLTZMANN * temps ** 4
    system = np.eye(n) - (1.0 - eps)[:, None] * f
    radiosity = np.linalg.solve(system, eps * emissive_power)
    incident = f @ radiosity
    return areas * (radiosity - incident)


# ---------------------------------------------------------------------------
# Network helpers
# ---------------------------------------------------------------------------

def radiation_conductance(area: float, exchange_factor: float
                          ) -> Callable[[float, float], float]:
    """Temperature-dependent radiation conductance for a network link.

    Returns ``g(T1, T2) = F·A·σ·(T1² + T2²)·(T1 + T2)`` so that
    ``g·(T1 − T2)`` equals the exact gray-body exchange
    ``F·A·σ·(T1⁴ − T2⁴)``.
    """
    if area <= 0.0:
        raise InputError("area must be positive")
    if not 0.0 < exchange_factor <= 1.0:
        raise InputError("exchange factor must be in (0, 1]")

    def conductance(t_1: float, t_2: float) -> float:
        return (exchange_factor * area * STEFAN_BOLTZMANN
                * (t_1 * t_1 + t_2 * t_2) * (t_1 + t_2))

    return conductance


def linearized_radiation_coefficient(emissivity: float,
                                     t_surface: float,
                                     t_surroundings: float) -> float:
    """Linearised radiative film coefficient h_r [W/(m²·K)].

    h_r = ε·σ·(T_s² + T_sur²)(T_s + T_sur) — convenient for quick hand
    calculations at level 1 of the design flow.
    """
    if not 0.0 < emissivity <= 1.0:
        raise InputError("emissivity must be in (0, 1]")
    if t_surface <= 0.0 or t_surroundings <= 0.0:
        raise InputError("temperatures must be positive kelvin")
    return (emissivity * STEFAN_BOLTZMANN
            * (t_surface ** 2 + t_surroundings ** 2)
            * (t_surface + t_surroundings))
