"""Batched steady-state solves over topology-sharing network stacks.

A design-space sweep evaluates hundreds of candidate stacks that share
one network *topology* — same nodes, same links, same fixed/free split —
and differ only in parameter values: heat loads (power maps), fixed
sink temperatures, constant conductances (materials, TIM choices) and
the coefficients inside callable links.  The scalar path in
:mod:`avipack.thermal.network` solves each candidate independently,
paying Python dispatch, operator assembly and an LU factorization per
candidate.  This module lowers the whole candidate axis into the solver:

* candidates are grouped by :func:`structural_fingerprint` (topology
  only, no parameter values);
* constant-conductance assembly is vectorized over the candidate
  dimension — one sparse scatter operator per group maps the stacked
  parameter arrays ``(B, n_const)`` onto stacked CSC data rows
  ``(B, nnz)`` in a single sparse-times-dense product;
* candidates whose assembled operators are bit-identical share one LU
  factorization, and their right-hand sides are stacked into a single
  multi-RHS ``lu.solve`` — the candidates-per-factorization amortization
  the sweep throughput work targets;
* callable links are evaluated over the whole candidate stack at once
  (numpy broadcasting when every candidate shares the callable, a tight
  per-candidate loop otherwise), and the nonlinear fixed point advances
  all candidates of a group simultaneously with *per-candidate
  convergence masking*: converged candidates freeze, the rest keep
  iterating, and any straggler left at the iteration budget falls back
  to the scalar path so its failure semantics (:class:`~avipack.errors.
  ConvergenceError` with a warm-startable last iterate) are identical
  to an unbatched solve.

Per-candidate results are bit-compatible with the scalar path: the
fixed-point trajectory of every candidate is exactly the one
:meth:`avipack.thermal.network.ThermalNetwork.solve` would have walked,
just advanced in lockstep with its group.

Counters land in :mod:`avipack.perf` under the ``"network.batched"``
kernel: ``batched_solves`` (group solves), ``batch_width`` (candidates
answered by the batch path) and the derived candidates-per-factorization
figure, alongside the usual assembly/factorization/solve accounting.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np
from scipy.sparse import csc_matrix, csr_matrix
from scipy.sparse.linalg import splu

from .. import perf
from ..errors import InputError
from ..fingerprint import stable_fingerprint
from .network import NetworkSolution, ThermalNetwork, _CompiledNetwork

__all__ = ["BatchOutcome", "group_by_structure", "solve_batched",
           "structural_fingerprint"]

#: Perf kernel the batch path records under.
KERNEL = "network.batched"

#: Below this group size the batch machinery costs more than it saves.
DEFAULT_MIN_BATCH = 2


def structural_fingerprint(network: ThermalNetwork) -> str:
    """Topology-only fingerprint of a network.

    Two networks fingerprint identically here when they share node
    names (in insertion order), the fixed/free split, and link
    endpoints in declaration order with the same constant-vs-callable
    kind per link — i.e. when they assemble into operators with the
    same sparsity template and can be advanced as one batched system.
    Parameter *values* (heat loads, fixed temperatures, conductances,
    callable coefficients) are deliberately excluded: they are the
    candidate axis the batch stacks over.
    """
    nodes = network._nodes
    return stable_fingerprint(
        "network_structure",
        tuple(nodes),
        tuple(name for name, node in nodes.items()
              if node.fixed_temperature is not None),
        tuple((link.node_a, link.node_b, callable(link.conductance))
              for link in network._links))


def group_by_structure(networks: Sequence[ThermalNetwork]
                       ) -> Dict[str, List[int]]:
    """Indices of ``networks`` grouped by :func:`structural_fingerprint`.

    Preserves first-seen group order and, within a group, input order —
    the deterministic schedule :func:`solve_batched` executes.
    """
    groups: Dict[str, List[int]] = {}
    for index, network in enumerate(networks):
        groups.setdefault(structural_fingerprint(network), []).append(index)
    return groups


@dataclass
class BatchOutcome:
    """One network's outcome from :func:`solve_batched`.

    Exactly one of ``solution``/``error`` is set.  ``batched`` is True
    when the answer came from the vectorized group path; False marks
    the scalar path (small group, precondition failure, straggler
    fallback) whose cost and exceptions are the classic per-candidate
    ones.
    """

    solution: Optional[NetworkSolution] = None
    error: Optional[BaseException] = None
    batched: bool = False

    @property
    def ok(self) -> bool:
        """True when the solve produced a solution."""
        return self.solution is not None


@dataclass
class _Group:
    """One topology-sharing candidate group lowered to stacked arrays."""

    comp: _CompiledNetwork
    indices: List[int]
    networks: List[ThermalNetwork]
    heat_free: np.ndarray      # (B, n_free)
    fixed_vals: np.ndarray     # (B, n)
    g_const: np.ndarray        # (B, n_const)
    callables: List[List[Callable[[float, float], float]]]
    # Scatter operators, built once per group:
    scatter_const: csr_matrix       # (nnz, n_const) -> operator data
    scatter_var: Optional[csr_matrix]    # (nnz, n_var)
    rhs_const: Optional[csr_matrix]      # (n_free, K_c) fixed-coupling
    rhs_var: Optional[csr_matrix]        # (n_free, K_v)
    flow_scatter: csr_matrix             # (n_free, n_links) balance
    #: Per-var-link: every candidate shares the same callable object.
    shared_fn: List[bool] = field(default_factory=list)
    #: Tri-state vectorization verdict per var link (None = untried).
    vector_ok: List[Optional[bool]] = field(default_factory=list)


def _lower_group(networks: List[ThermalNetwork], indices: List[int]
                 ) -> _Group:
    """Stack one group's parameters and build its scatter operators."""
    comp = networks[0]._compiled(KERNEL)
    n = len(comp.names)
    n_free = comp.n_free
    heat = np.array([[node.heat_load for node in net._nodes.values()]
                     for net in networks])
    fixed_vals = np.array(
        [[node.fixed_temperature
          if node.fixed_temperature is not None else 0.0
          for node in net._nodes.values()] for net in networks])
    g_const = np.array(
        [[float(net._links[int(k)].conductance) for k in comp.const_sel]
         for net in networks])
    callables = [[net._links[int(k)].conductance for k in comp.var_sel]
                 for net in networks]

    nnz = comp.const_data.size
    scatter_const = csr_matrix(
        (comp.c_sign, (comp.c_pos, comp.c_link)),
        shape=(nnz, max(len(comp.const_sel), 1)))
    scatter_var = None
    if comp.var_sel.size:
        scatter_var = csr_matrix(
            (comp.v_sign, (comp.v_pos, comp.v_link)),
            shape=(nnz, len(comp.var_sel)))
    rhs_const = None
    if comp.c_rhs_rows.size:
        k_c = comp.c_rhs_rows.size
        rhs_const = csr_matrix(
            (np.ones(k_c), (comp.c_rhs_rows, np.arange(k_c))),
            shape=(n_free, k_c))
    rhs_var = None
    if comp.var_sel.size and comp.v_rhs_rows.size:
        k_v = comp.v_rhs_rows.size
        rhs_var = csr_matrix(
            (np.ones(k_v), (comp.v_rhs_rows, np.arange(k_v))),
            shape=(n_free, k_v))
    # Signed free-node incidence: balance = Q - P @ q  (per candidate).
    ja = comp.free_of[comp.ia]
    jb = comp.free_of[comp.ib]
    a_free = ja >= 0
    b_free = jb >= 0
    links = np.arange(comp.ia.size)
    flow_scatter = csr_matrix(
        (np.concatenate([np.ones(int(a_free.sum())),
                         -np.ones(int(b_free.sum()))]),
         (np.concatenate([ja[a_free], jb[b_free]]),
          np.concatenate([links[a_free], links[b_free]]))),
        shape=(n_free, comp.ia.size))

    n_var = int(comp.var_sel.size)
    shared_fn = [all(callables[b][j] is callables[0][j]
                     for b in range(len(networks)))
                 for j in range(n_var)]
    return _Group(comp=comp, indices=indices, networks=networks,
                  heat_free=heat[:, comp.free], fixed_vals=fixed_vals,
                  g_const=g_const, callables=callables,
                  scatter_const=scatter_const, scatter_var=scatter_var,
                  rhs_const=rhs_const, rhs_var=rhs_var,
                  flow_scatter=flow_scatter, shared_fn=shared_fn,
                  vector_ok=[None] * n_var)


def _assemble_const(group: _Group) -> np.ndarray:
    """Stacked constant-part operator data, one vectorized scatter."""
    if not group.comp.const_sel.size:
        return np.zeros((len(group.networks), group.comp.const_data.size))
    return np.ascontiguousarray(
        (group.scatter_const @ group.g_const.T).T)


def _rhs_base(group: _Group) -> np.ndarray:
    """Stacked steady RHS: heat loads + constant fixed-node coupling."""
    rhs = group.heat_free.copy()
    if group.rhs_const is not None:
        term = (group.g_const[:, group.comp.c_rhs_link]
                * group.fixed_vals[:, group.comp.c_rhs_other])
        rhs += (group.rhs_const @ term.T).T
    return rhs


def _eval_callables_batch(group: _Group, temps: np.ndarray,
                          act: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
    """Callable conductances for the active candidates ``act``.

    Returns ``(g_var, negative)`` where ``g_var`` has shape
    ``(act.size, n_var)`` (clamped like the scalar path) and
    ``negative`` flags positions in ``act`` whose callables returned a
    negative value — the scalar path raises
    :class:`~avipack.errors.InputError` for those, so the caller routes
    them to the scalar fallback to reproduce the exact failure.

    Links whose callable is shared by every candidate in the group are
    tried as a single broadcast call over the candidate axis; the
    verdict is cached so a scalar-only callable costs one failed probe,
    not one per iteration.
    """
    comp = group.comp
    n_var = int(comp.var_sel.size)
    out = np.empty((act.size, n_var))
    for j in range(n_var):
        ia = comp.var_ia[j]
        ib = comp.var_ib[j]
        t_a = temps[act, ia]
        t_b = temps[act, ib]
        if group.shared_fn[j] and group.vector_ok[j] is not False:
            fn = group.callables[int(act[0])][j]
            try:
                res = np.asarray(fn(t_a, t_b), dtype=float)
            except Exception:
                group.vector_ok[j] = False
            else:
                if res.shape == t_a.shape:
                    out[:, j] = res
                    group.vector_ok[j] = True
                    continue
                group.vector_ok[j] = False
        for i, b in enumerate(act.tolist()):
            out[i, j] = float(group.callables[b][j](temps[b, ia],
                                                    temps[b, ib]))
    negative = (out < 0.0).any(axis=1) if n_var else \
        np.zeros(act.size, dtype=bool)
    return np.maximum(out, 1e-12), negative


def _factorize_and_solve(data: np.ndarray, rhs: np.ndarray,
                         comp: _CompiledNetwork
                         ) -> Tuple[np.ndarray, int, int]:
    """Solve the stacked systems, sharing LUs across identical operators.

    ``data``/``rhs`` are the per-candidate operator data rows and
    right-hand sides.  Rows whose operator data is bit-identical share
    a single factorization and are answered by one multi-RHS
    ``lu.solve``.  Returns ``(solutions, factorizations, reuses)`` with
    ``solutions`` of shape ``(B, n_free)``.
    """
    n_free = comp.n_free
    template = comp._matrix
    solutions = np.empty((data.shape[0], n_free))
    by_operator: Dict[bytes, List[int]] = {}
    for row, datum in enumerate(data):
        by_operator.setdefault(datum.tobytes(), []).append(row)
    factorizations = 0
    reuses = 0
    for rows in by_operator.values():
        matrix = csc_matrix(
            (data[rows[0]], template.indices, template.indptr),
            shape=(n_free, n_free))
        lu = splu(matrix)
        factorizations += 1
        reuses += len(rows) - 1
        stacked = lu.solve(rhs[rows].T)
        solutions[rows] = np.atleast_2d(stacked.T)
    return solutions, factorizations, reuses


def _finalize(group: _Group, b: int, temps_row: np.ndarray,
              g_var_row: Optional[np.ndarray],
              iterations: int) -> NetworkSolution:
    """Per-candidate flows/residual from one conductance evaluation."""
    comp = group.comp
    g_all = np.empty(comp.ia.size)
    if comp.const_sel.size:
        g_all[comp.const_sel] = group.g_const[b]
    if comp.var_sel.size:
        g_all[comp.var_sel] = g_var_row
    q = g_all * (temps_row[comp.ia] - temps_row[comp.ib])
    flows = dict(zip(comp.flow_keys, map(float, q), strict=True))
    balance = group.heat_free[b] - group.flow_scatter @ q
    residual = float(np.max(np.abs(balance))) if comp.n_free else 0.0
    temperatures = {name: float(temps_row[i])
                    for i, name in enumerate(comp.names)}
    return NetworkSolution(temperatures, flows, iterations, residual)


def _solve_group(group: _Group, outcomes: List[Optional[BatchOutcome]],
                 initial_guess: float, max_iterations: int,
                 tolerance: float, relaxation: float) -> List[int]:
    """Advance one topology group as a batched system.

    Fills ``outcomes`` (by original index) for every candidate the
    batch path answered and returns the original indices that must fall
    back to the scalar path: callables that returned negative values,
    convergence stragglers, or any candidate of a group whose batched
    evaluation failed unexpectedly.
    """
    start = time.perf_counter()
    comp = group.comp
    b_total = len(group.networks)
    n = len(comp.names)
    nonlinear = comp.nonlinear

    temps = np.full((b_total, n), float(initial_guess))
    fixed_idx = np.flatnonzero(comp.fixed_mask)
    temps[:, fixed_idx] = group.fixed_vals[:, fixed_idx]

    data_const = _assemble_const(group)
    rhs_base = _rhs_base(group)
    assemblies = 1
    factorizations = 0
    reuses = 0
    iteration_count = 0

    active = np.ones(b_total, dtype=bool)
    iters = np.zeros(b_total, dtype=int)
    fallback: List[int] = []
    g_var_last = (np.zeros((b_total, int(comp.var_sel.size)))
                  if nonlinear else None)

    for iteration in range(1, max_iterations + 1):
        act = np.flatnonzero(active)
        if not act.size:
            break
        if nonlinear:
            g_var, negative = _eval_callables_batch(group, temps, act)
            if negative.any():
                for i in np.flatnonzero(negative).tolist():
                    fallback.append(int(act[i]))
                    active[act[i]] = False
                keep = ~negative
                act = act[keep]
                g_var = g_var[keep]
                if not act.size:
                    continue
            g_var_last[act] = g_var
            data = data_const[act] + (group.scatter_var @ g_var.T).T
            rhs = rhs_base[act]
            if group.rhs_var is not None:
                term = (g_var[:, group.comp.v_rhs_link]
                        * group.fixed_vals[
                            np.ix_(act, group.comp.v_rhs_other)])
                rhs = rhs + (group.rhs_var @ term.T).T
            if iteration > 1:
                assemblies += 1
        else:
            data = data_const[act]
            rhs = rhs_base[act]
        if comp.n_free:
            new_free, n_lu, n_reuse = _factorize_and_solve(
                np.ascontiguousarray(data), np.ascontiguousarray(rhs),
                comp)
            factorizations += n_lu
            reuses += n_reuse
            current = temps[np.ix_(act, comp.free)]
            step = new_free - current
            delta = np.abs(step).max(axis=1)
            temps[np.ix_(act, comp.free)] = (
                current + relaxation * step if nonlinear else new_free)
        else:
            delta = np.zeros(act.size)
        iters[act] = iteration
        iteration_count += int(act.size)
        if not nonlinear:
            active[act] = False
            continue
        converged = delta < tolerance
        active[act[converged]] = False

    # Stragglers: still active after the budget -> scalar path, which
    # walks the identical trajectory and raises the library's
    # ConvergenceError with the proper last iterate.
    for b in np.flatnonzero(active).tolist():
        fallback.append(b)

    dropped = set(fallback)
    solved = [b for b in range(b_total)
              if not active[b] and b not in dropped]
    if nonlinear and solved:
        # One more conductance evaluation at the final temperatures for
        # flows/residual, mirroring the scalar solution_outputs (strict:
        # a negative value here fails the candidate the scalar way).
        act = np.array(solved, dtype=np.intp)
        g_final, negative = _eval_callables_batch(group, temps, act)
        if negative.any():
            for i in np.flatnonzero(negative).tolist():
                fallback.append(int(act[i]))
            keep = ~negative
            act = act[keep]
            g_final = g_final[keep]
            solved = act.tolist()
        g_var_last[act] = g_final

    for b in solved:
        solution = _finalize(
            group, b, temps[b],
            g_var_last[b] if nonlinear else None, int(iters[b]))
        outcomes[group.indices[b]] = BatchOutcome(solution=solution,
                                                  batched=True)
    perf.record(KERNEL, solves=len(solved), iterations=iteration_count,
                assemblies=assemblies, factorizations=factorizations,
                factorization_reuses=reuses, batched_solves=1,
                batch_width=len(solved),
                wall_s=time.perf_counter() - start)
    return [group.indices[b] for b in dict.fromkeys(fallback)]


def _scalar_outcome(network: ThermalNetwork, initial_guess: float,
                    max_iterations: int, tolerance: float,
                    relaxation: float) -> BatchOutcome:
    """Scalar-path outcome with the classic failure semantics."""
    try:
        solution = network.solve(initial_guess=initial_guess,
                                 max_iterations=max_iterations,
                                 tolerance=tolerance,
                                 relaxation=relaxation)
    except Exception as exc:
        return BatchOutcome(error=exc, batched=False)
    return BatchOutcome(solution=solution, batched=False)


def _batchable(network: ThermalNetwork) -> bool:
    """Whether the batch path's cheap preconditions hold for ``network``.

    Networks failing them (no nodes, no fixed-temperature node) are
    routed to the scalar path so the exact scalar
    :class:`~avipack.errors.InputError` is raised for them.  Floating
    islands are a *structural* property, so they are detected once per
    group — after grouping — rather than compiling every candidate here.
    """
    if not network._nodes:
        return False
    return any(node.fixed_temperature is not None
               for node in network._nodes.values())


def solve_batched(networks: Sequence[ThermalNetwork], *,
                  initial_guess: float = 320.0, max_iterations: int = 200,
                  tolerance: float = 1e-8, relaxation: float = 0.7,
                  min_batch: int = DEFAULT_MIN_BATCH
                  ) -> List[BatchOutcome]:
    """Solve many networks, amortizing structure across topology groups.

    Networks are grouped by :func:`structural_fingerprint`; each group
    of at least ``min_batch`` members is advanced as one vectorized
    system (stacked assembly, shared factorizations, multi-RHS solves,
    masked fixed-point iteration).  Everything that cannot be batched —
    singleton groups, precondition failures, negative callables,
    convergence stragglers — is answered by the scalar path, so every
    outcome's value *and* failure behaviour matches what
    :meth:`~avipack.thermal.network.ThermalNetwork.solve` would have
    produced candidate by candidate.

    Returns one :class:`BatchOutcome` per input network, in input
    order.  Never raises for a per-candidate solve failure; the solver
    settings themselves are validated eagerly (empty input, bad
    relaxation) with the scalar path's :class:`~avipack.errors.
    InputError` messages.
    """
    networks = list(networks)
    if not networks:
        raise InputError("solve_batched needs at least one network")
    if not 0.0 < relaxation <= 1.0:
        raise InputError("relaxation must be in (0, 1]")
    if min_batch < 2:
        raise InputError("min_batch must be >= 2")

    outcomes: List[Optional[BatchOutcome]] = [None] * len(networks)

    scalar_indices: List[int] = []
    batch_groups: Dict[str, List[int]] = {}
    for index, network in enumerate(networks):
        try:
            usable = _batchable(network)
        except Exception:
            usable = False
        if not usable:
            scalar_indices.append(index)
            continue
        batch_groups.setdefault(
            structural_fingerprint(network), []).append(index)

    for key in list(batch_groups):
        if len(batch_groups[key]) < min_batch:
            scalar_indices.extend(batch_groups.pop(key))

    for indices in batch_groups.values():
        members = [networks[i] for i in indices]
        try:
            # Floating islands are structural: one check covers the
            # whole group.  Affected groups take the scalar path so
            # each member raises the scalar InputError by name.
            if members[0]._compiled(KERNEL).floating:
                scalar_indices.extend(indices)
                continue
            group = _lower_group(members, indices)
            stragglers = _solve_group(group, outcomes, initial_guess,
                                      max_iterations, tolerance,
                                      relaxation)
        except Exception:
            # Defensive: a batch-machinery failure must never take the
            # group down — every member still gets its scalar answer.
            stragglers = [i for i in indices if outcomes[i] is None]
        scalar_indices.extend(stragglers)

    for index in scalar_indices:
        outcomes[index] = _scalar_outcome(
            networks[index], initial_guess, max_iterations, tolerance,
            relaxation)

    return [outcome for outcome in outcomes if outcome is not None]
