"""avipack — avionics packaging thermal/mechanical co-design toolkit.

A from-scratch reproduction of the system described in *"Integration,
cooling and packaging issues for aerospace equipments"* (C. Sarno,
C. Tantolin, Thales Avionics, DATE 2010): the parallel thermal/mechanical
packaging design procedure, the three-level thermal simulation pyramid,
the classical cooling techniques and their limits, the COSEE two-phase
(heat pipe + loop heat pipe) seat-electronics-box cooling chain, and the
NANOPACK thermal-interface-material developments.

Quick start::

    from avipack import SeatElectronicsBox, SebConfiguration

    seb = SeatElectronicsBox()
    passive = seb.solve(40.0, SebConfiguration(cooling="natural"))
    assisted = seb.solve(40.0, SebConfiguration(cooling="hp_lhp"))
    print(passive.delta_t_pcb_air - assisted.delta_t_pcb_air)  # ~32 K

Subpackages
-----------
``materials``
    Solid/fluid property database, PCB layup models.
``thermal``
    Resistance networks, finite-volume conduction, convection and
    radiation correlations, transient solvers.
``twophase``
    Heat pipes, loop heat pipes, thermosyphons, wicks, working fluids.
``mechanical``
    Plate/beam modal analysis, random vibration, fatigue, isolation,
    shock.
``tim``
    Thermal-interface-material models, catalogue and virtual testers.
``environments``
    DO-160, ARINC 600 and qualification profiles.
``perf``
    Solver instrumentation: per-kernel :class:`~avipack.perf.SolveStats`
    counters (assemblies, factorizations, reuses, wall time).
``reliability``
    Arrhenius/MIL-HDBK-217 style MTBF prediction.
``packaging``
    Components, PCBs, modules, racks and the COSEE SEB.
``service``
    The resilient sweep job server (asyncio, Unix socket) + client.
``retention``
    Crash-safe space governance: journal/store compaction, disk
    budgets and eviction policies.
``core``
    The design procedure: levels, selection, qualification, reporting.
``experiments``
    Canned builders for every paper figure and claim.
"""

from . import (
    core,
    environments,
    experiments,
    materials,
    mechanical,
    packaging,
    perf,
    reliability,
    resilience,
    retention,
    service,
    sweep,
    thermal,
    tim,
    twophase,
    units,
)
from .errors import (
    AvipackError,
    CacheCorruptionError,
    ConvergenceError,
    InputError,
    DurabilityError,
    MaterialNotFoundError,
    ModelRangeError,
    OperatingLimitError,
    ServiceError,
    SpecificationError,
    WatchdogTimeout,
    WorkerCrashError,
)

# The most-used entry points, re-exported flat.
from .core import (
    FrequencyAllocation,
    PackagingSpecification,
    run_campaign,
    run_design_procedure,
    run_pyramid,
    select_architecture,
)
from .packaging import (
    Module,
    Pcb,
    Rack,
    SeatElectronicsBox,
    SebConfiguration,
)
from .resilience import (
    FaultPlan,
    FaultSpec,
    RecoveryTrail,
    SupervisionPolicy,
    Supervisor,
)
from .service import ServiceClient, SweepService
from .sweep import (
    Candidate,
    DesignSpace,
    SolverCache,
    SweepReport,
    SweepRunner,
)
from .thermal import ThermalNetwork
from .twophase import HeatPipe, LoopHeatPipe, Thermosyphon

__version__ = "1.0.0"

__all__ = [
    "AvipackError",
    "CacheCorruptionError",
    "Candidate",
    "ConvergenceError",
    "DesignSpace",
    "DurabilityError",
    "FaultPlan",
    "FaultSpec",
    "FrequencyAllocation",
    "HeatPipe",
    "InputError",
    "LoopHeatPipe",
    "MaterialNotFoundError",
    "Module",
    "ModelRangeError",
    "OperatingLimitError",
    "PackagingSpecification",
    "Pcb",
    "Rack",
    "RecoveryTrail",
    "SeatElectronicsBox",
    "SebConfiguration",
    "ServiceClient",
    "ServiceError",
    "SolverCache",
    "SpecificationError",
    "Supervisor",
    "SupervisionPolicy",
    "SweepReport",
    "SweepRunner",
    "SweepService",
    "ThermalNetwork",
    "Thermosyphon",
    "WatchdogTimeout",
    "WorkerCrashError",
    "core",
    "environments",
    "experiments",
    "materials",
    "mechanical",
    "packaging",
    "perf",
    "reliability",
    "resilience",
    "retention",
    "service",
    "sweep",
    "thermal",
    "tim",
    "twophase",
    "units",
    "run_campaign",
    "run_design_procedure",
    "run_pyramid",
    "select_architecture",
]
